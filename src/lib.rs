//! # csc — real-time shortest-cycle counting on dynamic graphs
//!
//! A Rust reproduction of *Towards Real-Time Counting Shortest Cycles on
//! Dynamic Graphs: A Hub Labeling Approach* (Feng, Peng, Zhang, Zhang, Lin
//! — ICDE 2022, arXiv:2207.01035).
//!
//! This facade crate re-exports the full stack:
//!
//! | Layer | Crate | What it provides |
//! |-------|-------|------------------|
//! | [`graph`] | `csc-graph` | directed graphs, generators, orderings, bipartite conversion, BFS oracles |
//! | [`labeling`] | `csc-labeling` | HP-SPC 2-hop shortest-path-counting labels, frozen label arenas + adaptive kernel, the BFS baseline |
//! | [`index`] | `csc-core` | the CSC index: microsecond `SCCnt(v)` queries with incremental/decremental maintenance, plus lock-free snapshot serving (`SnapshotIndex` / `ConcurrentIndex`) |
//!
//! Reads are two-tier (see the README): the mutable index answers
//! read-your-writes queries, while immutable snapshots frozen from it
//! serve concurrent traffic lock-free and power parallel analytics
//! sweeps.
//!
//! ## Quickstart
//!
//! ```
//! use csc::prelude::*;
//!
//! // A payment network: 0 -> 1 -> 2 -> 0 plus a probe edge.
//! let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 0), (3, 0)]);
//! let mut index = CscIndex::build(&g, CscConfig::default()).unwrap();
//!
//! // How many shortest cycles run through account 0?
//! let c = index.query(VertexId(0)).unwrap();
//! assert_eq!((c.length, c.count), (3, 1));
//!
//! // A new transaction closes a second ring — the index keeps up.
//! index.insert_edge(VertexId(0), VertexId(3)).unwrap();
//! assert_eq!(index.query(VertexId(3)).unwrap().length, 2);
//! ```
//!
//! See the `examples/` directory for the fraud-detection and P2P routing
//! scenarios from the paper's introduction, and `csc-bench` for the
//! harness regenerating every table and figure of its evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use csc_core as index;
pub use csc_graph as graph;
pub use csc_labeling as labeling;

/// The common imports for working with the library.
pub mod prelude {
    pub use csc_core::{
        BatchReport, ConcurrentIndex, CscConfig, CscError, CscIndex, CycleCount, Deadline,
        FsyncPolicy, GraphUpdate, IndexHealth, MaintenanceEngine, MaintenanceStatus,
        OverloadConfig, OverloadPolicy, ParallelismConfig, RebuildPolicy, RebuildReason,
        RecoveryReport, RejuvenationReport, RetryPolicy, SnapshotIndex, SnapshotStats,
        UpdateReport, UpdateStrategy,
    };
    pub use csc_graph::{DiGraph, GraphError, OrderingStrategy, VertexId};
    pub use csc_labeling::{scc_count_bfs, BfsCycleEngine, FrozenLabels, HpSpcIndex, LabelStore};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_stack() {
        let g = DiGraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        let index = CscIndex::build(&g, CscConfig::default()).unwrap();
        let hp = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
        let via_csc = index.query(VertexId(1)).unwrap();
        let via_hp = csc_labeling::scc_baseline::scc_count(&hp, &g, VertexId(1)).unwrap();
        let via_bfs = scc_count_bfs(&g, VertexId(1)).unwrap();
        assert_eq!(via_csc, via_hp);
        assert_eq!(via_csc, via_bfs);
    }
}
