//! Minimal aligned-text table rendering for experiment output.

/// A simple column-aligned table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as comma-separated values (for archival in `results/`).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|s| escape(s))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|s| escape(s)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "value" column starts at the same offset everywhere.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(["x", "y"]);
        t.row(["with,comma", "with\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }
}
