//! Quick driver for the `churn_drift` experiment at a given scale (dev
//! tool and CI smoke): sustained churn → online rejuvenation under a live
//! reader → from-scratch yardstick. Prints the drift table, the served
//! index health before/after, and the rebuild-window reader percentiles;
//! appends JSON lines (the repo records them in `BENCH_rejuvenate.json`)
//! when `CRITERION_JSON` names a file.
//!
//! ```text
//! rejuvenate_probe [scale]      # default 0.05
//! ```
use csc_bench::experiments::{churn_drift, ExpContext};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let ctx = ExpContext {
        scale,
        quick: scale < 0.1,
        ..ExpContext::default()
    };
    println!("{}", churn_drift::run(&ctx));
}
