//! Quick driver for the `overload_surge` experiment at a given scale
//! (dev tool and CI smoke): reader p50/p99 against an idle index vs a
//! write surge under each `OverloadPolicy`, deadline hit rates for girth
//! sweeps, and recovery timing (with transient I/O faults armed too when
//! built with `--features fault-injection`). Appends JSON lines (the
//! repo records them in `BENCH_overload.json`) when `CRITERION_JSON`
//! names a file.
//!
//! ```text
//! overload_probe [scale]      # default 0.05
//! ```
use csc_bench::experiments::{overload_surge, ExpContext};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let ctx = ExpContext {
        scale,
        quick: scale < 0.1,
        ..ExpContext::default()
    };
    println!("{}", overload_surge::run(&ctx));
}
