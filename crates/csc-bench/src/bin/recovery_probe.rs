//! Quick driver for the `crash_recovery` experiment at a given scale
//! (dev tool and CI smoke): durable churn replay → simulated crash →
//! checkpoint + WAL recovery, swept over checkpoint cadences. Prints the
//! cadence table and the cold-rebuild yardstick; appends JSON lines (the
//! repo records them in `BENCH_recover.json`) when `CRITERION_JSON`
//! names a file.
//!
//! ```text
//! recovery_probe [scale]      # default 0.05
//! ```
use csc_bench::experiments::{crash_recovery, ExpContext};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let ctx = ExpContext {
        scale,
        quick: scale < 0.1,
        ..ExpContext::default()
    };
    println!("{}", crash_recovery::run(&ctx));
}
