//! Quick cost probe for the batch engine at a given scale (dev tool):
//! build/clone/freeze timings plus mean single insert/delete cost on a
//! `stream_replay` trace. Used to size the `batch` bench.
use csc_bench::datasets::{by_code, generate};
use csc_bench::experiments::stream_replay::build_trace;
use csc_core::{CscConfig, CscIndex, GraphUpdate};
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2);
    let spec = by_code("G04").unwrap();
    let g = generate(spec, scale, 42);
    eprintln!("n={} m={}", g.vertex_count(), g.edge_count());
    let t0 = Instant::now();
    let (reduced, trace) = build_trace(&g, 64, 128, 50, 42);
    let base = CscIndex::build(&reduced, CscConfig::default().with_snapshot_every(1)).unwrap();
    eprintln!(
        "build: {:?}, entries={}",
        t0.elapsed(),
        base.total_entries()
    );
    let t0 = Instant::now();
    let mut idx = base.clone();
    eprintln!("clone: {:?}", t0.elapsed());
    let t0 = Instant::now();
    let snap = idx.freeze();
    eprintln!(
        "freeze: {:?} ({} entries)",
        t0.elapsed(),
        snap.total_entries()
    );
    let (mut ins_n, mut del_n) = (0u32, 0u32);
    let (mut ins_t, mut del_t) = (0.0f64, 0.0f64);
    let t_all = Instant::now();
    for op in &trace {
        let t0 = Instant::now();
        match op.update {
            GraphUpdate::InsertEdge(a, b) => {
                idx.insert_edge(a, b).unwrap();
                ins_n += 1;
                ins_t += t0.elapsed().as_secs_f64();
            }
            GraphUpdate::RemoveEdge(a, b) => {
                idx.remove_edge(a, b).unwrap();
                del_n += 1;
                del_t += t0.elapsed().as_secs_f64();
            }
            _ => {}
        }
    }
    eprintln!(
        "replay {} ops in {:?}: insert mean {:.2} ms ({} ops), delete mean {:.2} ms ({} ops)",
        trace.len(),
        t_all.elapsed(),
        ins_t / ins_n.max(1) as f64 * 1e3,
        ins_n,
        del_t / del_n.max(1) as f64 * 1e3,
        del_n
    );
    // Drift after the replay: how far the maintained index has moved from
    // its post-build baseline (label growth, per-side split, churn).
    eprintln!("health: {}", idx.health());
}
