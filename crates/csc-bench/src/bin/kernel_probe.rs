//! `kernel-probe` — diagnostic for the query kernels: label-shape
//! statistics and per-variant intersection timings on a real workload.
//!
//! ```sh
//! cargo run --release -p csc-bench --bin kernel_probe [scale]
//! ```
//!
//! Used to attribute the frozen-path speedup between layout and kernel
//! (the dual-chain merge and galloping thresholds in
//! `csc_labeling::frozen` were tuned against this probe's numbers).

use csc_bench::datasets::{by_code, generate};
use csc_core::{CscConfig, CscIndex};
use csc_graph::bipartite::{in_vertex, out_vertex};
use csc_graph::VertexId;
use csc_labeling::frozen::GALLOP_SKEW;
use csc_labeling::labels::intersect;
use csc_labeling::{intersect_adaptive, LabelStore};
use std::time::Instant;

fn main() {
    let scale: f64 = match std::env::args().nth(1) {
        None => 1.0,
        Some(arg) => arg.parse().unwrap_or_else(|_| {
            eprintln!("usage: kernel_probe [scale]  (bad scale value: {arg})");
            std::process::exit(2);
        }),
    };
    let g = generate(by_code("G04").unwrap(), scale, 42);
    println!("graph: n={} m={}", g.vertex_count(), g.edge_count());
    let t = Instant::now();
    let index = CscIndex::build(&g, CscConfig::default()).unwrap();
    println!(
        "build: {:?}, entries {}",
        t.elapsed(),
        index.total_entries()
    );
    let snap = index.freeze();

    // Label-shape statistics over the cycle-query slices.
    let n = g.vertex_count();
    let mut lens: Vec<(usize, usize)> = Vec::with_capacity(n);
    for v in 0..n as u32 {
        let v = VertexId(v);
        lens.push((
            index.labels().out_of(out_vertex(v)).len(),
            index.labels().in_of(in_vertex(v)).len(),
        ));
    }
    let total: usize = lens.iter().map(|&(a, b)| a + b).sum();
    let max = lens.iter().map(|&(a, b)| a.max(b)).max().unwrap_or(0);
    let skewed = lens
        .iter()
        .filter(|&&(a, b)| a.max(b) >= GALLOP_SKEW * a.min(b).max(1))
        .count();
    println!(
        "query slices: avg len {:.1}, max {}, {}/{} pairs >={}x skewed",
        total as f64 / (2 * n) as f64,
        max,
        skewed,
        n,
        GALLOP_SKEW,
    );

    // Timed sweeps: every vertex queried once per variant.
    let vs: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
    let time = |name: &str, f: &dyn Fn(VertexId) -> u64| {
        // One warmup + three timed rounds; report the best.
        let mut best = f64::MAX;
        let mut acc = 0u64;
        for round in 0..4 {
            let t = Instant::now();
            for &v in &vs {
                acc = acc.wrapping_add(f(v));
            }
            let ns = t.elapsed().as_nanos() as f64 / vs.len() as f64;
            if round > 0 {
                best = best.min(ns);
            }
        }
        println!("{name:<28} {best:>10.1} ns/query   (acc {acc})");
    };

    time("nested CscIndex::query", &|v| {
        index.query(v).map_or(0, |c| c.count)
    });
    time("frozen SnapshotIndex::query", &|v| {
        snap.query(v).map_or(0, |c| c.count)
    });
    time("nested slices + ref kernel", &|v| {
        intersect(
            index.labels().out_of(out_vertex(v)),
            index.labels().in_of(in_vertex(v)),
        )
        .map_or(0, |dc| dc.count)
    });
    time("nested slices + adaptive", &|v| {
        intersect_adaptive(
            index.labels().out_of(out_vertex(v)),
            index.labels().in_of(in_vertex(v)),
        )
        .map_or(0, |dc| dc.count)
    });
    time("frozen slices + adaptive", &|v| {
        intersect_adaptive(
            snap.labels().out_of(out_vertex(v)),
            snap.labels().in_of(in_vertex(v)),
        )
        .map_or(0, |dc| dc.count)
    });
}
