//! Quick driver for the `deletion_churn` experiment at a given scale (dev
//! tool and CI smoke): delete-only replay through the windowed decremental
//! engine at batch sizes 1/8/64 with per-phase attribution and a live
//! snapshot reader, plus the scalar `remove_edge` yardstick. Appends JSON
//! lines (the repo records them in `BENCH_delete.json`) when
//! `CRITERION_JSON` names a file.
//!
//! ```text
//! delete_probe [scale]      # default 0.05
//! ```
use csc_bench::experiments::{deletion_churn, ExpContext};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let ctx = ExpContext {
        scale,
        quick: scale < 0.1,
        ..ExpContext::default()
    };
    println!("{}", deletion_churn::run(&ctx));
}
