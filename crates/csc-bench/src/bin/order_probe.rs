//! Quick driver for the `order_ablation` experiment at a given scale (dev
//! tool and CI smoke): builds the G04 analog and the bridged-communities
//! synthetic under the degree, degree-product, and coverage-sampling
//! orders, then prints entries, build time, and query percentiles per
//! strategy; appends JSON lines (the repo records them in
//! `BENCH_order.json`) when `CRITERION_JSON` names a file.
//!
//! ```text
//! order_probe [scale]      # default 0.05
//! ```
use csc_bench::experiments::{order_ablation, ExpContext};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let ctx = ExpContext {
        scale,
        quick: scale < 0.1,
        ..ExpContext::default()
    };
    println!("{}", order_ablation::run(&ctx));
}
