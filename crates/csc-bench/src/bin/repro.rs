//! `repro` — regenerates the CSC paper's tables and figures.
//!
//! ```text
//! repro [OPTIONS] <COMMAND>
//!
//! Commands:
//!   table4       Table IV  — dataset statistics
//!   fig9         Figure 9  — index construction time and size
//!   fig10        Figure 10 — query time by degree cluster
//!   fig11        Figure 11 — incremental update time and index growth
//!   fig12        Figure 12 — decremental updates by edge degree
//!   case-study     Figure 13 — fraud-screening case study
//!   throughput     Extension — concurrent read throughput
//!   stream-replay  Extension — batched update-stream replay
//!   churn-drift    Extension — churn drift and online rejuvenation
//!   deletion-churn Extension — windowed deletion repair under churn
//!   crash-recovery Extension — recovery time vs checkpoint cadence
//!   order-ablation Extension — coverage-sampled vs degree-based ordering
//!   overload-surge Extension — reader latency under overload & deadlines
//!   all            Everything above, in order
//!
//! Options:
//!   --scale <f64>    dataset size multiplier (default 1.0)
//!   --seed <u64>     RNG seed (default 42)
//!   --quick          smaller samples; skips the slowest combinations
//!   --datasets <a,b> restrict to these dataset codes (e.g. G04,WKT)
//!   --out <dir>      also write each table as CSV into <dir>
//! ```

use csc_bench::experiments::{
    ablation, case_study, churn_drift, crash_recovery, deletion_churn, fig10, fig11, fig12, fig9,
    order_ablation, overload_surge, stream_replay, table4, throughput, ExpContext,
};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale F] [--seed N] [--quick] [--datasets A,B] [--out DIR] \
         <table4|fig9|fig10|fig11|fig12|case-study|throughput|stream-replay|churn-drift|\
          deletion-churn|crash-recovery|ablation|order-ablation|overload-surge|all>"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = ExpContext::default();
    let mut command: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                ctx.scale = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --scale value: {v}");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage());
                ctx.seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --seed value: {v}");
                    std::process::exit(2);
                });
            }
            "--quick" => ctx.quick = true,
            "--datasets" => {
                let v = it.next().unwrap_or_else(|| usage());
                let codes: Vec<&str> = v.split(',').collect();
                ctx = ctx.with_datasets(&codes);
            }
            "--out" => {
                let v = it.next().unwrap_or_else(|| usage());
                ctx.out_dir = Some(v.into());
            }
            "--help" | "-h" => usage(),
            cmd if command.is_none() && !cmd.starts_with('-') => {
                command = Some(cmd.to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let Some(command) = command else { usage() };
    let run_one = |name: &str, ctx: &ExpContext| -> bool {
        match name {
            "table4" => println!("{}", table4::run(ctx)),
            "fig9" => println!("{}", fig9::run(ctx)),
            "fig10" => println!("{}", fig10::run(ctx)),
            "fig11" => println!("{}", fig11::run(ctx)),
            "fig12" => println!("{}", fig12::run(ctx)),
            "case-study" | "case_study" | "fig13" => println!("{}", case_study::run(ctx)),
            "throughput" => println!("{}", throughput::run(ctx)),
            "stream-replay" | "stream_replay" => println!("{}", stream_replay::run(ctx)),
            "churn-drift" | "churn_drift" => println!("{}", churn_drift::run(ctx)),
            "deletion-churn" | "deletion_churn" => println!("{}", deletion_churn::run(ctx)),
            "crash-recovery" | "crash_recovery" => println!("{}", crash_recovery::run(ctx)),
            "ablation" => println!("{}", ablation::run(ctx)),
            "order-ablation" | "order_ablation" => println!("{}", order_ablation::run(ctx)),
            "overload-surge" | "overload_surge" => println!("{}", overload_surge::run(ctx)),
            _ => return false,
        }
        true
    };

    if command == "all" {
        for name in [
            "table4",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "case-study",
            "throughput",
            "stream-replay",
            "churn-drift",
            "deletion-churn",
            "crash-recovery",
            "ablation",
            "order-ablation",
            "overload-surge",
        ] {
            eprintln!("==> {name}");
            run_one(name, &ctx);
        }
        ExitCode::SUCCESS
    } else if run_one(&command, &ctx) {
        ExitCode::SUCCESS
    } else {
        eprintln!("unknown command: {command}");
        usage()
    }
}
