//! Synthetic analogs of the paper's nine evaluation graphs (Table IV).
//!
//! Each spec records the real dataset's size and the generator family that
//! matches its structure; [`generate`] produces a seeded analog scaled by
//! `--scale` so the full suite runs on a laptop. At `scale = 1.0` the
//! default caps keep the largest graphs around 2–3 × 10^5 edges; larger
//! scales approach the paper's sizes at the cost of (much) longer builds.

use csc_graph::generators::{gnm, preferential_attachment, sprinkle_random_edges};
use csc_graph::DiGraph;

/// Structural family of a dataset, mapped to a generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Peer-to-peer overlay: flat degree distribution (Erdős–Rényi).
    P2p,
    /// Email/communication: heavy-tailed in-degree, some reciprocity.
    Email,
    /// Web crawl: heavy-tailed, low reciprocity, denser.
    Web,
    /// Talk/interaction network: heavy-tailed and strongly reciprocal.
    WikiTalk,
    /// Encyclopedia hyperlinks: dense heavy-tailed.
    Encyclopedia,
}

/// One row of the paper's Table IV plus its generator family.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Short code used in the paper's figures (e.g. `G04`).
    pub code: &'static str,
    /// Full dataset name in the paper.
    pub paper_name: &'static str,
    /// Vertex count of the real dataset.
    pub paper_n: usize,
    /// Edge count of the real dataset.
    pub paper_m: usize,
    /// Generator family for the synthetic analog.
    pub family: Family,
    /// Cap on the analog's vertex count at `scale = 1.0`.
    pub base_cap_n: usize,
}

/// The nine datasets of Table IV, in the paper's order.
pub const DATASETS: [DatasetSpec; 9] = [
    DatasetSpec {
        code: "G04",
        paper_name: "p2p-Gnutella04",
        paper_n: 10_879,
        paper_m: 39_994,
        family: Family::P2p,
        base_cap_n: 10_879, // small enough to run at full size
    },
    DatasetSpec {
        code: "G30",
        paper_name: "p2p-Gnutella30",
        paper_n: 36_682,
        paper_m: 88_328,
        family: Family::P2p,
        base_cap_n: 18_000,
    },
    DatasetSpec {
        code: "EME",
        paper_name: "email-EuAll",
        paper_n: 265_214,
        paper_m: 420_045,
        family: Family::Email,
        base_cap_n: 40_000,
    },
    DatasetSpec {
        code: "WBN",
        paper_name: "web-NotreDame",
        paper_n: 325_729,
        paper_m: 1_497_134,
        family: Family::Web,
        base_cap_n: 30_000,
    },
    DatasetSpec {
        code: "WKT",
        paper_name: "wiki-Talk",
        paper_n: 2_394_385,
        paper_m: 5_021_410,
        family: Family::WikiTalk,
        base_cap_n: 40_000,
    },
    DatasetSpec {
        code: "WBB",
        paper_name: "web-BerkStan",
        paper_n: 685_231,
        paper_m: 7_600_595,
        family: Family::Web,
        base_cap_n: 25_000,
    },
    DatasetSpec {
        code: "HDR",
        paper_name: "Hudong-Related",
        paper_n: 2_452_715,
        paper_m: 18_854_882,
        family: Family::Encyclopedia,
        base_cap_n: 25_000,
    },
    DatasetSpec {
        code: "WAR",
        paper_name: "wikilink-War",
        paper_n: 2_093_450,
        paper_m: 38_631_915,
        family: Family::Encyclopedia,
        base_cap_n: 20_000,
    },
    DatasetSpec {
        code: "WSR",
        paper_name: "wikilink-SR",
        paper_n: 3_175_009,
        paper_m: 139_586_199,
        family: Family::Encyclopedia,
        base_cap_n: 15_000,
    },
];

/// Looks a dataset up by its short code (case-insensitive).
pub fn by_code(code: &str) -> Option<&'static DatasetSpec> {
    DATASETS.iter().find(|d| d.code.eq_ignore_ascii_case(code))
}

/// Generates the synthetic analog of `spec` at the given scale.
///
/// `scale` multiplies the capped base size (so `1.0` is the laptop default
/// and larger values approach the paper's sizes). The edge budget keeps the
/// real dataset's density `m / n`.
pub fn generate(spec: &DatasetSpec, scale: f64, seed: u64) -> DiGraph {
    assert!(scale > 0.0, "scale must be positive");
    let n = ((spec.base_cap_n as f64 * scale) as usize)
        .clamp(64, spec.paper_n)
        .min(4_000_000);
    let density = spec.paper_m as f64 / spec.paper_n as f64;
    let m_target = ((n as f64 * density) as usize).max(n);
    let seed = seed ^ (spec.code.bytes().fold(0u64, |h, b| h * 31 + b as u64));
    match spec.family {
        Family::P2p => gnm(n, m_target.min(n * (n - 1) / 2), seed),
        Family::Email => grow_to(
            preferential_attachment(n, k_for(n, m_target, 0.15), 0.15, seed),
            m_target,
            seed,
        ),
        Family::Web => grow_to(
            preferential_attachment(n, k_for(n, m_target, 0.05), 0.05, seed),
            m_target,
            seed,
        ),
        Family::WikiTalk => grow_to(
            preferential_attachment(n, k_for(n, m_target, 0.35), 0.35, seed),
            m_target,
            seed,
        ),
        Family::Encyclopedia => grow_to(
            preferential_attachment(n, k_for(n, m_target, 0.20), 0.20, seed),
            m_target,
            seed,
        ),
    }
}

fn k_for(n: usize, m: usize, recip: f64) -> usize {
    (((m as f64) / (n as f64 * (1.0 + recip))).round() as usize).max(1)
}

/// Tops a generated graph up with uniform noise edges to reach the target
/// density (preferential attachment under-shoots on early vertices).
fn grow_to(mut g: DiGraph, m_target: usize, seed: u64) -> DiGraph {
    let missing = m_target.saturating_sub(g.edge_count());
    if missing > 0 {
        sprinkle_random_edges(&mut g, missing, seed ^ 0xD1CE);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nine_datasets_generate_deterministically() {
        for spec in &DATASETS {
            let g1 = generate(spec, 0.05, 7);
            let g2 = generate(spec, 0.05, 7);
            assert_eq!(g1, g2, "{} must be deterministic", spec.code);
            g1.validate().unwrap();
            assert!(g1.vertex_count() >= 64);
            assert!(g1.edge_count() > 0);
        }
    }

    #[test]
    fn density_tracks_the_paper() {
        for spec in &DATASETS {
            let g = generate(spec, 0.1, 3);
            let got = g.edge_count() as f64 / g.vertex_count() as f64;
            let want = spec.paper_m as f64 / spec.paper_n as f64;
            assert!(
                got > want * 0.5 && got < want * 1.6,
                "{}: density {got:.2} vs paper {want:.2}",
                spec.code
            );
        }
    }

    #[test]
    fn lookup_by_code() {
        assert_eq!(by_code("g04").unwrap().paper_name, "p2p-Gnutella04");
        assert_eq!(by_code("WSR").unwrap().paper_m, 139_586_199);
        assert!(by_code("nope").is_none());
    }

    #[test]
    fn scale_grows_size() {
        let spec = by_code("WKT").unwrap();
        let small = generate(spec, 0.05, 1);
        let large = generate(spec, 0.2, 1);
        assert!(large.vertex_count() > 2 * small.vertex_count());
    }

    #[test]
    fn scale_never_exceeds_paper_size() {
        let spec = by_code("G04").unwrap();
        let g = generate(spec, 1000.0, 1);
        assert!(g.vertex_count() <= spec.paper_n);
    }
}
