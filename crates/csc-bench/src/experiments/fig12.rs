//! Figure 12: decremental maintenance on the G04 analog — average deletion
//! time (a) and index shrinkage (b) by edge-degree cluster.
//!
//! The paper defines the degree of an edge `(v, w)` as
//! `in_degree(v) + out_degree(w)` and splits 500 sampled edges into five
//! clusters over that range; deleting high-degree edges touches more
//! shortest paths and therefore costs more and removes more entries.

use super::ExpContext;
use crate::datasets::{by_code, generate};
use crate::measure::{fmt_duration, mean};
use crate::table::Table;
use csc_core::{CscConfig, CscIndex};
use csc_graph::{DiGraph, VertexId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Duration;

/// Per-cluster deletion measurements.
#[derive(Clone, Debug)]
pub struct Fig12Row {
    /// Cluster name (High .. Bottom).
    pub cluster: &'static str,
    /// Edges deleted in this cluster.
    pub deletions: usize,
    /// Mean deletion latency.
    pub mean_time: Duration,
    /// Mean label entries removed per deletion (Figure 12(b)).
    pub mean_entries_removed: f64,
}

/// The paper's edge-degree metric for `(v, w)`.
pub fn edge_degree(g: &DiGraph, u: VertexId, w: VertexId) -> usize {
    g.in_degree(u) + g.out_degree(w)
}

/// Splits `edges` into the five clusters by evenly dividing the
/// edge-degree range (mirroring the vertex clustering of Section VI-A).
pub fn cluster_edges(g: &DiGraph, edges: &[(u32, u32)]) -> Vec<(&'static str, Vec<(u32, u32)>)> {
    let degrees: Vec<usize> = edges
        .iter()
        .map(|&(u, w)| edge_degree(g, VertexId(u), VertexId(w)))
        .collect();
    let lo = degrees.iter().copied().min().unwrap_or(0);
    let hi = degrees.iter().copied().max().unwrap_or(0);
    let span = (hi - lo).max(1) as f64;
    let names = ["Bottom", "Low", "Mid-low", "Mid-high", "High"];
    let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); 5];
    for (&e, &d) in edges.iter().zip(&degrees) {
        let frac = (d - lo) as f64 / span;
        let b = (frac * 5.0).min(4.999) as usize;
        buckets[b].push(e);
    }
    // Present High first, like the paper's x-axis.
    names
        .iter()
        .zip(buckets)
        .rev()
        .map(|(&n, b)| (n, b))
        .collect()
}

/// Measures deletions on `g`: each sampled edge is removed (timed) and
/// re-inserted so every deletion starts from an equivalent index.
pub fn measure(g: &DiGraph, sample: usize, seed: u64) -> Vec<Fig12Row> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut edges = g.edge_vec();
    edges.shuffle(&mut rng);
    edges.truncate(sample);
    let clusters = cluster_edges(g, &edges);

    let mut index = CscIndex::build(g, CscConfig::default()).expect("build");
    clusters
        .into_iter()
        .map(|(cluster, batch)| {
            let mut times = Vec::with_capacity(batch.len());
            let mut removed = 0usize;
            for &(u, w) in &batch {
                let report = index
                    .remove_edge(VertexId(u), VertexId(w))
                    .expect("sampled edge exists");
                times.push(report.duration);
                removed += report.entries_removed;
                index
                    .insert_edge(VertexId(u), VertexId(w))
                    .expect("restore edge");
            }
            Fig12Row {
                cluster,
                deletions: batch.len(),
                mean_time: mean(&times),
                mean_entries_removed: removed as f64 / batch.len().max(1) as f64,
            }
        })
        .collect()
}

/// Runs the experiment and returns the rendered report.
pub fn run(ctx: &ExpContext) -> String {
    // The paper runs this on G04 with 500 edges.
    let spec = by_code("G04").expect("G04 exists");
    let g = generate(spec, ctx.scale, ctx.seed);
    let sample = if ctx.quick { 50 } else { 500 }.min(g.edge_count());
    let rows = measure(&g, sample, ctx.seed ^ 0x12);
    let mut table = Table::new([
        "Edge cluster",
        "deletions",
        "avg update time",
        "avg -entries",
    ]);
    for r in &rows {
        table.row([
            r.cluster.to_string(),
            r.deletions.to_string(),
            fmt_duration(r.mean_time),
            format!("{:.1}", r.mean_entries_removed),
        ]);
    }
    ctx.save_csv("fig12", &table);
    format!(
        "Figure 12 — decremental updates on {} (n={}, m={}, {} sampled edges):\n\n{}\n\
         Paper expectation: deletion cost grows with edge degree (~10x from Bottom \
         to High) and sits orders of magnitude above insertion cost.\n",
        spec.code,
        g.vertex_count(),
        g.edge_count(),
        sample,
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_clusters_partition_the_sample() {
        let g = generate(by_code("G04").unwrap(), 0.03, 2);
        let edges: Vec<_> = g.edge_vec().into_iter().take(40).collect();
        let clusters = cluster_edges(&g, &edges);
        assert_eq!(clusters.len(), 5);
        assert_eq!(clusters[0].0, "High");
        let total: usize = clusters.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn deletions_measured_and_restored() {
        let g = generate(by_code("G04").unwrap(), 0.02, 2);
        let rows = measure(&g, 10, 7);
        let total: usize = rows.iter().map(|r| r.deletions).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn report_structure() {
        let ctx = ExpContext {
            scale: 0.02,
            quick: true,
            ..ExpContext::smoke()
        };
        let report = run(&ctx);
        assert!(report.contains("Figure 12"));
        assert!(report.contains("Edge cluster"));
    }
}
