//! Extension experiment: reader latency under write overload, deadline
//! hit rates, and recovery under I/O faults.
//!
//! The resource-guard plane (see `docs/ARCHITECTURE.md`, "Resource guards
//! & overload") promises that overload is absorbed by the *write* side:
//! snapshot readers never wait on admission control. This experiment
//! measures that promise on the G04 analog:
//!
//! * **reader latency under surge** — per-query wall times for reader
//!   threads hammering lock-free snapshots, first against an idle index,
//!   then while a writer floods the engine mid-rejuvenation under each
//!   [`OverloadPolicy`]. The headline number is the `Reject` p99, which
//!   the repo's acceptance bar keeps within 2x of idle.
//! * **deadline hit rates** — repeated girth sweeps under budgets from
//!   "already expired" to "effectively unbounded", counting
//!   [`CscError::DeadlineExceeded`](csc_core::CscError)
//!   refusals per tier.
//! * **recovery timing** — [`MaintenanceEngine::recover`] on a durable
//!   churn directory; with the `fault-injection` feature on, the same
//!   recovery is also timed with transient I/O errors armed on the
//!   checkpoint and WAL read sites, so the jittered-backoff retry cost
//!   shows up as a separate line.
//!
//! Machine-readable lines land in the `CRITERION_JSON` file (the repo
//! records them in `BENCH_overload.json`); see `docs/BENCHMARKING.md`.

use super::ExpContext;
use crate::datasets::{by_code, generate};
use crate::measure::{fmt_duration, percentile, time_it};
use crate::table::Table;
use csc_core::{
    ConcurrentIndex, CscConfig, CscError, CscIndex, Deadline, FsyncPolicy, GraphUpdate,
    MaintenanceEngine, OverloadPolicy,
};
use csc_graph::VertexId;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Reader-side percentiles for one surge configuration.
pub struct SurgeStats {
    /// `"idle"`, `"block"`, `"reject"`, or `"shed-oldest"`.
    pub policy: &'static str,
    /// Queries answered across all reader threads.
    pub queries: usize,
    /// Median per-query latency.
    pub p50: Duration,
    /// 99th-percentile per-query latency.
    pub p99: Duration,
    /// Writes acknowledged during the reader window.
    pub writes_ok: usize,
    /// Writes refused with `Overloaded` during the reader window.
    pub writes_rejected: u64,
    /// Queued writes dropped by `ShedOldest` during the reader window.
    pub writes_shed: u64,
}

/// Refusal counts for one deadline budget tier.
pub struct DeadlineStats {
    /// Per-sweep budget; `None` is the unbounded control tier.
    pub budget: Option<Duration>,
    /// Girth sweeps issued.
    pub issued: usize,
    /// Sweeps refused with `DeadlineExceeded`.
    pub exceeded: usize,
}

/// One timed recovery pass.
pub struct RecoveryStats {
    /// Whether transient I/O errors were armed on the read sites.
    pub io_faults: bool,
    /// Wall time of [`MaintenanceEngine::recover`].
    pub recover_time: Duration,
    /// WAL records replayed on top of the checkpoint.
    pub records_replayed: usize,
}

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::AtomicU64;
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "csc-overload-bench-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Runs reader threads against lock-free snapshots for a fixed query
/// count each, returning every per-query latency.
fn reader_pass(index: &ConcurrentIndex, threads: usize, per_thread: usize) -> Vec<Duration> {
    let mut all = Vec::with_capacity(threads * per_thread);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(per_thread);
                    let mut x = (t as u32).wrapping_mul(2654435761).wrapping_add(1);
                    for _ in 0..per_thread {
                        x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                        let snap = index.snapshot();
                        let n = snap.original_vertex_count() as u32;
                        let v = VertexId(x % n.max(1));
                        let (_, t) = time_it(|| snap.query(v));
                        lat.push(t);
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            all.extend(h.join().expect("reader thread"));
        }
    });
    all
}

/// One surge pass: readers measure latency while a writer floods the
/// engine mid-rejuvenation under `policy` (`None` = idle baseline).
fn surge_pass(
    ctx: &ExpContext,
    base: &csc_graph::DiGraph,
    policy: Option<(&'static str, OverloadPolicy)>,
    readers: usize,
    per_thread: usize,
) -> SurgeStats {
    // Publication is amortized so the surge writer isn't rate-limited by
    // per-write snapshot refreezes — the point is to flood the admission
    // queue, not the publisher.
    let mut config = CscConfig::default().with_snapshot_every(256);
    // Watermarks sit well below the queue depth a rebuild survives:
    // queued writes co-operatively advance the rebuild, so a high
    // watermark must be reachable before the rebuild drains itself.
    if let Some((_, p)) = policy {
        config = config.with_overload_policy(p, 4, 1);
    }
    let index = ConcurrentIndex::new(CscIndex::build(base, config).expect("build"));
    // Enter Rebuilding before the measured window opens: with a tiny step
    // budget the rebuild stays in flight, the replay queue fills, and the
    // policy actually engages while the readers measure.
    if policy.is_some() {
        index.begin_rejuvenation().expect("begin");
    }
    let stop = AtomicBool::new(false);
    let mut writes_ok = 0usize;

    let latencies = std::thread::scope(|scope| {
        let writer = policy.map(|_| {
            let index = &index;
            let stop = &stop;
            scope.spawn(move || {
                // AddVertex stays valid no matter which queued ops a
                // `ShedOldest` run later drops.
                let mut ok = 0usize;
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    match index.add_vertex() {
                        Ok(_) => ok += 1,
                        Err(CscError::Overloaded { .. }) => {}
                        Err(e) => panic!("surge write failed: {e}"),
                    }
                    i += 1;
                    if i.is_multiple_of(256) {
                        let _ = index.maintain(1);
                    }
                }
                ok
            })
        });
        let lat = reader_pass(&index, readers, per_thread);
        stop.store(true, Ordering::Relaxed);
        if let Some(w) = writer {
            writes_ok = w.join().expect("writer thread");
        }
        lat
    });

    // Drain any in-flight rebuild so the health counters are final.
    while matches!(
        index.status(),
        csc_core::MaintenanceStatus::Rebuilding { .. }
    ) {
        index.maintain(usize::MAX).expect("drain");
    }
    let health = index.health();
    let _ = ctx;
    SurgeStats {
        policy: policy.map_or("idle", |(name, _)| name),
        queries: latencies.len(),
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        writes_ok,
        writes_rejected: health.writes_rejected,
        writes_shed: health.writes_shed,
    }
}

/// Counts `DeadlineExceeded` refusals for girth sweeps per budget tier.
fn deadline_pass(base: &csc_graph::DiGraph, repeats: usize) -> Vec<DeadlineStats> {
    let idx = CscIndex::build(base, CscConfig::default()).expect("build");
    let snap = idx.freeze();
    let tiers: [Option<Duration>; 3] = [
        Some(Duration::ZERO),            // refused at admission
        Some(Duration::from_micros(20)), // typically aborts mid-sweep
        None,                            // unbounded control
    ];
    tiers
        .into_iter()
        .map(|budget| {
            let mut exceeded = 0usize;
            for _ in 0..repeats {
                let deadline = budget.map_or(Deadline::NONE, Deadline::within);
                match snap.girth_deadline(deadline) {
                    Ok(_) => {}
                    Err(CscError::DeadlineExceeded) => exceeded += 1,
                    Err(e) => panic!("girth sweep failed: {e}"),
                }
            }
            DeadlineStats {
                budget,
                issued: repeats,
                exceeded,
            }
        })
        .collect()
}

/// Times recovery of a durable churn directory — clean, and (with the
/// `fault-injection` feature) with transient I/O read errors armed.
fn recovery_pass(base: &csc_graph::DiGraph, windows: &[Vec<GraphUpdate>]) -> Vec<RecoveryStats> {
    let dir = temp_dir("recovery");
    let config = CscConfig::default()
        .with_fsync(FsyncPolicy::Always)
        .with_checkpoint_every(u32::MAX);
    let mut engine = MaintenanceEngine::new(CscIndex::build(base, config).expect("build"));
    engine.attach_durability(&dir).expect("attach");
    for w in windows {
        engine.apply_batch(w).expect("windows are valid");
    }
    drop(engine); // simulated crash

    // Recovery re-anchors the directory (fresh checkpoint, rotated WAL),
    // so each timed pass gets its own pristine copy of the crash state.
    let fault_dir = temp_dir("recovery-faults");
    for entry in std::fs::read_dir(&dir).expect("read crash dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), fault_dir.join(entry.file_name())).expect("copy crash state");
    }

    let mut stats = Vec::new();
    let ((_, report), recover_time) =
        time_it(|| MaintenanceEngine::recover(&dir).expect("recovery"));
    stats.push(RecoveryStats {
        io_faults: false,
        recover_time,
        records_replayed: report.records_replayed,
    });

    #[cfg(feature = "fault-injection")]
    {
        use std::io::ErrorKind;
        csc_core::fault::reset();
        csc_core::fault::arm_io("io.checkpoint.read", 1, ErrorKind::Interrupted, 2);
        csc_core::fault::arm_io("io.wal.read", 1, ErrorKind::Interrupted, 2);
        let ((_, report), recover_time) =
            time_it(|| MaintenanceEngine::recover(&fault_dir).expect("retried recovery"));
        csc_core::fault::reset();
        stats.push(RecoveryStats {
            io_faults: true,
            recover_time,
            records_replayed: report.records_replayed,
        });
    }

    #[cfg(not(feature = "fault-injection"))]
    let _ = &fault_dir;

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&fault_dir).ok();
    stats
}

/// Runs the full sweep: idle baseline, one surge per policy, deadline
/// tiers, and the recovery timings.
pub fn measure(ctx: &ExpContext) -> (Vec<SurgeStats>, Vec<DeadlineStats>, Vec<RecoveryStats>) {
    let spec = by_code("G04").expect("G04 exists");
    let g = generate(spec, ctx.scale, ctx.seed);
    let readers = 2;
    let per_thread = if ctx.quick { 100_000 } else { 400_000 };

    let mut surges = vec![surge_pass(ctx, &g, None, readers, per_thread)];
    for (name, policy) in [
        ("block", OverloadPolicy::Block),
        ("reject", OverloadPolicy::Reject),
        ("shed-oldest", OverloadPolicy::ShedOldest),
    ] {
        surges.push(surge_pass(
            ctx,
            &g,
            Some((name, policy)),
            readers,
            per_thread,
        ));
    }

    let deadlines = deadline_pass(&g, if ctx.quick { 32 } else { 128 });

    let n = g.vertex_count() as u32;
    let windows: Vec<Vec<GraphUpdate>> = (0..8)
        .map(|i| {
            vec![
                GraphUpdate::AddVertex,
                GraphUpdate::InsertEdge(VertexId(i % n), VertexId(n + i)),
            ]
        })
        .collect();
    let recoveries = recovery_pass(&g, &windows);

    (surges, deadlines, recoveries)
}

/// Appends machine-readable lines to the `CRITERION_JSON` file — the
/// repo records these in `BENCH_overload.json`.
pub fn record_json(
    surges: &[SurgeStats],
    deadlines: &[DeadlineStats],
    recoveries: &[RecoveryStats],
    graph: &str,
) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    for s in surges {
        let _ = writeln!(
            f,
            "{{\"group\":\"overload_surge\",\"kind\":\"readers\",\"graph\":\"{graph}\",\
             \"policy\":\"{}\",\"queries\":{},\"p50_us\":{:.3},\"p99_us\":{:.3},\
             \"writes_ok\":{},\"writes_rejected\":{},\"writes_shed\":{}}}",
            s.policy,
            s.queries,
            s.p50.as_secs_f64() * 1e6,
            s.p99.as_secs_f64() * 1e6,
            s.writes_ok,
            s.writes_rejected,
            s.writes_shed,
        );
    }
    for d in deadlines {
        let _ = writeln!(
            f,
            "{{\"group\":\"overload_surge\",\"kind\":\"deadline\",\"graph\":\"{graph}\",\
             \"budget_us\":{},\"issued\":{},\"exceeded\":{}}}",
            d.budget
                .map_or("null".into(), |b| format!("{:.1}", b.as_secs_f64() * 1e6)),
            d.issued,
            d.exceeded,
        );
    }
    for r in recoveries {
        let _ = writeln!(
            f,
            "{{\"group\":\"overload_surge\",\"kind\":\"recovery\",\"graph\":\"{graph}\",\
             \"io_faults\":{},\"recover_ms\":{:.2},\"records_replayed\":{}}}",
            r.io_faults,
            r.recover_time.as_secs_f64() * 1e3,
            r.records_replayed,
        );
    }
}

/// Runs the experiment and returns the rendered report.
pub fn run(ctx: &ExpContext) -> String {
    let (surges, deadlines, recoveries) = measure(ctx);
    record_json(&surges, &deadlines, &recoveries, "G04");

    let idle_p99 = surges[0].p99;
    let mut readers = Table::new([
        "policy",
        "queries",
        "p50",
        "p99",
        "vs idle",
        "writes ok",
        "rejected",
        "shed",
    ]);
    for s in &surges {
        readers.row([
            s.policy.to_string(),
            s.queries.to_string(),
            fmt_duration(s.p50),
            fmt_duration(s.p99),
            format!(
                "{:.2}x",
                s.p99.as_secs_f64() / idle_p99.as_secs_f64().max(1e-12)
            ),
            s.writes_ok.to_string(),
            s.writes_rejected.to_string(),
            s.writes_shed.to_string(),
        ]);
    }
    ctx.save_csv("overload_surge", &readers);

    let mut dl = Table::new(["sweep budget", "issued", "exceeded"]);
    for d in &deadlines {
        dl.row([
            d.budget.map_or("unbounded".into(), fmt_duration),
            d.issued.to_string(),
            d.exceeded.to_string(),
        ]);
    }

    let mut rec = Table::new(["I/O faults", "recover", "records replayed"]);
    for r in &recoveries {
        rec.row([
            if r.io_faults { "armed" } else { "none" }.to_string(),
            fmt_duration(r.recover_time),
            r.records_replayed.to_string(),
        ]);
    }

    format!(
        "Extension — overload & resource guards (G04 analog):\n\n\
         Reader latency, idle vs write surge per overload policy:\n{}\n\
         Deadline hit rates (girth sweeps):\n{}\n\
         Recovery timing:\n{}",
        readers.render(),
        dl.render(),
        rec.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surge_sweep_runs_and_reject_bounds_reader_latency() {
        let ctx = ExpContext {
            scale: 0.02,
            quick: true,
            ..ExpContext::smoke()
        };
        let (surges, deadlines, recoveries) = measure(&ctx);
        assert_eq!(surges.len(), 4);
        assert_eq!(surges[0].policy, "idle");
        assert!(surges.iter().all(|s| s.queries > 0));
        let reject = surges.iter().find(|s| s.policy == "reject").unwrap();
        assert!(
            reject.writes_ok > 0 || reject.writes_rejected > 0,
            "the surge engaged the engine"
        );

        // Tier 0 (zero budget) is refused at admission every time; the
        // unbounded control never is.
        assert_eq!(deadlines[0].exceeded, deadlines[0].issued);
        assert_eq!(deadlines.last().unwrap().exceeded, 0);

        assert!(!recoveries.is_empty());
        assert!(recoveries[0].records_replayed > 0);
    }
}
