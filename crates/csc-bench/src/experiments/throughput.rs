//! Extension experiment: concurrent read throughput.
//!
//! Not in the paper, but implied by its motivating scenarios (continuous
//! monitoring): how many `SCCnt` queries per second does the index sustain
//! as reader threads are added, with `ConcurrentIndex` guarding a live
//! index? Queries take a shared lock, so throughput should scale close to
//! linearly until memory bandwidth saturates.

use super::ExpContext;
use crate::datasets::{by_code, generate};
use crate::table::Table;
use csc_core::{ConcurrentIndex, CscConfig, CscIndex};
use csc_graph::VertexId;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Queries/second at a given thread count.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputPoint {
    /// Reader threads.
    pub threads: usize,
    /// Total queries answered.
    pub queries: usize,
    /// Aggregate queries per second.
    pub qps: f64,
}

/// Measures aggregate query throughput at each thread count.
pub fn measure(ctx: &ExpContext, thread_counts: &[usize]) -> Vec<ThroughputPoint> {
    let spec = by_code("G30").expect("G30 exists");
    let g = generate(spec, ctx.scale, ctx.seed);
    let n = g.vertex_count() as u32;
    let index = ConcurrentIndex::new(CscIndex::build(&g, CscConfig::default()).expect("build"));
    let per_thread = if ctx.quick { 20_000 } else { 200_000 };

    thread_counts
        .iter()
        .map(|&threads| {
            let answered = AtomicUsize::new(0);
            let start = Instant::now();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let index = &index;
                    let answered = &answered;
                    scope.spawn(move || {
                        let mut local = 0usize;
                        let mut x = (t as u32).wrapping_mul(2654435761).wrapping_add(1);
                        for _ in 0..per_thread {
                            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                            let v = VertexId(x % n.max(1));
                            if index.query(v).is_some() {
                                local += 1;
                            }
                        }
                        answered.fetch_add(local, Ordering::Relaxed);
                    });
                }
            });
            let elapsed = start.elapsed().as_secs_f64();
            let queries = threads * per_thread;
            ThroughputPoint {
                threads,
                queries,
                qps: queries as f64 / elapsed.max(1e-9),
            }
        })
        .collect()
}

/// Runs the experiment and returns the rendered report.
pub fn run(ctx: &ExpContext) -> String {
    let points = measure(ctx, &[1, 2, 4, 8]);
    let mut table = Table::new(["threads", "queries", "throughput (q/s)"]);
    for p in &points {
        table.row([
            p.threads.to_string(),
            p.queries.to_string(),
            format!("{:.0}", p.qps),
        ]);
    }
    ctx.save_csv("throughput", &table);
    format!(
        "Extension — concurrent read throughput (G30 analog, ConcurrentIndex):\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_scales_and_counts() {
        let ctx = ExpContext {
            scale: 0.05,
            quick: true,
            ..ExpContext::smoke()
        };
        let points = measure(&ctx, &[1, 2]);
        assert_eq!(points.len(), 2);
        assert!(points[0].qps > 0.0);
        assert_eq!(points[1].queries, 2 * points[0].queries);
    }
}
