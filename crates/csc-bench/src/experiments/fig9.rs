//! Figure 9: index construction time (a) and index size (b), HP-SPC vs CSC.
//!
//! The paper's headline here: CSC's bipartite conversion doubles the vertex
//! count, yet couple-vertex skipping keeps both construction time and index
//! size within a few percent of HP-SPC's.

use super::ExpContext;
use crate::datasets::generate;
use crate::measure::{fmt_bytes, fmt_duration, time_it};
use crate::table::Table;
use csc_core::{CscConfig, CscIndex};
use csc_graph::OrderingStrategy;
use csc_labeling::HpSpcIndex;

/// One dataset's measurements.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// Dataset code.
    pub code: String,
    /// HP-SPC construction time.
    pub hpspc_time: std::time::Duration,
    /// CSC construction time.
    pub csc_time: std::time::Duration,
    /// HP-SPC index bytes (8 per entry).
    pub hpspc_bytes: usize,
    /// CSC index bytes after the Section IV-E couple reduction — this is
    /// the size the paper reports (each couple's shifted label copy is
    /// stored once), and what makes Figure 9(b) come out near parity.
    pub csc_bytes: usize,
    /// CSC index bytes without the reduction (both couple copies held in
    /// memory for dynamic maintenance).
    pub csc_unreduced_bytes: usize,
}

/// Runs the measurements, returning rows for programmatic use.
pub fn measure(ctx: &ExpContext) -> Vec<Fig9Row> {
    let mut rows = Vec::new();
    for spec in &ctx.datasets {
        let g = generate(spec, ctx.scale, ctx.seed);
        let (hp, hp_t) =
            time_it(|| HpSpcIndex::build(&g, OrderingStrategy::Degree).expect("hp-spc build"));
        let (csc, csc_t) =
            time_it(|| CscIndex::build(&g, CscConfig::default()).expect("csc build"));
        let reduction = csc_core::reduction::analyze(&csc);
        rows.push(Fig9Row {
            code: spec.code.to_string(),
            hpspc_time: hp_t,
            csc_time: csc_t,
            hpspc_bytes: hp.total_entries() * 8,
            csc_bytes: reduction.reduced_entries * 8,
            csc_unreduced_bytes: csc.index_bytes(),
        });
    }
    rows
}

/// Runs the experiment and returns the rendered report.
pub fn run(ctx: &ExpContext) -> String {
    let rows = measure(ctx);
    let mut table = Table::new([
        "Graph",
        "HP-SPC time",
        "CSC time",
        "time ratio",
        "HP-SPC size",
        "CSC size (reduced)",
        "size ratio",
        "CSC unreduced",
    ]);
    for r in &rows {
        let t_ratio = r.csc_time.as_secs_f64() / r.hpspc_time.as_secs_f64().max(1e-9);
        let s_ratio = r.csc_bytes as f64 / r.hpspc_bytes.max(1) as f64;
        table.row([
            r.code.clone(),
            fmt_duration(r.hpspc_time),
            fmt_duration(r.csc_time),
            format!("{t_ratio:.2}x"),
            fmt_bytes(r.hpspc_bytes),
            fmt_bytes(r.csc_bytes),
            format!("{s_ratio:.2}x"),
            fmt_bytes(r.csc_unreduced_bytes),
        ]);
    }
    ctx.save_csv("fig9", &table);
    format!(
        "Figure 9 — index construction time and size (HP-SPC vs CSC):\n\n{}\n\
         Paper expectation: ratios stay near 1 (CSC within ~8% on time, ~4% on \
         size); the size parity relies on the Section IV-E couple reduction, \
         whose unreduced counterpart is shown for reference.\n",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_both_builders() {
        let ctx = ExpContext::smoke();
        let rows = measure(&ctx);
        assert_eq!(rows.len(), ctx.datasets.len());
        for r in &rows {
            assert!(r.hpspc_bytes > 0);
            assert!(r.csc_bytes > 0);
            // CSC and HP-SPC index sizes stay in the same ballpark — the
            // paper's central claim for Figure 9(b). Allow generous slack
            // at smoke scale.
            let ratio = r.csc_bytes as f64 / r.hpspc_bytes as f64;
            assert!(
                (0.4..3.0).contains(&ratio),
                "{}: unexpected size ratio {ratio:.2}",
                r.code
            );
        }
        let report = run(&ctx);
        assert!(report.contains("Figure 9"));
    }
}
