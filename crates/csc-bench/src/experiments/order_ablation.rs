//! Extension experiment: what does coverage-sampled ordering buy?
//!
//! The [`ablation`](super::ablation) experiment shows that *bad* orders
//! (identity, random) inflate the index by large factors. This one asks
//! the sharper question: among the *good* orders — degree, degree
//! product, and the coverage-sampled order introduced with
//! [`OrderingStrategy::CoverageSampling`] — which produces the smallest
//! labels, and what does the sampling pass cost at build time?
//!
//! Every later phase pays for the ordering decision: label entries set
//! the memory footprint, and query latency scales with the label rows a
//! lookup scans. So the comparison reports, per strategy and graph:
//!
//! * **entries** — total label entries of a fresh build;
//! * **build** — wall time of the build (sampling included);
//! * **query p50/p99** — point-query percentiles on the frozen snapshot,
//!   measured with the same sampling discipline as `churn_drift`.
//!
//! Graphs: the G04 analog (the paper's smallest real dataset, run at
//! full size) and a `bridged_communities` synthetic, whose community
//! bridges are exactly the hubs a degree order under-ranks — the
//! structure coverage sampling is built to find.
//!
//! Machine-readable results land in the `CRITERION_JSON` file (the repo
//! records them in `BENCH_order.json`, one line per strategy × graph);
//! `order_probe` is the standalone driver.

use super::churn_drift::query_latency;
use super::ExpContext;
use crate::datasets::{by_code, generate};
use crate::measure::{fmt_duration, time_it};
use crate::table::Table;
use csc_core::{CscConfig, CscIndex};
use csc_graph::generators::bridged_communities;
use csc_graph::{DiGraph, OrderingStrategy, DEFAULT_SAMPLES_PER_LOG_N};
use std::io::Write as _;
use std::time::Duration;

/// One strategy's measurements on one graph.
#[derive(Clone, Debug)]
pub struct OrderRow {
    /// Graph label (`"G04"` or `"BRC"`).
    pub graph: &'static str,
    /// Strategy under test.
    pub order: OrderingStrategy,
    /// Total label entries after a fresh build.
    pub entries: usize,
    /// Construction time, sampling pass included.
    pub build_time: Duration,
    /// Median point-query latency, microseconds.
    pub q_p50_us: f64,
    /// p99 point-query latency, microseconds.
    pub q_p99_us: f64,
}

/// Sampling budget for the dense coverage row: at probe scales this
/// saturates the root permutation (every vertex roots a tree in each
/// direction), showing the ceiling of the estimator; the default-budget
/// row shows what the recommended cheap setting retains of it.
pub const DENSE_SAMPLES_PER_LOG_N: u32 = 256;

/// The strategies under comparison, in report order. Degree is first so
/// it anchors the "vs degree" ratio column.
pub fn strategies(seed: u64) -> [OrderingStrategy; 4] {
    [
        OrderingStrategy::Degree,
        OrderingStrategy::DegreeProduct,
        OrderingStrategy::CoverageSampling {
            seed,
            samples_per_log_n: DEFAULT_SAMPLES_PER_LOG_N,
        },
        OrderingStrategy::CoverageSampling {
            seed,
            samples_per_log_n: DENSE_SAMPLES_PER_LOG_N,
        },
    ]
}

fn measure_graph(
    graph: &'static str,
    g: &DiGraph,
    ctx: &ExpContext,
    samples: usize,
) -> Vec<OrderRow> {
    strategies(ctx.seed)
        .into_iter()
        .map(|order| {
            let (index, build_time) = time_it(|| {
                CscIndex::build(g, CscConfig::default().with_order(order)).expect("build")
            });
            let snap = index.freeze();
            let entries = snap.health().total_entries;
            let (q_p50_us, q_p99_us) = query_latency(&snap, samples, ctx.seed);
            OrderRow {
                graph,
                order,
                entries,
                build_time,
                q_p50_us,
                q_p99_us,
            }
        })
        .collect()
}

/// Builds each graph under every strategy and measures.
pub fn measure(ctx: &ExpContext) -> Vec<OrderRow> {
    let samples = if ctx.quick { 512 } else { 4096 };
    let mut rows = Vec::new();

    let spec = by_code("G04").expect("G04 exists");
    let g04 = generate(spec, ctx.scale, ctx.seed);
    rows.extend(measure_graph("G04", &g04, ctx, samples));

    // Four communities joined by a bridge ring: the bridge endpoints
    // cover most inter-community shortest paths but have unremarkable
    // degrees, so degree-based orders bury them mid-ranking.
    let size = ((400.0 * ctx.scale) as usize).max(8);
    let brc = bridged_communities(4, size, size * 3, ctx.seed);
    rows.extend(measure_graph("BRC", &brc, ctx, samples));

    rows
}

/// Appends machine-readable lines to the `CRITERION_JSON` file (the repo
/// records these in `BENCH_order.json`).
pub fn record_json(rows: &[OrderRow]) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    let threads = csc_core::ParallelismConfig::default().width();
    for r in rows {
        let (name, samples_per_log_n) = match r.order {
            OrderingStrategy::CoverageSampling {
                samples_per_log_n, ..
            } => ("coverage_sampling", samples_per_log_n),
            OrderingStrategy::Degree => ("degree", 0),
            OrderingStrategy::DegreeProduct => ("degree_product", 0),
            _ => ("other", 0),
        };
        let _ = writeln!(
            f,
            "{{\"group\":\"order_ablation\",\"graph\":\"{}\",\"threads\":{threads},\
             \"order\":\"{name}\",\"samples_per_log_n\":{samples_per_log_n},\
             \"entries\":{},\"build_ms\":{:.2},\
             \"query_p50_us\":{:.2},\"query_p99_us\":{:.2}}}",
            r.graph,
            r.entries,
            r.build_time.as_secs_f64() * 1e3,
            r.q_p50_us,
            r.q_p99_us,
        );
    }
}

/// Runs the experiment and returns the rendered report.
pub fn run(ctx: &ExpContext) -> String {
    let rows = measure(ctx);
    record_json(&rows);
    let mut table = Table::new([
        "graph",
        "ordering",
        "entries",
        "vs degree",
        "build",
        "query p50",
        "query p99",
    ]);
    let mut degree_entries = 0usize;
    for r in &rows {
        if matches!(r.order, OrderingStrategy::Degree) {
            degree_entries = r.entries;
        }
        let name = match r.order {
            OrderingStrategy::CoverageSampling {
                samples_per_log_n, ..
            } => format!("coverage@{samples_per_log_n}"),
            other => format!("{other:?}").to_ascii_lowercase(),
        };
        table.row([
            r.graph.to_string(),
            name,
            r.entries.to_string(),
            format!("{:.3}x", r.entries as f64 / degree_entries.max(1) as f64),
            fmt_duration(r.build_time),
            format!("{:.2} us", r.q_p50_us),
            format!("{:.2} us", r.q_p99_us),
        ]);
    }
    ctx.save_csv("order_ablation", &table);
    format!(
        "Extension — coverage-sampled vs degree-based ordering:\n\n{}\n\
         Expectation: coverage sampling trades a sampling pass at build time \
         for the smallest labels, and the entry savings carry to query latency; \
         the gap widens on BRC, whose bridge hubs a degree order cannot see.\n",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_ctx() -> ExpContext {
        ExpContext {
            scale: 0.03,
            ..ExpContext::smoke()
        }
    }

    #[test]
    fn coverage_is_never_larger_than_degree() {
        let rows = measure(&smoke_ctx());
        assert_eq!(rows.len(), 8, "4 strategies x 2 graphs");
        for graph in ["G04", "BRC"] {
            let of = |pred: fn(&OrderingStrategy) -> bool| {
                rows.iter()
                    .find(|r| r.graph == graph && pred(&r.order))
                    .unwrap()
                    .entries
            };
            let degree = of(|o| matches!(o, OrderingStrategy::Degree));
            let coverage = of(|o| matches!(o, OrderingStrategy::CoverageSampling { .. }));
            let dense = of(|o| {
                matches!(o, OrderingStrategy::CoverageSampling { samples_per_log_n, .. }
                    if *samples_per_log_n == DENSE_SAMPLES_PER_LOG_N)
            });
            assert!(
                coverage <= degree,
                "{graph}: coverage ({coverage}) must not exceed degree ({degree})"
            );
            // The greedy is a heuristic, so a sparser sample can luckily
            // edge out the saturated one — but never by much.
            assert!(
                dense as f64 <= coverage as f64 * 1.02,
                "{graph}: a denser sample ({dense}) must not lose to the default ({coverage})"
            );
        }
    }

    #[test]
    fn report_structure() {
        let report = run(&smoke_ctx());
        assert!(report.contains("coverage"));
        assert!(report.contains("G04"));
        assert!(report.contains("BRC"));
    }
}
