//! Figure 11: incremental maintenance — average update time (a) and index
//! growth (b), minimality vs redundancy.
//!
//! Protocol (Section VI-A): remove a batch of random edges from the graph,
//! build the index on the reduced graph, then insert them back one at a
//! time under each update strategy, measuring per-insertion latency and
//! label-entry growth.

use super::ExpContext;
use crate::datasets::generate;
use crate::measure::{fmt_duration, mean};
use crate::table::Table;
use csc_core::{CscConfig, CscIndex, UpdateStrategy};
use csc_graph::{DiGraph, VertexId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Duration;

/// Measurements for one dataset under one strategy.
#[derive(Clone, Debug)]
pub struct Fig11Row {
    /// Dataset code.
    pub code: String,
    /// Update strategy measured.
    pub strategy: UpdateStrategy,
    /// Edges inserted.
    pub updates: usize,
    /// Mean per-insertion latency.
    pub mean_time: Duration,
    /// Mean label entries added per insertion (Figure 11(b)).
    pub mean_entries_added: f64,
}

/// Removes `count` random edges, returning the reduced graph and the batch.
pub fn hold_out_edges(g: &DiGraph, count: usize, seed: u64) -> (DiGraph, Vec<(u32, u32)>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut edges = g.edge_vec();
    edges.shuffle(&mut rng);
    edges.truncate(count);
    let mut reduced = g.clone();
    for &(u, v) in &edges {
        reduced
            .try_remove_edge(VertexId(u), VertexId(v))
            .expect("edge came from the graph");
    }
    (reduced, edges)
}

/// Measures one dataset under one strategy.
pub fn measure_dataset(
    code: &str,
    g: &DiGraph,
    batch: usize,
    strategy: UpdateStrategy,
    seed: u64,
) -> Fig11Row {
    let (reduced, edges) = hold_out_edges(g, batch, seed);
    let config = CscConfig::default().with_update_strategy(strategy);
    let mut index = CscIndex::build(&reduced, config).expect("build reduced index");
    let mut times = Vec::with_capacity(edges.len());
    let mut added = 0usize;
    for &(u, v) in &edges {
        let report = index
            .insert_edge(VertexId(u), VertexId(v))
            .expect("insertion succeeds");
        times.push(report.duration);
        added += report.entries_inserted;
    }
    Fig11Row {
        code: code.to_string(),
        strategy,
        updates: edges.len(),
        mean_time: mean(&times),
        mean_entries_added: added as f64 / edges.len().max(1) as f64,
    }
}

/// Runs the experiment and returns the rendered report.
pub fn run(ctx: &ExpContext) -> String {
    // The paper removes and re-inserts 200-500 random edges per graph.
    let mut table = Table::new([
        "Graph",
        "updates",
        "Minimality time",
        "Redundancy time",
        "slowdown",
        "Min +entries",
        "Red +entries",
    ]);
    for spec in &ctx.datasets {
        let g = generate(spec, ctx.scale, ctx.seed);
        let batch = if ctx.quick { 50 } else { 200 }
            .min(g.edge_count() / 4)
            .max(1);
        let red = measure_dataset(
            spec.code,
            &g,
            batch,
            UpdateStrategy::Redundancy,
            ctx.seed ^ 0x11,
        );
        // The paper omits minimality on its two largest graphs (too slow);
        // we mirror that by skipping it in quick mode on the big analogs.
        let min = if ctx.quick && spec.paper_m > 20_000_000 {
            None
        } else {
            Some(measure_dataset(
                spec.code,
                &g,
                batch,
                UpdateStrategy::Minimality,
                ctx.seed ^ 0x11,
            ))
        };
        let (min_time, min_entries, slowdown) = match &min {
            Some(m) => (
                fmt_duration(m.mean_time),
                format!("{:.1}", m.mean_entries_added),
                format!(
                    "{:.0}x",
                    m.mean_time.as_secs_f64() / red.mean_time.as_secs_f64().max(1e-9)
                ),
            ),
            None => ("(skipped)".into(), "-".into(), "-".into()),
        };
        table.row([
            spec.code.to_string(),
            red.updates.to_string(),
            min_time,
            fmt_duration(red.mean_time),
            slowdown,
            min_entries,
            format!("{:.1}", red.mean_entries_added),
        ]);
    }
    ctx.save_csv("fig11", &table);
    format!(
        "Figure 11 — incremental update time and index growth:\n\n{}\n\
         Paper expectation: minimality is 58x-678x slower than redundancy for a \
         nearly identical index growth, which is why redundancy is the default.\n",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::by_code;

    #[test]
    fn hold_out_then_reinsert_preserves_graph() {
        let g = generate(by_code("G04").unwrap(), 0.03, 5);
        let (mut reduced, edges) = hold_out_edges(&g, 20, 9);
        assert_eq!(reduced.edge_count(), g.edge_count() - 20);
        for (u, v) in edges {
            reduced.try_add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        assert_eq!(reduced, g);
    }

    #[test]
    fn both_strategies_measured() {
        let g = generate(by_code("G04").unwrap(), 0.03, 5);
        let red = measure_dataset("G04", &g, 10, UpdateStrategy::Redundancy, 3);
        let min = measure_dataset("G04", &g, 10, UpdateStrategy::Minimality, 3);
        assert_eq!(red.updates, 10);
        assert_eq!(min.updates, 10);
        assert!(red.mean_time > Duration::ZERO);
        assert!(min.mean_time > Duration::ZERO);
    }

    #[test]
    fn report_structure() {
        let mut ctx = ExpContext::smoke();
        ctx.datasets.truncate(1);
        let report = run(&ctx);
        assert!(report.contains("Figure 11"));
        assert!(report.contains("Redundancy time"));
    }
}
