//! Figure 13 / case study: screening suspicious accounts in a transaction
//! network by shortest-cycle counting.
//!
//! The paper's MAHINDAS economic network is proprietary-ish (network
//! repository export); we substitute a seeded laundering network with
//! *planted* criminal rings (DESIGN.md §4), which upgrades the case study
//! from an anecdote to a measurable retrieval task: rank accounts by their
//! shortest-cycle profile and check that the planted criminals surface.

use super::ExpContext;
use crate::table::Table;
use csc_core::{CscConfig, CscIndex};
use csc_graph::generators::{laundering_network, LaunderingParams};
use csc_graph::VertexId;

/// The screening outcome.
#[derive(Clone, Debug)]
pub struct ScreeningResult {
    /// `(vertex, cycle length, cycle count, planted?)`, best suspects first.
    pub ranked: Vec<(VertexId, u32, u64, bool)>,
    /// Planted criminals recovered within the top-`k` (k = number planted).
    pub hits_at_k: usize,
    /// Number of planted criminals.
    pub planted: usize,
}

/// Ranks accounts by laundering suspicion: among accounts whose shortest
/// cycle is *short* (`<= max_ring_len` — rings are short by construction,
/// Figure 1), more cycles is more suspicious; shorter length breaks ties.
/// Long-cycle accounts are excluded: shortest-path counts multiply
/// combinatorially with length, so a raw count comparison across different
/// lengths would surface benign hubs instead of rings.
pub fn screen(index: &CscIndex, max_ring_len: u32) -> Vec<(VertexId, u32, u64)> {
    let mut scored: Vec<(VertexId, u32, u64)> = (0..index.original_vertex_count() as u32)
        .filter_map(|v| {
            let v = VertexId(v);
            index.query(v).map(|c| (v, c.length, c.count))
        })
        .filter(|&(_, len, _)| len <= max_ring_len)
        .collect();
    scored.sort_by(|a, b| b.2.cmp(&a.2).then(a.1.cmp(&b.1)).then(a.0.cmp(&b.0)));
    scored
}

/// Runs the full screening experiment.
pub fn measure(ctx: &ExpContext) -> ScreeningResult {
    let accounts = ((2_000.0 * ctx.scale) as usize).clamp(400, 200_000);
    let params = LaunderingParams {
        accounts,
        background_edges: accounts * 3,
        criminals: 5,
        cycles_per_criminal: 8,
        cycle_len: 4,
    };
    let net = laundering_network(params, ctx.seed ^ 0x13);
    let index = CscIndex::build(&net.graph, CscConfig::default()).expect("build");
    let ranked_raw = screen(&index, net.cycle_len);
    let planted: std::collections::HashSet<u32> = net.criminals.iter().map(|v| v.0).collect();
    let ranked: Vec<_> = ranked_raw
        .into_iter()
        .map(|(v, len, count)| (v, len, count, planted.contains(&v.0)))
        .collect();
    let k = net.criminals.len();
    let hits_at_k = ranked.iter().take(k).filter(|r| r.3).count();
    ScreeningResult {
        ranked,
        hits_at_k,
        planted: k,
    }
}

/// Runs the experiment and returns the rendered report.
pub fn run(ctx: &ExpContext) -> String {
    let result = measure(ctx);
    let mut table = Table::new(["rank", "account", "cycle len", "cycle count", "planted?"]);
    for (i, (v, len, count, planted)) in result.ranked.iter().take(10).enumerate() {
        table.row([
            (i + 1).to_string(),
            v.to_string(),
            len.to_string(),
            count.to_string(),
            if *planted { "YES" } else { "" }.to_string(),
        ]);
    }
    ctx.save_csv("case_study", &table);
    format!(
        "Case study (Figure 13 analog) — laundering-ring screening:\n\n{}\n\
         Planted criminals recovered in top-{}: {}/{}\n\
         Paper expectation: accounts with many short cycles are exactly the \
         suspicious ones (vertices 281/241/169/1159/888 in MAHINDAS).\n",
        table.render(),
        result.planted,
        result.hits_at_k,
        result.planted
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screening_recovers_planted_criminals() {
        let ctx = ExpContext {
            scale: 0.5,
            ..ExpContext::smoke()
        };
        let result = measure(&ctx);
        assert_eq!(result.planted, 5);
        // Planted rings stack 8 shortest cycles on each criminal, far above
        // background noise; expect at least 4 of 5 in the top 5.
        assert!(
            result.hits_at_k >= 4,
            "screening found only {}/5 planted criminals",
            result.hits_at_k
        );
    }

    #[test]
    fn report_structure() {
        let ctx = ExpContext {
            scale: 0.3,
            ..ExpContext::smoke()
        };
        let report = run(&ctx);
        assert!(report.contains("Case study"));
        assert!(report.contains("cycle count"));
    }
}
