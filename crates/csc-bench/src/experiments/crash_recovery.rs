//! Extension experiment: crash-recovery cost and the checkpoint-cadence
//! tradeoff.
//!
//! The durability plane (see `docs/ARCHITECTURE.md`) gives the serving
//! system two knobs: every update window is WAL-logged before it
//! applies, and every `checkpoint_every` windows the index is
//! checkpointed and the log rotated. This experiment quantifies both
//! sides of that cadence on the G04 analog:
//!
//! * **write-side overhead** — wall time of the same churn replay with
//!   checkpoints taken frequently, rarely, or never (WAL-only);
//! * **recovery cost** — after a simulated crash (the engine is dropped
//!   with no clean shutdown), wall time of
//!   [`MaintenanceEngine::recover`]: loading the newest checkpoint and
//!   replaying the WAL suffix, whose length is exactly what the cadence
//!   left behind;
//! * **the yardstick** — a cold `CscIndex::build` on the final graph,
//!   the restart cost durability exists to avoid.
//!
//! Machine-readable lines land in the `CRITERION_JSON` file (the repo
//! records them in `BENCH_recover.json`); see `docs/BENCHMARKING.md` for
//! the field reference.

use super::churn_drift::build_churn_trace;
use super::ExpContext;
use crate::datasets::{by_code, generate};
use crate::measure::{fmt_bytes, fmt_duration, time_it};
use crate::table::Table;
use csc_core::{CscConfig, CscIndex, FsyncPolicy, GraphUpdate, MaintenanceEngine};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// Updates per logged window (one `apply_batch` call = one WAL record).
const WINDOW_SIZE: usize = 8;

/// One cadence point of the sweep.
pub struct CadenceStats {
    /// `checkpoint_every` (windows); `u32::MAX` means "never after the
    /// initial one" — the whole run stays in the WAL.
    pub cadence: u32,
    /// Update windows applied (and WAL-logged) before the crash.
    pub windows: usize,
    /// Wall time of the whole durable replay, WAL appends and cadence
    /// checkpoints included.
    pub run_time: Duration,
    /// WAL bytes on disk at the crash.
    pub wal_bytes: u64,
    /// Newest checkpoint's size at the crash.
    pub checkpoint_bytes: u64,
    /// WAL records recovery replayed on top of the checkpoint.
    pub records_replayed: usize,
    /// Individual updates inside those records.
    pub updates_replayed: usize,
    /// Wall time of [`MaintenanceEngine::recover`].
    pub recover_time: Duration,
}

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "csc-recover-bench-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Runs the cadence sweep. Returns the per-cadence stats and the
/// cold-rebuild yardstick on the final graph.
pub fn measure(ctx: &ExpContext, cadences: &[u32]) -> (Vec<CadenceStats>, Duration) {
    let spec = by_code("G04").expect("G04 exists");
    let g = generate(spec, ctx.scale, ctx.seed);
    let ops = if ctx.quick { 96 } else { 256 };
    let (reduced, trace) = build_churn_trace(&g, 8, ops, ctx.seed);
    let windows: Vec<&[GraphUpdate]> = trace.chunks(WINDOW_SIZE).collect();

    let mut stats = Vec::with_capacity(cadences.len());
    let mut final_graph = None;
    for &cadence in cadences {
        let dir = temp_dir(&format!("cadence-{cadence}"));
        let config = CscConfig::default()
            .with_fsync(FsyncPolicy::Always)
            .with_checkpoint_every(cadence);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&reduced, config).expect("build"));
        engine.attach_durability(&dir).expect("attach");
        let (_, run_time) = time_it(|| {
            for w in &windows {
                engine.apply_batch(w).expect("trace windows are valid");
            }
        });
        final_graph.get_or_insert_with(|| engine.index().original_graph());
        drop(engine); // the crash: no clean shutdown, no final checkpoint

        let wal_bytes = std::fs::metadata(dir.join(csc_core::wal::WAL_FILE)).map_or(0, |m| m.len());
        let checkpoint_bytes = csc_core::wal::list_checkpoints(&dir)
            .first()
            .and_then(|(_, p)| std::fs::metadata(p).ok())
            .map_or(0, |m| m.len());

        let ((recovered, report), recover_time) =
            time_it(|| MaintenanceEngine::recover(&dir).expect("recovery"));
        assert_eq!(
            recovered.index().original_graph(),
            *final_graph.as_ref().expect("set above"),
            "recovered state diverges at cadence {cadence}"
        );
        stats.push(CadenceStats {
            cadence,
            windows: windows.len(),
            run_time,
            wal_bytes,
            checkpoint_bytes,
            records_replayed: report.records_replayed,
            updates_replayed: report.updates_replayed,
            recover_time,
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    let final_graph = final_graph.expect("at least one cadence");
    let config = CscConfig::default();
    let (_, rebuild_time) = time_it(|| CscIndex::build(&final_graph, config).expect("build"));
    (stats, rebuild_time)
}

fn fmt_cadence(c: u32) -> String {
    if c == u32::MAX {
        "never".into()
    } else {
        c.to_string()
    }
}

/// Appends one machine-readable line per cadence to the `CRITERION_JSON`
/// file — the repo records these in `BENCH_recover.json`.
pub fn record_json(stats: &[CadenceStats], rebuild: Duration, graph: &str) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    for s in stats {
        let _ = writeln!(
            f,
            "{{\"group\":\"crash_recovery\",\"graph\":\"{graph}\",\"cadence\":\"{}\",\
             \"windows\":{},\"run_ms\":{:.2},\"wal_bytes\":{},\"checkpoint_bytes\":{},\
             \"records_replayed\":{},\"updates_replayed\":{},\"recover_ms\":{:.2},\
             \"cold_rebuild_ms\":{:.2}}}",
            fmt_cadence(s.cadence),
            s.windows,
            s.run_time.as_secs_f64() * 1e3,
            s.wal_bytes,
            s.checkpoint_bytes,
            s.records_replayed,
            s.updates_replayed,
            s.recover_time.as_secs_f64() * 1e3,
            rebuild.as_secs_f64() * 1e3,
        );
    }
}

/// Runs the experiment and returns the rendered report.
pub fn run(ctx: &ExpContext) -> String {
    let cadences: &[u32] = if ctx.quick {
        &[4, u32::MAX]
    } else {
        &[4, 16, 64, u32::MAX]
    };
    let (stats, rebuild) = measure(ctx, cadences);
    record_json(&stats, rebuild, "G04");
    let mut table = Table::new([
        "cadence",
        "windows",
        "run time",
        "WAL size",
        "ckpt size",
        "replayed",
        "recover",
    ]);
    for s in &stats {
        table.row([
            fmt_cadence(s.cadence),
            s.windows.to_string(),
            fmt_duration(s.run_time),
            fmt_bytes(s.wal_bytes as usize),
            fmt_bytes(s.checkpoint_bytes as usize),
            format!("{} rec / {} ops", s.records_replayed, s.updates_replayed),
            fmt_duration(s.recover_time),
        ]);
    }
    ctx.save_csv("crash_recovery", &table);
    format!(
        "Extension — crash recovery vs checkpoint cadence (G04 analog, churn \
         windows of {WINDOW_SIZE} updates, fsync=always, crash after the last \
         window):\n\n{}\n\ncold rebuild of the final graph (the restart cost \
         durability avoids): {}",
        table.render(),
        fmt_duration(rebuild),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_recovers_identically_at_every_cadence() {
        // measure() itself asserts the recovered graph matches the
        // pre-crash one at every cadence; run it small.
        let ctx = ExpContext {
            scale: 0.02,
            quick: true,
            ..Default::default()
        };
        let (stats, rebuild) = measure(&ctx, &[2, u32::MAX]);
        assert_eq!(stats.len(), 2);
        assert!(rebuild > Duration::ZERO);
        // Tight cadence: the WAL suffix is at most 2 windows long.
        assert!(stats[0].records_replayed <= 2);
        // No cadence: every window is still in the log at the crash.
        assert_eq!(stats[1].records_replayed, stats[1].windows);
        assert!(stats.iter().all(|s| s.checkpoint_bytes > 0));
    }
}
