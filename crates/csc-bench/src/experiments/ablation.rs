//! Ablation (extension): how much does the vertex-ordering strategy
//! matter?
//!
//! The cover constraint admits *any* total order; correctness is
//! order-independent (property-tested), but index size, construction
//! time, and query latency are not. The paper fixes the degree order
//! (Example 4); this experiment quantifies why that is the right default
//! by building the same graph under each strategy.

use super::ExpContext;
use crate::datasets::{by_code, generate};
use crate::measure::{fmt_bytes, fmt_duration, mean, time_it};
use crate::table::Table;
use csc_core::{CscConfig, CscIndex};
use csc_graph::{OrderingStrategy, VertexId};

/// One ordering's measurements.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Strategy under test.
    pub order: OrderingStrategy,
    /// Construction time.
    pub build_time: std::time::Duration,
    /// Index bytes (unreduced).
    pub bytes: usize,
    /// Mean query latency over a vertex sample.
    pub query: std::time::Duration,
}

/// Builds the G30 analog under every ordering strategy and measures.
pub fn measure(ctx: &ExpContext) -> Vec<AblationRow> {
    let spec = by_code("G30").expect("G30 exists");
    let g = generate(spec, ctx.scale, ctx.seed);
    let sample: Vec<VertexId> = g.vertices().step_by(7).take(500).collect();
    [
        OrderingStrategy::Degree,
        OrderingStrategy::DegreeProduct,
        OrderingStrategy::Identity,
        OrderingStrategy::Random(ctx.seed),
    ]
    .into_iter()
    .map(|order| {
        let (index, build_time) =
            time_it(|| CscIndex::build(&g, CscConfig::default().with_order(order)).expect("build"));
        let times: Vec<_> = sample
            .iter()
            .map(|&v| time_it(|| index.query(v)).1)
            .collect();
        AblationRow {
            order,
            build_time,
            bytes: index.index_bytes(),
            query: mean(&times),
        }
    })
    .collect()
}

/// Runs the experiment and returns the rendered report.
pub fn run(ctx: &ExpContext) -> String {
    let rows = measure(ctx);
    let baseline = rows[0].bytes as f64;
    let mut table = Table::new(["ordering", "build time", "index size", "vs degree", "query"]);
    for r in &rows {
        table.row([
            format!("{:?}", r.order),
            fmt_duration(r.build_time),
            fmt_bytes(r.bytes),
            format!("{:.2}x", r.bytes as f64 / baseline),
            fmt_duration(r.query),
        ]);
    }
    ctx.save_csv("ablation_ordering", &table);
    format!(
        "Ablation (extension) — vertex-ordering strategies on the G30 analog:\n\n{}\n\
         Expectation: the degree order dominates; identity/random orders inflate \
         the index by large factors, which is why the paper (Example 4) and this \
         library default to it.\n",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_order_is_never_worse_than_random() {
        let ctx = ExpContext {
            scale: 0.03,
            ..ExpContext::smoke()
        };
        let rows = measure(&ctx);
        assert_eq!(rows.len(), 4);
        let degree = rows[0].bytes;
        let random = rows[3].bytes;
        assert!(
            degree <= random,
            "degree order ({degree} B) should beat random ({random} B)"
        );
    }

    #[test]
    fn report_structure() {
        let ctx = ExpContext {
            scale: 0.03,
            ..ExpContext::smoke()
        };
        let report = run(&ctx);
        assert!(report.contains("Ablation"));
        assert!(report.contains("Degree"));
    }
}
