//! Figure 10: query time by min-in-out-degree cluster — BFS vs HP-SPC vs
//! CSC, one sub-figure per dataset.
//!
//! The paper's headline: HP-SPC degrades with query-vertex degree (it runs
//! one `SPCnt` per neighbor on the cheaper side) while CSC stays flat at
//! one label intersection, winning by up to two orders of magnitude on the
//! High cluster; BFS sits orders of magnitude above both throughout.

use super::ExpContext;
use crate::datasets::generate;
use crate::measure::{fmt_duration, mean, time_it};
use crate::table::Table;
use csc_core::{CscConfig, CscIndex};
use csc_graph::properties::{degree_clusters, DegreeCluster};
use csc_graph::{DiGraph, OrderingStrategy, VertexId};
use csc_labeling::{scc_baseline, BfsCycleEngine, HpSpcIndex};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Duration;

/// Per-cluster mean query times for one dataset.
#[derive(Clone, Debug)]
pub struct ClusterTiming {
    /// The degree cluster.
    pub cluster: DegreeCluster,
    /// Number of query vertices measured (label-based algorithms).
    pub queries: usize,
    /// Mean BFS-CYCLE time.
    pub bfs: Duration,
    /// Mean HP-SPC + neighborhood time.
    pub hpspc: Duration,
    /// Mean CSC time.
    pub csc: Duration,
}

/// Samples up to `limit` query vertices per cluster (the paper queries all
/// vertices, or at least 50 000, split into the five clusters).
fn sample_clusters(g: &DiGraph, limit: usize, seed: u64) -> Vec<(DegreeCluster, Vec<VertexId>)> {
    let clusters = degree_clusters(g);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    DegreeCluster::ALL
        .iter()
        .map(|&c| {
            let mut members: Vec<VertexId> =
                g.vertices().filter(|v| clusters[v.index()] == c).collect();
            members.shuffle(&mut rng);
            members.truncate(limit);
            (c, members)
        })
        .collect()
}

/// Measures one dataset.
pub fn measure_dataset(g: &DiGraph, ctx: &ExpContext) -> Vec<ClusterTiming> {
    let hp = HpSpcIndex::build(g, OrderingStrategy::Degree).expect("hp-spc build");
    let csc = CscIndex::build(g, CscConfig::default()).expect("csc build");
    let mut bfs_engine = BfsCycleEngine::new(g.vertex_count());

    let per_cluster = if ctx.quick { 50 } else { 400 };
    let bfs_per_cluster = if ctx.quick { 5 } else { 25 };
    let samples = sample_clusters(g, per_cluster, ctx.seed ^ 0xF16);

    samples
        .into_iter()
        .map(|(cluster, vertices)| {
            let mut bfs_times = Vec::new();
            let mut hp_times = Vec::new();
            let mut csc_times = Vec::new();
            for (i, &v) in vertices.iter().enumerate() {
                // BFS is O(n + m) per query; cap its sample count.
                if i < bfs_per_cluster {
                    let (_, d) = time_it(|| bfs_engine.query(g, v));
                    bfs_times.push(d);
                }
                let (hp_ans, d) = time_it(|| scc_baseline::scc_count(&hp, g, v));
                hp_times.push(d);
                let (csc_ans, d) = time_it(|| csc.query(v));
                csc_times.push(d);
                assert_eq!(
                    hp_ans.map(|c| (c.length, c.count)),
                    csc_ans.map(|c| (c.length, c.count)),
                    "algorithms disagree at {v}"
                );
            }
            ClusterTiming {
                cluster,
                queries: vertices.len(),
                bfs: mean(&bfs_times),
                hpspc: mean(&hp_times),
                csc: mean(&csc_times),
            }
        })
        .collect()
}

/// Runs the experiment and returns the rendered report.
pub fn run(ctx: &ExpContext) -> String {
    let mut out = String::from("Figure 10 — query time by degree cluster (BFS / HP-SPC / CSC):\n");
    for spec in &ctx.datasets {
        let g = generate(spec, ctx.scale, ctx.seed);
        let timings = measure_dataset(&g, ctx);
        let mut table = Table::new([
            "Cluster",
            "queries",
            "BFS",
            "HP-SPC",
            "CSC",
            "CSC vs HP-SPC",
        ]);
        for t in &timings {
            let speedup = t.hpspc.as_secs_f64() / t.csc.as_secs_f64().max(1e-9);
            table.row([
                t.cluster.name().to_string(),
                t.queries.to_string(),
                fmt_duration(t.bfs),
                fmt_duration(t.hpspc),
                fmt_duration(t.csc),
                format!("{speedup:.1}x"),
            ]);
        }
        ctx.save_csv(&format!("fig10_{}", spec.code.to_lowercase()), &table);
        out.push_str(&format!(
            "\n({}) {} — n={}, m={}\n{}",
            spec.code,
            spec.paper_name,
            g.vertex_count(),
            g.edge_count(),
            table.render()
        ));
    }
    out.push_str(
        "\nPaper expectation: CSC flat across clusters at microseconds; HP-SPC \
         degrades toward High-degree clusters (3.1x-130x slower than CSC); BFS \
         costs milliseconds everywhere.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::by_code;

    #[test]
    fn clusters_cover_all_five_and_agree() {
        let ctx = ExpContext::smoke();
        let g = generate(by_code("G04").unwrap(), 0.05, 1);
        let timings = measure_dataset(&g, &ctx);
        assert_eq!(timings.len(), 5);
        // CSC queries answered in well under a millisecond each.
        for t in &timings {
            if t.queries > 0 {
                assert!(t.csc < Duration::from_millis(5), "{:?}", t);
            }
        }
    }

    #[test]
    fn report_structure() {
        let mut ctx = ExpContext::smoke();
        ctx.datasets.truncate(1);
        let report = run(&ctx);
        assert!(report.contains("High"));
        assert!(report.contains("Bottom"));
        assert!(report.contains("CSC vs HP-SPC"));
    }
}
