//! The experiment implementations, one module per paper artifact.

pub mod ablation;
pub mod case_study;
pub mod churn_drift;
pub mod crash_recovery;
pub mod deletion_churn;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig9;
pub mod order_ablation;
pub mod overload_surge;
pub mod stream_replay;
pub mod table4;
pub mod throughput;

use crate::datasets::{DatasetSpec, DATASETS};
use crate::table::Table;
use std::path::PathBuf;

/// Shared experiment configuration.
#[derive(Clone, Debug)]
pub struct ExpContext {
    /// Dataset size multiplier (1.0 = laptop defaults; see `datasets`).
    pub scale: f64,
    /// Root seed for every generator and sampler.
    pub seed: u64,
    /// Quick mode trims per-cluster query counts and skips the slowest
    /// strategy/dataset combinations, mirroring the paper's own omissions
    /// (minimality is skipped for its two largest graphs).
    pub quick: bool,
    /// Datasets to run on (defaults to all nine).
    pub datasets: Vec<&'static DatasetSpec>,
    /// Directory for CSV archives (`None` = stdout only).
    pub out_dir: Option<PathBuf>,
}

impl Default for ExpContext {
    fn default() -> Self {
        ExpContext {
            scale: 1.0,
            seed: 42,
            quick: false,
            datasets: DATASETS.iter().collect(),
            out_dir: None,
        }
    }
}

impl ExpContext {
    /// A configuration sized for CI / smoke tests.
    pub fn smoke() -> Self {
        ExpContext {
            scale: 0.05,
            quick: true,
            datasets: DATASETS.iter().take(3).collect(),
            ..Default::default()
        }
    }

    /// Restricts the run to the named dataset codes (unknown codes are
    /// ignored).
    pub fn with_datasets(mut self, codes: &[&str]) -> Self {
        let selected: Vec<_> = DATASETS
            .iter()
            .filter(|d| codes.iter().any(|c| c.eq_ignore_ascii_case(d.code)))
            .collect();
        if !selected.is_empty() {
            self.datasets = selected;
        }
        self
    }

    /// Archives a table as CSV under the output directory, if configured.
    pub fn save_csv(&self, name: &str, table: &Table) {
        if let Some(dir) = &self.out_dir {
            if std::fs::create_dir_all(dir).is_ok() {
                let path = dir.join(format!("{name}.csv"));
                if let Err(e) = std::fs::write(&path, table.to_csv()) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context_covers_all_datasets() {
        let ctx = ExpContext::default();
        assert_eq!(ctx.datasets.len(), 9);
        assert!(!ctx.quick);
    }

    #[test]
    fn dataset_filter() {
        let ctx = ExpContext::default().with_datasets(&["g04", "WSR"]);
        assert_eq!(ctx.datasets.len(), 2);
        // Unknown codes leave the selection untouched.
        let ctx = ExpContext::default().with_datasets(&["nope"]);
        assert_eq!(ctx.datasets.len(), 9);
    }

    #[test]
    fn csv_archival() {
        let dir = std::env::temp_dir().join("csc-bench-test-out");
        let ctx = ExpContext {
            out_dir: Some(dir.clone()),
            ..ExpContext::smoke()
        };
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        ctx.save_csv("unit", &t);
        let written = std::fs::read_to_string(dir.join("unit.csv")).unwrap();
        assert!(written.contains("a"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
