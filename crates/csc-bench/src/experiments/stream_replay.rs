//! Extension experiment: streaming-update replay through the batch engine.
//!
//! The paper's dynamic experiments measure *isolated* single-edge updates.
//! Real monitoring feeds deliver a timestamped stream, and a serving
//! deployment applies it in windows. This experiment replays fixed
//! timestamped traces — a pure-arrival `insert` stream and a 50/50
//! `mixed` churn — against a `ConcurrentIndex` at several batch sizes
//! (1, 8, 64, 512 by default) and measures, per (trace, batch size):
//!
//! * per-batch write latency (mean / p99) and the per-update cost it
//!   amortizes to — the batch engine's normalization, hub-union repair,
//!   and one-publish-per-batch should all push per-update cost *down* as
//!   the batch grows;
//! * snapshot publications (each incremental, via dirty-span refreeze);
//! * reader latency percentiles under the write load, from a thread
//!   hammering the published snapshot while the replay runs. This
//!   container is single-core, so reader *throughput* mostly measures the
//!   scheduler; the latency percentiles and the relative trend across
//!   batch sizes are the signal.
//!
//! Batch size 1 degenerates to the classic one-update-at-a-time path
//! (plus a publication per update, since the replay runs with
//! `snapshot_every = 1` so that staleness is always bounded by one
//! batch), making the leftmost column the baseline the other columns are
//! read against. Machine-readable results land in `BENCH_batch.json` when
//! `CRITERION_JSON` names it (see `benches/batch.rs`).

use super::ExpContext;
use crate::datasets::{by_code, generate};
use crate::measure::fmt_duration;
use crate::table::Table;
use csc_core::{ConcurrentIndex, CscConfig, CscIndex, GraphUpdate};
use csc_graph::{DiGraph, VertexId};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// One element of a timestamped update trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceOp {
    /// Synthetic event time (monotone ticks; windowing policies batch by
    /// count today, but the timestamps keep the trace format honest).
    pub timestamp: u64,
    /// The update itself.
    pub update: GraphUpdate,
}

/// Builds a deterministic insert/delete trace of `ops` operations against
/// `g`: `held_out` edges are removed from the starting graph and become
/// the insertion pool, and each step pseudo-randomly inserts an absent
/// pool edge (with probability `insert_pct`%) or deletes a present one —
/// every operation is valid at its position. `insert_pct = 100` models a
/// pure arrival stream (the paper's incremental scenario);
/// 50 models steady churn. Returns the reduced starting graph and the
/// trace.
pub fn build_trace(
    g: &DiGraph,
    held_out: usize,
    ops: usize,
    insert_pct: u32,
    seed: u64,
) -> (DiGraph, Vec<TraceOp>) {
    let edges = g.edge_vec();
    let stride = (edges.len() / held_out.max(1)).max(1);
    let mut absent: Vec<(u32, u32)> = edges
        .iter()
        .step_by(stride)
        .copied()
        .take(held_out)
        .collect();
    let mut reduced = g.clone();
    for &(a, b) in &absent {
        reduced
            .try_remove_edge(VertexId(a), VertexId(b))
            .expect("held-out edge exists");
    }
    // The deletion pool: a disjoint sample of surviving edges.
    let mut present: Vec<(u32, u32)> = reduced
        .edge_vec()
        .into_iter()
        .step_by(stride.max(2))
        .take(held_out)
        .collect();

    let mut s = seed ^ 0x5eed_bead;
    let mut trace = Vec::with_capacity(ops);
    for t in 0..ops as u64 {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let insert = if absent.is_empty() {
            false
        } else if present.is_empty() {
            true
        } else {
            ((s >> 7) % 100) < u64::from(insert_pct)
        };
        let update = if insert {
            let (a, b) = absent.swap_remove((s >> 16) as usize % absent.len());
            present.push((a, b));
            GraphUpdate::InsertEdge(VertexId(a), VertexId(b))
        } else {
            let (a, b) = present.swap_remove((s >> 16) as usize % present.len());
            absent.push((a, b));
            GraphUpdate::RemoveEdge(VertexId(a), VertexId(b))
        };
        trace.push(TraceOp {
            timestamp: t,
            update,
        });
    }
    (reduced, trace)
}

/// What one replay (one batch size) measured.
#[derive(Clone, Debug)]
pub struct ReplayStats {
    /// Which trace ran: `"mixed"` (50/50 churn) or `"insert"` (arrivals).
    pub trace: &'static str,
    /// Updates per `apply_batch` call.
    pub batch_size: usize,
    /// Batches replayed.
    pub batches: usize,
    /// Graph updates actually applied (net of normalization).
    pub applied: usize,
    /// Operations normalization cancelled or rejected across the replay.
    pub normalized_away: usize,
    /// Snapshot publications during the replay.
    pub publishes: usize,
    /// Whole-replay wall time.
    pub total: Duration,
    /// Mean per-batch write latency.
    pub batch_mean: Duration,
    /// p99 per-batch write latency.
    pub batch_p99: Duration,
    /// Amortized cost per *applied* update (`total / applied`). Does not
    /// credit normalization: cancelled ops shrink the denominator too.
    pub per_update: Duration,
    /// Amortized cost per *submitted* trace operation (`total / ops`) —
    /// the stream consumer's view, where work normalization avoids is a
    /// win like any other.
    pub per_op: Duration,
    /// Reader p50 latency under the write load, microseconds.
    pub reader_p50_us: f64,
    /// Reader p99 latency under the write load, microseconds.
    pub reader_p99_us: f64,
    /// Snapshot queries the reader answered during the replay.
    pub reader_queries: usize,
    /// Deletion-repair time classifying windows (endpoint sweeps + regime
    /// assignment), summed across batches.
    pub classify: Duration,
    /// Deletion-repair time in merged count-subtraction passes.
    pub subtract: Duration,
    /// Deletion-repair time in the re-label regime (superset deletion,
    /// upsert sweeps, or the rebuild fallback).
    pub relabel: Duration,
    /// Windows that took the from-scratch rebuild fallback.
    pub rebuild_fallbacks: usize,
}

/// Replays `trace` in `batch_size` windows against a fresh clone of
/// `base`, with one snapshot reader running for the duration.
///
/// The reader times every 16th query (the rest still issue, keeping the
/// contention realistic) so a long replay doesn't drown in latency
/// samples on this single-core box.
pub fn replay(
    kind: &'static str,
    base: &CscIndex,
    trace: &[TraceOp],
    batch_size: usize,
) -> ReplayStats {
    let shared = ConcurrentIndex::new(base.clone());
    let n = base.original_vertex_count() as u32;
    let stop = AtomicBool::new(false);
    let published_before = shared.snapshot_stats().published;

    let (replay_side, reader_lat_us) = std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            let mut lat = Vec::with_capacity(1 << 14);
            let mut x = 0x9E37_79B9u32;
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                let v = VertexId(x % n.max(1));
                if i.is_multiple_of(16) {
                    let t0 = Instant::now();
                    let _ = shared.query(v);
                    lat.push(t0.elapsed().as_nanos() as f64 / 1e3);
                } else {
                    let _ = shared.query(v);
                }
                i += 1;
            }
            lat
        });

        let mut batch_times = Vec::with_capacity(trace.len() / batch_size + 1);
        let mut applied = 0usize;
        let mut normalized_away = 0usize;
        let mut phases = (Duration::ZERO, Duration::ZERO, Duration::ZERO, 0usize);
        let start = Instant::now();
        for window in trace.chunks(batch_size) {
            let updates: Vec<GraphUpdate> = window.iter().map(|op| op.update).collect();
            let t0 = Instant::now();
            let report = shared.apply_batch(&updates).expect("trace ops are valid");
            batch_times.push(t0.elapsed());
            applied += report.applied_updates();
            normalized_away += report.cancelled + report.rejected;
            phases.0 += report.repair.classify_time;
            phases.1 += report.repair.subtract_time;
            phases.2 += report.repair.relabel_time;
            phases.3 += report.repair.rebuild_fallbacks;
        }
        let total = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        let lat = reader.join().expect("reader thread");
        ((batch_times, applied, normalized_away, phases, total), lat)
    });
    let (batch_times, applied, normalized_away, phases, total) = replay_side;

    let mut sorted_us: Vec<f64> = reader_lat_us;
    sorted_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pick = |p: f64| {
        sorted_us
            .get(((sorted_us.len().saturating_sub(1)) as f64 * p) as usize)
            .copied()
            .unwrap_or(0.0)
    };
    ReplayStats {
        trace: kind,
        batch_size,
        batches: batch_times.len(),
        applied,
        normalized_away,
        publishes: shared.snapshot_stats().published - published_before,
        total,
        batch_mean: crate::measure::mean(&batch_times),
        batch_p99: crate::measure::percentile(&batch_times, 0.99),
        per_update: total / applied.max(1) as u32,
        per_op: total / trace.len().max(1) as u32,
        reader_p50_us: pick(0.5),
        reader_p99_us: pick(0.99),
        reader_queries: sorted_us.len(),
        classify: phases.0,
        subtract: phases.1,
        relabel: phases.2,
        rebuild_fallbacks: phases.3,
    }
}

/// Runs one sweep on the G04 analog: one trace of the given insert
/// percentage, replayed at each batch size against the same starting
/// index.
pub fn measure_kind(
    ctx: &ExpContext,
    batch_sizes: &[usize],
    kind: &'static str,
    insert_pct: u32,
) -> Vec<ReplayStats> {
    let spec = by_code("G04").expect("G04 exists");
    let g = generate(spec, ctx.scale, ctx.seed);
    let ops = if ctx.quick { 128 } else { 512 };
    // `.min` then `.max`, not `clamp`: at tiny scales edge_count/4 can
    // drop below 8 and `clamp(8, <8)` panics on min > max.
    let pool = (ops * insert_pct.max(50) as usize / 100)
        .min(g.edge_count() / 4)
        .max(1);
    let (reduced, trace) = build_trace(&g, pool, ops, insert_pct, ctx.seed);
    // `snapshot_every = 1`: publish as eagerly as the batch size allows,
    // so reader staleness is bounded by one batch in every configuration
    // and the publication amortization is part of what's measured.
    let config = CscConfig::default().with_snapshot_every(1);
    let base = CscIndex::build(&reduced, config).expect("build");
    batch_sizes
        .iter()
        .map(|&b| replay(kind, &base, &trace, b))
        .collect()
}

/// The 50/50 insert/delete churn sweep.
pub fn measure(ctx: &ExpContext, batch_sizes: &[usize]) -> Vec<ReplayStats> {
    measure_kind(ctx, batch_sizes, "mixed", 50)
}

/// The pure-arrival sweep (inserts only): deletion cost is inherently
/// per-edge, so this isolates what batching buys the insertion path —
/// hub-union repair plus one publication per batch.
pub fn measure_inserts(ctx: &ExpContext, batch_sizes: &[usize]) -> Vec<ReplayStats> {
    measure_kind(ctx, batch_sizes, "insert", 100)
}

/// Appends one machine-readable line per replay to the `CRITERION_JSON`
/// file (the repo records these in `BENCH_batch.json`).
pub fn record_json(stats: &[ReplayStats], graph: &str) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    // The effective worker-pool width: results at different widths are
    // not comparable (see BENCHMARKING.md), so every line carries it.
    let threads = csc_core::ParallelismConfig::default().width();
    for s in stats {
        let _ = writeln!(
            f,
            "{{\"group\":\"stream_replay\",\"graph\":\"{graph}\",\"threads\":{threads},\
             \"trace\":\"{}\",\"batch_size\":{},\
             \"batches\":{},\"applied\":{},\"normalized_away\":{},\"publishes\":{},\
             \"total_ms\":{:.2},\"batch_mean_us\":{:.1},\"batch_p99_us\":{:.1},\
             \"per_update_us\":{:.2},\"per_op_us\":{:.2},\"reader_p50_us\":{:.1},\
             \"reader_p99_us\":{:.1},\"reader_queries\":{}}}",
            s.trace,
            s.batch_size,
            s.batches,
            s.applied,
            s.normalized_away,
            s.publishes,
            s.total.as_secs_f64() * 1e3,
            s.batch_mean.as_secs_f64() * 1e6,
            s.batch_p99.as_secs_f64() * 1e6,
            s.per_update.as_secs_f64() * 1e6,
            s.per_op.as_secs_f64() * 1e6,
            s.reader_p50_us,
            s.reader_p99_us,
            s.reader_queries,
        );
    }
}

/// Runs the experiment and returns the rendered report.
pub fn run(ctx: &ExpContext) -> String {
    let sizes = [1, 8, 64, 512];
    let mut stats = measure_inserts(ctx, &sizes);
    stats.extend(measure(ctx, &sizes));
    record_json(&stats, "G04");
    let mut table = Table::new([
        "trace",
        "batch size",
        "batches",
        "applied",
        "per-batch mean",
        "per-batch p99",
        "per-update",
        "per-op",
        "publishes",
        "reader p50",
        "reader p99",
    ]);
    for s in &stats {
        table.row([
            s.trace.to_string(),
            s.batch_size.to_string(),
            s.batches.to_string(),
            s.applied.to_string(),
            fmt_duration(s.batch_mean),
            fmt_duration(s.batch_p99),
            fmt_duration(s.per_update),
            fmt_duration(s.per_op),
            s.publishes.to_string(),
            format!("{:.1} us", s.reader_p50_us),
            format!("{:.1} us", s.reader_p99_us),
        ]);
    }
    ctx.save_csv("stream_replay", &table);
    format!(
        "Extension — streaming replay through apply_batch \
         (G04 analog, snapshot_every = 1, one snapshot reader):\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use csc_graph::generators::gnm;
    use csc_graph::traversal::shortest_cycle_oracle;

    #[test]
    fn trace_is_valid_and_deterministic() {
        let g = gnm(40, 140, 3);
        let (reduced, trace) = build_trace(&g, 16, 64, 50, 9);
        let (reduced2, trace2) = build_trace(&g, 16, 64, 50, 9);
        assert_eq!(reduced, reduced2);
        assert_eq!(trace.len(), trace2.len());
        assert!(trace
            .iter()
            .zip(&trace2)
            .all(|(a, b)| a.update == b.update && a.timestamp == b.timestamp));
        // Valid in sequence: replay against the plain graph never errors.
        let mut sim = reduced.clone();
        let mut timestamps = Vec::new();
        for op in &trace {
            timestamps.push(op.timestamp);
            match op.update {
                GraphUpdate::InsertEdge(a, b) => sim.try_add_edge(a, b).unwrap(),
                GraphUpdate::RemoveEdge(a, b) => {
                    sim.try_remove_edge(a, b).unwrap();
                }
                GraphUpdate::AddVertex => unreachable!("traces are edge-only"),
            }
        }
        assert!(timestamps.windows(2).all(|w| w[0] < w[1]), "monotone time");
    }

    #[test]
    fn insert_only_trace_has_no_deletions() {
        let g = gnm(40, 140, 3);
        let (reduced, trace) = build_trace(&g, 32, 32, 100, 7);
        assert!(trace
            .iter()
            .all(|op| matches!(op.update, GraphUpdate::InsertEdge(..))));
        let mut sim = reduced;
        for op in &trace {
            let GraphUpdate::InsertEdge(a, b) = op.update else {
                unreachable!()
            };
            sim.try_add_edge(a, b).unwrap();
        }
    }

    #[test]
    fn replay_measures_and_stays_exact() {
        let g = gnm(60, 220, 5);
        let (reduced, trace) = build_trace(&g, 12, 48, 50, 5);
        let config = CscConfig::default().with_snapshot_every(1);
        let base = CscIndex::build(&reduced, config).unwrap();
        let whole = replay("mixed", &base, &trace, 16);
        assert_eq!(whole.batches, 3);
        assert!(whole.applied > 0);
        assert!(whole.publishes >= 1 && whole.publishes <= whole.batches);
        assert!(whole.per_update <= whole.total);

        // The replayed index must end exactly where the trace says.
        let mut sim = reduced.clone();
        for op in &trace {
            match op.update {
                GraphUpdate::InsertEdge(a, b) => sim.try_add_edge(a, b).unwrap(),
                GraphUpdate::RemoveEdge(a, b) => {
                    sim.try_remove_edge(a, b).unwrap();
                }
                GraphUpdate::AddVertex => unreachable!(),
            }
        }
        let mut check = base.clone();
        for window in trace.chunks(16) {
            let updates: Vec<GraphUpdate> = window.iter().map(|op| op.update).collect();
            check.apply_batch(&updates).unwrap();
        }
        for v in sim.vertices() {
            assert_eq!(
                check.query(v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&sim, v),
                "SCCnt({v})"
            );
        }
    }

    #[test]
    fn smoke_measure_runs_all_batch_sizes() {
        let ctx = ExpContext {
            scale: 0.03,
            quick: true,
            ..ExpContext::smoke()
        };
        let stats = measure(&ctx, &[1, 8]);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].batch_size, 1);
        assert!(stats.iter().all(|s| s.applied > 0));
        // Same trace either way; larger windows may normalize more ops
        // away (an edge toggled twice inside one window cancels), but
        // every op is accounted for.
        assert_eq!(
            stats[0].applied + stats[0].normalized_away,
            stats[1].applied + stats[1].normalized_away
        );
        assert!(stats[1].applied <= stats[0].applied);
        // Batch size 1 publishes per update; batch size 8 at most per batch.
        assert!(stats[1].publishes < stats[0].publishes);
    }
}
