//! Table IV: dataset statistics — paper sizes next to the generated
//! analogs, with the structural stats that matter for the algorithms.

use super::ExpContext;
use crate::datasets::generate;
use crate::table::Table;
use csc_graph::properties::stats;

/// Runs the experiment and returns the rendered report.
pub fn run(ctx: &ExpContext) -> String {
    let mut table = Table::new([
        "Graph",
        "Paper n",
        "Paper m",
        "Analog n",
        "Analog m",
        "avg out-deg",
        "max deg",
        "SCCs",
    ]);
    for spec in &ctx.datasets {
        let g = generate(spec, ctx.scale, ctx.seed);
        let s = stats(&g);
        table.row([
            spec.code.to_string(),
            spec.paper_n.to_string(),
            spec.paper_m.to_string(),
            s.n.to_string(),
            s.m.to_string(),
            format!("{:.2}", s.avg_out_degree),
            s.max_degree.to_string(),
            s.strong_components.to_string(),
        ]);
    }
    ctx.save_csv("table4", &table);
    format!(
        "Table IV — dataset statistics (synthetic analogs at scale {}):\n\n{}",
        ctx.scale,
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_row_per_dataset() {
        let ctx = ExpContext::smoke();
        let report = run(&ctx);
        for spec in &ctx.datasets {
            assert!(report.contains(spec.code), "missing {}", spec.code);
        }
        assert!(report.contains("avg out-deg"));
    }
}
