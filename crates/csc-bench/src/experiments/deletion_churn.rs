//! Extension experiment: the decremental fast path under sustained
//! deletion churn.
//!
//! The paper measures isolated single-edge deletions; a serving system
//! sees deletion *windows* (expiring edges, compliance purges, churny
//! peers). This experiment replays a delete-only trace on the G04 analog
//! through [`ConcurrentIndex::apply_batch`](csc_core::ConcurrentIndex) at
//! batch sizes 1 / 8 / 64 and measures, per size:
//!
//! * amortized per-op cost, with the **phase attribution** the windowed
//!   engine reports (classify / subtract / re-label, plus how many
//!   windows took the from-scratch rebuild fallback);
//! * reader p50/p99 under the deletion load, from a thread hammering the
//!   published snapshot for the whole replay (single-core container:
//!   latency percentiles, not throughput, are the signal);
//! * snapshot publications (at most one per batch).
//!
//! A separate pass times plain [`CscIndex::remove_edge`] over the same
//! edges — the scalar number the windowed engine is judged against.
//! Machine-readable lines land in the `CRITERION_JSON` file (the repo
//! records them in `BENCH_delete.json`); see `docs/BENCHMARKING.md` for
//! the field reference.

use super::stream_replay::{replay, ReplayStats, TraceOp};
use super::ExpContext;
use crate::datasets::{by_code, generate};
use crate::measure::fmt_duration;
use crate::table::Table;
use csc_core::{CscConfig, CscIndex, GraphUpdate};
use csc_graph::{DiGraph, VertexId};
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Builds a delete-only trace of (up to) `ops` operations: a spread-out
/// sample of `g`'s edges, each removed exactly once, valid in sequence.
pub fn build_delete_trace(g: &DiGraph, ops: usize) -> Vec<TraceOp> {
    let edges = g.edge_vec();
    let stride = (edges.len() / ops.max(1)).max(1);
    edges
        .iter()
        .step_by(stride)
        .take(ops)
        .enumerate()
        .map(|(t, &(a, b))| TraceOp {
            timestamp: t as u64,
            update: GraphUpdate::RemoveEdge(VertexId(a), VertexId(b)),
        })
        .collect()
}

/// Mean and p99 of plain `remove_edge` over the trace's first `ops` edges.
pub struct ScalarStats {
    /// Deletions timed.
    pub ops: usize,
    /// Mean per-deletion wall time.
    pub mean: Duration,
    /// p99 per-deletion wall time.
    pub p99: Duration,
}

/// Times the scalar deletion path on a fresh clone of `base`.
pub fn measure_scalar(base: &CscIndex, trace: &[TraceOp], ops: usize) -> ScalarStats {
    let mut idx = base.clone();
    let mut times = Vec::with_capacity(ops);
    for op in trace.iter().take(ops) {
        let GraphUpdate::RemoveEdge(a, b) = op.update else {
            unreachable!("delete traces only remove");
        };
        let t0 = Instant::now();
        idx.remove_edge(a, b).expect("trace edges are present");
        times.push(t0.elapsed());
    }
    ScalarStats {
        ops: times.len(),
        mean: crate::measure::mean(&times),
        p99: crate::measure::percentile(&times, 0.99),
    }
}

/// Runs the batch-size sweep and the scalar pass on the G04 analog.
pub fn measure(ctx: &ExpContext, batch_sizes: &[usize]) -> (Vec<ReplayStats>, ScalarStats) {
    let spec = by_code("G04").expect("G04 exists");
    let g = generate(spec, ctx.scale, ctx.seed);
    let ops = if ctx.quick { 64 } else { 192 };
    let trace = build_delete_trace(&g, ops);
    // `snapshot_every = 1`: publish as eagerly as the batch size allows,
    // so reader staleness is bounded by one batch in every configuration.
    let config = CscConfig::default().with_snapshot_every(1);
    let base = CscIndex::build(&g, config).expect("build");
    let stats = batch_sizes
        .iter()
        .map(|&b| replay("delete", &base, &trace, b))
        .collect();
    let scalar_ops = if ctx.quick { 16 } else { 48 };
    let scalar = measure_scalar(&base, &trace, scalar_ops);
    (stats, scalar)
}

/// Appends one machine-readable line per replay (plus one for the scalar
/// pass) to the `CRITERION_JSON` file — the repo records these in
/// `BENCH_delete.json`.
pub fn record_json(stats: &[ReplayStats], scalar: &ScalarStats, graph: &str) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    for s in stats {
        let _ = writeln!(
            f,
            "{{\"group\":\"deletion_churn\",\"graph\":\"{graph}\",\"batch_size\":{},\
             \"batches\":{},\"applied\":{},\"publishes\":{},\"total_ms\":{:.2},\
             \"per_op_us\":{:.2},\"batch_p99_us\":{:.1},\"classify_ms\":{:.2},\
             \"subtract_ms\":{:.2},\"relabel_ms\":{:.2},\"rebuild_fallbacks\":{},\
             \"reader_p50_us\":{:.1},\"reader_p99_us\":{:.1},\"reader_queries\":{}}}",
            s.batch_size,
            s.batches,
            s.applied,
            s.publishes,
            s.total.as_secs_f64() * 1e3,
            s.per_op.as_secs_f64() * 1e6,
            s.batch_p99.as_secs_f64() * 1e6,
            s.classify.as_secs_f64() * 1e3,
            s.subtract.as_secs_f64() * 1e3,
            s.relabel.as_secs_f64() * 1e3,
            s.rebuild_fallbacks,
            s.reader_p50_us,
            s.reader_p99_us,
            s.reader_queries,
        );
    }
    let _ = writeln!(
        f,
        "{{\"group\":\"deletion_churn\",\"graph\":\"{graph}\",\"kind\":\"scalar_remove_edge\",\
         \"ops\":{},\"mean_ms\":{:.2},\"p99_ms\":{:.2}}}",
        scalar.ops,
        scalar.mean.as_secs_f64() * 1e3,
        scalar.p99.as_secs_f64() * 1e3,
    );
}

/// Runs the experiment and returns the rendered report.
pub fn run(ctx: &ExpContext) -> String {
    let sizes = [1, 8, 64];
    let (stats, scalar) = measure(ctx, &sizes);
    record_json(&stats, &scalar, "G04");
    let mut table = Table::new([
        "batch size",
        "batches",
        "applied",
        "per-op",
        "classify",
        "subtract",
        "re-label",
        "rebuilds",
        "publishes",
        "reader p50",
        "reader p99",
    ]);
    for s in &stats {
        table.row([
            s.batch_size.to_string(),
            s.batches.to_string(),
            s.applied.to_string(),
            fmt_duration(s.per_op),
            fmt_duration(s.classify),
            fmt_duration(s.subtract),
            fmt_duration(s.relabel),
            s.rebuild_fallbacks.to_string(),
            s.publishes.to_string(),
            format!("{:.1} us", s.reader_p50_us),
            format!("{:.1} us", s.reader_p99_us),
        ]);
    }
    ctx.save_csv("deletion_churn", &table);
    format!(
        "Extension — deletion churn through the windowed decremental engine \
         (G04 analog, delete-only trace, snapshot_every = 1, one snapshot reader):\n\n{}\n\n\
         scalar remove_edge over {} deletions: mean {}, p99 {}",
        table.render(),
        scalar.ops,
        fmt_duration(scalar.mean),
        fmt_duration(scalar.p99),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use csc_graph::generators::gnm;
    use csc_graph::traversal::shortest_cycle_oracle;

    #[test]
    fn delete_trace_is_valid_and_delete_only() {
        let g = gnm(30, 100, 3);
        let trace = build_delete_trace(&g, 24);
        assert_eq!(trace.len(), 24);
        let mut sim = g.clone();
        for op in &trace {
            let GraphUpdate::RemoveEdge(a, b) = op.update else {
                panic!("non-deletion in a delete trace");
            };
            sim.try_remove_edge(a, b).unwrap();
        }
        assert!(trace.windows(2).all(|w| w[0].timestamp < w[1].timestamp));
    }

    #[test]
    fn replay_and_scalar_agree_with_the_oracle() {
        let g = gnm(40, 150, 9);
        let trace = build_delete_trace(&g, 20);
        let base = CscIndex::build(&g, CscConfig::default().with_snapshot_every(1)).unwrap();
        let stats = replay("delete", &base, &trace, 8);
        assert_eq!(stats.applied, 20);
        assert!(stats.classify + stats.subtract + stats.relabel <= stats.total);

        let scalar = measure_scalar(&base, &trace, 8);
        assert_eq!(scalar.ops, 8);
        assert!(scalar.p99 >= scalar.mean / 2);

        // The batched replay ends exactly where the trace says.
        let mut check = base.clone();
        let mut sim = g.clone();
        for window in trace.chunks(8) {
            let ups: Vec<GraphUpdate> = window.iter().map(|o| o.update).collect();
            check.apply_batch(&ups).unwrap();
        }
        for op in &trace {
            let GraphUpdate::RemoveEdge(a, b) = op.update else {
                unreachable!()
            };
            sim.try_remove_edge(a, b).unwrap();
        }
        for v in sim.vertices() {
            assert_eq!(
                check.query(v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&sim, v),
                "SCCnt({v})"
            );
        }
    }

    #[test]
    fn smoke_measure_runs_all_batch_sizes() {
        let ctx = ExpContext {
            scale: 0.03,
            quick: true,
            ..ExpContext::smoke()
        };
        let (stats, scalar) = measure(&ctx, &[1, 8]);
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| s.applied > 0));
        assert_eq!(
            stats[0].applied, stats[1].applied,
            "delete-only traces never normalize ops away"
        );
        assert!(stats[1].publishes < stats[0].publishes);
        assert!(scalar.ops > 0);
    }
}
