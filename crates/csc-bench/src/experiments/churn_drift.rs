//! Extension experiment: long-lived churn drift and online rejuvenation.
//!
//! The paper's dynamic experiments measure isolated updates against a
//! fresh index. A *long-lived* index is different: every `AddVertex`
//! lands at the bottom of the rank order, deletions leave redundant
//! entries, and label size only ratchets upward — so after sustained
//! churn the index drifts away from the one a from-scratch build over
//! the same graph would produce, in size and in query latency.
//!
//! This experiment quantifies that drift and what rejuvenation buys back.
//! Three phases over the G04 analog:
//!
//! 1. **drifted** — replay a sustained mixed trace (inserts, deletes, and
//!    wired-in vertex additions) through a [`ConcurrentIndex`], then
//!    measure label entries (total and per side), health, and query
//!    latency percentiles on the served snapshot;
//! 2. **rejuvenated** — migrate the hub order (`set_order` to the
//!    coverage-sampled strategy: the drifted index was built and repaired
//!    under the default degree order), then run an online rejuvenation
//!    (chunked rebuild under the migrated order + write-ahead replay +
//!    atomic swap) with a snapshot reader hammering queries *throughout
//!    the rebuild+replay window* and a tail of updates landing
//!    mid-rebuild, then measure again;
//! 3. **scratch** — `CscIndex::build` from scratch on the same final
//!    graph under the same (migrated) order: the yardstick. The
//!    acceptance bar is rejuvenated-vs-scratch within 10% on entries and
//!    on median/p99 query latency, with reader p99 staying bounded (no
//!    stop-the-world) through the window.
//!
//! Machine-readable results land in `BENCH_rejuvenate.json` when
//! `CRITERION_JSON` names it (one line per phase plus one for the
//! rebuild window); `rejuvenate_probe` is the standalone driver.

use super::stream_replay::build_trace;
use super::ExpContext;
use crate::datasets::{by_code, generate};
use crate::measure::fmt_duration;
use crate::table::Table;
use csc_core::{
    ConcurrentIndex, CscConfig, CscIndex, GraphUpdate, MaintenanceStatus, SnapshotIndex,
};
use csc_graph::{DiGraph, OrderingStrategy, VertexId};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

#[inline]
fn lcg(s: u64) -> u64 {
    s.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// Builds a sustained churn trace: the 50/50 insert/delete edge stream of
/// [`build_trace`], with a wired-in vertex addition (one `AddVertex`
/// followed by one outgoing and one incoming edge) spliced in every
/// eighth edge op — the bottom-ranked churn that degrades order quality.
/// Every op is valid at its position. Returns the reduced starting graph
/// and the trace.
pub fn build_churn_trace(
    g: &DiGraph,
    held_out: usize,
    ops: usize,
    seed: u64,
) -> (DiGraph, Vec<GraphUpdate>) {
    let (reduced, edge_trace) = build_trace(g, held_out, ops, 50, seed);
    let n0 = g.vertex_count() as u64;
    let mut next_vertex = g.vertex_count() as u32;
    let mut s = seed ^ 0x00d1_f7ed;
    let mut trace = Vec::with_capacity(edge_trace.len() + edge_trace.len() / 2);
    for (k, op) in edge_trace.iter().enumerate() {
        trace.push(op.update);
        if k % 8 == 7 && n0 > 1 {
            s = lcg(s);
            let a = VertexId(((s >> 16) % n0) as u32);
            s = lcg(s);
            let b = VertexId(((s >> 16) % n0) as u32);
            let nv = VertexId(next_vertex);
            next_vertex += 1;
            trace.push(GraphUpdate::AddVertex);
            trace.push(GraphUpdate::InsertEdge(nv, a));
            trace.push(GraphUpdate::InsertEdge(b, nv));
        }
    }
    (reduced, trace)
}

/// A tail of updates valid against `g` regardless of interleaving:
/// remove-then-reinsert flaps of present edges plus one wired vertex.
/// Injected *mid-rebuild* so the write-ahead replay queue is exercised.
fn build_tail(g: &DiGraph, flaps: usize, seed: u64) -> Vec<GraphUpdate> {
    let edges = g.edge_vec();
    let stride = (edges.len() / flaps.max(1)).max(1);
    let mut tail = Vec::with_capacity(flaps * 2 + 3);
    for &(a, b) in edges.iter().step_by(stride).take(flaps) {
        tail.push(GraphUpdate::RemoveEdge(VertexId(a), VertexId(b)));
        tail.push(GraphUpdate::InsertEdge(VertexId(a), VertexId(b)));
    }
    let n = g.vertex_count() as u64;
    if n > 1 {
        let s = lcg(seed);
        let nv = VertexId(g.vertex_count() as u32);
        tail.push(GraphUpdate::AddVertex);
        tail.push(GraphUpdate::InsertEdge(
            nv,
            VertexId(((s >> 16) % n) as u32),
        ));
        tail.push(GraphUpdate::InsertEdge(
            VertexId(((s >> 40) % n) as u32),
            nv,
        ));
    }
    tail
}

/// What one phase measured.
#[derive(Clone, Debug)]
pub struct PhaseStats {
    /// `"drifted"`, `"rejuvenated"`, or `"scratch"`.
    pub phase: &'static str,
    /// Live label entries in the measured snapshot.
    pub entries: usize,
    /// In-side entries.
    pub in_entries: usize,
    /// Out-side entries.
    pub out_entries: usize,
    /// Entry growth vs. the index's own baseline (100 = at baseline).
    pub growth_percent: u32,
    /// Bottom-ranked vertices appended since the baseline.
    pub churned: usize,
    /// Dead fraction of the measured arena.
    pub dead_fraction: f64,
    /// Median single-query latency, microseconds.
    pub q_p50_us: f64,
    /// p99 single-query latency, microseconds.
    pub q_p99_us: f64,
}

/// The rebuild+replay window, as experienced by a concurrent reader.
#[derive(Clone, Debug)]
pub struct RejuvenationWindow {
    /// Wall time from `begin_rejuvenation` to the post-swap publication.
    pub duration: Duration,
    /// Updates that landed in the write-ahead queue and were replayed.
    pub replayed: usize,
    /// Cooperative `maintain` calls the driver made.
    pub maintain_calls: usize,
    /// Reader p50 latency during the window, microseconds.
    pub reader_p50_us: f64,
    /// Reader p99 latency during the window, microseconds.
    pub reader_p99_us: f64,
    /// Snapshot queries the reader answered during the window.
    pub reader_queries: usize,
}

fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    sorted
        .get(((sorted.len().saturating_sub(1)) as f64 * p) as usize)
        .copied()
        .unwrap_or(0.0)
}

/// Times `samples` point queries against the snapshot (uniform over the
/// vertex range) and returns `(p50, p99)` in microseconds. Shared with
/// the `order_ablation` experiment so strategy comparisons use the same
/// sampling discipline.
pub fn query_latency(snap: &SnapshotIndex, samples: usize, seed: u64) -> (f64, f64) {
    let n = snap.original_vertex_count().max(1) as u64;
    let mut lat = Vec::with_capacity(samples);
    let mut s = seed | 1;
    for _ in 0..samples {
        s = lcg(s);
        let v = VertexId(((s >> 33) % n) as u32);
        let t0 = Instant::now();
        std::hint::black_box(snap.query(v));
        lat.push(t0.elapsed().as_nanos() as f64 / 1e3);
    }
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (percentile_us(&lat, 0.5), percentile_us(&lat, 0.99))
}

fn measure_phase(
    phase: &'static str,
    snap: &SnapshotIndex,
    samples: usize,
    seed: u64,
) -> PhaseStats {
    let h = snap.health();
    let (q_p50_us, q_p99_us) = query_latency(snap, samples, seed);
    PhaseStats {
        phase,
        entries: h.total_entries,
        in_entries: h.in_entries,
        out_entries: h.out_entries,
        growth_percent: h.growth_percent,
        churned: h.churned_vertices,
        dead_fraction: h.dead_fraction,
        q_p50_us,
        q_p99_us,
    }
}

/// Runs the three phases and returns `(phases, window)`.
pub fn measure(ctx: &ExpContext) -> (Vec<PhaseStats>, RejuvenationWindow) {
    let spec = by_code("G04").expect("G04 exists");
    let g = generate(spec, ctx.scale, ctx.seed);
    let ops = if ctx.quick { 96 } else { 384 };
    // `.min` then `.max`, not `clamp`: at tiny scales edge_count/4 can
    // drop below 8 and `clamp(8, <8)` panics on min > max.
    let pool = (ops / 2).min(g.edge_count() / 4).max(1);
    let (reduced, trace) = build_churn_trace(&g, pool, ops, ctx.seed);
    let samples = if ctx.quick { 512 } else { 4096 };

    let config = CscConfig::default().with_snapshot_every(8);
    let shared = ConcurrentIndex::new(CscIndex::build(&reduced, config).expect("build"));

    // Phase 1: sustained churn, then measure the drifted index.
    for window in trace.chunks(16) {
        shared
            .apply_batch(window)
            .expect("churn trace ops are valid");
    }
    shared.refresh();
    let drifted = measure_phase("drifted", &shared.snapshot(), samples, ctx.seed);

    // Phase 2 also migrates the hub order: the drifted labels were built
    // and repaired under the default degree order; switching strategies
    // here makes the rejuvenation re-rank under the coverage-sampled
    // order — the long-lived-index payoff `order_ablation` quantifies
    // statically. The scratch yardstick below uses the migrated order
    // too, so the within-10% bar compares like with like.
    let migrated = OrderingStrategy::coverage(ctx.seed);
    shared.set_order(migrated).expect("serving, not rebuilding");
    let config = config.with_order(migrated);

    // Online rejuvenation under a live reader, with a tail of updates
    // landing mid-rebuild (write-ahead queue + replay).
    let tail = build_tail(&shared.with_read(|idx| idx.original_graph()), 8, ctx.seed);
    let stop = AtomicBool::new(false);
    let (window, reader_lat_us) = std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            let mut lat = Vec::with_capacity(1 << 14);
            let mut s = ctx.seed ^ 0x5eed;
            let mut i = 0u64;
            let n = shared.snapshot().original_vertex_count().max(1) as u64;
            while !stop.load(Ordering::Relaxed) {
                s = lcg(s);
                let v = VertexId(((s >> 33) % n) as u32);
                if i.is_multiple_of(16) {
                    let t0 = Instant::now();
                    let _ = shared.query(v);
                    lat.push(t0.elapsed().as_nanos() as f64 / 1e3);
                } else {
                    let _ = shared.query(v);
                }
                i += 1;
            }
            lat
        });

        let replayed_before = shared.maintenance_stats().updates_replayed;
        let t0 = Instant::now();
        shared.begin_rejuvenation().expect("not poisoned");
        let mut maintain_calls = 0usize;
        let mut tail_it = tail.iter();
        loop {
            // Interleave tail writes with cooperative chunks: while the
            // rebuild is in flight they queue, afterwards they apply
            // directly — both paths must serve readers unblocked.
            if let Some(&u) = tail_it.next() {
                shared.apply_batch(&[u]).expect("tail ops are valid");
            }
            maintain_calls += 1;
            if shared.maintain(256).expect("rebuild healthy") == MaintenanceStatus::Serving
                && tail_it.len() == 0
            {
                break;
            }
        }
        let duration = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
        let lat = reader.join().expect("reader thread");
        (
            RejuvenationWindow {
                duration,
                replayed: shared.maintenance_stats().updates_replayed - replayed_before,
                maintain_calls,
                reader_p50_us: 0.0,
                reader_p99_us: 0.0,
                reader_queries: 0,
            },
            lat,
        )
    });
    let mut sorted = reader_lat_us;
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let window = RejuvenationWindow {
        reader_p50_us: percentile_us(&sorted, 0.5),
        reader_p99_us: percentile_us(&sorted, 0.99),
        reader_queries: sorted.len(),
        ..window
    };
    shared.refresh();
    let rejuvenated = measure_phase("rejuvenated", &shared.snapshot(), samples, ctx.seed);

    // Phase 3: the yardstick — a from-scratch build on the same final
    // graph (tail included).
    let g_final = shared.with_read(|idx| idx.original_graph());
    let scratch_idx = CscIndex::build(&g_final, config).expect("scratch build");
    let scratch = measure_phase("scratch", &scratch_idx.freeze(), samples, ctx.seed);

    (vec![drifted, rejuvenated, scratch], window)
}

/// Appends machine-readable lines to the `CRITERION_JSON` file (the repo
/// records these in `BENCH_rejuvenate.json`).
pub fn record_json(phases: &[PhaseStats], window: &RejuvenationWindow, graph: &str) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    // The effective worker-pool width: results at different widths are
    // not comparable (see BENCHMARKING.md), so every line carries it.
    let threads = csc_core::ParallelismConfig::default().width();
    for p in phases {
        let _ = writeln!(
            f,
            "{{\"group\":\"churn_drift\",\"graph\":\"{graph}\",\"threads\":{threads},\"phase\":\"{}\",\
             \"entries\":{},\"in_entries\":{},\"out_entries\":{},\"growth_percent\":{},\
             \"churned_vertices\":{},\"dead_fraction\":{:.4},\
             \"query_p50_us\":{:.2},\"query_p99_us\":{:.2}}}",
            p.phase,
            p.entries,
            p.in_entries,
            p.out_entries,
            p.growth_percent,
            p.churned,
            p.dead_fraction,
            p.q_p50_us,
            p.q_p99_us,
        );
    }
    let _ = writeln!(
        f,
        "{{\"group\":\"rejuvenate_window\",\"graph\":\"{graph}\",\"threads\":{threads},\
         \"duration_ms\":{:.2},\"replayed\":{},\"maintain_calls\":{},\
         \"reader_p50_us\":{:.1},\"reader_p99_us\":{:.1},\"reader_queries\":{}}}",
        window.duration.as_secs_f64() * 1e3,
        window.replayed,
        window.maintain_calls,
        window.reader_p50_us,
        window.reader_p99_us,
        window.reader_queries,
    );
}

/// Runs the experiment and returns the rendered report.
pub fn run(ctx: &ExpContext) -> String {
    let (phases, window) = measure(ctx);
    record_json(&phases, &window, "G04");
    let mut table = Table::new([
        "phase",
        "entries",
        "in/out",
        "growth",
        "churned",
        "dead",
        "query p50",
        "query p99",
    ]);
    for p in &phases {
        table.row([
            p.phase.to_string(),
            p.entries.to_string(),
            format!("{}/{}", p.in_entries, p.out_entries),
            format!("{}%", p.growth_percent),
            p.churned.to_string(),
            format!("{:.1}%", p.dead_fraction * 100.0),
            format!("{:.2} us", p.q_p50_us),
            format!("{:.2} us", p.q_p99_us),
        ]);
    }
    ctx.save_csv("churn_drift", &table);
    format!(
        "Extension — churn drift and online rejuvenation (G04 analog):\n\n{}\n\
         rebuild+replay window: {} ({} maintain calls, {} updates replayed), \
         reader p50 {:.1} us / p99 {:.1} us over {} queries (never blocked)",
        table.render(),
        fmt_duration(window.duration),
        window.maintain_calls,
        window.replayed,
        window.reader_p50_us,
        window.reader_p99_us,
        window.reader_queries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use csc_graph::generators::gnm;

    #[test]
    fn churn_trace_is_valid_in_sequence() {
        let g = gnm(40, 140, 3);
        let (reduced, trace) = build_churn_trace(&g, 12, 64, 9);
        let mut sim = reduced;
        for u in &trace {
            match *u {
                GraphUpdate::InsertEdge(a, b) => sim.try_add_edge(a, b).unwrap(),
                GraphUpdate::RemoveEdge(a, b) => {
                    sim.try_remove_edge(a, b).unwrap();
                }
                GraphUpdate::AddVertex => {
                    sim.add_vertex();
                }
            }
        }
        assert!(
            trace.contains(&GraphUpdate::AddVertex),
            "vertex churn present"
        );
        assert!(sim.vertex_count() > 40);
    }

    #[test]
    fn tail_is_valid_and_exercises_the_queue() {
        let g = gnm(30, 90, 5);
        let tail = build_tail(&g, 4, 7);
        let mut sim = g;
        for u in &tail {
            match *u {
                GraphUpdate::InsertEdge(a, b) => sim.try_add_edge(a, b).unwrap(),
                GraphUpdate::RemoveEdge(a, b) => {
                    sim.try_remove_edge(a, b).unwrap();
                }
                GraphUpdate::AddVertex => {
                    sim.add_vertex();
                }
            }
        }
    }

    #[test]
    fn smoke_rejuvenation_restores_scratch_size() {
        // The acceptance criterion at smoke scale: after churn the index
        // has drifted above the from-scratch size; rejuvenation brings
        // entries back to within 10% of scratch. Latency bounds are left
        // to the real bench run (timings on 1 core are too noisy for CI).
        let ctx = ExpContext {
            scale: 0.02,
            quick: true,
            ..ExpContext::smoke()
        };
        let (phases, window) = measure(&ctx);
        let by_name = |n: &str| phases.iter().find(|p| p.phase == n).unwrap();
        let (drifted, rejuvenated, scratch) = (
            by_name("drifted"),
            by_name("rejuvenated"),
            by_name("scratch"),
        );
        assert!(
            drifted.entries >= scratch.entries,
            "churn must not shrink below scratch ({} vs {})",
            drifted.entries,
            scratch.entries
        );
        assert!(drifted.churned > 0, "trace adds churn vertices");
        let ratio = rejuvenated.entries as f64 / scratch.entries as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "rejuvenated entries {} vs scratch {} (ratio {ratio:.3})",
            rejuvenated.entries,
            scratch.entries
        );
        // The swap itself publishes a full freeze; tail updates applied
        // *after* it refreeze incrementally, so some dead space may have
        // re-accumulated — but always under the publication bound.
        assert!(
            rejuvenated.dead_fraction <= 0.5,
            "{}",
            rejuvenated.dead_fraction
        );
        assert!(window.replayed > 0, "tail landed in the replay queue");
        assert!(window.reader_queries > 0, "reader ran through the window");
    }
}
