//! Timing helpers for the experiment harness.

use std::time::{Duration, Instant};

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn time_it<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Mean duration of a set of per-operation measurements.
pub fn mean(durations: &[Duration]) -> Duration {
    if durations.is_empty() {
        return Duration::ZERO;
    }
    let total: Duration = durations.iter().sum();
    total / durations.len() as u32
}

/// The `p`-th percentile (0.0..=1.0) of the measurements.
pub fn percentile(durations: &[Duration], p: f64) -> Duration {
    if durations.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = durations.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Formats a duration at microsecond/millisecond/second granularity the
/// way the paper's axes do.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1_000.0 {
        format!("{us:.2} us")
    } else if us < 1_000_000.0 {
        format!("{:.2} ms", us / 1_000.0)
    } else {
        format!("{:.2} s", us / 1_000_000.0)
    }
}

/// Formats a byte count as the paper reports index sizes (MB).
pub fn fmt_bytes(bytes: usize) -> String {
    let mb = bytes as f64 / (1024.0 * 1024.0);
    if mb < 0.01 {
        format!("{:.1} KB", bytes as f64 / 1024.0)
    } else {
        format!("{mb:.2} MB")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_result() {
        let (x, d) = time_it(|| 21 * 2);
        assert_eq!(x, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn mean_and_percentile() {
        let ds: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        assert_eq!(mean(&ds), Duration::from_micros(5_500));
        assert_eq!(percentile(&ds, 0.0), Duration::from_millis(1));
        assert_eq!(percentile(&ds, 1.0), Duration::from_millis(10));
        assert_eq!(mean(&[]), Duration::ZERO);
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.00 s");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MB");
        assert!(fmt_bytes(100).contains("KB"));
    }
}
