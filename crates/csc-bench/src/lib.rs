//! # csc-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! CSC paper's evaluation (Section VI):
//!
//! | Paper artifact | Module | `repro` subcommand |
//! |----------------|--------|--------------------|
//! | Table IV (datasets) | [`experiments::table4`] | `table4` |
//! | Figure 9 (index time & size) | [`experiments::fig9`] | `fig9` |
//! | Figure 10 (query time by degree cluster) | [`experiments::fig10`] | `fig10` |
//! | Figure 11 (incremental updates) | [`experiments::fig11`] | `fig11` |
//! | Figure 12 (decremental updates) | [`experiments::fig12`] | `fig12` |
//! | Figure 13 (fraud case study) | [`experiments::case_study`] | `case-study` |
//! | (extension) read scalability | [`experiments::throughput`] | `throughput` |
//! | (extension) batched stream replay | [`experiments::stream_replay`] | `stream-replay` |
//!
//! Beyond the paper artifacts, `benches/snapshot.rs` pits the frozen-arena
//! snapshot read path against the nested-`Vec` live path and measures
//! reader throughput/latency under an active writer (results recorded in
//! the repo-root `BENCH_query.json`), `benches/batch.rs` replays a
//! timestamped update trace through `apply_batch` at batch sizes 1–512
//! (recorded in `BENCH_batch.json`), and the `kernel_probe` binary
//! attributes the read-path speedup between layout and kernel. See
//! `docs/BENCHMARKING.md` for how to run everything and read the outputs.
//!
//! The paper's nine SNAP/Konect graphs are replaced by seeded synthetic
//! analogs ([`datasets`]) because this environment has no network access
//! and the original builds take up to 61 hours; DESIGN.md §4 records the
//! substitution argument. Absolute numbers therefore differ from the
//! paper; EXPERIMENTS.md compares the *shapes* (who wins, by what factor,
//! where the trends bend).

pub mod datasets;
pub mod experiments;
pub mod measure;
pub mod table;
