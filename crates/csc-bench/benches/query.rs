//! Criterion bench for Figure 10: per-query latency by degree cluster,
//! BFS vs HP-SPC vs CSC.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csc_bench::datasets::{by_code, generate};
use csc_core::{CscConfig, CscIndex};
use csc_graph::properties::{degree_clusters, DegreeCluster};
use csc_graph::{OrderingStrategy, VertexId};
use csc_labeling::{scc_baseline, BfsCycleEngine, HpSpcIndex};

fn cluster_sample(g: &csc_graph::DiGraph, cluster: DegreeCluster, take: usize) -> Vec<VertexId> {
    let clusters = degree_clusters(g);
    g.vertices()
        .filter(|v| clusters[v.index()] == cluster)
        .take(take)
        .collect()
}

fn bench_query(c: &mut Criterion) {
    let spec = by_code("G04").expect("dataset exists");
    let g = generate(spec, 0.3, 42);
    let hp = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
    let csc = CscIndex::build(&g, CscConfig::default()).unwrap();

    let mut group = c.benchmark_group("fig10_query");
    for cluster in [DegreeCluster::High, DegreeCluster::Bottom] {
        let vs = cluster_sample(&g, cluster, 64);
        if vs.is_empty() {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("csc", cluster.name()), &vs, |b, vs| {
            let mut i = 0;
            b.iter(|| {
                let v = vs[i % vs.len()];
                i += 1;
                csc.query(v)
            })
        });
        group.bench_with_input(BenchmarkId::new("hpspc", cluster.name()), &vs, |b, vs| {
            let mut i = 0;
            b.iter(|| {
                let v = vs[i % vs.len()];
                i += 1;
                scc_baseline::scc_count(&hp, &g, v)
            })
        });
        group.bench_with_input(BenchmarkId::new("bfs", cluster.name()), &vs, |b, vs| {
            let mut engine = BfsCycleEngine::new(g.vertex_count());
            let mut i = 0;
            b.iter(|| {
                let v = vs[i % vs.len()];
                i += 1;
                engine.query(&g, v)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
