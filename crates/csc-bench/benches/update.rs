//! Criterion bench for Figures 11 and 12: incremental insertion under both
//! update strategies, and decremental deletion.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use csc_bench::datasets::{by_code, generate};
use csc_bench::experiments::fig11::hold_out_edges;
use csc_core::{CscConfig, CscIndex, UpdateStrategy};
use csc_graph::VertexId;

fn bench_insert(c: &mut Criterion) {
    let spec = by_code("G04").expect("dataset exists");
    let g = generate(spec, 0.15, 42);
    let (reduced, edges) = hold_out_edges(&g, 64, 7);

    let mut group = c.benchmark_group("fig11_insert");
    group.sample_size(10);
    for (name, strategy) in [
        ("redundancy", UpdateStrategy::Redundancy),
        ("minimality", UpdateStrategy::Minimality),
    ] {
        let config = CscConfig::default().with_update_strategy(strategy);
        let base = CscIndex::build(&reduced, config).unwrap();
        group.bench_with_input(BenchmarkId::new(name, "batch64"), &edges, |b, edges| {
            b.iter_batched(
                || base.clone(),
                |mut index| {
                    for &(u, v) in edges {
                        index.insert_edge(VertexId(u), VertexId(v)).unwrap();
                    }
                    index
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_delete(c: &mut Criterion) {
    let spec = by_code("G04").expect("dataset exists");
    let g = generate(spec, 0.15, 42);
    let base = CscIndex::build(&g, CscConfig::default()).unwrap();
    let victims: Vec<(u32, u32)> = g.edge_vec().into_iter().step_by(97).take(8).collect();

    let mut group = c.benchmark_group("fig12_delete");
    group.sample_size(10);
    group.bench_function("batch8", |b| {
        b.iter_batched(
            || base.clone(),
            |mut index| {
                for &(u, v) in &victims {
                    index.remove_edge(VertexId(u), VertexId(v)).unwrap();
                }
                index
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_insert, bench_delete);
criterion_main!(benches);
