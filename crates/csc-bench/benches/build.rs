//! Criterion bench for Figure 9: index construction time, HP-SPC vs CSC.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csc_bench::datasets::{by_code, generate};
use csc_core::{CscConfig, CscIndex};
use csc_graph::OrderingStrategy;
use csc_labeling::HpSpcIndex;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_build");
    group.sample_size(10);
    for code in ["G04", "EME", "WKT"] {
        let spec = by_code(code).expect("dataset exists");
        // Small scale keeps criterion's repeated builds tractable.
        let g = generate(spec, 0.08, 42);
        group.bench_with_input(BenchmarkId::new("hpspc", code), &g, |b, g| {
            b.iter(|| HpSpcIndex::build(g, OrderingStrategy::Degree).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("csc", code), &g, |b, g| {
            b.iter(|| CscIndex::build(g, CscConfig::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
