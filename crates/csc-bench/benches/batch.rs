//! Bench for the batch update engine: timestamped update traces on the
//! G04 analog, replayed through `ConcurrentIndex::apply_batch` at batch
//! sizes 1 / 8 / 64 / 512 with a snapshot reader under load.
//!
//! Two traces run: `insert` (a pure arrival stream — the paper's
//! incremental scenario, where hub-union repair and one-publish-per-batch
//! dominate) and `mixed` (50/50 insert/delete churn, where per-edge
//! deletion cost bounds the win). The acceptance signal is the
//! **per-update** column falling as the batch size grows; batch size 1 is
//! the baseline (one update, one publication at a time).
//!
//! Run with `CRITERION_JSON=BENCH_batch.json cargo bench -p csc-bench
//! --bench batch` to record machine-readable numbers; the repo keeps the
//! committed results in `BENCH_batch.json` (see `docs/BENCHMARKING.md`
//! for field meanings and the single-core variance caveat).

use criterion::{criterion_group, criterion_main, Criterion};
use csc_bench::experiments::{stream_replay, ExpContext};

fn report(stats: &[stream_replay::ReplayStats]) {
    for s in stats {
        println!(
            "bench stream_replay/{}_batch{:<4} {:>5} applied   per-batch mean {:>10.1} us   \
             per-update {:>9.1} us   per-op {:>9.1} us   publishes {:>4}   reader p99 {:>6.1} us",
            s.trace,
            s.batch_size,
            s.applied,
            s.batch_mean.as_secs_f64() * 1e6,
            s.per_update.as_secs_f64() * 1e6,
            s.per_op.as_secs_f64() * 1e6,
            s.publishes,
            s.reader_p99_us,
        );
    }
    if let (Some(first), Some(last)) = (stats.first(), stats.last()) {
        println!(
            "  {}: per-op {:.1} us at batch {} -> {:.1} us at batch {} ({:.2}x)",
            first.trace,
            first.per_op.as_secs_f64() * 1e6,
            first.batch_size,
            last.per_op.as_secs_f64() * 1e6,
            last.batch_size,
            first.per_op.as_secs_f64() / last.per_op.as_secs_f64().max(1e-12),
        );
    }
}

/// Not criterion-shaped (needs a live reader thread and whole-trace
/// replays), so this target measures by hand and reports through the
/// shared JSON channel, like `benches/snapshot.rs`.
fn bench_stream_replay(_c: &mut Criterion) {
    // Scale 0.15: single-edge deletions already cost ~100 ms here (they
    // reach several hundred ms at scale 0.3 — see benches/update.rs),
    // and the mixed trace replays hundreds of them per batch size.
    let ctx = ExpContext {
        scale: 0.15,
        ..ExpContext::default()
    };
    let sizes = [1, 8, 64, 512];
    println!("\n== group stream_replay (G04 analog @ scale 0.15, snapshot_every = 1) ==");
    let inserts = stream_replay::measure_inserts(&ctx, &sizes);
    report(&inserts);
    let mixed = stream_replay::measure(&ctx, &sizes);
    report(&mixed);
    let mut all = inserts;
    all.extend(mixed);
    stream_replay::record_json(&all, "G04");
}

criterion_group!(benches, bench_stream_replay);
criterion_main!(benches);
