//! Benches for the frozen-arena read path.
//!
//! Two questions, matching the acceptance bar of the snapshot engine:
//!
//! 1. **Kernel/layout win** — on a ≥10k-vertex graph, how much faster is a
//!    `SCCnt` query on the frozen CSR arena (`SnapshotIndex`, adaptive
//!    kernel) than on the live nested-`Vec` labels (`CscIndex`)?
//! 2. **Concurrency win** — does reader throughput survive an active
//!    writer? Lock-free snapshot readers should be unaffected, while
//!    readers that share the index `RwLock` stall behind every update.
//!
//! Run with `CRITERION_JSON=BENCH_query.json cargo bench -p csc-bench
//! --bench snapshot` to record machine-readable numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csc_bench::datasets::{by_code, generate};
use csc_core::{ConcurrentIndex, CscConfig, CscIndex};
use csc_graph::{DiGraph, VertexId};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// The ≥10k-vertex subject: the full-size G04 analog (10 879 vertices,
/// paper-density edges).
fn subject() -> DiGraph {
    let spec = by_code("G04").expect("dataset exists");
    generate(spec, 1.0, 42)
}

/// A deterministic spread of query vertices.
fn query_sample(g: &DiGraph, take: usize) -> Vec<VertexId> {
    let n = g.vertex_count() as u32;
    let mut x = 0x2545F491u32;
    (0..take)
        .map(|_| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            VertexId(x % n)
        })
        .collect()
}

fn bench_query_paths(c: &mut Criterion) {
    let g = subject();
    assert!(
        g.vertex_count() >= 10_000,
        "acceptance needs >=10k vertices"
    );
    let index = CscIndex::build(&g, CscConfig::default()).expect("build");
    let snapshot = index.freeze();
    let vs = query_sample(&g, 1024);

    let mut group = c.benchmark_group("snapshot_query");
    let param = format!("G04_n{}", g.vertex_count());
    group.bench_with_input(BenchmarkId::new("nested_vec", &param), &vs, |b, vs| {
        let mut i = 0;
        b.iter(|| {
            let v = vs[i % vs.len()];
            i += 1;
            index.query(v)
        })
    });
    group.bench_with_input(BenchmarkId::new("frozen_arena", &param), &vs, |b, vs| {
        let mut i = 0;
        b.iter(|| {
            let v = vs[i % vs.len()];
            i += 1;
            snapshot.query(v)
        })
    });
    group.finish();
}

/// Reader-side measurements for one condition.
struct ReadStats {
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
}

/// Runs `readers` threads driving `read(v)` for `window`, with an optional
/// concurrent writer, measuring aggregate throughput and per-query latency
/// percentiles.
fn measure_readers(
    readers: usize,
    window: Duration,
    read: impl Fn(VertexId) -> bool + Sync,
    writer: Option<&(dyn Fn(&AtomicBool) + Sync)>,
    n: u32,
) -> ReadStats {
    let stop = AtomicBool::new(false);
    let answered = AtomicUsize::new(0);
    let start = Instant::now();
    let mut latencies_us: Vec<f64> = std::thread::scope(|scope| {
        let writer_handle = writer.map(|w| scope.spawn(|| w(&stop)));
        let handles: Vec<_> = (0..readers)
            .map(|t| {
                let stop = &stop;
                let answered = &answered;
                let read = &read;
                scope.spawn(move || {
                    let mut local = 0usize;
                    let mut lat = Vec::with_capacity(1 << 16);
                    let mut x = (t as u32).wrapping_mul(2654435761).wrapping_add(1);
                    while !stop.load(Ordering::Relaxed) {
                        x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                        let v = VertexId(x % n);
                        let t0 = Instant::now();
                        if read(v) {
                            local += 1;
                        }
                        lat.push(t0.elapsed().as_nanos() as f64 / 1e3);
                    }
                    answered.fetch_add(local, Ordering::Relaxed);
                    lat
                })
            })
            .collect();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        let lat: Vec<f64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader thread"))
            .collect();
        if let Some(h) = writer_handle {
            h.join().expect("writer thread");
        }
        lat
    });
    let elapsed = start.elapsed().as_secs_f64();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pick = |p: f64| {
        latencies_us
            .get(((latencies_us.len().saturating_sub(1)) as f64 * p) as usize)
            .copied()
            .unwrap_or(0.0)
    };
    ReadStats {
        qps: latencies_us.len() as f64 / elapsed,
        p50_us: pick(0.5),
        p99_us: pick(0.99),
        max_us: pick(1.0),
    }
}

fn record(group: &str, bench: &str, s: &ReadStats) {
    println!(
        "bench {group}/{bench:<34} {:>10.0} q/s   p50 {:>8.1} us   p99 {:>9.1} us   max {:>9.1} us",
        s.qps, s.p50_us, s.p99_us, s.max_us
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"group\":\"{group}\",\"bench\":\"{bench}\",\"qps\":{:.0},\"p50_us\":{:.1},\"p99_us\":{:.1},\"max_us\":{:.1}}}",
                s.qps, s.p50_us, s.p99_us, s.max_us
            );
        }
    }
}

/// Reader behavior while a writer streams updates. Not criterion-shaped
/// (needs real threads and a live writer), so this target measures by hand
/// and reports through the same channels.
///
/// This container is single-core, so a CPU-bound writer inevitably takes
/// wall-clock from the readers — raw throughput under an active writer
/// drops for *any* design. What the snapshot path eliminates is the
/// *lock* stall: a locked reader blocks for the entire multi-millisecond
/// update (p99 explodes, throughput collapses to the writer's duty
/// cycle), while a snapshot reader only ever pays scheduler slices and
/// keeps serving between them.
fn bench_concurrent_readers(_c: &mut Criterion) {
    // Smaller graph than the query bench: updates must be fast enough that
    // the writer yields the core often (deletions on the full-size graph
    // run for hundreds of ms each, which on one core just measures the
    // scheduler).
    let spec = by_code("G04").expect("dataset exists");
    let g = generate(spec, 0.3, 42);
    let n = g.vertex_count() as u32;
    // Republish every 8 updates: the amortized policy a serving deployment
    // would use.
    let config = CscConfig::default().with_snapshot_every(8);
    let shared = ConcurrentIndex::new(CscIndex::build(&g, config).expect("build"));

    // The writer cycles a pool of existing edges: remove, then re-insert.
    let pool: Vec<(u32, u32)> = g.edge_vec().into_iter().step_by(97).take(64).collect();
    let writer = |stop: &AtomicBool| {
        let mut i = 0usize;
        while !stop.load(Ordering::Relaxed) {
            let (u, v) = pool[i % pool.len()];
            i += 1;
            shared
                .remove_edge(VertexId(u), VertexId(v))
                .expect("pool edge exists");
            shared
                .insert_edge(VertexId(u), VertexId(v))
                .expect("restore pool edge");
        }
    };

    let readers = 2;
    let window = Duration::from_millis(700);
    println!("\n== group snapshot_concurrent (n={n}, {readers} readers, {window:?} windows) ==");

    // Snapshot path: queries on the published Arc are lock-free.
    let snap_read = |v: VertexId| shared.snapshot().query(v).is_some();
    let idle = measure_readers(readers, window, snap_read, None, n);
    record("snapshot_concurrent", "snapshot_reads_idle_writer", &idle);
    let active = measure_readers(readers, window, snap_read, Some(&writer), n);
    record(
        "snapshot_concurrent",
        "snapshot_reads_active_writer",
        &active,
    );

    // Shared-lock path (the pre-snapshot design): every read takes the
    // index RwLock and stalls behind in-flight updates.
    let locked_read = |v: VertexId| shared.query_fresh(v).is_some();
    let locked_idle = measure_readers(readers, window, locked_read, None, n);
    record(
        "snapshot_concurrent",
        "locked_reads_idle_writer",
        &locked_idle,
    );
    let locked_active = measure_readers(readers, window, locked_read, Some(&writer), n);
    record(
        "snapshot_concurrent",
        "locked_reads_active_writer",
        &locked_active,
    );

    println!(
        "  under an active writer: snapshot reads keep {:.0}% of idle throughput \
         (p99 {:.1} us), locked reads keep {:.0}% (p99 {:.1} us)",
        100.0 * active.qps / idle.qps.max(1.0),
        active.p99_us,
        100.0 * locked_active.qps / locked_idle.qps.max(1.0),
        locked_active.p99_us,
    );
}

criterion_group!(benches, bench_query_paths, bench_concurrent_readers);
criterion_main!(benches);
