//! `CLEAN_LABEL` (Algorithm 8): eager removal of dominated label entries
//! under the minimality update strategy.
//!
//! When an update shortens paths *into* a vertex `w`, two kinds of entries
//! can become redundant: entries `(h, d, c)` in `L_in(w)` whose stored `d`
//! now exceeds the true `sd(h, w)`, and entries `(w, d, c)` in `L_out(y)`
//! (where `w` serves as the hub) with the same defect. The inverted indexes
//! locate the second kind without scanning every label list. Shortened
//! paths *out of* `w` are the mirror image.
//!
//! Removal is sound unconditionally: the test `d > dist_index(h, w)` can
//! only fire when a strictly shorter connection exists in the index, and
//! index distances never under-estimate, so only genuinely dominated
//! entries are dropped.

use crate::invert::InvertedIndex;
use crate::stats::UpdateReport;
use csc_graph::RankTable;
use csc_graph::VertexId;
use csc_labeling::{LabelSide, Labels};

/// Removes entries of `L_side(w)` dominated by strictly shorter index
/// routes, plus entries keyed by hub `w` on the opposite side's carriers.
///
/// `side == In` cleans after new shorter paths *into* `w`; `side == Out`
/// after new shorter paths *out of* `w`.
pub(crate) fn clean_label(
    labels: &mut Labels,
    inverted: &mut InvertedIndex,
    ranks: &RankTable,
    w: VertexId,
    side: LabelSide,
    report: &mut UpdateReport,
) {
    // Part 1: entries (h, d, c) in L_side(w) with d > current dist.
    let snapshot: Vec<_> = labels.side_of(w, side).to_vec();
    for e in snapshot {
        let h = ranks.vertex_at_rank(e.hub_rank());
        if h == w {
            continue; // self entries are always exact
        }
        let best = match side {
            LabelSide::In => labels.dist(h, w),
            LabelSide::Out => labels.dist(w, h),
        };
        if best.is_some_and(|d| e.dist() > d) {
            labels.remove(w, side, e.hub_rank());
            inverted.remove(side, e.hub_rank(), w);
            report.entries_removed += 1;
        }
    }

    // Part 2: entries where w is the hub, held on the opposite side by the
    // inverted carriers: (w, d, c) in L_out(y) encodes a path y ~> w, which
    // new shorter paths into w can dominate (and mirrored for Out).
    let w_rank = ranks.rank(w);
    let opposite = side.flip();
    let carriers: Vec<u32> = inverted.carriers(opposite, w_rank).to_vec();
    for y in carriers {
        let y = VertexId(y);
        if y == w {
            continue;
        }
        let Some(e) = labels.entry_for(y, opposite, w_rank) else {
            continue;
        };
        let best = match side {
            LabelSide::In => labels.dist(y, w),
            LabelSide::Out => labels.dist(w, y),
        };
        if best.is_some_and(|d| e.dist() > d) {
            labels.remove(y, opposite, w_rank);
            inverted.remove(opposite, w_rank, y);
            report.entries_removed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csc_labeling::LabelEntry;

    fn e(h: u32, d: u32, c: u64) -> LabelEntry {
        LabelEntry::new(h, d, c).unwrap()
    }

    fn identity_ranks(n: usize) -> RankTable {
        RankTable::from_order(&(0..n as u32).map(VertexId).collect::<Vec<_>>())
    }

    #[test]
    fn removes_dominated_in_entry() {
        // Vertex 2 has Lin entries via hubs 0 (dist 5, stale) and 1 (dist 1).
        // Hub 0 reaches vertex 2 in dist 2 via hub 1 (0 -> 1 dist 1; 1 -> 2
        // dist 1), so (0, 5) is dominated.
        let mut labels = Labels::new(3);
        labels.append(VertexId(0), LabelSide::Out, e(0, 0, 1));
        labels.append(VertexId(0), LabelSide::Out, e(1, 1, 1));
        labels.append(VertexId(2), LabelSide::In, e(0, 5, 1));
        labels.append(VertexId(2), LabelSide::In, e(1, 1, 1));
        let mut inv = InvertedIndex::from_labels(&labels);
        let ranks = identity_ranks(3);
        let mut report = UpdateReport::default();
        clean_label(
            &mut labels,
            &mut inv,
            &ranks,
            VertexId(2),
            LabelSide::In,
            &mut report,
        );
        assert_eq!(report.entries_removed, 1);
        assert!(labels.entry_for(VertexId(2), LabelSide::In, 0).is_none());
        assert!(labels.entry_for(VertexId(2), LabelSide::In, 1).is_some());
        inv.validate_against(&labels).unwrap();
    }

    #[test]
    fn keeps_exact_entries() {
        let mut labels = Labels::new(2);
        labels.append(VertexId(0), LabelSide::Out, e(0, 0, 1));
        labels.append(VertexId(1), LabelSide::In, e(0, 1, 1));
        labels.append(VertexId(1), LabelSide::In, e(1, 0, 1));
        let mut inv = InvertedIndex::from_labels(&labels);
        let ranks = identity_ranks(2);
        let mut report = UpdateReport::default();
        clean_label(
            &mut labels,
            &mut inv,
            &ranks,
            VertexId(1),
            LabelSide::In,
            &mut report,
        );
        assert_eq!(report.entries_removed, 0);
        assert_eq!(labels.total_entries(), 3);
    }

    #[test]
    fn cleans_hub_side_via_inverted_carriers() {
        // Vertex 1 acts as hub for vertex 2's out-label: (1, 4) in Lout(2),
        // i.e. a stale path 2 ~> 1; hub 0 connects 2 ~> 1 at distance 2.
        let mut labels = Labels::new(3);
        labels.append(VertexId(1), LabelSide::In, e(0, 1, 1)); // 0 ~> 1
        labels.append(VertexId(1), LabelSide::In, e(1, 0, 1));
        labels.append(VertexId(2), LabelSide::Out, e(0, 1, 1)); // 2 ~> 0
        labels.append(VertexId(2), LabelSide::Out, e(1, 4, 1)); // stale 2 ~> 1
        let mut inv = InvertedIndex::from_labels(&labels);
        let ranks = identity_ranks(3);
        let mut report = UpdateReport::default();
        // New shorter paths arrived *into* vertex 1.
        clean_label(
            &mut labels,
            &mut inv,
            &ranks,
            VertexId(1),
            LabelSide::In,
            &mut report,
        );
        assert_eq!(report.entries_removed, 1);
        assert!(labels.entry_for(VertexId(2), LabelSide::Out, 1).is_none());
        inv.validate_against(&labels).unwrap();
    }
}
