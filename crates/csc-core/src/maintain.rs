//! The maintenance plane: one state machine over every write path.
//!
//! Before this module, the write side of the system was four ad-hoc
//! paths — single-op insert/delete, [`apply_batch`](CscIndex::apply_batch),
//! the snapshot refreeze/compaction policy, and (missing entirely) a full
//! rebuild. [`MaintenanceEngine`] unifies them behind a three-state
//! machine:
//!
//! ```text
//!            writes apply directly, snapshots refreeze incrementally
//!           ┌───────────┐
//!           │  Serving  │◄───────────────────────────────┐
//!           └─────┬─────┘                                │
//!   policy trips  │ begin_rejuvenation                   │ replay queue
//!   or manual     ▼                                      │ drained: swap
//!         ┌──────────────┐  labels complete     ┌────────┴───────┐
//!         │  Rebuilding  ├─────────────────────►│   Replaying    │
//!         └──────────────┘  (fresh ranks over   └────────────────┘
//!           writes queue      the live graph,     writes still queue,
//!           (write-ahead),    chunked BFS)        queue drains in
//!           readers serve                         batches onto the
//!           the old state                         rejuvenated index
//! ```
//!
//! **Rejuvenation** exists because dynamic maintenance preserves
//! correctness, not quality: added vertices always rank at the bottom,
//! deletions leave redundant entries, and label size only ratchets up. A
//! long-lived index drifts away from the fresh-build one — rejuvenation
//! rebuilds labels over the *current* graph under a *freshly computed*
//! ordering, cooperatively (a bounded number of hub ranks per
//! [`step`](MaintenanceEngine::step)), while:
//!
//! * readers keep whatever [`SnapshotIndex`] they hold — nothing here
//!   ever blocks them;
//! * incoming writes are accepted optimistically into a write-ahead
//!   **replay queue** (their validity is resolved at replay with the
//!   skip-invalid semantics of [`apply_batch`](CscIndex::apply_batch));
//! * on completion the queue is replayed onto the new index, the engine
//!   swaps it in, and the next publication is forced to be a **full
//!   freeze** — an incremental refreeze against a snapshot of the old
//!   label store would be unsound, and the state machine is what makes
//!   that invariant enforceable in one place.
//!
//! [`ConcurrentIndex`](crate::ConcurrentIndex) is a thin facade over this
//! engine: it adds the lock layout and the publication slot, nothing else.

use crate::batch::{BatchReport, GraphUpdate};
use crate::build::{CoupleBfs, LabelBuildTask};
use crate::error::CscError;
use crate::health::{HealthBaseline, IndexHealth, RebuildPolicy, RebuildReason};
use crate::index::CscIndex;
use crate::invert::InvertedIndex;
use crate::snapshot::SnapshotIndex;
use crate::stats::UpdateReport;
use csc_graph::{Csr, RankTable, VertexId};
use csc_labeling::BuildStats;
use std::collections::VecDeque;
use std::time::Instant;

/// Replay drains at most this many queued updates per
/// [`step`](MaintenanceEngine::step), so one step stays bounded even
/// after a long rebuild accumulated a deep queue.
pub const REPLAY_CHUNK: usize = 256;

/// Default hub-rank budget per cooperative step (what the
/// [`ConcurrentIndex`](crate::ConcurrentIndex) facade advances per write
/// while a rebuild is in flight).
pub const DEFAULT_STEP_RANKS: usize = 64;

/// Where the engine's state machine currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaintenanceStatus {
    /// No rebuild in flight; writes apply directly.
    Serving,
    /// Label construction over the rebuild-start graph is in progress.
    Rebuilding {
        /// Hub ranks processed so far.
        ranks_done: usize,
        /// Hub ranks total (2 × vertices at rebuild start).
        ranks_total: usize,
        /// Updates waiting in the write-ahead replay queue.
        queued: usize,
    },
    /// Labels are built and swapped in; the replay queue is draining.
    Replaying {
        /// Updates still waiting in the replay queue.
        queued: usize,
    },
}

/// Counters for the engine's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Rejuvenations started (manual or policy-triggered).
    pub rejuvenations_started: u32,
    /// Rejuvenations that completed and swapped.
    pub rejuvenations_completed: u32,
    /// Rejuvenations abandoned on a build error (the previous index kept
    /// serving and the queue was replayed onto it).
    pub rejuvenations_failed: u32,
    /// Updates drained from the replay queue onto a rejuvenated index.
    pub updates_replayed: usize,
    /// Cooperative steps taken across all rebuilds.
    pub rebuild_steps: usize,
    /// Why the most recent rejuvenation started.
    pub last_reason: Option<RebuildReason>,
}

/// What one completed rejuvenation did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RejuvenationReport {
    /// Why it ran.
    pub reason: RebuildReason,
    /// Label entries before the rebuild began.
    pub entries_before: usize,
    /// Label entries after the swap and replay.
    pub entries_after: usize,
    /// Updates replayed from the write-ahead queue.
    pub replayed: usize,
    /// Wall-clock time from this driving call to completion.
    pub duration: std::time::Duration,
}

/// An in-flight rebuild: fresh ranks and an adjacency snapshot captured at
/// rebuild start (the live graph cannot change underneath — writes queue).
struct RebuildTask {
    reason: RebuildReason,
    ranks: RankTable,
    csr: Csr,
    build: LabelBuildTask,
    labels_done: bool,
}

/// The policy-driven write plane: owns the live [`CscIndex`], decides when
/// it has drifted far enough to rejuvenate, and runs the rebuild/replay
/// state machine described in the [module docs](self).
///
/// Single-threaded by design — concurrency (locks, snapshot publication)
/// is [`ConcurrentIndex`](crate::ConcurrentIndex)'s job. Standalone use:
///
/// ```
/// use csc_core::{CscConfig, CscIndex, MaintenanceEngine, RebuildReason};
/// use csc_graph::{DiGraph, VertexId};
///
/// let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 0)]);
/// let mut engine =
///     MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
///
/// // Writes go through the engine; while serving they apply directly.
/// engine.insert_edge(VertexId(0), VertexId(3)).unwrap();
/// engine.insert_edge(VertexId(3), VertexId(0)).unwrap();
///
/// // Rejuvenate: rebuild with a freshly computed ordering, replay, swap.
/// let report = engine.rejuvenate(RebuildReason::Manual).unwrap();
/// assert_eq!(report.reason, RebuildReason::Manual);
/// assert_eq!(engine.index().query(VertexId(3)).unwrap().length, 2);
/// assert_eq!(engine.health().rejuvenations, 1);
/// ```
pub struct MaintenanceEngine {
    index: CscIndex,
    rebuild: Option<RebuildTask>,
    replay: VecDeque<GraphUpdate>,
    /// `AddVertex` ops currently queued — the offset for virtual ids
    /// handed out by [`add_vertex`](Self::add_vertex) mid-rebuild.
    queued_vertices: usize,
    /// Set at every swap: the next publication must be a full freeze (the
    /// previous published snapshot addresses the *old* label store).
    full_freeze_pending: bool,
    stats: MaintenanceStats,
}

impl MaintenanceEngine {
    /// Wraps an index. The engine assumes ownership of the write plane;
    /// mutate only through it.
    pub fn new(index: CscIndex) -> Self {
        MaintenanceEngine {
            index,
            rebuild: None,
            replay: VecDeque::new(),
            queued_vertices: 0,
            full_freeze_pending: false,
            stats: MaintenanceStats::default(),
        }
    }

    /// The live index (reads are always valid; during a rebuild window it
    /// lags by the queued updates).
    pub fn index(&self) -> &CscIndex {
        &self.index
    }

    /// The rebuild policy (captured in the index configuration).
    pub fn policy(&self) -> &RebuildPolicy {
        &self.index.config().rebuild
    }

    /// Engine lifetime counters.
    pub fn maintenance_stats(&self) -> &MaintenanceStats {
        &self.stats
    }

    /// `true` while a rebuild or replay is in flight.
    pub fn is_rebuilding(&self) -> bool {
        self.rebuild.is_some()
    }

    /// Where the state machine currently is.
    pub fn status(&self) -> MaintenanceStatus {
        match &self.rebuild {
            None => MaintenanceStatus::Serving,
            Some(task) if !task.labels_done => MaintenanceStatus::Rebuilding {
                ranks_done: task.build.ranks_done() as usize,
                ranks_total: task.ranks.len(),
                queued: self.replay.len(),
            },
            Some(_) => MaintenanceStatus::Replaying {
                queued: self.replay.len(),
            },
        }
    }

    /// The live drift report, with the maintenance-plane fields (replay
    /// queue depth, rebuild flag) filled in.
    pub fn health(&self) -> IndexHealth {
        IndexHealth {
            replay_queued: self.replay.len(),
            rebuilding: self.is_rebuilding(),
            ..self.index.health()
        }
    }

    /// Inserts an edge. While serving it applies immediately and returns
    /// `Ok(Some(report))`; during a rebuild window it is queued
    /// (write-ahead) and returns `Ok(None)` — validity is then resolved at
    /// replay with the skip-invalid semantics of
    /// [`apply_batch`](CscIndex::apply_batch).
    pub fn insert_edge(
        &mut self,
        a: VertexId,
        b: VertexId,
    ) -> Result<Option<UpdateReport>, CscError> {
        if self.is_rebuilding() {
            self.enqueue(GraphUpdate::InsertEdge(a, b));
            return Ok(None);
        }
        self.index.insert_edge(a, b).map(Some)
    }

    /// Removes an edge; same serving/queued split as
    /// [`insert_edge`](Self::insert_edge).
    pub fn remove_edge(
        &mut self,
        a: VertexId,
        b: VertexId,
    ) -> Result<Option<UpdateReport>, CscError> {
        if self.is_rebuilding() {
            self.enqueue(GraphUpdate::RemoveEdge(a, b));
            return Ok(None);
        }
        self.index.remove_edge(a, b).map(Some)
    }

    /// Appends a fresh vertex and returns its id. During a rebuild window
    /// the op is queued and the returned id is *virtual* — it is the id
    /// the replay will create (current count plus queued `AddVertex`
    /// ops), so later queued edge ops may reference it.
    pub fn add_vertex(&mut self) -> VertexId {
        if self.is_rebuilding() {
            let v = VertexId((self.index.original_vertex_count() + self.queued_vertices) as u32);
            self.enqueue(GraphUpdate::AddVertex);
            return v;
        }
        self.index.add_vertex()
    }

    /// Applies a whole update window. While serving this is
    /// [`CscIndex::apply_batch`]; during a rebuild the window is queued
    /// and the returned report only carries
    /// [`updates_submitted`](BatchReport::updates_submitted) and
    /// [`queued`](BatchReport::queued).
    pub fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Result<BatchReport, CscError> {
        if self.is_rebuilding() {
            for &u in updates {
                self.enqueue(u);
            }
            return Ok(BatchReport {
                updates_submitted: updates.len(),
                queued: updates.len(),
                ..Default::default()
            });
        }
        self.index.apply_batch(updates)
    }

    fn enqueue(&mut self, update: GraphUpdate) {
        if update == GraphUpdate::AddVertex {
            self.queued_vertices += 1;
        }
        self.replay.push_back(update);
    }

    /// Starts a rejuvenation: captures fresh ranks (recomputed from the
    /// *current* graph under the configured ordering strategy, so churn
    /// vertices get re-ranked on merit) and an adjacency snapshot, and
    /// flips the machine to `Rebuilding`. Idempotent while one is already
    /// in flight. Drive it with [`step`](Self::step) or
    /// [`rejuvenate`](Self::rejuvenate).
    ///
    /// # Errors
    ///
    /// Fails on a poisoned index, or if the graph exceeds labeling
    /// capacity.
    pub fn begin_rejuvenation(&mut self, reason: RebuildReason) -> Result<(), CscError> {
        self.index.check_ready()?;
        if self.is_rebuilding() {
            return Ok(());
        }
        let original = self.index.original_graph();
        let ranks = RankTable::build(&original, self.index.config().order).bipartite_order();
        let csr = Csr::from_digraph(self.index.bipartite().graph());
        let build = LabelBuildTask::new(csr.vertex_count())?;
        self.rebuild = Some(RebuildTask {
            reason,
            ranks,
            csr,
            build,
            labels_done: false,
        });
        self.stats.rejuvenations_started += 1;
        self.stats.last_reason = Some(reason);
        Ok(())
    }

    /// Checks the policy thresholds and starts a rejuvenation if one
    /// trips (regardless of [`RebuildPolicy::auto`] — the *caller* decides
    /// whether measurement implies action). Returns the tripped reason.
    ///
    /// The engine's own [`health`](Self::health) always reports a dead
    /// fraction of `0.0` (the live nested store has no arena), so the
    /// caller that owns the served snapshot passes its real
    /// `dead_fraction` here — otherwise the
    /// [`RebuildPolicy::max_dead_percent`] threshold could never fire
    /// automatically.
    pub fn maybe_begin(
        &mut self,
        arena_dead_fraction: f64,
    ) -> Result<Option<RebuildReason>, CscError> {
        if self.is_rebuilding() {
            return Ok(None);
        }
        let health = IndexHealth {
            dead_fraction: arena_dead_fraction,
            ..self.health()
        };
        match health.triggered(self.policy()) {
            Some(reason) => {
                self.begin_rejuvenation(reason)?;
                Ok(Some(reason))
            }
            None => Ok(None),
        }
    }

    /// Advances an in-flight rejuvenation by a bounded amount of work: up
    /// to `rank_budget` hub ranks of label construction, or (once labels
    /// are complete and swapped) up to [`REPLAY_CHUNK`] queued updates of
    /// replay. Returns the state after the step; `Serving` means the
    /// rejuvenation finished. A no-op returning `Serving` when nothing is
    /// in flight.
    ///
    /// # Errors
    ///
    /// A label-capacity overflow during the rebuild abandons it: the
    /// previous index keeps serving, the queue is replayed onto it, and
    /// the error is returned ([`MaintenanceStats::rejuvenations_failed`]
    /// counts it). An overflow during *replay* poisons the index exactly
    /// like a failed [`apply_batch`](CscIndex::apply_batch).
    pub fn step(&mut self, rank_budget: usize) -> Result<MaintenanceStatus, CscError> {
        let Some(task) = self.rebuild.as_mut() else {
            return Ok(MaintenanceStatus::Serving);
        };
        self.stats.rebuild_steps += 1;
        if !task.labels_done {
            match task.build.advance(&task.csr, &task.ranks, rank_budget) {
                Ok(true) => {
                    task.labels_done = true;
                    self.swap_rebuilt();
                }
                Ok(false) => {}
                Err(e) => {
                    // Abandon: the old index is untouched and fully valid.
                    self.rebuild = None;
                    self.stats.rejuvenations_failed += 1;
                    self.drain_replay_onto_current()?;
                    return Err(e.into());
                }
            }
        } else {
            self.replay_chunk()?;
        }
        Ok(self.status())
    }

    /// Runs an in-flight (or, with `reason`, a fresh) rejuvenation to
    /// completion and reports what it did. This is the synchronous driver;
    /// cooperative callers use [`begin_rejuvenation`](Self::begin_rejuvenation)
    /// + [`step`](Self::step) instead.
    pub fn rejuvenate(&mut self, reason: RebuildReason) -> Result<RejuvenationReport, CscError> {
        let started = Instant::now();
        let entries_before = self.index.total_entries();
        let replayed_before = self.stats.updates_replayed;
        self.begin_rejuvenation(reason)?;
        let reason = self.rebuild.as_ref().map(|t| t.reason).unwrap_or(reason);
        while self.step(usize::MAX)? != MaintenanceStatus::Serving {}
        Ok(RejuvenationReport {
            reason,
            entries_before,
            entries_after: self.index.total_entries(),
            replayed: self.stats.updates_replayed - replayed_before,
            duration: started.elapsed(),
        })
    }

    /// Labels finished: assemble the rejuvenated index and swap it in.
    /// The cumulative update statistics carry over (snapshot ordering via
    /// `updates_applied` must stay monotone); the build statistics and the
    /// drift baseline are re-anchored.
    fn swap_rebuilt(&mut self) {
        let task = self.rebuild.as_mut().expect("called with a task in flight");
        let build = std::mem::replace(
            &mut task.build,
            LabelBuildTask::new(0).expect("empty task is always in capacity"),
        );
        let (labels, counters) = build.finish();
        let config = *self.index.config();
        let inverted = config
            .maintain_inverted
            .then(|| InvertedIndex::from_labels(&labels));
        let n = self.index.bipartite().graph().vertex_count();
        let mut stats = self.index.stats.clone();
        stats.build = BuildStats {
            canonical: counters.canonical,
            non_canonical: counters.non_canonical,
            pruned: counters.pruned,
            dequeues: counters.dequeues,
            saturated_counts: counters.saturated,
            build_time: stats.build.build_time,
        };
        let rejuvenations = self.index.baseline.rejuvenations + 1;
        let mut fresh = CscIndex {
            gb: self.index.gb.clone(),
            ranks: std::mem::replace(&mut task.ranks, RankTable::from_order(&[])),
            labels,
            inverted,
            config,
            stats,
            baseline: HealthBaseline {
                entries: 0,
                in_entries: 0,
                out_entries: 0,
                vertices: 0,
                rejuvenations: 0,
            },
            poisoned: false,
            workspace: CoupleBfs::new(n),
            // Reuse the retired index's pooled sweep maps and bucket
            // queue: they are graph-shape scratch, already sized right.
            sweeps: std::mem::take(&mut self.index.sweeps),
        };
        fresh.rebaseline(rejuvenations);
        // The baseline is the post-rebuild state; replayed updates then
        // count as ordinary drift on top of it.
        self.index = fresh;
        self.full_freeze_pending = true;
        self.stats.rejuvenations_completed += 1;
    }

    /// Drains up to [`REPLAY_CHUNK`] updates onto the (rejuvenated) index;
    /// finishing the queue returns the machine to `Serving`.
    fn replay_chunk(&mut self) -> Result<(), CscError> {
        let take = self.replay.len().min(REPLAY_CHUNK);
        let window: Vec<GraphUpdate> = self.replay.drain(..take).collect();
        self.queued_vertices -= window
            .iter()
            .filter(|u| **u == GraphUpdate::AddVertex)
            .count();
        if !window.is_empty() {
            self.index.apply_batch(&window)?;
            self.stats.updates_replayed += window.len();
        }
        if self.replay.is_empty() {
            self.rebuild = None;
        }
        Ok(())
    }

    /// Abandon path: replay whatever queued onto the *current* index so no
    /// accepted write is lost. (Same accounting as [`replay_chunk`] — the
    /// trailing `rebuild = None` in it is a no-op here, the abandon paths
    /// already cleared the task.)
    ///
    /// [`replay_chunk`]: Self::replay_chunk
    fn drain_replay_onto_current(&mut self) -> Result<(), CscError> {
        while !self.replay.is_empty() {
            self.replay_chunk()?;
        }
        Ok(())
    }

    /// Produces the next snapshot to publish, routing through the state
    /// machine's freeze policy: incremental
    /// ([`SnapshotIndex::refreeze_from`]) against `prev` in the steady
    /// state, a full couple-ordered freeze right after a rejuvenation swap
    /// (when `prev` addresses the retired label store) or when no previous
    /// snapshot exists.
    pub fn publish_from(&mut self, prev: Option<&SnapshotIndex>) -> SnapshotIndex {
        let dirty = self.index.labels.take_dirty();
        match prev {
            Some(p) if !self.full_freeze_pending => {
                SnapshotIndex::refreeze_from(p, &self.index, &dirty)
            }
            _ => {
                self.full_freeze_pending = false;
                self.index.freeze()
            }
        }
    }

    /// Unwraps back into the plain index. An in-flight rebuild is
    /// abandoned (never half-applied): the current index is kept and the
    /// write-ahead queue is replayed onto it, so no accepted write is
    /// lost. If that replay overflows label capacity the returned index is
    /// poisoned, exactly as a failed `apply_batch` would leave it.
    pub fn into_index(mut self) -> CscIndex {
        if self.is_rebuilding() {
            self.rebuild = None;
            self.stats.rejuvenations_failed += 1;
            let _ = self.drain_replay_onto_current();
        }
        self.index
    }
}

impl From<CscIndex> for MaintenanceEngine {
    fn from(index: CscIndex) -> Self {
        MaintenanceEngine::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CscConfig;
    use crate::verify::verify_index;
    use csc_graph::generators::{directed_cycle, gnm};
    use csc_graph::traversal::shortest_cycle_oracle;
    use csc_graph::DiGraph;

    fn assert_matches_fresh(engine: &MaintenanceEngine, context: &str) {
        let g = engine.index().original_graph();
        let fresh = CscIndex::build(&g, *engine.index().config()).unwrap();
        for v in g.vertices() {
            assert_eq!(
                engine.index().query(v),
                fresh.query(v),
                "{context}: SCCnt({v})"
            );
            assert_eq!(
                engine.index().query(v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&g, v),
                "{context}: oracle SCCnt({v})"
            );
        }
    }

    #[test]
    fn serving_writes_pass_through() {
        let g = directed_cycle(5);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
        assert_eq!(engine.status(), MaintenanceStatus::Serving);
        let report = engine.insert_edge(VertexId(2), VertexId(0)).unwrap();
        assert!(report.is_some(), "serving writes apply immediately");
        assert!(
            engine.insert_edge(VertexId(2), VertexId(0)).is_err(),
            "duplicate rejected while serving"
        );
        assert_eq!(engine.index().query(VertexId(0)).unwrap().length, 3);
    }

    #[test]
    fn manual_rejuvenation_restores_fresh_build_labels() {
        // Drift: grow the graph through churn vertices (bottom-ranked) and
        // edge flapping, then rejuvenate and compare against a fresh build
        // on the same final graph — labels and ranks must match exactly.
        let g = gnm(20, 55, 7);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
        for k in 0..4u32 {
            let nv = engine.add_vertex();
            engine.insert_edge(VertexId(k), nv).unwrap().unwrap();
            engine.insert_edge(nv, VertexId(k + 5)).unwrap().unwrap();
        }
        let victims: Vec<_> = g.edge_vec().into_iter().step_by(9).take(4).collect();
        for &(a, b) in &victims {
            engine.remove_edge(VertexId(a), VertexId(b)).unwrap();
        }
        let drifted = engine.health();
        assert_eq!(drifted.churned_vertices, 4);

        let report = engine.rejuvenate(RebuildReason::Manual).unwrap();
        assert_eq!(report.reason, RebuildReason::Manual);
        assert_eq!(report.replayed, 0);
        assert_eq!(engine.status(), MaintenanceStatus::Serving);

        let final_graph = engine.index().original_graph();
        let fresh = CscIndex::build(&final_graph, CscConfig::default()).unwrap();
        assert_eq!(engine.index().labels(), fresh.labels());
        assert_eq!(engine.index().ranks(), fresh.ranks());
        assert_eq!(report.entries_after, fresh.total_entries());
        let h = engine.health();
        assert_eq!(
            (h.growth_percent, h.churned_vertices, h.rejuvenations),
            (100, 0, 1)
        );
        verify_index(engine.index()).unwrap();
    }

    #[test]
    fn writes_queue_during_rebuild_and_replay_applies_them() {
        let g = gnm(18, 48, 3);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
        engine.begin_rejuvenation(RebuildReason::Manual).unwrap();
        let st = engine.step(2).unwrap();
        assert!(
            matches!(st, MaintenanceStatus::Rebuilding { ranks_done: 2, .. }),
            "{st:?}"
        );

        // Mid-rebuild writes: all queued, including a virtual-id vertex.
        let nv = engine.add_vertex();
        assert_eq!(nv, VertexId(18), "virtual id = current n + queued adds");
        assert_eq!(engine.insert_edge(VertexId(0), nv).unwrap(), None);
        assert_eq!(engine.insert_edge(nv, VertexId(1)).unwrap(), None);
        let br = engine
            .apply_batch(&[GraphUpdate::InsertEdge(VertexId(1), VertexId(0))])
            .unwrap();
        assert_eq!((br.queued, br.applied_updates()), (1, 0));
        assert_eq!(engine.health().replay_queued, 4);
        assert_eq!(
            engine.index().original_vertex_count(),
            18,
            "live index untouched while queued"
        );

        while engine.step(16).unwrap() != MaintenanceStatus::Serving {}
        assert_eq!(engine.index().original_vertex_count(), 19);
        assert_eq!(engine.maintenance_stats().updates_replayed, 4);
        assert_eq!(engine.health().replay_queued, 0);
        assert_matches_fresh(&engine, "after replay");
        verify_index(engine.index()).unwrap();
    }

    #[test]
    fn policy_trip_starts_rebuild_via_maybe_begin() {
        let g = directed_cycle(6);
        let config = CscConfig::default().with_rebuild_policy(
            RebuildPolicy::default()
                .with_churned_vertices(2)
                .with_auto(true),
        );
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, config).unwrap());
        assert_eq!(engine.maybe_begin(0.0).unwrap(), None);
        engine.add_vertex();
        assert_eq!(engine.maybe_begin(0.0).unwrap(), None, "below threshold");
        engine.add_vertex();
        assert_eq!(engine.maybe_begin(0.0).unwrap(), Some(RebuildReason::Churn));
        assert!(engine.is_rebuilding());
        // Idempotent while in flight.
        assert_eq!(engine.maybe_begin(0.0).unwrap(), None);
        while engine.step(usize::MAX).unwrap() != MaintenanceStatus::Serving {}
        assert_eq!(engine.health().churned_vertices, 0, "churn re-ranked away");
    }

    #[test]
    fn publish_from_forces_full_freeze_after_swap() {
        let g = directed_cycle(16);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
        engine.index.labels.take_dirty();
        let first = engine.publish_from(None);

        // Steady state: incremental refreeze tracks updates exactly.
        engine.insert_edge(VertexId(0), VertexId(9)).unwrap();
        engine.insert_edge(VertexId(9), VertexId(0)).unwrap();
        let second = engine.publish_from(Some(&first));
        assert_eq!(second.total_entries(), engine.index().total_entries());

        // Rejuvenate: the old arena is retired, the next publish must not
        // patch into it.
        engine.rejuvenate(RebuildReason::Manual).unwrap();
        let third = engine.publish_from(Some(&second));
        assert_eq!(third.total_entries(), engine.index().total_entries());
        assert_eq!(third.labels().dead_entries(), 0, "full freeze, not a patch");
        for v in 0..16u32 {
            let v = VertexId(v);
            assert_eq!(third.query(v), engine.index().query(v), "SCCnt({v})");
        }
        // And the publication after that is incremental again.
        engine.remove_edge(VertexId(0), VertexId(9)).unwrap();
        let fourth = engine.publish_from(Some(&third));
        assert_eq!(fourth.total_entries(), engine.index().total_entries());
    }

    #[test]
    fn into_index_abandons_rebuild_without_losing_writes() {
        let g = directed_cycle(7);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
        engine.begin_rejuvenation(RebuildReason::Manual).unwrap();
        engine.step(1).unwrap();
        engine.insert_edge(VertexId(3), VertexId(0)).unwrap();
        let index = engine.into_index();
        assert!(!index.is_poisoned());
        assert_eq!(
            index.query(VertexId(0)).unwrap().length,
            4,
            "queued write replayed onto the abandoned-state index"
        );
    }

    #[test]
    fn empty_graph_rejuvenates() {
        let g = DiGraph::new(0);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
        let report = engine.rejuvenate(RebuildReason::Manual).unwrap();
        assert_eq!(report.entries_after, 0);
        assert_eq!(engine.status(), MaintenanceStatus::Serving);
    }
}
