//! The maintenance plane: one state machine over every write path.
//!
//! Before this module, the write side of the system was four ad-hoc
//! paths — single-op insert/delete, [`apply_batch`](CscIndex::apply_batch),
//! the snapshot refreeze/compaction policy, and (missing entirely) a full
//! rebuild. [`MaintenanceEngine`] unifies them behind one state machine:
//!
//! ```text
//!            writes apply directly, snapshots refreeze incrementally
//!           ┌───────────┐
//!           │  Serving  │◄───────────────────────────────┐
//!           └─────┬─────┘                                │
//!   policy trips  │ begin_rejuvenation                   │ replay queue
//!   or manual     ▼                                      │ drained: swap
//!         ┌──────────────┐  labels complete     ┌────────┴───────┐
//!         │  Rebuilding  ├─────────────────────►│   Replaying    │
//!         └──────────────┘  (fresh ranks over   └────────────────┘
//!           writes queue      the live graph,     writes still queue,
//!           (write-ahead),    chunked BFS)        queue drains in
//!           readers serve                         batches onto the
//!           the old state                         rejuvenated index
//!
//!   any state ──panic caught──► ┌──────────┐  recover_in_place  ┌────────────┐
//!   (write path, rebuild chunk, │ Degraded │ ──────────────────►│ Recovering │
//!    queue replay)              └──────────┘                    └──────┬─────┘
//!     writes refused (Poisoned),  readers keep                        │ swap
//!     last published snapshot     answering                           ▼
//!     still serves                                                 Serving
//! ```
//!
//! **Rejuvenation** exists because dynamic maintenance preserves
//! correctness, not quality: added vertices always rank at the bottom,
//! deletions leave redundant entries, and label size only ratchets up. A
//! long-lived index drifts away from the fresh-build one — rejuvenation
//! rebuilds labels over the *current* graph under a *freshly computed*
//! ordering, cooperatively (a bounded number of hub ranks per
//! [`step`](MaintenanceEngine::step)), while:
//!
//! * readers keep whatever [`SnapshotIndex`] they hold — nothing here
//!   ever blocks them;
//! * incoming writes are accepted optimistically into a write-ahead
//!   **replay queue** (their validity is resolved at replay with the
//!   skip-invalid semantics of [`apply_batch`](CscIndex::apply_batch));
//! * on completion the queue is replayed onto the new index, the engine
//!   swaps it in, and the next publication is forced to be a **full
//!   freeze** — an incremental refreeze against a snapshot of the old
//!   label store would be unsound, and the state machine is what makes
//!   that invariant enforceable in one place.
//!
//! [`ConcurrentIndex`](crate::ConcurrentIndex) is a thin facade over this
//! engine: it adds the lock layout and the publication slot, nothing else.

use crate::batch::{BatchReport, GraphUpdate};
use crate::build::{CoupleBfs, LabelBuildTask};
use crate::config::OverloadPolicy;
use crate::error::CscError;
use crate::guard::{Deadline, RetryPolicy};
use crate::health::{HealthBaseline, IndexHealth, RebuildPolicy, RebuildReason};
use crate::index::CscIndex;
use crate::invert::InvertedIndex;
use crate::snapshot::SnapshotIndex;
use crate::stats::UpdateReport;
use crate::verify::check_integrity;
use crate::wal::{self, WriteAheadLog};
use csc_graph::{Csr, RankTable, VertexId};
use csc_labeling::BuildStats;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Renders a caught panic payload as a human-readable message (panics
/// raised with `panic!("...")` carry a `&str` or `String`; anything else
/// is opaque).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Replay drains at most this many queued updates per
/// [`step`](MaintenanceEngine::step), so one step stays bounded even
/// after a long rebuild accumulated a deep queue.
pub const REPLAY_CHUNK: usize = 256;

/// Default hub-rank budget per cooperative step (what the
/// [`ConcurrentIndex`](crate::ConcurrentIndex) facade advances per write
/// while a rebuild is in flight).
pub const DEFAULT_STEP_RANKS: usize = 64;

/// Backoff schedule for re-attempting a rejuvenation after one was
/// abandoned (deadline-aborted or failed): attempts are unbounded — the
/// drift that tripped the policy does not go away — but each retry waits
/// `50ms * 2^k`, capped at 5s, so a persistently stuck rebuild cannot
/// busy-loop the engine.
const REBUILD_RETRY: RetryPolicy = RetryPolicy {
    max_attempts: u32::MAX,
    base: std::time::Duration::from_millis(50),
    cap: std::time::Duration::from_secs(5),
};

/// Where the engine's state machine currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaintenanceStatus {
    /// No rebuild in flight; writes apply directly.
    Serving,
    /// Label construction over the rebuild-start graph is in progress.
    Rebuilding {
        /// Hub ranks processed so far.
        ranks_done: usize,
        /// Hub ranks total (2 × vertices at rebuild start).
        ranks_total: usize,
        /// Updates waiting in the write-ahead replay queue.
        queued: usize,
    },
    /// Labels are built and swapped in; the replay queue is draining.
    Replaying {
        /// Updates still waiting in the replay queue.
        queued: usize,
    },
    /// A write-path panic (or a failed post-swap integrity check) tore
    /// the live index. Writes are refused with [`CscError::Poisoned`];
    /// readers keep being served the last published snapshot. Leave via
    /// [`recover_in_place`](MaintenanceEngine::recover_in_place) (or
    /// [`ConcurrentIndex::recover`](crate::ConcurrentIndex::recover)).
    Degraded,
    /// The tracked heap footprint exceeds
    /// [`CscConfig::memory_budget`](crate::CscConfig::memory_budget) even
    /// after a forced compacting rebuild. Writes are refused with
    /// [`CscError::Saturated`]; readers are unaffected (same contract as
    /// `Degraded`). Leave by raising the budget
    /// ([`set_memory_budget`](MaintenanceEngine::set_memory_budget)) or
    /// by a manual rejuvenation that shrinks the footprint.
    Saturated,
    /// A recovery is rebuilding the index from checkpoint + WAL (or from
    /// the live graph) before atomically swapping it back in. Reported
    /// by the concurrent facade while
    /// [`recover`](crate::ConcurrentIndex::recover) runs; readers keep
    /// the last published snapshot throughout.
    Recovering,
}

/// Counters for the engine's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Rejuvenations started (manual or policy-triggered).
    pub rejuvenations_started: u32,
    /// Rejuvenations that completed and swapped.
    pub rejuvenations_completed: u32,
    /// Rejuvenations abandoned on a build error (the previous index kept
    /// serving and the queue was replayed onto it).
    pub rejuvenations_failed: u32,
    /// Updates drained from the replay queue onto a rejuvenated index.
    pub updates_replayed: usize,
    /// Cooperative steps taken across all rebuilds.
    pub rebuild_steps: usize,
    /// Why the most recent rejuvenation started.
    pub last_reason: Option<RebuildReason>,
    /// Times the engine entered the `Degraded` state (write-path panic
    /// or failed integrity check).
    pub degradations: u32,
    /// Successful recoveries back to `Serving`.
    pub recoveries: u32,
}

/// What a recovery ([`MaintenanceEngine::recover`] /
/// [`recover_in_place`](MaintenanceEngine::recover_in_place)) did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint the recovery started from
    /// (`0` with no WAL-backed durability — the index was rebuilt from
    /// the live graph instead).
    pub checkpoint_seq: u64,
    /// Newer checkpoint generations that were skipped as unreadable
    /// (torn or bit-flipped) before one loaded.
    pub checkpoints_skipped: usize,
    /// WAL records (update windows) replayed on top of the checkpoint.
    pub records_replayed: usize,
    /// Individual updates contained in those windows (or, without
    /// durability, replayed from the in-memory queue).
    pub updates_replayed: usize,
    /// Bytes of torn tail / trailing corruption dropped from the WAL.
    pub wal_truncated_bytes: u64,
    /// Whether the post-recovery [`check_integrity`] sweep ran (it is
    /// gated by [`DurabilityConfig::check_integrity`](crate::DurabilityConfig)).
    pub integrity_checked: bool,
}

/// The engine's attachment to a durability directory: the live
/// write-ahead log plus checkpoint bookkeeping.
struct Durability {
    dir: PathBuf,
    wal: WriteAheadLog,
    /// Update windows logged since the last checkpoint; compared against
    /// [`DurabilityConfig::checkpoint_every`](crate::DurabilityConfig).
    windows_since_checkpoint: u32,
}

/// What one completed rejuvenation did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RejuvenationReport {
    /// Why it ran.
    pub reason: RebuildReason,
    /// Label entries before the rebuild began.
    pub entries_before: usize,
    /// Label entries after the swap and replay.
    pub entries_after: usize,
    /// Updates replayed from the write-ahead queue.
    pub replayed: usize,
    /// Wall-clock time from this driving call to completion.
    pub duration: std::time::Duration,
}

/// An in-flight rebuild: fresh ranks and an adjacency snapshot captured at
/// rebuild start (the live graph cannot change underneath — writes queue).
struct RebuildTask {
    reason: RebuildReason,
    ranks: RankTable,
    csr: Csr,
    build: LabelBuildTask,
    labels_done: bool,
}

/// The policy-driven write plane: owns the live [`CscIndex`], decides when
/// it has drifted far enough to rejuvenate, and runs the rebuild/replay
/// state machine described in the [module docs](self).
///
/// Single-threaded by design — concurrency (locks, snapshot publication)
/// is [`ConcurrentIndex`](crate::ConcurrentIndex)'s job. Standalone use:
///
/// ```
/// use csc_core::{CscConfig, CscIndex, MaintenanceEngine, RebuildReason};
/// use csc_graph::{DiGraph, VertexId};
///
/// let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 0)]);
/// let mut engine =
///     MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
///
/// // Writes go through the engine; while serving they apply directly.
/// engine.insert_edge(VertexId(0), VertexId(3)).unwrap();
/// engine.insert_edge(VertexId(3), VertexId(0)).unwrap();
///
/// // Rejuvenate: rebuild with a freshly computed ordering, replay, swap.
/// let report = engine.rejuvenate(RebuildReason::Manual).unwrap();
/// assert_eq!(report.reason, RebuildReason::Manual);
/// assert_eq!(engine.index().query(VertexId(3)).unwrap().length, 2);
/// assert_eq!(engine.health().rejuvenations, 1);
/// ```
pub struct MaintenanceEngine {
    index: CscIndex,
    rebuild: Option<RebuildTask>,
    replay: VecDeque<GraphUpdate>,
    /// `AddVertex` ops currently queued — the offset for virtual ids
    /// handed out by [`add_vertex`](Self::add_vertex) mid-rebuild.
    queued_vertices: usize,
    /// Set at every swap: the next publication must be a full freeze (the
    /// previous published snapshot addresses the *old* label store).
    full_freeze_pending: bool,
    /// `Some(detail)` after a write-path panic (or failed integrity
    /// check): the engine refuses writes and publication until
    /// [`recover_in_place`](Self::recover_in_place).
    degraded: Option<String>,
    /// WAL + checkpoint attachment; `None` runs the engine exactly as
    /// before the durability plane existed.
    durability: Option<Durability>,
    /// `Some(detail)` after persistent I/O failure forced the durability
    /// plane into in-memory-only mode (the attachment was dropped but
    /// the engine keeps serving and accepting writes). Cleared by a
    /// successful [`attach_durability`](Self::attach_durability).
    durability_degraded: Option<String>,
    /// Writes refused under [`OverloadPolicy::Reject`], lifetime.
    writes_rejected: u64,
    /// Queued updates dropped under [`OverloadPolicy::ShedOldest`],
    /// lifetime.
    writes_shed: u64,
    /// Tracked heap footprint as of the last measurement (`0` until a
    /// memory budget is configured).
    memory_bytes: usize,
    /// `true` while the footprint exceeds the budget even after forced
    /// compaction; writes are refused with [`CscError::Saturated`].
    saturated: bool,
    /// Torn-tail WAL bytes dropped by recoveries, lifetime.
    wal_truncated_total: u64,
    /// Consecutive abandoned rejuvenations (resets when one completes);
    /// drives the [`REBUILD_RETRY`] backoff exponent.
    rebuild_failures: u32,
    /// [`maybe_begin`](Self::maybe_begin) refuses to start an automatic
    /// rejuvenation before this instant (backoff after an abandon).
    rebuild_retry_at: Option<Instant>,
    stats: MaintenanceStats,
}

impl MaintenanceEngine {
    /// Wraps an index. The engine assumes ownership of the write plane;
    /// mutate only through it.
    pub fn new(index: CscIndex) -> Self {
        MaintenanceEngine {
            index,
            rebuild: None,
            replay: VecDeque::new(),
            queued_vertices: 0,
            full_freeze_pending: false,
            degraded: None,
            durability: None,
            durability_degraded: None,
            writes_rejected: 0,
            writes_shed: 0,
            memory_bytes: 0,
            saturated: false,
            wal_truncated_total: 0,
            rebuild_failures: 0,
            rebuild_retry_at: None,
            stats: MaintenanceStats::default(),
        }
    }

    /// The live index (reads are always valid; during a rebuild window it
    /// lags by the queued updates).
    pub fn index(&self) -> &CscIndex {
        &self.index
    }

    /// The rebuild policy (captured in the index configuration).
    pub fn policy(&self) -> &RebuildPolicy {
        &self.index.config().rebuild
    }

    /// Retargets the ordering strategy (see [`CscIndex::set_order`]): the
    /// next rejuvenation recomputes the order under the new strategy and
    /// migrates the labeling to it. A rebuild already in flight keeps the
    /// order it captured when it began.
    pub fn set_order(&mut self, order: csc_graph::OrderingStrategy) -> Result<(), CscError> {
        self.index.set_order(order)
    }

    /// Engine lifetime counters.
    pub fn maintenance_stats(&self) -> &MaintenanceStats {
        &self.stats
    }

    /// `true` while a rebuild or replay is in flight.
    pub fn is_rebuilding(&self) -> bool {
        self.rebuild.is_some()
    }

    /// `true` after a write-path panic degraded the engine; writes are
    /// refused until [`recover_in_place`](Self::recover_in_place).
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// Why the engine is degraded, when it is.
    pub fn degraded_detail(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// `true` when a durability directory is attached (writes are
    /// WAL-logged and periodically checkpointed).
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The attached durability directory, if any.
    pub fn durability_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir.as_path())
    }

    /// Where the state machine currently is.
    pub fn status(&self) -> MaintenanceStatus {
        if self.degraded.is_some() {
            return MaintenanceStatus::Degraded;
        }
        if self.saturated && !self.is_rebuilding() {
            return MaintenanceStatus::Saturated;
        }
        match &self.rebuild {
            None => MaintenanceStatus::Serving,
            Some(task) if !task.labels_done => MaintenanceStatus::Rebuilding {
                ranks_done: task.build.ranks_done() as usize,
                ranks_total: task.ranks.len(),
                queued: self.replay.len(),
            },
            Some(_) => MaintenanceStatus::Replaying {
                queued: self.replay.len(),
            },
        }
    }

    /// The live drift report, with the maintenance-plane fields (replay
    /// queue depth, rebuild flag, overload counters, memory footprint,
    /// durability degradation) filled in.
    pub fn health(&self) -> IndexHealth {
        IndexHealth {
            replay_queued: self.replay.len(),
            rebuilding: self.is_rebuilding(),
            writes_rejected: self.writes_rejected,
            writes_shed: self.writes_shed,
            memory_bytes: self.memory_bytes,
            saturated: self.saturated,
            durability_degraded: self.durability_degraded.is_some(),
            wal_truncated_bytes: self.wal_truncated_total,
            ..self.index.health()
        }
    }

    /// `true` while the engine refuses writes because the tracked
    /// footprint exceeds the memory budget even after forced compaction.
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Why the durability plane was dropped into in-memory-only mode,
    /// when it was (persistent I/O failure after exhausted retries).
    pub fn durability_degraded_detail(&self) -> Option<&str> {
        self.durability_degraded.as_deref()
    }

    /// Retunes the memory budget on a live engine (`0` disables) and
    /// re-measures immediately — the operator's exit from the
    /// `Saturated` state.
    pub fn set_memory_budget(&mut self, bytes: usize) {
        self.index.config.memory_budget = bytes;
        self.measure_memory();
    }

    /// Inserts an edge. While serving it applies immediately and returns
    /// `Ok(Some(report))`; during a rebuild window it is queued
    /// (write-ahead) and returns `Ok(None)` — validity is then resolved at
    /// replay with the skip-invalid semantics of
    /// [`apply_batch`](CscIndex::apply_batch).
    pub fn insert_edge(
        &mut self,
        a: VertexId,
        b: VertexId,
    ) -> Result<Option<UpdateReport>, CscError> {
        self.admit_write()?;
        self.log_window(&[GraphUpdate::InsertEdge(a, b)])?;
        if self.is_rebuilding() {
            self.enqueue(GraphUpdate::InsertEdge(a, b));
            return Ok(None);
        }
        let report = self.protected("insert_edge", |idx| idx.insert_edge(a, b))?;
        self.maybe_checkpoint()?;
        self.enforce_memory_budget()?;
        Ok(Some(report))
    }

    /// Removes an edge; same serving/queued split as
    /// [`insert_edge`](Self::insert_edge).
    pub fn remove_edge(
        &mut self,
        a: VertexId,
        b: VertexId,
    ) -> Result<Option<UpdateReport>, CscError> {
        self.admit_write()?;
        self.log_window(&[GraphUpdate::RemoveEdge(a, b)])?;
        if self.is_rebuilding() {
            self.enqueue(GraphUpdate::RemoveEdge(a, b));
            return Ok(None);
        }
        let report = self.protected("remove_edge", |idx| idx.remove_edge(a, b))?;
        self.maybe_checkpoint()?;
        self.enforce_memory_budget()?;
        Ok(Some(report))
    }

    /// Appends a fresh vertex and returns its id. During a rebuild window
    /// the op is queued and the returned id is *virtual* — it is the id
    /// the replay will create (current count plus queued `AddVertex`
    /// ops), so later queued edge ops may reference it.
    ///
    /// # Errors
    ///
    /// A degraded engine refuses the write ([`CscError::Poisoned`]), a
    /// saturated one too ([`CscError::Saturated`]), and the backpressure
    /// policy may refuse it ([`CscError::Overloaded`]) while a rebuild's
    /// replay queue sits at its high watermark.
    pub fn add_vertex(&mut self) -> Result<VertexId, CscError> {
        self.admit_write()?;
        self.log_window(&[GraphUpdate::AddVertex])?;
        if self.is_rebuilding() {
            let v = VertexId((self.index.original_vertex_count() + self.queued_vertices) as u32);
            self.enqueue(GraphUpdate::AddVertex);
            return Ok(v);
        }
        let v = self.protected("add_vertex", |idx| Ok(idx.add_vertex()))?;
        self.maybe_checkpoint()?;
        self.enforce_memory_budget()?;
        Ok(v)
    }

    /// Applies a whole update window. While serving this is
    /// [`CscIndex::apply_batch`]; during a rebuild the window is queued
    /// and the returned report only carries
    /// [`updates_submitted`](BatchReport::updates_submitted) and
    /// [`queued`](BatchReport::queued).
    pub fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Result<BatchReport, CscError> {
        self.admit_write()?;
        if !updates.is_empty() {
            self.log_window(updates)?;
        }
        if self.is_rebuilding() {
            for &u in updates {
                self.enqueue(u);
            }
            return Ok(BatchReport {
                updates_submitted: updates.len(),
                queued: updates.len(),
                ..Default::default()
            });
        }
        let report = self.protected("apply_batch", |idx| idx.apply_batch(updates))?;
        self.maybe_checkpoint()?;
        self.enforce_memory_budget()?;
        Ok(report)
    }

    /// [`apply_batch`](Self::apply_batch) under a wall-clock deadline.
    ///
    /// At the engine level the deadline is an **admission** check only:
    /// it is evaluated before the window is WAL-logged, so a refused
    /// batch leaves no trace anywhere — retry it verbatim later. Once
    /// admitted the batch runs to completion, because a window that has
    /// reached the log must also reach the index (aborting between the
    /// two would make recovery resurrect an op the caller saw fail).
    pub fn apply_batch_deadline(
        &mut self,
        updates: &[GraphUpdate],
        deadline: Deadline,
    ) -> Result<BatchReport, CscError> {
        deadline.admit()?;
        self.apply_batch(updates)
    }

    fn enqueue(&mut self, update: GraphUpdate) {
        if update == GraphUpdate::AddVertex {
            self.queued_vertices += 1;
        }
        self.replay.push_back(update);
    }

    /// A degraded engine refuses every write until recovery.
    fn check_writable(&self) -> Result<(), CscError> {
        match &self.degraded {
            Some(detail) => Err(CscError::poisoned(detail.clone())),
            None => Ok(()),
        }
    }

    /// Full write admission, run *before* the op is WAL-logged (a refused
    /// op must not exist in the log): degraded → [`CscError::Poisoned`];
    /// saturated → re-measure (a raised budget or compaction since the
    /// last measurement exits the state), then [`CscError::Saturated`];
    /// finally the backpressure policy over the replay queue.
    fn admit_write(&mut self) -> Result<(), CscError> {
        self.check_writable()?;
        if self.saturated {
            self.measure_memory();
            if self.saturated {
                return Err(CscError::Saturated {
                    bytes: self.memory_bytes,
                    budget: self.index.config().memory_budget,
                });
            }
        }
        self.apply_backpressure()
    }

    /// Applies the configured [`OverloadPolicy`] when the replay queue
    /// sits at or above its high watermark (only possible while a
    /// rebuild is in flight — a serving engine's queue is empty).
    fn apply_backpressure(&mut self) -> Result<(), CscError> {
        let cfg = self.index.config().overload;
        if !self.is_rebuilding() || !cfg.over_high(self.replay.len()) {
            return Ok(());
        }
        match cfg.policy {
            OverloadPolicy::Block => {
                // "Blocking" in a single-threaded engine means doing the
                // maintenance work inline: drive the rebuild until the
                // queue drains under the low watermark (or the
                // rejuvenation finishes and the queue empties).
                while self.is_rebuilding() && !cfg.under_low(self.replay.len()) {
                    self.step(DEFAULT_STEP_RANKS)?;
                }
                Ok(())
            }
            OverloadPolicy::Reject => {
                self.writes_rejected += 1;
                Err(CscError::Overloaded {
                    queued: self.replay.len(),
                    limit: cfg.high_watermark as usize,
                })
            }
            OverloadPolicy::ShedOldest => {
                // Lossy: drop the oldest queued updates down to the low
                // watermark. They were WAL-logged when accepted, so a
                // recovery replays them anyway — the documented
                // divergence of this mode (`docs/ARCHITECTURE.md`).
                while !cfg.under_low(self.replay.len()) {
                    let Some(u) = self.replay.pop_front() else {
                        break;
                    };
                    if u == GraphUpdate::AddVertex {
                        self.queued_vertices -= 1;
                    }
                    self.writes_shed += 1;
                }
                Ok(())
            }
        }
    }

    /// Re-measures the tracked footprint against the configured budget
    /// (no-op beyond zeroing when the budget is disabled).
    fn measure_memory(&mut self) {
        if self.index.config().memory_budget == 0 {
            self.memory_bytes = 0;
            self.saturated = false;
            return;
        }
        self.memory_bytes =
            self.index.memory_bytes() + self.replay.len() * std::mem::size_of::<GraphUpdate>();
        self.saturated = self.memory_bytes > self.index.config().memory_budget;
    }

    /// Budget enforcement, run once per directly-applied window (the
    /// measurement is `O(n)` over the label store — too expensive per
    /// op). A breach forces one compacting rejuvenation; if the
    /// footprint still exceeds the budget the engine enters `Saturated`
    /// and refuses subsequent writes (the breaching write itself has
    /// already committed). Skipped mid-rebuild: the in-flight
    /// rejuvenation is already the compaction.
    fn enforce_memory_budget(&mut self) -> Result<(), CscError> {
        if self.index.config().memory_budget == 0 {
            return Ok(());
        }
        self.measure_memory();
        if self.saturated && !self.is_rebuilding() {
            self.rejuvenate(RebuildReason::Memory)?;
            self.measure_memory();
        }
        Ok(())
    }

    /// Runs a write-path operation under `catch_unwind`. A panic
    /// poisons the index (its in-memory invariants may be torn
    /// mid-repair) and degrades the engine: subsequent writes are
    /// refused, while readers keep whatever snapshot they were last
    /// published. An `Err` that left the index poisoned (label-capacity
    /// overflow mid-repair) degrades the same way.
    fn protected<R>(
        &mut self,
        op: &str,
        f: impl FnOnce(&mut CscIndex) -> Result<R, CscError>,
    ) -> Result<R, CscError> {
        let index = &mut self.index;
        match catch_unwind(AssertUnwindSafe(|| f(index))) {
            Ok(Ok(r)) => Ok(r),
            Ok(Err(e)) => {
                if self.index.is_poisoned() && self.degraded.is_none() {
                    self.degrade(
                        self.index
                            .poison_detail()
                            .unwrap_or("write failure")
                            .to_string(),
                    );
                }
                Err(e)
            }
            Err(payload) => {
                let detail = format!("panic during {op}: {}", panic_message(&*payload));
                self.index.poison(detail.clone());
                self.degrade(detail.clone());
                Err(CscError::poisoned(detail))
            }
        }
    }

    fn degrade(&mut self, detail: String) {
        self.degraded = Some(detail);
        self.stats.degradations += 1;
    }

    /// Write-ahead: appends the window to the WAL (when attached)
    /// *before* it is applied or queued. Transient I/O failures are
    /// retried under [`DurabilityConfig::io_retry`](crate::DurabilityConfig)
    /// (each failed attempt's partial bytes rolled back — see
    /// [`WriteAheadLog::append_retrying`]); a persistent failure (e.g.
    /// `ENOSPC`) drops the durability plane into loud in-memory-only
    /// mode — recorded in [`health`](Self::health) — and the write
    /// proceeds unlogged rather than poisoning the engine.
    fn log_window(&mut self, window: &[GraphUpdate]) -> Result<(), CscError> {
        let retry = self.index.config().durability.io_retry;
        let Some(d) = self.durability.as_mut() else {
            return Ok(());
        };
        let seq = d.wal.last_seq() + 1;
        match d.wal.append_retrying(seq, window, &retry) {
            Ok(()) => {
                d.windows_since_checkpoint += 1;
                Ok(())
            }
            Err(e) => {
                self.degrade_durability(format!("wal append failed: {e}"));
                Ok(())
            }
        }
    }

    /// Persistent I/O failure: drop the durability attachment and record
    /// it. The engine keeps serving and accepting writes; nothing is
    /// logged or checkpointed until an operator re-attaches durability
    /// (after which a fresh checkpoint re-covers the full state).
    fn degrade_durability(&mut self, detail: String) {
        self.durability = None;
        self.durability_degraded = Some(detail);
    }

    /// Checkpoints when the cadence says so. Deferred while a
    /// rejuvenation is in flight: queued (logged but unapplied) windows
    /// must stay in the WAL suffix, and rotating the log at a checkpoint
    /// would drop them.
    fn maybe_checkpoint(&mut self) -> Result<(), CscError> {
        if self.degraded.is_some() || self.is_rebuilding() {
            return Ok(());
        }
        let Some(d) = self.durability.as_ref() else {
            return Ok(());
        };
        if d.windows_since_checkpoint >= self.index.config().durability.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Writes a checkpoint of the live index now (atomic
    /// temp-write-and-rename), rotates the WAL behind it, and prunes old
    /// generations. Returns the covered sequence number, or `None` when
    /// skipped — no durability attached, or a rejuvenation in flight
    /// (deferred until the replay queue drains, so queued-but-unapplied
    /// writes always stay inside the WAL suffix a recovery would replay).
    /// Transient I/O failures in the checkpoint write or the log
    /// rotation are retried under
    /// [`DurabilityConfig::io_retry`](crate::DurabilityConfig); a
    /// persistent failure degrades durability to in-memory-only mode
    /// (recorded in [`health`](Self::health)) and returns `Ok(None)` —
    /// the previous checkpoint + WAL on disk stay valid.
    pub fn checkpoint(&mut self) -> Result<Option<u64>, CscError> {
        if self.durability.is_none() || self.is_rebuilding() {
            return Ok(None);
        }
        let bytes = self.index.to_bytes()?;
        let keep = self.index.config().durability.keep_checkpoints as usize;
        let retry = self.index.config().durability.io_retry;
        let d = self.durability.as_mut().expect("checked above");
        let seq = d.wal.last_seq();
        let outcome = retry
            .run(seq, |_| {
                wal::write_checkpoint(&d.dir, seq, &bytes).map(|_| ())
            })
            .and_then(|()| retry.run(seq ^ 1, |_| d.wal.rotate(seq)));
        match outcome {
            Ok(()) => {
                d.windows_since_checkpoint = 0;
                wal::prune_checkpoints(&d.dir, keep);
                Ok(Some(seq))
            }
            Err(e) => {
                self.degrade_durability(format!("checkpoint at seq {seq} failed: {e}"));
                Ok(None)
            }
        }
    }

    /// Attaches a durability directory: writes an initial checkpoint of
    /// the current index and opens a fresh WAL behind it, so every
    /// subsequent write is logged before it applies and
    /// [`recover`](Self::recover) can reconstruct the index after a
    /// crash. Returns the initial checkpoint's sequence number.
    ///
    /// To *resume* from an existing directory, use
    /// [`recover`](Self::recover) instead — attaching starts a new
    /// checkpoint generation above whatever the directory already holds.
    ///
    /// # Errors
    ///
    /// Fails on a poisoned index, during a rejuvenation window (the
    /// in-memory replay queue predates the log and could not be
    /// recovered), or on I/O errors.
    pub fn attach_durability(&mut self, dir: impl AsRef<Path>) -> Result<u64, CscError> {
        let dir = dir.as_ref();
        self.check_writable()?;
        self.index.check_ready()?;
        if self.is_rebuilding() {
            return Err(CscError::Config(
                "attach_durability during a rejuvenation window: the queued updates predate the log; finish the rejuvenation first".into(),
            ));
        }
        std::fs::create_dir_all(dir).map_err(|e| {
            CscError::corrupt(
                "checkpoint",
                format!("cannot create {}: {e}", dir.display()),
            )
        })?;
        // Start above any leftover generation so stale files can never
        // shadow this engine's checkpoints on a later recovery.
        let seq = wal::list_checkpoints(dir).first().map_or(0, |(s, _)| s + 1);
        let bytes = self.index.to_bytes()?;
        wal::write_checkpoint(dir, seq, &bytes)?;
        let log = WriteAheadLog::create(
            &dir.join(wal::WAL_FILE),
            seq,
            self.index.config().durability.fsync,
        )?;
        wal::prune_checkpoints(
            dir,
            self.index.config().durability.keep_checkpoints as usize,
        );
        self.durability = Some(Durability {
            dir: dir.to_path_buf(),
            wal: log,
            windows_since_checkpoint: 0,
        });
        // A fresh attachment re-covers the full state: any earlier
        // in-memory-only degradation is over.
        self.durability_degraded = None;
        Ok(seq)
    }

    /// Starts a rejuvenation: captures fresh ranks (recomputed from the
    /// *current* graph under the configured ordering strategy, so churn
    /// vertices get re-ranked on merit) and an adjacency snapshot, and
    /// flips the machine to `Rebuilding`. Idempotent while one is already
    /// in flight. Drive it with [`step`](Self::step) or
    /// [`rejuvenate`](Self::rejuvenate).
    ///
    /// # Errors
    ///
    /// Fails on a poisoned index, or if the graph exceeds labeling
    /// capacity.
    pub fn begin_rejuvenation(&mut self, reason: RebuildReason) -> Result<(), CscError> {
        self.index.check_ready()?;
        if self.is_rebuilding() {
            return Ok(());
        }
        let original = self.index.original_graph();
        let ranks = RankTable::build(&original, self.index.config().order).bipartite_order();
        let csr = Csr::from_digraph(self.index.bipartite().graph());
        let build = LabelBuildTask::new(csr.vertex_count(), self.index.config().parallelism)?;
        self.rebuild = Some(RebuildTask {
            reason,
            ranks,
            csr,
            build,
            labels_done: false,
        });
        self.stats.rejuvenations_started += 1;
        self.stats.last_reason = Some(reason);
        Ok(())
    }

    /// Checks the policy thresholds and starts a rejuvenation if one
    /// trips (regardless of [`RebuildPolicy::auto`] — the *caller* decides
    /// whether measurement implies action). Returns the tripped reason.
    ///
    /// The engine's own [`health`](Self::health) always reports a dead
    /// fraction of `0.0` (the live nested store has no arena), so the
    /// caller that owns the served snapshot passes its real
    /// `dead_fraction` here — otherwise the
    /// [`RebuildPolicy::max_dead_percent`] threshold could never fire
    /// automatically.
    pub fn maybe_begin(
        &mut self,
        arena_dead_fraction: f64,
    ) -> Result<Option<RebuildReason>, CscError> {
        if self.is_rebuilding() {
            return Ok(None);
        }
        // Backoff after an abandoned attempt: the drift is still there,
        // but hammering a rebuild that keeps getting aborted (tight
        // deadlines, capacity pressure) would starve the write plane.
        // Manual `begin_rejuvenation` bypasses this gate.
        if let Some(t) = self.rebuild_retry_at {
            if Instant::now() < t {
                return Ok(None);
            }
        }
        let health = IndexHealth {
            dead_fraction: arena_dead_fraction,
            ..self.health()
        };
        match health.triggered(self.policy()) {
            Some(reason) => {
                self.begin_rejuvenation(reason)?;
                Ok(Some(reason))
            }
            None => Ok(None),
        }
    }

    /// Advances an in-flight rejuvenation by a bounded amount of work: up
    /// to `rank_budget` hub ranks of label construction, or (once labels
    /// are complete and swapped) up to [`REPLAY_CHUNK`] queued updates of
    /// replay. Returns the state after the step; `Serving` means the
    /// rejuvenation finished. A no-op returning `Serving` when nothing is
    /// in flight.
    ///
    /// # Errors
    ///
    /// A label-capacity overflow during the rebuild abandons it: the
    /// previous index keeps serving, the queue is replayed onto it, and
    /// the error is returned ([`MaintenanceStats::rejuvenations_failed`]
    /// counts it). An overflow during *replay* poisons the index exactly
    /// like a failed [`apply_batch`](CscIndex::apply_batch).
    pub fn step(&mut self, rank_budget: usize) -> Result<MaintenanceStatus, CscError> {
        self.check_writable()?;
        let Some(task) = self.rebuild.as_mut() else {
            return Ok(MaintenanceStatus::Serving);
        };
        self.stats.rebuild_steps += 1;
        if !task.labels_done {
            faultpoint!("rebuild.advance");
            let advanced = catch_unwind(AssertUnwindSafe(|| {
                task.build.advance(&task.csr, &task.ranks, rank_budget)
            }));
            match advanced {
                Ok(Ok(true)) => {
                    task.labels_done = true;
                    self.swap_rebuilt();
                    self.integrity_check_after("rejuvenation swap")?;
                }
                Ok(Ok(false)) => {}
                Ok(Err(e)) => {
                    // Abandon: the old index is untouched and fully valid.
                    self.abandon_rebuild_with_backoff()?;
                    return Err(e.into());
                }
                Err(payload) => {
                    // The live index is actually untouched here, but the
                    // replay queue's relationship to it is now suspect;
                    // degrade and let recovery re-establish it.
                    let detail = format!(
                        "panic during rejuvenation build: {}",
                        panic_message(&*payload)
                    );
                    self.index.poison(detail.clone());
                    self.degrade(detail.clone());
                    return Err(CscError::poisoned(detail));
                }
            }
        } else {
            faultpoint!("replay.chunk");
            self.replay_chunk()?;
        }
        if !self.is_rebuilding() {
            // The queue just drained: take the checkpoint that was
            // deferred for the whole rejuvenation window.
            self.maybe_checkpoint()?;
        }
        Ok(self.status())
    }

    /// Deadline-aware [`step`](Self::step): the per-chunk deadline is
    /// checked *before* any work, so a caller driving a rebuild under a
    /// latency budget never starts a chunk it has no time for. An
    /// exceeded deadline abandons the in-flight rejuvenation via the
    /// existing abandon path — the old index keeps serving, the queue
    /// replays onto it, no accepted write is lost — and delays the next
    /// automatic attempt ([`maybe_begin`](Self::maybe_begin)) by bounded
    /// exponential backoff, returning [`CscError::DeadlineExceeded`].
    pub fn step_deadline(
        &mut self,
        rank_budget: usize,
        deadline: Deadline,
    ) -> Result<MaintenanceStatus, CscError> {
        self.check_writable()?;
        if self.rebuild.is_some() && deadline.is_past() {
            self.abandon_rebuild_with_backoff()?;
            return Err(CscError::DeadlineExceeded);
        }
        self.step(rank_budget)
    }

    /// The shared abandon path: drop the in-flight task, count the
    /// failure, arm the [`REBUILD_RETRY`] backoff for the next automatic
    /// attempt, and replay the queue onto the current (still fully
    /// valid) index so no accepted write is lost.
    fn abandon_rebuild_with_backoff(&mut self) -> Result<(), CscError> {
        self.rebuild = None;
        self.stats.rejuvenations_failed += 1;
        let attempt = self.rebuild_failures.min(30);
        self.rebuild_failures = self.rebuild_failures.saturating_add(1);
        if let Some(backoff) = REBUILD_RETRY.backoff(attempt, 0x52454255) {
            self.rebuild_retry_at = Some(Instant::now() + backoff);
        }
        self.drain_replay_onto_current()
    }

    /// Runs the config-gated structural sweep after a swap or recovery,
    /// degrading the engine instead of serving a broken index.
    fn integrity_check_after(&mut self, what: &str) -> Result<(), CscError> {
        if !self.index.config().durability.check_integrity {
            return Ok(());
        }
        if let Err(e) = check_integrity(&self.index) {
            let detail = format!("integrity check failed after {what}: {e}");
            self.index.poison(detail.clone());
            self.degrade(detail.clone());
            return Err(CscError::poisoned(detail));
        }
        Ok(())
    }

    /// Runs an in-flight (or, with `reason`, a fresh) rejuvenation to
    /// completion and reports what it did. This is the synchronous driver;
    /// cooperative callers use [`begin_rejuvenation`](Self::begin_rejuvenation)
    /// + [`step`](Self::step) instead.
    pub fn rejuvenate(&mut self, reason: RebuildReason) -> Result<RejuvenationReport, CscError> {
        let started = Instant::now();
        let entries_before = self.index.total_entries();
        let replayed_before = self.stats.updates_replayed;
        self.begin_rejuvenation(reason)?;
        let reason = self.rebuild.as_ref().map(|t| t.reason).unwrap_or(reason);
        while self.step(usize::MAX)? != MaintenanceStatus::Serving {}
        Ok(RejuvenationReport {
            reason,
            entries_before,
            entries_after: self.index.total_entries(),
            replayed: self.stats.updates_replayed - replayed_before,
            duration: started.elapsed(),
        })
    }

    /// Labels finished: assemble the rejuvenated index and swap it in.
    /// The cumulative update statistics carry over (snapshot ordering via
    /// `updates_applied` must stay monotone); the build statistics and the
    /// drift baseline are re-anchored.
    fn swap_rebuilt(&mut self) {
        let task = self.rebuild.as_mut().expect("called with a task in flight");
        let build = std::mem::replace(
            &mut task.build,
            LabelBuildTask::new(0, crate::config::ParallelismConfig::default())
                .expect("empty task is always in capacity"),
        );
        let (labels, counters) = build.finish();
        let config = *self.index.config();
        let inverted = config
            .maintain_inverted
            .then(|| InvertedIndex::from_labels(&labels));
        let n = self.index.bipartite().graph().vertex_count();
        let mut stats = self.index.stats.clone();
        stats.build = BuildStats {
            canonical: counters.canonical,
            non_canonical: counters.non_canonical,
            pruned: counters.pruned,
            dequeues: counters.dequeues,
            saturated_counts: counters.saturated,
            build_time: stats.build.build_time,
        };
        let rejuvenations = self.index.baseline.rejuvenations + 1;
        let mut fresh = CscIndex {
            gb: self.index.gb.clone(),
            ranks: std::mem::replace(&mut task.ranks, RankTable::from_order(&[])),
            labels,
            inverted,
            config,
            stats,
            baseline: HealthBaseline {
                entries: 0,
                in_entries: 0,
                out_entries: 0,
                vertices: 0,
                rejuvenations: 0,
            },
            poisoned: None,
            workspace: CoupleBfs::new(n),
            // Reuse the retired index's pooled sweep maps and bucket
            // queue: they are graph-shape scratch, already sized right.
            sweeps: std::mem::take(&mut self.index.sweeps),
        };
        fresh.rebaseline(rejuvenations);
        // The baseline is the post-rebuild state; replayed updates then
        // count as ordinary drift on top of it.
        self.index = fresh;
        self.full_freeze_pending = true;
        self.stats.rejuvenations_completed += 1;
        // A completed rebuild resets the abandon-retry backoff.
        self.rebuild_failures = 0;
        self.rebuild_retry_at = None;
    }

    /// Drains up to [`REPLAY_CHUNK`] updates onto the (rejuvenated) index;
    /// finishing the queue returns the machine to `Serving`.
    fn replay_chunk(&mut self) -> Result<(), CscError> {
        let take = self.replay.len().min(REPLAY_CHUNK);
        let window: Vec<GraphUpdate> = self.replay.drain(..take).collect();
        self.queued_vertices -= window
            .iter()
            .filter(|u| **u == GraphUpdate::AddVertex)
            .count();
        if !window.is_empty() {
            self.protected("replay", |idx| idx.apply_batch(&window))?;
            self.stats.updates_replayed += window.len();
        }
        if self.replay.is_empty() {
            self.rebuild = None;
        }
        Ok(())
    }

    /// Abandon path: replay whatever queued onto the *current* index so no
    /// accepted write is lost. (Same accounting as [`replay_chunk`] — the
    /// trailing `rebuild = None` in it is a no-op here, the abandon paths
    /// already cleared the task.)
    ///
    /// [`replay_chunk`]: Self::replay_chunk
    fn drain_replay_onto_current(&mut self) -> Result<(), CscError> {
        while !self.replay.is_empty() {
            self.replay_chunk()?;
        }
        Ok(())
    }

    /// Produces the next snapshot to publish, routing through the state
    /// machine's freeze policy: incremental
    /// ([`SnapshotIndex::refreeze_from`]) against `prev` in the steady
    /// state, a full couple-ordered freeze right after a rejuvenation swap
    /// (when `prev` addresses the retired label store) or when no previous
    /// snapshot exists.
    pub fn publish_from(&mut self, prev: Option<&SnapshotIndex>) -> SnapshotIndex {
        let dirty = self.index.labels.take_dirty();
        match prev {
            Some(p) if !self.full_freeze_pending => {
                SnapshotIndex::refreeze_from(p, &self.index, &dirty)
            }
            _ => {
                self.full_freeze_pending = false;
                self.index.freeze()
            }
        }
    }

    /// Reconstructs an engine from a durability directory: loads the
    /// newest *readable* checkpoint (falling back over torn or
    /// bit-flipped generations), replays the WAL records past it with
    /// the skip-invalid batch semantics, truncates any torn WAL tail,
    /// and re-anchors the directory with a fresh checkpoint + log. The
    /// returned engine is `Serving` with durability attached.
    ///
    /// # Errors
    ///
    /// * [`CscError::Corrupt`] — no readable checkpoint, or the WAL
    ///   provably continues from a checkpoint newer than any readable
    ///   one (the windows in between are unrecoverable; refusing loudly
    ///   beats silently serving a stale state).
    /// * [`CscError::Poisoned`] — replay itself panicked or overflowed
    ///   label capacity (the on-disk state stays untouched for another
    ///   attempt).
    pub fn recover(dir: impl AsRef<Path>) -> Result<(Self, RecoveryReport), CscError> {
        let dir = dir.as_ref();
        faultpoint!("recover.begin");
        let ckpts = wal::list_checkpoints(dir);
        if ckpts.is_empty() {
            return Err(CscError::corrupt(
                "recovery",
                format!("no checkpoint found in {}", dir.display()),
            ));
        }
        let mut skipped = 0usize;
        let mut loaded: Option<(u64, CscIndex)> = None;
        for (seq, path) in &ckpts {
            // A transient read error must not burn a generation (the
            // next-older checkpoint loses every WAL record in between);
            // retry it before falling back. Persistent I/O errors and
            // corruption fall back exactly as before.
            let read = RetryPolicy::DEFAULT_IO.run(*seq, |_| wal::read_file(path));
            match read.and_then(|b| CscIndex::from_bytes(&b)) {
                Ok(idx) => {
                    loaded = Some((*seq, idx));
                    break;
                }
                Err(_) => skipped += 1,
            }
        }
        let Some((ckpt_seq, mut index)) = loaded else {
            return Err(CscError::corrupt(
                "recovery",
                format!(
                    "all {} checkpoint generations in {} are unreadable",
                    ckpts.len(),
                    dir.display()
                ),
            ));
        };

        // The WAL suffix: records with a sequence past the checkpoint.
        let wal_path = dir.join(wal::WAL_FILE);
        let mut records = Vec::new();
        let mut truncated = 0u64;
        if wal_path.exists() {
            let retry = index.config().durability.io_retry;
            match retry.run(ckpt_seq, |_| WriteAheadLog::read_all(&wal_path)) {
                Ok((base, recs, rep)) => {
                    if base > ckpt_seq {
                        return Err(CscError::corrupt(
                            "recovery",
                            format!(
                                "the log continues from checkpoint {base}, but the newest \
                                 readable checkpoint is {ckpt_seq}: the windows in between \
                                 are unrecoverable"
                            ),
                        ));
                    }
                    truncated = rep.truncated_bytes;
                    records = recs;
                    records.retain(|r| r.seq > ckpt_seq);
                }
                Err(CscError::Corrupt { .. }) => {
                    // A destroyed header — e.g. a crash between the
                    // checkpoint rename and the log rotation, which
                    // leaves a truncated file. Everything the log held
                    // is covered by the checkpoint; count the file as
                    // dropped so the report is honest about it.
                    truncated = std::fs::metadata(&wal_path).map_or(0, |m| m.len());
                }
                Err(e) => return Err(e),
            }
        }

        let mut updates_replayed = 0usize;
        let mut last_seq = ckpt_seq;
        for record in &records {
            faultpoint!("recover.replay");
            match catch_unwind(AssertUnwindSafe(|| index.apply_batch(&record.updates))) {
                Ok(Ok(_)) => {}
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    return Err(CscError::poisoned(format!(
                        "panic while replaying the log during recovery: {}",
                        panic_message(&*payload)
                    )));
                }
            }
            updates_replayed += record.updates.len();
            last_seq = record.seq;
        }

        // Re-anchor: fresh checkpoint of the recovered state, fresh log
        // behind it. (A crash anywhere in here leaves the previous
        // checkpoint + full WAL intact — recovery just runs again.)
        // Transient I/O failures retry; a persistent one must not fail
        // the whole recovery — the state is already reconstructed — so
        // the engine comes back serving with durability degraded to
        // in-memory-only mode instead.
        let bytes = index.to_bytes()?;
        let fsync = index.config().durability.fsync;
        let retry = index.config().durability.io_retry;
        let keep = index.config().durability.keep_checkpoints as usize;
        let reanchored = retry
            .run(last_seq, |_| {
                wal::write_checkpoint(dir, last_seq, &bytes).map(|_| ())
            })
            .and_then(|()| {
                retry.run(last_seq ^ 1, |_| {
                    WriteAheadLog::create(&wal_path, last_seq, fsync)
                })
            });

        let mut engine = MaintenanceEngine::new(index);
        engine.wal_truncated_total = truncated;
        match reanchored {
            Ok(log) => {
                wal::prune_checkpoints(dir, keep);
                engine.durability = Some(Durability {
                    dir: dir.to_path_buf(),
                    wal: log,
                    windows_since_checkpoint: 0,
                });
            }
            Err(e) => {
                engine.durability_degraded = Some(format!("re-anchor after recovery failed: {e}"));
            }
        }
        engine.integrity_check_after("recovery")?;
        let integrity_checked = engine.index().config().durability.check_integrity;
        Ok((
            engine,
            RecoveryReport {
                checkpoint_seq: ckpt_seq,
                checkpoints_skipped: skipped,
                records_replayed: records.len(),
                updates_replayed,
                wal_truncated_bytes: truncated,
                integrity_checked,
            },
        ))
    }

    /// Recovers a degraded (or merely suspect) engine in place,
    /// transitioning `Degraded` → `Serving` while the caller's readers
    /// keep whatever snapshot was last published.
    ///
    /// * **With durability attached**: rebuilds from checkpoint + WAL via
    ///   [`recover`](Self::recover). The in-memory replay queue is
    ///   *dropped* — every queued op was WAL-logged before it was
    ///   accepted, and replaying it twice would double-apply
    ///   (`AddVertex` is not idempotent). Lifetime counters carry over.
    /// * **Without durability**: rebuilds from the live graph (which
    ///   mutates *before* label repair, so it is intact even when the
    ///   labels are torn), then replays the in-memory queue onto it.
    ///
    /// After either path the next snapshot publication is forced to be a
    /// full freeze — the label store is brand new.
    pub fn recover_in_place(&mut self) -> Result<RecoveryReport, CscError> {
        if let Some(d) = &self.durability {
            let dir = d.dir.clone();
            let stats = self.stats;
            let (mut fresh, report) = Self::recover(&dir)?;
            fresh.stats = stats;
            fresh.stats.recoveries += 1;
            fresh.full_freeze_pending = true;
            // Lifetime overload/durability counters survive the swap.
            fresh.writes_rejected = self.writes_rejected;
            fresh.writes_shed = self.writes_shed;
            fresh.wal_truncated_total = fresh
                .wal_truncated_total
                .saturating_add(self.wal_truncated_total);
            *self = fresh;
            return Ok(report);
        }
        // Rebuild from the live graph, then replay the queue.
        let g = self.index.original_graph();
        let config = *self.index.config();
        let rebuilt = match catch_unwind(AssertUnwindSafe(|| CscIndex::build(&g, config))) {
            Ok(r) => r?,
            Err(payload) => {
                return Err(CscError::poisoned(format!(
                    "panic while rebuilding during recovery: {}",
                    panic_message(&*payload)
                )));
            }
        };
        self.index = rebuilt;
        self.rebuild = None;
        self.degraded = None;
        self.queued_vertices = 0;
        let queued: Vec<GraphUpdate> = self.replay.drain(..).collect();
        let mut updates_replayed = 0usize;
        for window in queued.chunks(REPLAY_CHUNK) {
            self.protected("recovery replay", |idx| idx.apply_batch(window))?;
            updates_replayed += window.len();
        }
        self.full_freeze_pending = true;
        self.integrity_check_after("recovery")?;
        self.stats.recoveries += 1;
        Ok(RecoveryReport {
            updates_replayed,
            integrity_checked: config.durability.check_integrity,
            ..RecoveryReport::default()
        })
    }

    /// Unwraps back into the plain index. An in-flight rebuild is
    /// abandoned (never half-applied): the current index is kept and the
    /// write-ahead queue is replayed onto it, so no accepted write is
    /// lost. If that replay overflows label capacity the returned index is
    /// poisoned, exactly as a failed `apply_batch` would leave it. A
    /// *degraded* engine's queue is not replayed — the index is poisoned
    /// and would refuse it; the index is returned as-is for inspection.
    pub fn into_index(mut self) -> CscIndex {
        if self.is_rebuilding() && !self.is_degraded() {
            self.rebuild = None;
            self.stats.rejuvenations_failed += 1;
            let _ = self.drain_replay_onto_current();
        }
        self.index
    }
}

impl From<CscIndex> for MaintenanceEngine {
    fn from(index: CscIndex) -> Self {
        MaintenanceEngine::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CscConfig;
    use crate::verify::verify_index;
    use csc_graph::generators::{directed_cycle, gnm};
    use csc_graph::traversal::shortest_cycle_oracle;
    use csc_graph::DiGraph;

    fn assert_matches_fresh(engine: &MaintenanceEngine, context: &str) {
        let g = engine.index().original_graph();
        let fresh = CscIndex::build(&g, *engine.index().config()).unwrap();
        for v in g.vertices() {
            assert_eq!(
                engine.index().query(v),
                fresh.query(v),
                "{context}: SCCnt({v})"
            );
            assert_eq!(
                engine.index().query(v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&g, v),
                "{context}: oracle SCCnt({v})"
            );
        }
    }

    #[test]
    fn serving_writes_pass_through() {
        let g = directed_cycle(5);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
        assert_eq!(engine.status(), MaintenanceStatus::Serving);
        let report = engine.insert_edge(VertexId(2), VertexId(0)).unwrap();
        assert!(report.is_some(), "serving writes apply immediately");
        assert!(
            engine.insert_edge(VertexId(2), VertexId(0)).is_err(),
            "duplicate rejected while serving"
        );
        assert_eq!(engine.index().query(VertexId(0)).unwrap().length, 3);
    }

    #[test]
    fn manual_rejuvenation_restores_fresh_build_labels() {
        // Drift: grow the graph through churn vertices (bottom-ranked) and
        // edge flapping, then rejuvenate and compare against a fresh build
        // on the same final graph — labels and ranks must match exactly.
        let g = gnm(20, 55, 7);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
        for k in 0..4u32 {
            let nv = engine.add_vertex().unwrap();
            engine.insert_edge(VertexId(k), nv).unwrap().unwrap();
            engine.insert_edge(nv, VertexId(k + 5)).unwrap().unwrap();
        }
        let victims: Vec<_> = g.edge_vec().into_iter().step_by(9).take(4).collect();
        for &(a, b) in &victims {
            engine.remove_edge(VertexId(a), VertexId(b)).unwrap();
        }
        let drifted = engine.health();
        assert_eq!(drifted.churned_vertices, 4);

        let report = engine.rejuvenate(RebuildReason::Manual).unwrap();
        assert_eq!(report.reason, RebuildReason::Manual);
        assert_eq!(report.replayed, 0);
        assert_eq!(engine.status(), MaintenanceStatus::Serving);

        let final_graph = engine.index().original_graph();
        let fresh = CscIndex::build(&final_graph, CscConfig::default()).unwrap();
        assert_eq!(engine.index().labels(), fresh.labels());
        assert_eq!(engine.index().ranks(), fresh.ranks());
        assert_eq!(report.entries_after, fresh.total_entries());
        let h = engine.health();
        assert_eq!(
            (h.growth_percent, h.churned_vertices, h.rejuvenations),
            (100, 0, 1)
        );
        verify_index(engine.index()).unwrap();
    }

    #[test]
    fn writes_queue_during_rebuild_and_replay_applies_them() {
        let g = gnm(18, 48, 3);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
        engine.begin_rejuvenation(RebuildReason::Manual).unwrap();
        // A budget of 2 makes progress but leaves the rebuild in flight
        // (with a parallel width above one it rounds up to a whole wave).
        let st = engine.step(2).unwrap();
        assert!(
            matches!(st, MaintenanceStatus::Rebuilding { ranks_done, .. } if ranks_done >= 2),
            "{st:?}"
        );

        // Mid-rebuild writes: all queued, including a virtual-id vertex.
        let nv = engine.add_vertex().unwrap();
        assert_eq!(nv, VertexId(18), "virtual id = current n + queued adds");
        assert_eq!(engine.insert_edge(VertexId(0), nv).unwrap(), None);
        assert_eq!(engine.insert_edge(nv, VertexId(1)).unwrap(), None);
        let br = engine
            .apply_batch(&[GraphUpdate::InsertEdge(VertexId(1), VertexId(0))])
            .unwrap();
        assert_eq!((br.queued, br.applied_updates()), (1, 0));
        assert_eq!(engine.health().replay_queued, 4);
        assert_eq!(
            engine.index().original_vertex_count(),
            18,
            "live index untouched while queued"
        );

        while engine.step(16).unwrap() != MaintenanceStatus::Serving {}
        assert_eq!(engine.index().original_vertex_count(), 19);
        assert_eq!(engine.maintenance_stats().updates_replayed, 4);
        assert_eq!(engine.health().replay_queued, 0);
        assert_matches_fresh(&engine, "after replay");
        verify_index(engine.index()).unwrap();
    }

    #[test]
    fn reject_policy_refuses_at_the_high_watermark() {
        let g = gnm(18, 48, 3);
        let config = CscConfig::default().with_overload_policy(OverloadPolicy::Reject, 3, 1);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, config).unwrap());
        engine.begin_rejuvenation(RebuildReason::Manual).unwrap();
        engine.step(1).unwrap();
        for k in 0..3u32 {
            assert_eq!(
                engine.insert_edge(VertexId(k), VertexId(k + 9)).unwrap(),
                None,
                "below the watermark: queued"
            );
        }
        let err = engine.insert_edge(VertexId(3), VertexId(12)).unwrap_err();
        assert!(
            matches!(
                err,
                CscError::Overloaded {
                    queued: 3,
                    limit: 3
                }
            ),
            "{err}"
        );
        let h = engine.health();
        assert_eq!((h.writes_rejected, h.replay_queued), (1, 3));

        // The rejected op was never queued; draining re-admits writes.
        while engine.step(usize::MAX).unwrap() != MaintenanceStatus::Serving {}
        engine.add_vertex().unwrap();
        assert_eq!(engine.health().writes_rejected, 1, "lifetime counter");
        verify_index(engine.index()).unwrap();
    }

    #[test]
    fn shed_oldest_drops_to_the_low_watermark_and_counts() {
        let g = gnm(18, 48, 3);
        let config = CscConfig::default().with_overload_policy(OverloadPolicy::ShedOldest, 4, 2);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, config).unwrap());
        engine.begin_rejuvenation(RebuildReason::Manual).unwrap();
        engine.step(1).unwrap();
        for k in 0..4u32 {
            engine.insert_edge(VertexId(k), VertexId(k + 9)).unwrap();
        }
        // Queue at the high watermark: the next admission sheds the
        // oldest entries down to the low watermark, then accepts.
        engine.insert_edge(VertexId(4), VertexId(13)).unwrap();
        let h = engine.health();
        assert_eq!(h.writes_shed, 2);
        assert_eq!(h.replay_queued, 3, "2 low-watermark survivors + the new op");
        while engine.step(usize::MAX).unwrap() != MaintenanceStatus::Serving {}
        verify_index(engine.index()).unwrap();
        assert_matches_fresh(&engine, "after shed-policy drain");
    }

    #[test]
    fn block_policy_drives_the_rebuild_inline() {
        let g = gnm(18, 48, 3);
        let config = CscConfig::default().with_overload_policy(OverloadPolicy::Block, 3, 1);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, config).unwrap());
        engine.begin_rejuvenation(RebuildReason::Manual).unwrap();
        engine.step(1).unwrap();
        for _ in 0..6 {
            engine.add_vertex().unwrap();
            assert!(
                engine.health().replay_queued <= 3,
                "blocking keeps the queue at the watermark"
            );
        }
        let h = engine.health();
        assert_eq!((h.writes_rejected, h.writes_shed), (0, 0), "lossless");
        while engine.step(usize::MAX).unwrap() != MaintenanceStatus::Serving {}
        assert_matches_fresh(&engine, "after block-policy drain");
        verify_index(engine.index()).unwrap();
    }

    #[test]
    fn memory_breach_forces_compaction_then_saturates() {
        let g = gnm(18, 48, 3);
        let config = CscConfig::default().with_memory_budget(1);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, config).unwrap());
        // The first applied window measures, breaches the 1-byte budget,
        // forces one compacting rejuvenation, and — still over — enters
        // the Saturated state.
        engine.add_vertex().unwrap();
        assert_eq!(engine.status(), MaintenanceStatus::Saturated);
        assert!(engine.is_saturated());
        assert_eq!(
            engine.maintenance_stats().last_reason,
            Some(RebuildReason::Memory)
        );
        assert_eq!(engine.maintenance_stats().rejuvenations_completed, 1);
        let h = engine.health();
        assert!(h.saturated && h.memory_bytes > 1, "{h}");

        let err = engine.add_vertex().unwrap_err();
        assert!(matches!(err, CscError::Saturated { .. }), "{err}");
        // Readers are unaffected — same contract as Degraded.
        let _ = engine.index().query(VertexId(0));

        // Raising the budget (0 disables) exits the state on the spot.
        engine.set_memory_budget(0);
        assert_eq!(engine.status(), MaintenanceStatus::Serving);
        engine.add_vertex().unwrap();
        verify_index(engine.index()).unwrap();
    }

    #[test]
    fn deadline_aborted_step_abandons_replays_and_backs_off() {
        let g = gnm(18, 48, 3);
        let config = CscConfig::default().with_rebuild_policy(
            RebuildPolicy::default()
                .with_churned_vertices(1)
                .with_auto(true),
        );
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, config).unwrap());
        engine.begin_rejuvenation(RebuildReason::Manual).unwrap();
        engine.step(1).unwrap();
        engine.add_vertex().unwrap();
        assert_eq!(engine.health().replay_queued, 1);

        // A past deadline: the chunk never starts; the rebuild abandons
        // safely and the queued write replays onto the old index.
        let past = Deadline::at(Instant::now() - std::time::Duration::from_millis(1));
        let err = engine.step_deadline(16, past).unwrap_err();
        assert_eq!(err, CscError::DeadlineExceeded);
        assert_eq!(engine.status(), MaintenanceStatus::Serving);
        assert_eq!(
            engine.index().original_vertex_count(),
            19,
            "queued write survived the abort"
        );
        assert_eq!(engine.maintenance_stats().rejuvenations_failed, 1);

        // The churn policy trips (1 added vertex), but the automatic
        // path waits out the abandon backoff...
        assert_eq!(
            engine.maybe_begin(0.0).unwrap(),
            None,
            "backoff gates the retry"
        );
        // ...while a manual rejuvenation bypasses the gate.
        engine.rejuvenate(RebuildReason::Manual).unwrap();
        assert_eq!(engine.maintenance_stats().rejuvenations_failed, 1);
        assert_matches_fresh(&engine, "after deadline abort + manual retry");
        verify_index(engine.index()).unwrap();
    }

    #[test]
    fn policy_trip_starts_rebuild_via_maybe_begin() {
        let g = directed_cycle(6);
        let config = CscConfig::default().with_rebuild_policy(
            RebuildPolicy::default()
                .with_churned_vertices(2)
                .with_auto(true),
        );
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, config).unwrap());
        assert_eq!(engine.maybe_begin(0.0).unwrap(), None);
        engine.add_vertex().unwrap();
        assert_eq!(engine.maybe_begin(0.0).unwrap(), None, "below threshold");
        engine.add_vertex().unwrap();
        assert_eq!(engine.maybe_begin(0.0).unwrap(), Some(RebuildReason::Churn));
        assert!(engine.is_rebuilding());
        // Idempotent while in flight.
        assert_eq!(engine.maybe_begin(0.0).unwrap(), None);
        while engine.step(usize::MAX).unwrap() != MaintenanceStatus::Serving {}
        assert_eq!(engine.health().churned_vertices, 0, "churn re-ranked away");
    }

    #[test]
    fn publish_from_forces_full_freeze_after_swap() {
        let g = directed_cycle(16);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
        engine.index.labels.take_dirty();
        let first = engine.publish_from(None);

        // Steady state: incremental refreeze tracks updates exactly.
        engine.insert_edge(VertexId(0), VertexId(9)).unwrap();
        engine.insert_edge(VertexId(9), VertexId(0)).unwrap();
        let second = engine.publish_from(Some(&first));
        assert_eq!(second.total_entries(), engine.index().total_entries());

        // Rejuvenate: the old arena is retired, the next publish must not
        // patch into it.
        engine.rejuvenate(RebuildReason::Manual).unwrap();
        let third = engine.publish_from(Some(&second));
        assert_eq!(third.total_entries(), engine.index().total_entries());
        assert_eq!(third.labels().dead_entries(), 0, "full freeze, not a patch");
        for v in 0..16u32 {
            let v = VertexId(v);
            assert_eq!(third.query(v), engine.index().query(v), "SCCnt({v})");
        }
        // And the publication after that is incremental again.
        engine.remove_edge(VertexId(0), VertexId(9)).unwrap();
        let fourth = engine.publish_from(Some(&third));
        assert_eq!(fourth.total_entries(), engine.index().total_entries());
    }

    #[test]
    fn into_index_abandons_rebuild_without_losing_writes() {
        let g = directed_cycle(7);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
        engine.begin_rejuvenation(RebuildReason::Manual).unwrap();
        engine.step(1).unwrap();
        engine.insert_edge(VertexId(3), VertexId(0)).unwrap();
        let index = engine.into_index();
        assert!(!index.is_poisoned());
        assert_eq!(
            index.query(VertexId(0)).unwrap().length,
            4,
            "queued write replayed onto the abandoned-state index"
        );
    }

    #[test]
    fn empty_graph_rejuvenates() {
        let g = DiGraph::new(0);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
        let report = engine.rejuvenate(RebuildReason::Manual).unwrap();
        assert_eq!(report.entries_after, 0);
        assert_eq!(engine.status(), MaintenanceStatus::Serving);
    }

    // ---- durability ----------------------------------------------------

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "csc-maintain-test-{}-{tag}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A durable engine over `gnm(16, 40, seed)` with the given cadence,
    /// fsync off for test speed.
    fn durable_engine(dir: &std::path::Path, checkpoint_every: u32) -> MaintenanceEngine {
        let g = gnm(16, 40, 11);
        let config = CscConfig::default()
            .with_fsync(crate::config::FsyncPolicy::Never)
            .with_checkpoint_every(checkpoint_every)
            .with_integrity_check(true);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, config).unwrap());
        engine.attach_durability(dir).unwrap();
        engine
    }

    fn churn_windows() -> Vec<Vec<GraphUpdate>> {
        use GraphUpdate::*;
        vec![
            vec![InsertEdge(VertexId(0), VertexId(9)), AddVertex],
            vec![InsertEdge(VertexId(16), VertexId(3))],
            vec![InsertEdge(VertexId(5), VertexId(16)), AddVertex],
            vec![RemoveEdge(VertexId(0), VertexId(9))],
            vec![
                InsertEdge(VertexId(17), VertexId(0)),
                InsertEdge(VertexId(2), VertexId(17)),
            ],
        ]
    }

    #[test]
    fn recovery_replays_the_wal_suffix() {
        let dir = temp_dir("wal-suffix");
        // Cadence far above the write count: everything stays in the WAL.
        let mut engine = durable_engine(&dir, 1000);
        for w in churn_windows() {
            engine.apply_batch(&w).unwrap();
        }
        let want = engine.index().original_graph();
        drop(engine); // "crash": no clean shutdown, no final checkpoint

        let (recovered, report) = MaintenanceEngine::recover(&dir).unwrap();
        assert_eq!(report.checkpoint_seq, 0, "initial checkpoint only");
        assert_eq!(report.records_replayed, 5);
        assert_eq!(report.updates_replayed, 8);
        assert_eq!(report.wal_truncated_bytes, 0);
        assert!(report.integrity_checked);
        assert_eq!(recovered.index().original_graph(), want);
        assert_eq!(recovered.status(), MaintenanceStatus::Serving);
        assert!(recovered.is_durable());
        verify_index(recovered.index()).unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn checkpoint_cadence_rotates_the_log() {
        let dir = temp_dir("cadence");
        let mut engine = durable_engine(&dir, 2);
        for w in churn_windows() {
            engine.apply_batch(&w).unwrap();
        }
        let want = engine.index().original_graph();
        drop(engine);

        let (recovered, report) = MaintenanceEngine::recover(&dir).unwrap();
        // 5 windows at cadence 2: checkpoints after windows 2 and 4, so
        // recovery loads seq 4 and replays only window 5.
        assert_eq!(report.checkpoint_seq, 4);
        assert_eq!(report.records_replayed, 1);
        assert_eq!(recovered.index().original_graph(), want);
        verify_index(recovered.index()).unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_is_dropped_and_reported() {
        let dir = temp_dir("torn-tail");
        let mut engine = durable_engine(&dir, 1000);
        for w in churn_windows() {
            engine.apply_batch(&w).unwrap();
        }
        drop(engine);
        // Tear the tail: chop the last 5 bytes off the final record, as a
        // crash mid-append would.
        let wal_path = dir.join(wal::WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();

        let (recovered, report) = MaintenanceEngine::recover(&dir).unwrap();
        assert_eq!(report.records_replayed, 4, "the torn final record is gone");
        assert!(report.wal_truncated_bytes > 0);
        // The recovered state is the acknowledged prefix: windows 1-4.
        let mut sim = gnm(16, 40, 11);
        for w in churn_windows().iter().take(4).flatten() {
            match *w {
                GraphUpdate::InsertEdge(a, b) => {
                    sim.try_add_edge(a, b).unwrap();
                }
                GraphUpdate::RemoveEdge(a, b) => {
                    sim.try_remove_edge(a, b).unwrap();
                }
                GraphUpdate::AddVertex => {
                    sim.add_vertex();
                }
            }
        }
        assert_eq!(recovered.index().original_graph(), sim);
        verify_index(recovered.index()).unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn bit_rotted_newest_checkpoint_refuses_loudly_when_the_log_moved_past() {
        let dir = temp_dir("bitrot-gap");
        let mut engine = durable_engine(&dir, 2);
        for w in churn_windows() {
            engine.apply_batch(&w).unwrap();
        }
        drop(engine);
        // Flip a byte in the newest checkpoint. The WAL was rotated at its
        // seq, so the older generation cannot cover the gap — recovery
        // must refuse rather than silently serve a stale state.
        let (_, newest) = wal::list_checkpoints(&dir).into_iter().next().unwrap();
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&newest, &bytes).unwrap();

        let err = match MaintenanceEngine::recover(&dir) {
            Err(e) => e,
            Ok(_) => panic!("recovery over the gap must refuse"),
        };
        assert!(
            matches!(err, CscError::Corrupt { .. }),
            "want Corrupt, got {err:?}"
        );
        assert!(err.to_string().contains("unrecoverable"), "{err}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn recovery_falls_back_over_a_corrupt_generation_when_the_log_allows() {
        let dir = temp_dir("fallback");
        let mut engine = durable_engine(&dir, 1000);
        engine
            .apply_batch(&[GraphUpdate::InsertEdge(VertexId(0), VertexId(9))])
            .unwrap();
        engine.checkpoint().unwrap(); // generation at seq 1
        let want = engine.index().original_graph();
        drop(engine);
        // Corrupt the newest generation, and replace the (empty) rotated
        // log with nothing at all — e.g. lost along with the torn
        // checkpoint. The older generation plus no log is recoverable.
        let ckpts = wal::list_checkpoints(&dir);
        assert_eq!(ckpts.len(), 2);
        std::fs::write(&ckpts[0].1, b"garbage").unwrap();
        std::fs::remove_file(dir.join(wal::WAL_FILE)).unwrap();

        let (recovered, report) = MaintenanceEngine::recover(&dir).unwrap();
        assert_eq!(report.checkpoints_skipped, 1);
        assert_eq!(report.checkpoint_seq, 0);
        // The fallback generation predates the insert; with the log gone
        // the recovered state is the older checkpoint, minus that edge.
        let mut older = want;
        older.try_remove_edge(VertexId(0), VertexId(9)).unwrap();
        assert_eq!(recovered.index().original_graph(), older);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn recover_refuses_a_directory_without_checkpoints() {
        let dir = temp_dir("empty");
        let err = match MaintenanceEngine::recover(&dir) {
            Err(e) => e,
            Ok(_) => panic!("recovery of an empty directory must refuse"),
        };
        assert!(matches!(err, CscError::Corrupt { .. }));
        assert!(err.to_string().contains("no checkpoint"), "{err}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn queued_writes_survive_a_crash_through_the_wal() {
        let dir = temp_dir("queued");
        let mut engine = durable_engine(&dir, 1000);
        engine.begin_rejuvenation(RebuildReason::Manual).unwrap();
        engine.step(2).unwrap();
        assert!(engine.is_rebuilding());
        // Logged *and* queued — applied to no index yet.
        let nv = engine.add_vertex().unwrap();
        engine.insert_edge(VertexId(0), nv).unwrap();
        engine.insert_edge(nv, VertexId(1)).unwrap();
        let mut want = engine.index().original_graph();
        let gv = want.add_vertex();
        want.try_add_edge(VertexId(0), gv).unwrap();
        want.try_add_edge(gv, VertexId(1)).unwrap();
        drop(engine); // crash mid-rejuvenation, queue lost

        let (recovered, report) = MaintenanceEngine::recover(&dir).unwrap();
        assert_eq!(report.updates_replayed, 3);
        assert_eq!(recovered.index().original_graph(), want);
        verify_index(recovered.index()).unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn durable_recover_in_place_carries_lifetime_stats() {
        let dir = temp_dir("in-place");
        let mut engine = durable_engine(&dir, 1000);
        engine.insert_edge(VertexId(0), VertexId(9)).unwrap();
        let want = engine.index().original_graph();
        let report = engine.recover_in_place().unwrap();
        assert_eq!(report.updates_replayed, 1);
        assert_eq!(engine.maintenance_stats().recoveries, 1);
        assert_eq!(engine.index().original_graph(), want);
        assert!(engine.is_durable());
        assert_eq!(engine.status(), MaintenanceStatus::Serving);
        // Fully usable again, and the re-anchored log keeps working.
        engine.insert_edge(VertexId(9), VertexId(0)).unwrap();
        verify_index(engine.index()).unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn non_durable_recover_in_place_rebuilds_and_replays_the_queue() {
        let g = gnm(14, 36, 4);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
        engine.begin_rejuvenation(RebuildReason::Manual).unwrap();
        engine.step(1).unwrap();
        let nv = engine.add_vertex().unwrap();
        engine.insert_edge(VertexId(0), nv).unwrap();
        let report = engine.recover_in_place().unwrap();
        assert_eq!(report.updates_replayed, 2);
        assert_eq!(engine.status(), MaintenanceStatus::Serving);
        assert_eq!(engine.maintenance_stats().recoveries, 1);
        assert_eq!(
            engine.index().original_vertex_count(),
            15,
            "queued AddVertex replayed"
        );
        assert_matches_fresh(&engine, "after in-place recovery");
        verify_index(engine.index()).unwrap();
    }

    #[test]
    fn attach_durability_is_refused_mid_rejuvenation() {
        let g = directed_cycle(8);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
        engine.begin_rejuvenation(RebuildReason::Manual).unwrap();
        let dir = temp_dir("mid-rebuild");
        let err = engine.attach_durability(&dir).unwrap_err();
        assert!(matches!(err, CscError::Config(_)), "{err:?}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn attach_to_a_dirty_directory_starts_above_leftover_generations() {
        let dir = temp_dir("dirty-attach");
        let mut first = durable_engine(&dir, 1000);
        first
            .apply_batch(&[GraphUpdate::InsertEdge(VertexId(0), VertexId(9))])
            .unwrap();
        first.checkpoint().unwrap(); // leaves checkpoint seq 1
        drop(first);

        let g = directed_cycle(5);
        let mut second = MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
        let seq = second.attach_durability(&dir).unwrap();
        assert_eq!(seq, 2, "starts above the leftover generation");
        drop(second);
        let (recovered, _) = MaintenanceEngine::recover(&dir).unwrap();
        assert_eq!(
            recovered.index().original_vertex_count(),
            5,
            "the new engine's state wins, never the stale leftover"
        );
        std::fs::remove_dir_all(dir).unwrap();
    }
}
