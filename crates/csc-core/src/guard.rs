//! Resource guards: wall-clock deadlines and bounded retry with backoff.
//!
//! The query and write planes accept an optional [`Deadline`]; each
//! deadline-aware entry point derives one [`OpBudget`] per worker from it
//! and threads the budget down to the cooperative cancellation
//! checkpoints in `csc-graph::traversal` and the `csc-labeling`
//! intersection kernels. An exceeded budget surfaces as
//! [`CscError::DeadlineExceeded`] and the aborted operation has no
//! observable effect (queries leave their workspaces reusable; writes
//! abort only before their commit point).
//!
//! [`RetryPolicy`] is the durability plane's answer to transient I/O
//! failures: bounded exponential backoff with deterministic jitter, so a
//! flaky `fsync` is retried a few times before the engine degrades
//! loudly instead of poisoning itself.

use crate::error::CscError;
use csc_graph::OpBudget;
use std::time::{Duration, Instant};

/// An optional wall-clock deadline for one index operation.
///
/// `Deadline` is `Copy` and cheap to pass by value; it is the *shared*
/// cut-off, while [`OpBudget`] (derived via [`Deadline::budget`]) is the
/// per-worker, `Cell`-based countdown that actually meters checkpoints.
/// Parallel entry points derive one budget per rayon worker from the
/// same `Deadline`, so every worker observes the same cut-off instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// No deadline: derived budgets are unbounded and never read the clock.
    pub const NONE: Deadline = Deadline(None);

    /// A deadline at the given instant.
    pub fn at(when: Instant) -> Self {
        Deadline(Some(when))
    }

    /// A deadline `limit` from now.
    pub fn within(limit: Duration) -> Self {
        Deadline(Some(Instant::now() + limit))
    }

    /// The cut-off instant, if any.
    pub fn instant(&self) -> Option<Instant> {
        self.0
    }

    /// `true` if there is a cut-off and it is already in the past.
    ///
    /// Used by admission control: refusing an already-dead operation up
    /// front is cheaper than letting it fail at its first checkpoint.
    pub fn is_past(&self) -> bool {
        matches!(self.0, Some(t) if Instant::now() >= t)
    }

    /// Derives a fresh per-worker [`OpBudget`] observing this deadline.
    pub fn budget(&self) -> OpBudget {
        match self.0 {
            None => OpBudget::unbounded(),
            Some(t) => OpBudget::until(t),
        }
    }

    /// Admission checkpoint: fail fast if the deadline has already passed.
    pub fn admit(&self) -> Result<(), CscError> {
        if self.is_past() {
            Err(CscError::DeadlineExceeded)
        } else {
            Ok(())
        }
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::NONE
    }
}

impl From<Option<Instant>> for Deadline {
    fn from(t: Option<Instant>) -> Self {
        Deadline(t)
    }
}

/// Bounded exponential backoff for retrying transient failures.
///
/// Attempt `k` (0-based) sleeps `base * 2^k`, capped at `cap`, scaled by
/// a deterministic jitter in `[0.5, 1.0)` derived from the attempt
/// number and a caller-supplied salt — deterministic so the
/// fault-injection suites see reproducible schedules, jittered so
/// concurrent retriers do not thundering-herd a recovering disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
}

impl RetryPolicy {
    /// The durability plane's default: 4 attempts, 2ms base, 50ms cap.
    /// Worst-case added latency ≈ 2 + 4 + 8 ms ≈ 14ms before degrading.
    pub const DEFAULT_IO: RetryPolicy = RetryPolicy {
        max_attempts: 4,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(50),
    };

    /// A policy that never retries.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_attempts: 1,
        base: Duration::ZERO,
        cap: Duration::ZERO,
    };

    /// Builds a policy; `max_attempts` is clamped to at least 1.
    pub fn new(max_attempts: u32, base: Duration, cap: Duration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base,
            cap,
        }
    }

    /// The sleep before retrying after failed attempt `attempt`
    /// (0-based), or `None` when the attempt budget is exhausted.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Option<Duration> {
        if attempt + 1 >= self.max_attempts {
            return None;
        }
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.cap);
        // splitmix64 of (attempt, salt) -> jitter factor in [0.5, 1.0).
        let mut z = salt
            .wrapping_add(u64::from(attempt))
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let frac = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        Some(exp.mul_f64(frac))
    }

    /// Runs `op` until it succeeds, fails with a non-transient error, or
    /// exhausts the attempt budget. Only errors for which
    /// [`CscError::is_transient_io`] holds are retried; the final error
    /// is returned as-is.
    pub fn run<T>(
        &self,
        salt: u64,
        mut op: impl FnMut(u32) -> Result<T, CscError>,
    ) -> Result<T, CscError> {
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient_io() => match self.backoff(attempt, salt) {
                    Some(sleep) => {
                        if !sleep.is_zero() {
                            std::thread::sleep(sleep);
                        }
                        attempt += 1;
                    }
                    None => return Err(e),
                },
                Err(e) => return Err(e),
            }
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::DEFAULT_IO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_deadline_admits_and_derives_an_unbounded_budget() {
        let d = Deadline::NONE;
        assert!(d.admit().is_ok());
        assert!(!d.is_past());
        let b = d.budget();
        for _ in 0..10_000 {
            b.checkpoint().unwrap();
        }
    }

    #[test]
    fn past_deadline_is_refused_at_admission() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(d.is_past());
        assert_eq!(d.admit(), Err(CscError::DeadlineExceeded));
        assert!(d.budget().consume(1).is_err());
    }

    #[test]
    fn backoff_grows_caps_and_exhausts() {
        let p = RetryPolicy::new(4, Duration::from_millis(10), Duration::from_millis(25));
        let b0 = p.backoff(0, 7).unwrap();
        let b1 = p.backoff(1, 7).unwrap();
        let b2 = p.backoff(2, 7).unwrap();
        assert!(p.backoff(3, 7).is_none(), "4 attempts = 3 backoffs");
        // Jitter keeps each sleep within [0.5, 1.0) of the nominal value.
        assert!(b0 >= Duration::from_millis(5) && b0 < Duration::from_millis(10));
        assert!(b1 >= Duration::from_millis(10) && b1 < Duration::from_millis(20));
        assert!(b2 >= Duration::from_micros(12_500) && b2 < Duration::from_millis(25));
        // Deterministic: same (attempt, salt) -> same sleep.
        assert_eq!(p.backoff(1, 7), Some(b1));
        assert_ne!(p.backoff(1, 8), Some(b1), "salt perturbs the jitter");
    }

    #[test]
    fn run_retries_transient_io_only() {
        let p = RetryPolicy::new(3, Duration::ZERO, Duration::ZERO);
        let mut calls = 0;
        let out: Result<u32, _> = p.run(0, |attempt| {
            calls += 1;
            if attempt < 2 {
                Err(CscError::io(
                    "wal.append",
                    &std::io::Error::new(std::io::ErrorKind::Interrupted, "flaky"),
                ))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out, Ok(42));
        assert_eq!(calls, 3);

        let mut calls = 0;
        let out: Result<u32, _> = p.run(0, |_| {
            calls += 1;
            Err(CscError::corrupt("wal-record", "crc mismatch"))
        });
        assert!(matches!(out, Err(CscError::Corrupt { .. })));
        assert_eq!(calls, 1, "deterministic failures are not retried");
    }

    #[test]
    fn run_gives_up_after_max_attempts() {
        let p = RetryPolicy::new(2, Duration::ZERO, Duration::ZERO);
        let mut calls = 0;
        let out: Result<(), _> = p.run(0, |_| {
            calls += 1;
            Err(CscError::io(
                "wal.fsync",
                &std::io::Error::new(std::io::ErrorKind::TimedOut, "hung"),
            ))
        });
        assert!(matches!(out, Err(CscError::Io { .. })));
        assert_eq!(calls, 2);
    }
}
