//! A thread-safe wrapper for live monitoring workloads, built on snapshot
//! publication.
//!
//! The motivating applications (fraud screening, P2P routing) query
//! continuously while a single writer applies the edge stream. The naive
//! design — one `RwLock` around the whole index, shared read locks per
//! query — makes every reader contend with the writer: one long deletion
//! stalls all query traffic.
//!
//! [`ConcurrentIndex`] instead splits the two roles:
//!
//! * **Writers** hold the index lock, apply `insert_edge` / `remove_edge`,
//!   and periodically *publish* an immutable [`SnapshotIndex`] (an
//!   `O(total entries)` freeze into a flat arena, amortized by
//!   [`CscConfig::snapshot_every`](crate::CscConfig::snapshot_every)).
//! * **Readers** grab the current `Arc<SnapshotIndex>` — the only shared
//!   state they touch is the publication slot, whose critical section is a
//!   single `Arc` clone / pointer swap, never held across label
//!   maintenance — and then query it entirely lock-free. A reader that
//!   keeps its `Arc` issues any number of queries against one consistent
//!   state with **zero** synchronization, no matter what the writer is
//!   doing.
//!
//! Snapshot reads may lag the writer by up to `snapshot_every - 1`
//! updates; use [`query_fresh`](ConcurrentIndex::query_fresh) or
//! [`with_read`](ConcurrentIndex::with_read) when read-your-writes
//! semantics are required (those take the index read lock like the old
//! design did).
//!
//! Publication is *incremental*: the label store tracks which lists each
//! update dirtied, and a republish patches exactly those spans into a
//! copy of the previously published arena
//! ([`SnapshotIndex::refreeze_from`]) instead of re-gathering the whole
//! store. Batches ([`apply_batch`](ConcurrentIndex::apply_batch)) publish
//! at most once per call, no matter how many updates they carry.
//!
//! The writer side is a thin facade over the
//! [`MaintenanceEngine`] state machine, which
//! also owns **rejuvenation**: a chunked online rebuild (fresh ordering
//! over the current graph) with a write-ahead replay queue, swapped in as
//! a single atomic snapshot publication while readers keep serving the
//! old `Arc` unblocked. See [`health`](ConcurrentIndex::health),
//! [`rejuvenate`](ConcurrentIndex::rejuvenate), and
//! [`maintain`](ConcurrentIndex::maintain).

use crate::batch::{BatchReport, GraphUpdate};
use crate::error::CscError;
use crate::health::{IndexHealth, RebuildReason};
use crate::index::CscIndex;
use crate::maintain::{MaintenanceEngine, MaintenanceStatus, RecoveryReport, RejuvenationReport};
use crate::snapshot::SnapshotIndex;
use crate::stats::{SnapshotStats, UpdateReport};
use csc_graph::VertexId;
use csc_labeling::CycleCount;
use parking_lot::RwLock;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A read-mostly, single-writer handle around a [`CscIndex`] that serves
/// queries from lock-free snapshots.
///
/// ```
/// use csc_core::{ConcurrentIndex, CscConfig, CscIndex, GraphUpdate};
/// use csc_graph::{DiGraph, VertexId};
/// use std::sync::Arc;
///
/// let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 0)]);
/// let config = CscConfig::default().with_snapshot_every(1);
/// let shared = Arc::new(ConcurrentIndex::new(
///     CscIndex::build(&g, config).unwrap(),
/// ));
///
/// // Readers clone the published snapshot and query it lock-free; any
/// // number of queries see one consistent state.
/// let snapshot = shared.snapshot();
/// assert_eq!(snapshot.query(VertexId(0)).unwrap().length, 3);
///
/// // The writer streams updates — whole batches publish exactly once.
/// shared
///     .apply_batch(&[
///         GraphUpdate::InsertEdge(VertexId(1), VertexId(0)),
///         GraphUpdate::InsertEdge(VertexId(0), VertexId(3)),
///         GraphUpdate::InsertEdge(VertexId(3), VertexId(0)),
///     ])
///     .unwrap();
/// assert_eq!(shared.query(VertexId(0)).unwrap().length, 2);
/// assert_eq!(snapshot.query(VertexId(0)).unwrap().length, 3, "held Arc pinned");
/// ```
pub struct ConcurrentIndex {
    /// Writer state: the maintenance engine owning the live index (see
    /// [`MaintenanceEngine`] — the state machine behind every write path,
    /// including rejuvenation).
    inner: RwLock<MaintenanceEngine>,
    /// Publication slot. Critical sections are O(1) (`Arc` clone / swap),
    /// so readers never wait on label maintenance happening under `inner`.
    snapshot: RwLock<Arc<SnapshotIndex>>,
    /// Successful updates since the last publication.
    pending: AtomicUsize,
    /// Snapshots published (including the initial freeze).
    published: AtomicUsize,
    /// `CscConfig::snapshot_every` captured at construction.
    refresh_every: usize,
    /// Set for the duration of [`recover`](Self::recover), so
    /// [`status`](Self::status) can report `Recovering` without waiting
    /// on the engine lock the recovery holds.
    recovering: AtomicBool,
}

impl ConcurrentIndex {
    /// Wraps an index, freezing and publishing its initial snapshot.
    pub fn new(index: CscIndex) -> Self {
        let refresh_every = index.config().snapshot_every;
        let mut engine = MaintenanceEngine::new(index);
        // Baseline the dirty tracking: the initial snapshot covers
        // everything, so only post-construction mutations matter.
        let snapshot = Arc::new(engine.publish_from(None));
        ConcurrentIndex {
            inner: RwLock::new(engine),
            snapshot: RwLock::new(snapshot),
            pending: AtomicUsize::new(0),
            published: AtomicUsize::new(1),
            refresh_every,
            recovering: AtomicBool::new(false),
        }
    }

    /// Reopens an index from a durability directory (newest readable
    /// checkpoint + WAL replay — see [`MaintenanceEngine::recover`]) and
    /// publishes its initial snapshot.
    pub fn open(dir: impl AsRef<Path>) -> Result<(Self, RecoveryReport), CscError> {
        let (mut engine, report) = MaintenanceEngine::recover(dir)?;
        let refresh_every = engine.index().config().snapshot_every;
        let snapshot = Arc::new(engine.publish_from(None));
        Ok((
            ConcurrentIndex {
                inner: RwLock::new(engine),
                snapshot: RwLock::new(snapshot),
                pending: AtomicUsize::new(0),
                published: AtomicUsize::new(1),
                refresh_every,
                recovering: AtomicBool::new(false),
            },
            report,
        ))
    }

    /// Attaches a durability directory (initial checkpoint + fresh WAL)
    /// under the write lock; see
    /// [`MaintenanceEngine::attach_durability`].
    pub fn attach_durability(&self, dir: impl AsRef<Path>) -> Result<u64, CscError> {
        self.inner.write().attach_durability(dir)
    }

    /// Forces a checkpoint now (when durability is attached and no
    /// rejuvenation is in flight); see [`MaintenanceEngine::checkpoint`].
    pub fn checkpoint(&self) -> Result<Option<u64>, CscError> {
        self.inner.write().checkpoint()
    }

    /// Where the maintenance state machine is, including the degradation
    /// lifecycle: `Degraded` after a write-path panic, `Recovering`
    /// while [`recover`](Self::recover) runs.
    pub fn status(&self) -> MaintenanceStatus {
        if self.recovering.load(Ordering::Relaxed) {
            return MaintenanceStatus::Recovering;
        }
        self.inner.read().status()
    }

    /// Recovers a degraded writer in place (checkpoint + WAL replay with
    /// durability attached, graph rebuild + queue replay without) and
    /// republishes. Readers keep the last published snapshot for the
    /// whole duration — [`status`](Self::status) reports `Recovering`,
    /// and the swap to the recovered state is one atomic publication.
    pub fn recover(&self) -> Result<RecoveryReport, CscError> {
        self.recovering.store(true, Ordering::SeqCst);
        let result = (|| {
            let mut guard = self.inner.write();
            let report = guard.recover_in_place()?;
            self.publish(&mut guard);
            Ok(report)
        })();
        self.recovering.store(false, Ordering::SeqCst);
        result
    }

    /// The currently published snapshot. Cheap (`Arc` clone); hold on to
    /// the result to issue many queries against one consistent state with
    /// no further synchronization.
    pub fn snapshot(&self) -> Arc<SnapshotIndex> {
        self.snapshot.read().clone()
    }

    /// `SCCnt(v)` on the published snapshot — the lock-free serving path.
    ///
    /// May lag the writer by up to `snapshot_every - 1` updates; see
    /// [`query_fresh`](Self::query_fresh) for read-your-writes.
    pub fn query(&self, v: VertexId) -> Option<CycleCount> {
        self.snapshot.read().query(v)
    }

    /// `SCCnt(v)` against the live index under its read lock. Exact, but
    /// contends with the writer — reserve for read-your-writes needs.
    /// During a rejuvenation window the live index lags by the queued
    /// updates (they apply at replay).
    pub fn query_fresh(&self, v: VertexId) -> Option<CycleCount> {
        self.inner.read().index().query(v)
    }

    /// [`query`](Self::query) under a wall-clock deadline (see
    /// [`SnapshotIndex::query_deadline`]). Lock-free like `query`; the
    /// deadline only bounds the label intersection itself.
    pub fn query_deadline(
        &self,
        v: VertexId,
        deadline: crate::Deadline,
    ) -> Result<Option<CycleCount>, CscError> {
        self.snapshot.read().query_deadline(v, deadline)
    }

    /// Evaluates `f` over the live index under its read lock (for batch
    /// reads that need the very latest consistent state).
    pub fn with_read<R>(&self, f: impl FnOnce(&CscIndex) -> R) -> R {
        f(self.inner.read().index())
    }

    /// Inserts an edge under the write lock, republishing the snapshot
    /// when the refresh policy says so.
    ///
    /// During a rejuvenation window the write is queued (write-ahead) and
    /// an empty report is returned; validity is resolved at replay with
    /// the skip-invalid batch semantics.
    pub fn insert_edge(&self, a: VertexId, b: VertexId) -> Result<UpdateReport, CscError> {
        let mut guard = self.inner.write();
        let report = guard.insert_edge(a, b)?;
        let applied = usize::from(report.is_some());
        self.after_updates(&mut guard, applied);
        Ok(report.unwrap_or_default())
    }

    /// Removes an edge under the write lock, republishing the snapshot
    /// when the refresh policy says so. Queued (with an empty report)
    /// during a rejuvenation window, like
    /// [`insert_edge`](Self::insert_edge).
    pub fn remove_edge(&self, a: VertexId, b: VertexId) -> Result<UpdateReport, CscError> {
        let mut guard = self.inner.write();
        let report = guard.remove_edge(a, b)?;
        let applied = usize::from(report.is_some());
        self.after_updates(&mut guard, applied);
        Ok(report.unwrap_or_default())
    }

    /// Applies a whole update batch under one write-lock acquisition (see
    /// [`CscIndex::apply_batch`]) and republishes the snapshot *at most
    /// once* — when the batch's applied updates push the pending count
    /// over [`snapshot_every`](crate::CscConfig::snapshot_every).
    ///
    /// This is the preferred write path for streaming workloads: readers
    /// see whole batches atomically (never a half-applied window), and
    /// the per-update publication cost shrinks with the batch size.
    /// During a rejuvenation window the whole batch is queued
    /// ([`BatchReport::queued`]).
    pub fn apply_batch(&self, updates: &[GraphUpdate]) -> Result<BatchReport, CscError> {
        let mut guard = self.inner.write();
        let report = guard.apply_batch(updates)?;
        self.after_updates(&mut guard, report.applied_updates());
        Ok(report)
    }

    /// [`apply_batch`](Self::apply_batch) under a wall-clock deadline.
    ///
    /// The deadline is checked before contending for the write lock and
    /// again at engine admission once the lock is held — so a batch that
    /// spent its whole budget queueing behind other writers is refused
    /// with no observable effect (in particular, never WAL-logged). Once
    /// admitted the batch runs to completion; see
    /// [`MaintenanceEngine::apply_batch_deadline`](crate::MaintenanceEngine::apply_batch_deadline).
    pub fn apply_batch_deadline(
        &self,
        updates: &[GraphUpdate],
        deadline: crate::Deadline,
    ) -> Result<BatchReport, CscError> {
        deadline.admit()?;
        let mut guard = self.inner.write();
        let report = guard.apply_batch_deadline(updates, deadline)?;
        self.after_updates(&mut guard, report.applied_updates());
        Ok(report)
    }

    /// Appends a fresh vertex under the write lock. Counts as an update
    /// toward the refresh policy; until the next publication, snapshot
    /// readers simply answer `None` for the not-yet-covered vertex.
    pub fn add_vertex(&self) -> Result<VertexId, CscError> {
        let mut guard = self.inner.write();
        let rebuilding = guard.is_rebuilding();
        let v = guard.add_vertex()?;
        self.after_updates(&mut guard, usize::from(!rebuilding));
        Ok(v)
    }

    /// Retargets the ordering strategy under the write lock (see
    /// [`CscIndex::set_order`]): the next rejuvenation migrates the
    /// labeling to the new order; queries keep serving the current labels
    /// until that swap.
    pub fn set_order(&self, order: csc_graph::OrderingStrategy) -> Result<(), CscError> {
        self.inner.write().set_order(order)
    }

    /// Freezes and publishes a snapshot of the current state now,
    /// regardless of the refresh policy.
    pub fn refresh(&self) {
        // The write lock: publication drains the label store's dirty-slot
        // tracking (the incremental-refreeze bookkeeping).
        let mut guard = self.inner.write();
        self.publish(&mut guard);
    }

    /// Publication statistics: how many snapshots have been published and
    /// how stale the served one is.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        SnapshotStats {
            published: self.published.load(Ordering::Relaxed),
            pending_updates: self.pending.load(Ordering::Relaxed),
            snapshot_updates_applied: self.snapshot.read().updates_applied(),
        }
    }

    /// The live drift report: label growth vs. the post-build baseline,
    /// the served arena's dead space, churned (bottom-ranked) vertices,
    /// and the maintenance-plane state (replay queue depth, rebuild flag).
    pub fn health(&self) -> IndexHealth {
        let health = self.inner.read().health();
        IndexHealth {
            dead_fraction: self.snapshot.read().labels().dead_fraction(),
            ..health
        }
    }

    /// Maintenance-plane lifetime counters (rejuvenations started /
    /// completed / failed, updates replayed, cooperative steps).
    pub fn maintenance_stats(&self) -> crate::maintain::MaintenanceStats {
        *self.inner.read().maintenance_stats()
    }

    /// Starts a rejuvenation (online rebuild) without driving it: the
    /// rebuild advances cooperatively — a bounded chunk per subsequent
    /// write, or explicitly via [`maintain`](Self::maintain). Readers are
    /// never blocked; writes queue into the write-ahead replay log until
    /// the swap. No-op if a rebuild is already in flight.
    pub fn begin_rejuvenation(&self) -> Result<(), CscError> {
        self.inner.write().begin_rejuvenation(RebuildReason::Manual)
    }

    /// Advances an in-flight rejuvenation by up to `rank_budget` hub ranks
    /// (or one replay chunk), publishing the rejuvenated snapshot in one
    /// atomic swap when it completes. Returns the maintenance state, so
    /// callers can drive with `while maintain(..)? != Serving {}` between
    /// their own work. A no-op returning `Serving` when nothing is in
    /// flight.
    pub fn maintain(&self, rank_budget: usize) -> Result<MaintenanceStatus, CscError> {
        let mut guard = self.inner.write();
        let was_rebuilding = guard.is_rebuilding();
        let status = guard.step(rank_budget)?;
        if was_rebuilding && status == MaintenanceStatus::Serving {
            self.publish(&mut guard);
        }
        Ok(status)
    }

    /// Rejuvenates synchronously: rebuild with a freshly computed
    /// ordering, replay the write-ahead queue, swap, and publish — all
    /// under one write-lock hold. Snapshot readers keep serving the old
    /// `Arc` unblocked throughout; `query_fresh` / new writes block for
    /// the duration (use [`begin_rejuvenation`](Self::begin_rejuvenation)
    /// + [`maintain`](Self::maintain) to interleave them instead).
    pub fn rejuvenate(&self) -> Result<RejuvenationReport, CscError> {
        let mut guard = self.inner.write();
        let report = guard.rejuvenate(RebuildReason::Manual)?;
        self.publish(&mut guard);
        Ok(report)
    }

    /// Unwraps back into the plain index. An in-flight rejuvenation is
    /// abandoned with its queue replayed (see
    /// [`MaintenanceEngine::into_index`]).
    pub fn into_inner(self) -> CscIndex {
        self.inner.into_inner().into_index()
    }

    fn after_updates(&self, engine: &mut MaintenanceEngine, applied: usize) {
        if engine.is_degraded() {
            // Nothing to advance or publish from a degraded writer; the
            // published snapshot stays pinned until recover().
            return;
        }
        // Cooperative maintenance first: a policy trip starts the rebuild,
        // an in-flight one advances a bounded chunk on the writer's dime.
        // The dead-space threshold is judged against the *served* arena —
        // the engine's own health cannot see it.
        if !engine.is_rebuilding() && engine.policy().auto {
            let dead = self.snapshot.read().labels().dead_fraction();
            let _ = engine.maybe_begin(dead);
        }
        if engine.is_rebuilding() {
            match engine.step(crate::maintain::DEFAULT_STEP_RANKS) {
                // Completion swap: publish the rejuvenated index.
                Ok(MaintenanceStatus::Serving) => self.publish(engine),
                // Still rebuilding / replaying: publication resumes at the
                // swap.
                Ok(_) => {}
                // Failed rebuild: the engine abandoned it and replayed the
                // write-ahead queue onto the old (still valid) index —
                // publish so those writes reach snapshot readers instead
                // of lingering unpublished. The ride-along write itself
                // succeeded; the failure is recorded in
                // `maintenance_stats().rejuvenations_failed`.
                Err(_) => self.publish(engine),
            }
            return;
        }
        let pending = self.pending.fetch_add(applied, Ordering::Relaxed) + applied;
        if applied > 0 && self.refresh_every > 0 && pending >= self.refresh_every {
            self.publish(engine);
        }
    }

    /// Publishes through the engine's freeze policy: incremental (patch
    /// only the dirtied label spans into a copy of the served arena) in
    /// the steady state, a full couple-ordered freeze right after a
    /// rejuvenation swap. The invariant making incremental publication
    /// sound — published snapshot == label store at the last drain of the
    /// dirty set — holds because *every* publication (constructor, auto,
    /// manual, post-swap) drains here under the write lock.
    fn publish(&self, engine: &mut MaintenanceEngine) {
        if engine.is_degraded() {
            // Freezing a poisoned index would publish torn labels; the
            // last good snapshot keeps serving instead.
            return;
        }
        let prev = self.snapshot.read().clone();
        let fresh = Arc::new(engine.publish_from(Some(&prev)));
        *self.snapshot.write() = fresh;
        self.pending.store(0, Ordering::Relaxed);
        self.published.fetch_add(1, Ordering::Relaxed);
    }
}

impl From<CscIndex> for ConcurrentIndex {
    fn from(index: CscIndex) -> Self {
        ConcurrentIndex::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CscConfig;
    use csc_graph::generators::directed_cycle;
    use csc_graph::traversal::shortest_cycle_oracle;
    use std::sync::Arc;

    #[test]
    fn readers_and_writer_interleave() {
        let g = directed_cycle(8);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let shared = Arc::new(ConcurrentIndex::new(idx));

        let readers: Vec<_> = (0..4)
            .map(|t| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut answered = 0usize;
                    for i in 0..200u32 {
                        let v = VertexId((i + t) % 8);
                        // Either the 8-cycle or the post-chord state: both
                        // are valid snapshots.
                        if let Some(c) = shared.query(v) {
                            assert!(c.length == 8 || c.length <= 5, "length {}", c.length);
                            answered += 1;
                        }
                    }
                    answered
                })
            })
            .collect();

        // Writer: add a chord, halving some cycle lengths.
        shared.insert_edge(VertexId(4), VertexId(0)).unwrap();

        for r in readers {
            assert!(r.join().unwrap() > 0);
        }

        // Final state matches the oracle — via the exact read path, and
        // via the snapshot once the pending updates are published.
        let mut g2 = directed_cycle(8);
        g2.try_add_edge(VertexId(4), VertexId(0)).unwrap();
        shared.with_read(|idx| {
            for v in g2.vertices() {
                assert_eq!(
                    idx.query(v).map(|c| (c.length, c.count)),
                    shortest_cycle_oracle(&g2, v)
                );
            }
        });
        shared.refresh();
        let snap = shared.snapshot();
        for v in g2.vertices() {
            assert_eq!(
                snap.query(v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&g2, v),
                "snapshot at {v}"
            );
        }
        let back = Arc::try_unwrap(shared).ok().unwrap().into_inner();
        assert_eq!(back.original_edge_count(), 9);
    }

    #[test]
    fn add_vertex_through_wrapper() {
        let g = directed_cycle(3);
        let shared: ConcurrentIndex = CscIndex::build(&g, CscConfig::default()).unwrap().into();
        let nv = shared.add_vertex().unwrap();
        shared.insert_edge(VertexId(0), nv).unwrap();
        // Whether or not these two updates crossed the refresh interval,
        // an isolated / not-yet-covered vertex answers None.
        assert_eq!(shared.query(nv), None);
        assert_eq!(shared.query_fresh(nv), None);
    }

    #[test]
    fn add_vertex_respects_manual_only_policy() {
        let g = directed_cycle(3);
        let config = CscConfig::default().with_snapshot_every(0);
        let shared = ConcurrentIndex::new(CscIndex::build(&g, config).unwrap());
        shared.add_vertex().unwrap();
        let stats = shared.snapshot_stats();
        assert_eq!(
            (stats.published, stats.pending_updates),
            (1, 1),
            "snapshot_every = 0 must never auto-publish, even for add_vertex"
        );
        assert_eq!(shared.snapshot().original_vertex_count(), 3, "pinned");
        shared.refresh();
        assert_eq!(shared.snapshot().original_vertex_count(), 4);
    }

    #[test]
    fn refresh_policy_amortizes_publication() {
        let g = directed_cycle(8);
        let config = CscConfig::default().with_snapshot_every(3);
        let shared = ConcurrentIndex::new(CscIndex::build(&g, config).unwrap());
        assert_eq!(shared.snapshot_stats().published, 1);

        // Two updates: below the interval, snapshot still the original.
        shared.insert_edge(VertexId(4), VertexId(0)).unwrap();
        shared.insert_edge(VertexId(6), VertexId(0)).unwrap();
        let stats = shared.snapshot_stats();
        assert_eq!((stats.published, stats.pending_updates), (1, 2));
        assert_eq!(shared.query(VertexId(0)).unwrap().length, 8, "stale read");
        assert_eq!(
            shared.query_fresh(VertexId(0)).unwrap().length,
            5,
            "fresh read sees the 0..4 chord"
        );

        // Third update crosses the interval: auto-republish.
        shared.insert_edge(VertexId(2), VertexId(0)).unwrap();
        let stats = shared.snapshot_stats();
        assert_eq!((stats.published, stats.pending_updates), (2, 0));
        assert_eq!(stats.snapshot_updates_applied, 3);
        assert_eq!(shared.query(VertexId(0)).unwrap().length, 3);
    }

    #[test]
    fn manual_refresh_and_disabled_auto() {
        let g = directed_cycle(5);
        let config = CscConfig::default().with_snapshot_every(0);
        let shared = ConcurrentIndex::new(CscIndex::build(&g, config).unwrap());
        shared.insert_edge(VertexId(2), VertexId(0)).unwrap();
        shared.insert_edge(VertexId(3), VertexId(0)).unwrap();
        assert_eq!(shared.query(VertexId(0)).unwrap().length, 5, "never auto");
        shared.refresh();
        assert_eq!(shared.query(VertexId(0)).unwrap().length, 3);
        assert_eq!(shared.snapshot_stats().published, 2);
    }

    #[test]
    fn held_snapshot_stays_consistent_across_updates() {
        let g = directed_cycle(6);
        let config = CscConfig::default().with_snapshot_every(1);
        let shared = ConcurrentIndex::new(CscIndex::build(&g, config).unwrap());
        let held = shared.snapshot();
        shared.insert_edge(VertexId(3), VertexId(0)).unwrap();
        // The held Arc still answers from its freeze point...
        assert_eq!(held.query(VertexId(0)).unwrap().length, 6);
        // ...while new snapshot grabs see the update.
        assert_eq!(shared.snapshot().query(VertexId(0)).unwrap().length, 4);
    }

    #[test]
    fn batch_publishes_at_most_once() {
        let g = directed_cycle(8);
        let config = CscConfig::default().with_snapshot_every(1);
        let shared = ConcurrentIndex::new(CscIndex::build(&g, config).unwrap());
        let report = shared
            .apply_batch(&[
                GraphUpdate::InsertEdge(VertexId(2), VertexId(0)),
                GraphUpdate::InsertEdge(VertexId(4), VertexId(0)),
                GraphUpdate::InsertEdge(VertexId(6), VertexId(0)),
            ])
            .unwrap();
        assert_eq!(report.applied_updates(), 3);
        let stats = shared.snapshot_stats();
        assert_eq!(
            (stats.published, stats.pending_updates),
            (2, 0),
            "three updates at snapshot_every = 1: still one batch publish"
        );
        assert_eq!(shared.query(VertexId(0)).unwrap().length, 3);
    }

    #[test]
    fn batch_updates_honor_snapshot_every_in_update_units() {
        let g = directed_cycle(10);
        let config = CscConfig::default().with_snapshot_every(8);
        let shared = ConcurrentIndex::new(CscIndex::build(&g, config).unwrap());

        // 5 applied updates: below the interval, no publication.
        let five: Vec<GraphUpdate> = (2..7)
            .map(|k| GraphUpdate::InsertEdge(VertexId(k), VertexId(0)))
            .collect();
        shared.apply_batch(&five).unwrap();
        let stats = shared.snapshot_stats();
        assert_eq!((stats.published, stats.pending_updates), (1, 5));
        assert_eq!(shared.query(VertexId(0)).unwrap().length, 10, "stale");

        // A fully-cancelled batch adds no pending weight.
        shared
            .apply_batch(&[
                GraphUpdate::InsertEdge(VertexId(8), VertexId(0)),
                GraphUpdate::RemoveEdge(VertexId(8), VertexId(0)),
            ])
            .unwrap();
        assert_eq!(shared.snapshot_stats().pending_updates, 5);

        // 3 more cross the 8-update interval: publish.
        let three = [
            GraphUpdate::InsertEdge(VertexId(7), VertexId(0)),
            GraphUpdate::InsertEdge(VertexId(8), VertexId(0)),
            GraphUpdate::InsertEdge(VertexId(1), VertexId(0)),
        ];
        shared.apply_batch(&three).unwrap();
        let stats = shared.snapshot_stats();
        assert_eq!((stats.published, stats.pending_updates), (2, 0));
        assert_eq!(
            shared.query(VertexId(0)).unwrap().length,
            2,
            "snapshot sees the 0 <-> 1 two-cycle"
        );
    }

    #[test]
    fn incremental_publication_serves_exact_results() {
        // Stream single updates and batches through every publication
        // path; after each publish the served snapshot must answer like a
        // from-scratch freeze of the live index.
        let g = csc_graph::generators::gnm(24, 70, 13);
        let config = CscConfig::default().with_snapshot_every(2);
        let shared = ConcurrentIndex::new(CscIndex::build(&g, config).unwrap());
        let edges: Vec<_> = g.edge_vec().into_iter().step_by(6).take(8).collect();
        for (k, &(a, b)) in edges.iter().enumerate() {
            if k % 2 == 0 {
                shared.remove_edge(VertexId(a), VertexId(b)).unwrap();
            } else {
                shared
                    .apply_batch(&[
                        GraphUpdate::RemoveEdge(VertexId(a), VertexId(b)),
                        GraphUpdate::InsertEdge(VertexId(a), VertexId(b)),
                        GraphUpdate::RemoveEdge(VertexId(a), VertexId(b)),
                    ])
                    .unwrap();
            }
            shared.refresh();
            let snap = shared.snapshot();
            shared.with_read(|idx| {
                for x in 0..idx.original_vertex_count() as u32 {
                    let x = VertexId(x);
                    assert_eq!(snap.query(x), idx.query(x), "step {k}: SCCnt({x})");
                }
                assert_eq!(snap.total_entries(), idx.total_entries());
            });
        }
    }

    #[test]
    fn cooperative_rejuvenation_queues_writes_and_swaps_once() {
        // 200 vertices = 400 bipartite ranks: three ride-along chunks of
        // DEFAULT_STEP_RANKS cannot finish the rebuild, so the queueing
        // window is observable deterministically.
        let g = csc_graph::generators::gnm(200, 600, 17);
        let config = CscConfig::default().with_snapshot_every(1);
        let shared = ConcurrentIndex::new(CscIndex::build(&g, config).unwrap());
        let published_before = shared.snapshot_stats().published;
        let held = shared.snapshot();

        shared.begin_rejuvenation().unwrap();
        // Mid-rebuild writes ride along: each advances the rebuild a chunk
        // and lands in the replay queue, never on the old labels.
        let nv = shared.add_vertex().unwrap();
        shared.insert_edge(VertexId(0), nv).unwrap();
        shared.insert_edge(nv, VertexId(1)).unwrap();
        let h = shared.health();
        assert!(h.rebuilding);
        assert_eq!(h.replay_queued, 3);

        // Drive to completion; the swap publishes exactly once.
        while shared.maintain(usize::MAX).unwrap() != crate::MaintenanceStatus::Serving {}
        let h = shared.health();
        assert!(!h.rebuilding);
        assert_eq!((h.replay_queued, h.rejuvenations), (0, 1));

        // Readers: the held Arc kept answering the old state the whole
        // time; fresh grabs see the rejuvenated index with replay applied.
        assert_eq!(held.query(nv), None);
        let snap = shared.snapshot();
        shared.with_read(|idx| {
            for v in 0..idx.original_vertex_count() as u32 {
                assert_eq!(snap.query(VertexId(v)), idx.query(VertexId(v)));
            }
        });
        let g2 = shared.with_read(|idx| idx.original_graph());
        for v in g2.vertices() {
            assert_eq!(
                snap.query(v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&g2, v),
                "SCCnt({v})"
            );
        }
        assert!(shared.snapshot_stats().published > published_before);
    }

    #[test]
    fn auto_policy_rejuvenates_from_the_write_path() {
        let g = directed_cycle(8);
        let config = CscConfig::default()
            .with_snapshot_every(1)
            .with_rebuild_policy(
                crate::RebuildPolicy::default()
                    .with_churned_vertices(2)
                    .with_auto(true),
            );
        let shared = ConcurrentIndex::new(CscIndex::build(&g, config).unwrap());
        shared.add_vertex().unwrap();
        assert_eq!(shared.health().rejuvenations, 0);
        shared.add_vertex().unwrap(); // trips the churn threshold; rebuild starts
        while shared.maintain(usize::MAX).unwrap() != crate::MaintenanceStatus::Serving {}
        let h = shared.health();
        assert_eq!(h.rejuvenations, 1);
        assert_eq!(h.churned_vertices, 0, "appended vertices re-ranked");
        assert_eq!(shared.snapshot().query(VertexId(0)).unwrap().length, 8);
    }

    #[test]
    fn dead_space_policy_triggers_from_the_write_path() {
        // The dead-space threshold lives on the *served arena*: flapping
        // one edge relocates label lists on every incremental publish,
        // piling up dead space until the auto policy must start a rebuild
        // (reason DeadSpace) straight from the write path.
        let g = csc_graph::generators::gnm(24, 70, 13);
        let config = CscConfig::default()
            .with_snapshot_every(1)
            .with_rebuild_policy(
                crate::RebuildPolicy::manual_only()
                    .with_dead_percent(5)
                    .with_auto(true),
            );
        let shared = ConcurrentIndex::new(CscIndex::build(&g, config).unwrap());
        let (a, b) = g.edge_vec()[5];
        let mut started = false;
        for k in 0..400 {
            if k % 2 == 0 {
                shared.remove_edge(VertexId(a), VertexId(b)).unwrap();
            } else {
                shared.insert_edge(VertexId(a), VertexId(b)).unwrap();
            }
            if shared.maintenance_stats().rejuvenations_started > 0 {
                started = true;
                break;
            }
        }
        assert!(started, "dead space must eventually trip the policy");
        assert_eq!(
            shared.maintenance_stats().last_reason,
            Some(crate::RebuildReason::DeadSpace)
        );
        while shared.maintain(usize::MAX).unwrap() != crate::MaintenanceStatus::Serving {}
        assert_eq!(shared.maintenance_stats().rejuvenations_completed, 1);
    }

    #[test]
    fn synchronous_rejuvenate_publishes_atomically() {
        let g = directed_cycle(6);
        let config = CscConfig::default().with_snapshot_every(0);
        let shared = ConcurrentIndex::new(CscIndex::build(&g, config).unwrap());
        shared.insert_edge(VertexId(3), VertexId(0)).unwrap();
        assert_eq!(
            shared.query(VertexId(0)).unwrap().length,
            6,
            "manual mode: stale"
        );
        let report = shared.rejuvenate().unwrap();
        assert_eq!(report.replayed, 0);
        // Rejuvenation *must* publish even under snapshot_every = 0: the
        // old arena is retired with the old label store.
        assert_eq!(shared.query(VertexId(0)).unwrap().length, 4);
        assert_eq!(shared.snapshot_stats().published, 2);
    }

    #[test]
    fn failed_updates_do_not_count_toward_refresh() {
        let g = directed_cycle(4);
        let config = CscConfig::default().with_snapshot_every(2);
        let shared = ConcurrentIndex::new(CscIndex::build(&g, config).unwrap());
        assert!(shared.insert_edge(VertexId(0), VertexId(0)).is_err());
        assert!(shared.insert_edge(VertexId(0), VertexId(1)).is_err());
        let stats = shared.snapshot_stats();
        assert_eq!((stats.published, stats.pending_updates), (1, 0));
    }
}
