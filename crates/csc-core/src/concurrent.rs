//! A thread-safe wrapper for live monitoring workloads.
//!
//! The motivating applications (fraud screening, P2P routing) query
//! continuously while a single writer applies the edge stream.
//! [`ConcurrentIndex`] wraps a [`CscIndex`] in a `parking_lot::RwLock`:
//! queries take shared read locks (microseconds each, so contention stays
//! negligible), and updates serialize through the write lock. Wrap it in an
//! [`std::sync::Arc`] to share across threads.

use crate::error::CscError;
use crate::index::CscIndex;
use crate::stats::UpdateReport;
use csc_graph::VertexId;
use csc_labeling::CycleCount;
use parking_lot::RwLock;

/// A read-mostly, single-writer handle around a [`CscIndex`].
pub struct ConcurrentIndex {
    inner: RwLock<CscIndex>,
}

impl ConcurrentIndex {
    /// Wraps an index.
    pub fn new(index: CscIndex) -> Self {
        ConcurrentIndex {
            inner: RwLock::new(index),
        }
    }

    /// `SCCnt(v)` under a shared read lock.
    pub fn query(&self, v: VertexId) -> Option<CycleCount> {
        self.inner.read().query(v)
    }

    /// Evaluates `f` over the index under a read lock (for batch queries
    /// that should see one consistent snapshot).
    pub fn with_read<R>(&self, f: impl FnOnce(&CscIndex) -> R) -> R {
        f(&self.inner.read())
    }

    /// Inserts an edge under the write lock.
    pub fn insert_edge(&self, a: VertexId, b: VertexId) -> Result<UpdateReport, CscError> {
        self.inner.write().insert_edge(a, b)
    }

    /// Removes an edge under the write lock.
    pub fn remove_edge(&self, a: VertexId, b: VertexId) -> Result<UpdateReport, CscError> {
        self.inner.write().remove_edge(a, b)
    }

    /// Appends a fresh vertex under the write lock.
    pub fn add_vertex(&self) -> VertexId {
        self.inner.write().add_vertex()
    }

    /// Unwraps back into the plain index.
    pub fn into_inner(self) -> CscIndex {
        self.inner.into_inner()
    }
}

impl From<CscIndex> for ConcurrentIndex {
    fn from(index: CscIndex) -> Self {
        ConcurrentIndex::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CscConfig;
    use csc_graph::generators::directed_cycle;
    use csc_graph::traversal::shortest_cycle_oracle;
    use std::sync::Arc;

    #[test]
    fn readers_and_writer_interleave() {
        let g = directed_cycle(8);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let shared = Arc::new(ConcurrentIndex::new(idx));

        let readers: Vec<_> = (0..4)
            .map(|t| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut answered = 0usize;
                    for i in 0..200u32 {
                        let v = VertexId((i + t) % 8);
                        // Either the 8-cycle or the post-chord state: both
                        // are valid snapshots.
                        if let Some(c) = shared.query(v) {
                            assert!(c.length == 8 || c.length <= 5, "length {}", c.length);
                            answered += 1;
                        }
                    }
                    answered
                })
            })
            .collect();

        // Writer: add a chord, halving some cycle lengths.
        shared.insert_edge(VertexId(4), VertexId(0)).unwrap();

        for r in readers {
            assert!(r.join().unwrap() > 0);
        }

        // Final state matches the oracle.
        let mut g2 = directed_cycle(8);
        g2.try_add_edge(VertexId(4), VertexId(0)).unwrap();
        shared.with_read(|idx| {
            for v in g2.vertices() {
                assert_eq!(
                    idx.query(v).map(|c| (c.length, c.count)),
                    shortest_cycle_oracle(&g2, v)
                );
            }
        });
        let back = Arc::try_unwrap(shared).ok().unwrap().into_inner();
        assert_eq!(back.original_edge_count(), 9);
    }

    #[test]
    fn add_vertex_through_wrapper() {
        let g = directed_cycle(3);
        let shared: ConcurrentIndex =
            CscIndex::build(&g, CscConfig::default()).unwrap().into();
        let nv = shared.add_vertex();
        shared.insert_edge(VertexId(0), nv).unwrap();
        assert_eq!(shared.query(nv), None);
    }
}
