//! Immutable point-in-time query engines frozen from a [`CscIndex`].
//!
//! A [`SnapshotIndex`] packages everything the `SCCnt` read path needs —
//! the frozen label arena, the bipartite rank table, and the original
//! vertex count — with no interior mutability. Because it is immutable it
//! is `Sync` for free: share one behind an `Arc` across any number of
//! reader threads and every query runs lock-free, while the writer keeps
//! maintaining the mutable [`CscIndex`] elsewhere (see
//! [`ConcurrentIndex`](crate::ConcurrentIndex) for the publication
//! machinery).
//!
//! Queries evaluate on [`FrozenLabels`]: one contiguous arena where the
//! two lists a cycle query intersects sit adjacent in memory, driven by the
//! adaptive (branchless merge / galloping) kernel. The equivalence of this
//! path with `CscIndex::query` is property-tested in
//! `csc-labeling/tests/frozen_equivalence.rs`.
//!
//! Snapshots are produced two ways: [`SnapshotIndex::freeze`] walks the
//! whole label store, while [`SnapshotIndex::refreeze_from`] patches only
//! the lists dirtied since a previous snapshot into a copy of its arena —
//! the incremental republication path of
//! [`ConcurrentIndex`](crate::ConcurrentIndex), with automatic compaction
//! back to a full couple-ordered freeze once relocation holes exceed
//! [`MAX_DEAD_FRACTION`] of the arena.

use crate::health::{HealthBaseline, IndexHealth};
use crate::index::CscIndex;
use csc_graph::bipartite::{in_vertex, out_vertex};
use csc_graph::{RankTable, VertexId};
use csc_labeling::{CycleCount, DistCount, FrozenLabels, LabelSide, LabelStore};
use rayon::prelude::*;

/// When [`SnapshotIndex::refreeze_from`]'s patched arena carries more dead
/// space than this fraction, it compacts via a full couple-ordered freeze
/// instead — bounding both memory overhead and layout decay.
pub const MAX_DEAD_FRACTION: f64 = 0.5;

/// An immutable snapshot of a [`CscIndex`]'s query state.
///
/// Being immutable it is `Sync` for free: clone the `Arc` out of a
/// [`ConcurrentIndex`](crate::ConcurrentIndex) (or [`freeze`] one
/// directly) and query from any number of threads, lock-free.
///
/// ```
/// use csc_core::{CscConfig, CscIndex};
/// use csc_graph::{DiGraph, VertexId};
///
/// let g = DiGraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
/// let mut index = CscIndex::build(&g, CscConfig::default()).unwrap();
/// let snapshot = index.freeze();
///
/// // The snapshot pins its freeze point even as the index moves on.
/// index.remove_edge(VertexId(2), VertexId(0)).unwrap();
/// assert_eq!(snapshot.query(VertexId(0)).unwrap().length, 3);
/// assert_eq!(index.query(VertexId(0)), None);
/// ```
///
/// [`freeze`]: CscIndex::freeze
#[derive(Clone, Debug)]
pub struct SnapshotIndex {
    frozen: FrozenLabels,
    ranks: RankTable,
    original_n: usize,
    updates_applied: u64,
    /// The source index's drift baseline at freeze time, so the snapshot
    /// can report its own [`health`](SnapshotIndex::health).
    baseline: HealthBaseline,
}

impl SnapshotIndex {
    /// Freezes the current state of `index`. `O(total label entries)`.
    ///
    /// The arena is laid out in couple-query order — `Lout(v_o)` directly
    /// followed by `Lin(v_i)` for every original vertex `v` — so each
    /// `SCCnt(v)` intersection reads one contiguous, prefetcher-friendly
    /// region.
    pub fn freeze(index: &CscIndex) -> Self {
        let n = index.original_vertex_count();
        let couple_order = (0..n as u32).flat_map(|v| {
            let v = VertexId(v);
            [
                (out_vertex(v), csc_labeling::LabelSide::Out),
                (in_vertex(v), csc_labeling::LabelSide::In),
            ]
        });
        Self::from_arena(
            FrozenLabels::freeze_ordered(index.labels(), couple_order),
            index,
        )
    }

    /// Freezes the current state of `index` *incrementally*: only the
    /// label lists in `dirty_slots` (the drain of
    /// [`Labels::take_dirty`](csc_labeling::Labels::take_dirty) since
    /// `prev` was frozen) are re-gathered; everything else is carried over
    /// from `prev`'s arena by a flat copy. `O(arena + changed entries)`
    /// with a much smaller constant than [`freeze`](Self::freeze), which
    /// re-walks `2n` heap-scattered lists.
    ///
    /// Falls back to a full couple-ordered freeze when relocation holes
    /// exceed [`MAX_DEAD_FRACTION`] of the patched arena, so chains of
    /// incremental snapshots stay bounded in size and layout quality.
    ///
    /// Correctness requires `prev` to match the label store as of the
    /// drain point — [`ConcurrentIndex`](crate::ConcurrentIndex) maintains
    /// exactly that invariant between publications.
    pub fn refreeze_from(prev: &SnapshotIndex, index: &CscIndex, dirty_slots: &[u32]) -> Self {
        // Project the dead fraction in O(dirty) first: when this publish
        // would cross the compaction threshold, go straight to the full
        // freeze instead of paying for a patched arena copy only to
        // discard it.
        let (dead, total) = prev.frozen.projected_refreeze(index.labels(), dirty_slots);
        if total > 0 && dead as f64 / total as f64 > MAX_DEAD_FRACTION {
            return Self::freeze(index);
        }
        Self::from_arena(
            prev.frozen.refreeze_spans(index.labels(), dirty_slots),
            index,
        )
    }

    fn from_arena(frozen: FrozenLabels, index: &CscIndex) -> Self {
        let stats = index.stats();
        SnapshotIndex {
            frozen,
            ranks: index.ranks().clone(),
            original_n: index.original_vertex_count(),
            updates_applied: (stats.insertions + stats.deletions) as u64,
            baseline: *index.baseline(),
        }
    }

    /// `SCCnt(v)` on the snapshot: length and count of the shortest cycles
    /// through `v`, or `None` if no cycle passes through `v`.
    ///
    /// Unlike [`CscIndex::query`] this returns `None` (rather than
    /// panicking) for out-of-range vertices: a reader may hold a snapshot
    /// frozen before `v` was added, and stale-but-safe is the contract
    /// here.
    #[inline]
    pub fn query(&self, v: VertexId) -> Option<CycleCount> {
        let dc = self.query_raw(v)?;
        debug_assert_eq!(dc.dist % 2, 1, "V_out ~> V_in distances are odd");
        Some(CycleCount::new(dc.dist.div_ceil(2), dc.count))
    }

    /// The raw bipartite `(distance, count)` behind [`query`](Self::query).
    #[inline]
    pub fn query_raw(&self, v: VertexId) -> Option<DistCount> {
        if v.index() >= self.original_n {
            return None;
        }
        self.frozen.dist_count(out_vertex(v), in_vertex(v))
    }

    /// `SCCnt` for a batch of vertices, evaluated in parallel. Output order
    /// matches input order.
    pub fn query_batch(&self, vertices: &[VertexId]) -> Vec<Option<CycleCount>> {
        vertices.par_iter().map(|&v| self.query(v)).collect()
    }

    /// `SCCnt` for every vertex (an analytics sweep), in parallel.
    pub fn query_all(&self) -> Vec<Option<CycleCount>> {
        (0..self.original_n as u32)
            .into_par_iter()
            .map(|v| self.query(VertexId(v)))
            .collect()
    }

    /// Number of vertices in the snapshotted (original) graph.
    #[inline]
    pub fn original_vertex_count(&self) -> usize {
        self.original_n
    }

    /// The frozen label arena.
    pub fn labels(&self) -> &FrozenLabels {
        &self.frozen
    }

    /// The bipartite rank table at freeze time.
    pub fn ranks(&self) -> &RankTable {
        &self.ranks
    }

    /// Total label entries in the snapshot.
    pub fn total_entries(&self) -> usize {
        self.frozen.total_entries()
    }

    /// Snapshot size in bytes (arena + offsets).
    pub fn index_bytes(&self) -> usize {
        self.frozen.arena_bytes()
    }

    /// How many updates (`insert_edge` + `remove_edge`) the source index
    /// had applied when this snapshot was frozen. Monotone across
    /// republications, so readers can order snapshots.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// The snapshot's drift report against the baseline it was frozen
    /// with: per-side label growth, real arena dead space, and the
    /// bottom-ranked churn count. The maintenance-plane fields
    /// (`replay_queued`, `rebuilding`) are always idle here — a snapshot
    /// is a point in time, not a write plane.
    pub fn health(&self) -> IndexHealth {
        let total = self.frozen.total_entries();
        IndexHealth {
            total_entries: total,
            in_entries: self.frozen.side_entries(LabelSide::In),
            out_entries: self.frozen.side_entries(LabelSide::Out),
            baseline_entries: self.baseline.entries,
            baseline_in_entries: self.baseline.in_entries,
            baseline_out_entries: self.baseline.out_entries,
            growth_percent: IndexHealth::growth(total, self.baseline.entries),
            dead_fraction: self.frozen.dead_fraction(),
            churned_vertices: self.original_n.saturating_sub(self.baseline.vertices),
            rejuvenations: self.baseline.rejuvenations,
            replay_queued: 0,
            rebuilding: false,
            writes_rejected: 0,
            writes_shed: 0,
            memory_bytes: 0,
            saturated: false,
            durability_degraded: false,
            wal_truncated_bytes: 0,
        }
    }
}

impl CscIndex {
    /// Freezes an immutable [`SnapshotIndex`] of the current state —
    /// shorthand for [`SnapshotIndex::freeze`].
    pub fn freeze(&self) -> SnapshotIndex {
        SnapshotIndex::freeze(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CscConfig;
    use csc_graph::generators::{directed_cycle, gnm};
    use csc_graph::traversal::shortest_cycle_oracle;

    #[test]
    fn snapshot_matches_live_index_everywhere() {
        let g = gnm(40, 160, 3);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let snap = idx.freeze();
        assert_eq!(snap.original_vertex_count(), 40);
        assert_eq!(snap.total_entries(), idx.total_entries());
        for v in g.vertices() {
            assert_eq!(snap.query(v), idx.query(v), "SCCnt({v})");
            assert_eq!(snap.query_raw(v), idx.query_raw(v));
            assert_eq!(
                snap.query(v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&g, v)
            );
        }
    }

    #[test]
    fn snapshot_is_a_point_in_time() {
        let g = directed_cycle(6);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let before = idx.freeze();
        assert_eq!(before.updates_applied(), 0);
        idx.insert_edge(VertexId(3), VertexId(0)).unwrap();
        let after = idx.freeze();
        assert_eq!(after.updates_applied(), 1);
        // The old snapshot still answers from the pre-update state.
        assert_eq!(before.query(VertexId(0)).unwrap().length, 6);
        assert_eq!(after.query(VertexId(0)).unwrap().length, 4);
    }

    #[test]
    fn out_of_range_is_none_not_panic() {
        let idx = CscIndex::build(&directed_cycle(3), CscConfig::default()).unwrap();
        let snap = idx.freeze();
        assert_eq!(snap.query(VertexId(3)), None);
        assert_eq!(snap.query_raw(VertexId(99)), None);
    }

    #[test]
    fn batch_and_all_match_pointwise_queries() {
        let g = gnm(120, 500, 9);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let snap = idx.freeze();
        let all = snap.query_all();
        assert_eq!(all.len(), 120);
        for v in g.vertices() {
            assert_eq!(all[v.index()], idx.query(v), "query_all at {v}");
        }
        let some: Vec<VertexId> = g.vertices().step_by(7).collect();
        let batch = snap.query_batch(&some);
        for (v, got) in some.iter().zip(&batch) {
            assert_eq!(*got, idx.query(*v), "query_batch at {v}");
        }
    }

    #[test]
    fn refreeze_tracks_updates_like_a_full_freeze() {
        let g = gnm(30, 100, 7);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        idx.labels.take_dirty(); // snapshot baseline
        let mut snap = idx.freeze();

        let edges = g.edge_vec();
        for (k, &(a, b)) in edges.iter().enumerate().take(12) {
            if k % 2 == 0 {
                idx.remove_edge(VertexId(a), VertexId(b)).unwrap();
            } else {
                let nv = idx.add_vertex();
                idx.insert_edge(VertexId(a), nv).unwrap();
            }
            let dirty = idx.labels.take_dirty();
            snap = SnapshotIndex::refreeze_from(&snap, &idx, &dirty);
            let full = idx.freeze();
            assert_eq!(snap.original_vertex_count(), full.original_vertex_count());
            assert_eq!(snap.total_entries(), full.total_entries());
            assert_eq!(snap.updates_applied(), full.updates_applied());
            for x in 0..snap.original_vertex_count() as u32 {
                let x = VertexId(x);
                assert_eq!(snap.query(x), full.query(x), "step {k}: SCCnt({x})");
            }
        }
    }

    #[test]
    fn refreeze_compacts_once_dead_space_dominates() {
        let g = gnm(30, 90, 5);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        idx.labels.take_dirty();
        let mut snap = idx.freeze();
        // Thrash one edge so list lengths keep changing: every publication
        // relocates the grown/shrunk lists, piling up dead space until the
        // compaction threshold forces a clean full freeze.
        let (a, b) = g.edge_vec()[10];
        let (mut saw_dead, mut saw_compaction) = (false, false);
        let mut prev_dead = 0usize;
        for k in 0..600 {
            if saw_compaction {
                break;
            }
            if k % 2 == 0 {
                idx.remove_edge(VertexId(a), VertexId(b)).unwrap();
            } else {
                idx.insert_edge(VertexId(a), VertexId(b)).unwrap();
            }
            let dirty = idx.labels.take_dirty();
            snap = SnapshotIndex::refreeze_from(&snap, &idx, &dirty);
            let dead = snap.labels().dead_entries();
            saw_dead |= dead > 0;
            saw_compaction |= prev_dead > 0 && dead == 0;
            prev_dead = dead;
            assert!(
                snap.labels().dead_fraction() <= crate::snapshot::MAX_DEAD_FRACTION,
                "compaction must bound dead space"
            );
        }
        assert!(saw_dead, "the scenario must exercise relocation");
        assert!(saw_compaction, "dead space must eventually be compacted");
    }

    #[test]
    fn snapshot_health_mirrors_index_plus_arena_state() {
        let g = gnm(24, 80, 11);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        idx.add_vertex();
        idx.insert_edge(VertexId(0), VertexId(24)).unwrap();
        idx.insert_edge(VertexId(24), VertexId(1)).unwrap();
        let snap = idx.freeze();
        let (sh, ih) = (snap.health(), idx.health());
        assert_eq!(sh.total_entries, ih.total_entries);
        assert_eq!(
            (sh.in_entries, sh.out_entries),
            (ih.in_entries, ih.out_entries)
        );
        assert_eq!(sh.baseline_entries, ih.baseline_entries);
        assert_eq!(sh.churned_vertices, 1);
        assert_eq!(sh.dead_fraction, 0.0, "fresh freeze has no dead space");
        assert!(!sh.rebuilding && sh.replay_queued == 0);
    }

    #[test]
    fn snapshot_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SnapshotIndex>();
    }
}
