//! Immutable point-in-time query engines frozen from a [`CscIndex`].
//!
//! A [`SnapshotIndex`] packages everything the `SCCnt` read path needs —
//! the frozen label arena, the bipartite rank table, and the original
//! vertex count — with no interior mutability. Because it is immutable it
//! is `Sync` for free: share one behind an `Arc` across any number of
//! reader threads and every query runs lock-free, while the writer keeps
//! maintaining the mutable [`CscIndex`] elsewhere (see
//! [`ConcurrentIndex`](crate::ConcurrentIndex) for the publication
//! machinery).
//!
//! Queries evaluate on [`FrozenLabels`]: one contiguous arena where the
//! two lists a cycle query intersects sit adjacent in memory, driven by the
//! adaptive (branchless merge / galloping) kernel. The equivalence of this
//! path with `CscIndex::query` is property-tested in
//! `csc-labeling/tests/frozen_equivalence.rs`.

use crate::index::CscIndex;
use csc_graph::bipartite::{in_vertex, out_vertex};
use csc_graph::{RankTable, VertexId};
use csc_labeling::{CycleCount, DistCount, FrozenLabels, LabelStore};
use rayon::prelude::*;

/// An immutable snapshot of a [`CscIndex`]'s query state.
#[derive(Clone, Debug)]
pub struct SnapshotIndex {
    frozen: FrozenLabels,
    ranks: RankTable,
    original_n: usize,
    updates_applied: u64,
}

impl SnapshotIndex {
    /// Freezes the current state of `index`. `O(total label entries)`.
    ///
    /// The arena is laid out in couple-query order — `Lout(v_o)` directly
    /// followed by `Lin(v_i)` for every original vertex `v` — so each
    /// `SCCnt(v)` intersection reads one contiguous, prefetcher-friendly
    /// region.
    pub fn freeze(index: &CscIndex) -> Self {
        let stats = index.stats();
        let n = index.original_vertex_count();
        let couple_order = (0..n as u32).flat_map(|v| {
            let v = VertexId(v);
            [
                (out_vertex(v), csc_labeling::LabelSide::Out),
                (in_vertex(v), csc_labeling::LabelSide::In),
            ]
        });
        SnapshotIndex {
            frozen: FrozenLabels::freeze_ordered(index.labels(), couple_order),
            ranks: index.ranks().clone(),
            original_n: n,
            updates_applied: (stats.insertions + stats.deletions) as u64,
        }
    }

    /// `SCCnt(v)` on the snapshot: length and count of the shortest cycles
    /// through `v`, or `None` if no cycle passes through `v`.
    ///
    /// Unlike [`CscIndex::query`] this returns `None` (rather than
    /// panicking) for out-of-range vertices: a reader may hold a snapshot
    /// frozen before `v` was added, and stale-but-safe is the contract
    /// here.
    #[inline]
    pub fn query(&self, v: VertexId) -> Option<CycleCount> {
        let dc = self.query_raw(v)?;
        debug_assert_eq!(dc.dist % 2, 1, "V_out ~> V_in distances are odd");
        Some(CycleCount::new(dc.dist.div_ceil(2), dc.count))
    }

    /// The raw bipartite `(distance, count)` behind [`query`](Self::query).
    #[inline]
    pub fn query_raw(&self, v: VertexId) -> Option<DistCount> {
        if v.index() >= self.original_n {
            return None;
        }
        self.frozen.dist_count(out_vertex(v), in_vertex(v))
    }

    /// `SCCnt` for a batch of vertices, evaluated in parallel. Output order
    /// matches input order.
    pub fn query_batch(&self, vertices: &[VertexId]) -> Vec<Option<CycleCount>> {
        vertices.par_iter().map(|&v| self.query(v)).collect()
    }

    /// `SCCnt` for every vertex (an analytics sweep), in parallel.
    pub fn query_all(&self) -> Vec<Option<CycleCount>> {
        (0..self.original_n as u32)
            .into_par_iter()
            .map(|v| self.query(VertexId(v)))
            .collect()
    }

    /// Number of vertices in the snapshotted (original) graph.
    #[inline]
    pub fn original_vertex_count(&self) -> usize {
        self.original_n
    }

    /// The frozen label arena.
    pub fn labels(&self) -> &FrozenLabels {
        &self.frozen
    }

    /// The bipartite rank table at freeze time.
    pub fn ranks(&self) -> &RankTable {
        &self.ranks
    }

    /// Total label entries in the snapshot.
    pub fn total_entries(&self) -> usize {
        self.frozen.total_entries()
    }

    /// Snapshot size in bytes (arena + offsets).
    pub fn index_bytes(&self) -> usize {
        self.frozen.arena_bytes()
    }

    /// How many updates (`insert_edge` + `remove_edge`) the source index
    /// had applied when this snapshot was frozen. Monotone across
    /// republications, so readers can order snapshots.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }
}

impl CscIndex {
    /// Freezes an immutable [`SnapshotIndex`] of the current state —
    /// shorthand for [`SnapshotIndex::freeze`].
    pub fn freeze(&self) -> SnapshotIndex {
        SnapshotIndex::freeze(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CscConfig;
    use csc_graph::generators::{directed_cycle, gnm};
    use csc_graph::traversal::shortest_cycle_oracle;

    #[test]
    fn snapshot_matches_live_index_everywhere() {
        let g = gnm(40, 160, 3);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let snap = idx.freeze();
        assert_eq!(snap.original_vertex_count(), 40);
        assert_eq!(snap.total_entries(), idx.total_entries());
        for v in g.vertices() {
            assert_eq!(snap.query(v), idx.query(v), "SCCnt({v})");
            assert_eq!(snap.query_raw(v), idx.query_raw(v));
            assert_eq!(
                snap.query(v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&g, v)
            );
        }
    }

    #[test]
    fn snapshot_is_a_point_in_time() {
        let g = directed_cycle(6);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let before = idx.freeze();
        assert_eq!(before.updates_applied(), 0);
        idx.insert_edge(VertexId(3), VertexId(0)).unwrap();
        let after = idx.freeze();
        assert_eq!(after.updates_applied(), 1);
        // The old snapshot still answers from the pre-update state.
        assert_eq!(before.query(VertexId(0)).unwrap().length, 6);
        assert_eq!(after.query(VertexId(0)).unwrap().length, 4);
    }

    #[test]
    fn out_of_range_is_none_not_panic() {
        let idx = CscIndex::build(&directed_cycle(3), CscConfig::default()).unwrap();
        let snap = idx.freeze();
        assert_eq!(snap.query(VertexId(3)), None);
        assert_eq!(snap.query_raw(VertexId(99)), None);
    }

    #[test]
    fn batch_and_all_match_pointwise_queries() {
        let g = gnm(120, 500, 9);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let snap = idx.freeze();
        let all = snap.query_all();
        assert_eq!(all.len(), 120);
        for v in g.vertices() {
            assert_eq!(all[v.index()], idx.query(v), "query_all at {v}");
        }
        let some: Vec<VertexId> = g.vertices().step_by(7).collect();
        let batch = snap.query_batch(&some);
        for (v, got) in some.iter().zip(&batch) {
            assert_eq!(*got, idx.query(*v), "query_batch at {v}");
        }
    }

    #[test]
    fn snapshot_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SnapshotIndex>();
    }
}
