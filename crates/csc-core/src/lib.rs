//! # csc-core
//!
//! **CSC — Counting Shortest Cycles**: a dynamic hub-labeling index that
//! answers "how many shortest cycles pass through vertex `v`?" in
//! microseconds, reproducing *Towards Real-Time Counting Shortest Cycles on
//! Dynamic Graphs: A Hub Labeling Approach* (ICDE 2022).
//!
//! The index converts the directed graph to its bipartite form (every
//! vertex split into an in/out couple), builds a shortest-path-counting
//! 2-hop labeling over it with *couple-vertex skipping*, and answers
//! `SCCnt(v)` as a single label intersection `SPCnt(v_o, v_i)` — no
//! neighborhood enumeration, which is what makes query time independent of
//! the query vertex's degree. Edge insertions and deletions repair the
//! index in place — one at a time, or whole windows at once through the
//! batch engine ([`CscIndex::apply_batch`]), which normalizes the window
//! and repairs per affected *hub* rather than per edge. See
//! `docs/ARCHITECTURE.md` at the repo root for the end-to-end walkthrough.
//!
//! ```
//! use csc_core::{CscConfig, CscIndex};
//! use csc_graph::{DiGraph, VertexId};
//!
//! let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 0)]);
//! let mut index = CscIndex::build(&g, CscConfig::default()).unwrap();
//!
//! let c = index.query(VertexId(0)).unwrap();
//! assert_eq!((c.length, c.count), (3, 1));
//!
//! // The graph changes; the index follows without a rebuild.
//! index.insert_edge(VertexId(1), VertexId(0)).unwrap();
//! let c = index.query(VertexId(0)).unwrap();
//! assert_eq!((c.length, c.count), (2, 1)); // the new 0 -> 1 -> 0 two-cycle
//!
//! index.remove_edge(VertexId(1), VertexId(0)).unwrap();
//! assert_eq!(index.query(VertexId(0)).unwrap().length, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Fires a named fault-injection point. Compiles to nothing unless the
/// `fault-injection` feature is on; with it, the hook reports to
/// [`fault`]'s registry, which tests arm to simulate a crash (panic) at
/// an exact instrumented spot.
macro_rules! faultpoint {
    ($name:expr) => {
        #[cfg(feature = "fault-injection")]
        {
            $crate::fault::hit($name);
        }
    };
}

/// Fires a named *I/O-error* fault-injection point: with the
/// `fault-injection` feature on and the point armed (see
/// [`fault::arm_io`] / [`fault::arm_io_global`]), the enclosing function
/// returns `Err(CscError::Io { .. })` exactly as if the real I/O
/// operation at this site had failed with the armed
/// [`std::io::ErrorKind`]. Compiles to nothing otherwise.
macro_rules! faultpoint_io {
    ($name:expr) => {
        #[cfg(feature = "fault-injection")]
        {
            if let Some(e) = $crate::fault::take_io($name) {
                return Err($crate::error::CscError::io($name, &e));
            }
        }
    };
}

pub mod analytics;
pub mod batch;
mod build;
mod clean;
pub mod concurrent;
pub mod config;
mod crc;
mod deadline;
mod delete;
pub mod error;
/// Deterministic fault injection (empty without the `fault-injection`
/// feature — see the module docs when it is enabled).
pub mod fault;
pub mod guard;
pub mod health;
mod index;
mod insert;
mod invert;
pub mod maintain;
pub(crate) mod parallel;
pub mod reduction;
mod repair;
pub mod serial;
pub mod snapshot;
pub mod stats;
pub mod verify;
pub mod wal;

pub use batch::{BatchReport, GraphUpdate};
pub use concurrent::ConcurrentIndex;
pub use config::{
    CscConfig, DurabilityConfig, FsyncPolicy, OverloadConfig, OverloadPolicy, ParallelismConfig,
    UpdateStrategy,
};
pub use error::CscError;
pub use guard::{Deadline, RetryPolicy};
pub use health::{HealthBaseline, IndexHealth, RebuildPolicy, RebuildReason};
pub use index::CscIndex;
pub use maintain::{
    MaintenanceEngine, MaintenanceStats, MaintenanceStatus, RecoveryReport, RejuvenationReport,
};
pub use snapshot::SnapshotIndex;
pub use stats::{IndexStats, SnapshotStats, UpdateReport};
pub use verify::IntegrityReport;
pub use wal::{WalOpenReport, WalRecord, WriteAheadLog};

// Re-exported so downstream users need only this crate for common work.
pub use csc_labeling::{CycleCount, FrozenLabels, LabelStore};
