//! Decremental maintenance: edge deletion (Section V-C).
//!
//! Deleting `(a, b)` removes the bipartite edge `(a_o, b_i)`. Unlike
//! insertion, a deletion can *grow* distances, which both invalidates
//! existing entries and creates brand-new hub relationships (a vertex can
//! become the highest-ranked one on a replacement shortest path it was
//! never maximal on before). The implementation splits the affected hubs
//! into two regimes:
//!
//! * **Count-repair hubs** — hubs `v` whose distance to the endpoint is
//!   *unchanged* after the deletion (a surviving equally-short route
//!   splices into any path that crossed the edge, so *every* distance from
//!   `v` is unchanged). Such hubs can gain no new hub roles; they only
//!   lose the shortest paths that crossed the edge. Those are subtracted
//!   by a resumed BFS from `b_i` — the exact mirror of the insertion pass:
//!   seeded with `v`'s label entry at `a_o` (`v`-maximal prefix count),
//!   propagating below-`v` suffix counts, and decrementing each reached
//!   entry whose stored distance matches. An entry whose count reaches
//!   zero is removed. This cone is tiny compared to the hub's full label
//!   region, which is what makes deletions tractable.
//! * **Re-label hubs** — hubs whose endpoint distance grew (detected
//!   exactly with pre/post-deletion BFS from the endpoints). Their stale
//!   entries are deleted by the paper's superset rule
//!   (`sd(v, a_o) + 1 + sd(b_i, x) == d`), and the couple-skipping pruned
//!   BFS of the static construction re-runs from them in descending rank
//!   order in upsert mode — restoring over-deleted entries, refreshing
//!   changed ones, and creating the newly-maximal hubs' entries. The
//!   descending order keeps the pruning distance checks exact: they only
//!   consult strictly higher-ranked hubs, which are unaffected, already
//!   re-labeled, or only count-repaired (distances untouched).
//!
//! All distance conditions are evaluated with plain BFS traversals from
//! the edge endpoints — deliberately not with index lookups: the
//! couple-skipped index legitimately does not cover `V_out`-source pairs
//! whose maximum is the source itself, and an overestimate here could
//! silently skip a stale entry.
//!
//! A count-repair pass that meets a saturated (24-bit-capped) count cannot
//! subtract reliably; the hub is then demoted to the re-label regime,
//! preserving exactness.

use crate::build::WriteMode;
use crate::error::CscError;
use crate::index::CscIndex;
use crate::repair::{covered_dist, fill_hub_cache};
use crate::stats::UpdateReport;
use csc_graph::bipartite::{in_vertex, is_in_vertex, out_vertex};
use csc_graph::traversal::bfs_distances_dir;
use csc_graph::{GraphError, VertexId};
use csc_labeling::{LabelEntry, LabelSide, LabelingError};
use std::time::Instant;

impl CscIndex {
    /// Removes the edge `(a, b)` from the graph and decrementally repairs
    /// the index.
    ///
    /// # Errors
    ///
    /// Graph errors (missing edge, out-of-range endpoints) leave the index
    /// untouched. A labeling capacity overflow mid-update poisons the index.
    pub fn remove_edge(&mut self, a: VertexId, b: VertexId) -> Result<UpdateReport, CscError> {
        self.check_ready()?;
        let n = self.original_vertex_count();
        for v in [a, b] {
            if v.index() >= n {
                return Err(GraphError::VertexOutOfRange { vertex: v, n }.into());
            }
        }
        let (ao, bi) = (out_vertex(a), in_vertex(b));
        if !self.gb.graph().has_edge(ao, bi) {
            return Err(GraphError::MissingEdge(a, b).into());
        }
        let start = Instant::now();
        let mut report = UpdateReport::default();
        if let Err(e) = self.deccnt(ao, bi, &mut report) {
            self.poisoned = true;
            return Err(e.into());
        }
        report.duration = start.elapsed();
        self.stats.deletions += 1;
        self.stats.entries_added += report.entries_inserted;
        self.stats.entries_removed += report.entries_removed;
        Ok(report)
    }

    pub(crate) fn deccnt(
        &mut self,
        ao: VertexId,
        bi: VertexId,
        report: &mut UpdateReport,
    ) -> Result<(), LabelingError> {
        // ---- Distance conditions via plain BFS, pre and post deletion. ---
        let graph = self.gb.graph();
        let to_ao = bfs_distances_dir(graph, ao, false); // sd(v, a_o)
        let to_bi = bfs_distances_dir(graph, bi, false); // sd(v, b_i)
        let from_bi = bfs_distances_dir(graph, bi, true); // sd(b_i, v)
        let from_ao = bfs_distances_dir(graph, ao, true); // sd(a_o, v)

        let (a, _) = csc_graph::bipartite::original(ao);
        let (b, _) = csc_graph::bipartite::original(bi);
        self.gb
            .remove_original_edge(a, b)
            .expect("edge existence was checked");
        let graph = self.gb.graph();
        let to_bi_new = bfs_distances_dir(graph, bi, false);
        let from_ao_new = bfs_distances_dir(graph, ao, true);

        // ---- Classify V_in hubs into the two regimes. --------------------
        // (rank, forward side?) per regime; `relabel` drives step 2 + 3,
        // `repair` drives subtract passes.
        let mut relabel: Vec<(u32, bool, bool)> = Vec::new();
        let mut repair: Vec<(u32, bool)> = Vec::new();
        for v in 0..graph.vertex_count() {
            let vid = VertexId(v as u32);
            if !is_in_vertex(vid) {
                continue;
            }
            let crosses_fwd = matches!((to_ao[v], to_bi[v]), (Some(da), Some(db)) if da + 1 == db);
            let crosses_bwd =
                matches!((from_bi[v], from_ao[v]), (Some(db), Some(da)) if db + 1 == da);
            if !crosses_fwd && !crosses_bwd {
                continue;
            }
            let rank = self.ranks.rank(vid);
            let grown_fwd = crosses_fwd && to_bi_new[v] != to_bi[v];
            let grown_bwd = crosses_bwd && from_ao_new[v] != from_ao[v];
            if grown_fwd || grown_bwd {
                relabel.push((rank, grown_fwd, grown_bwd));
            }
            // Unchanged-distance sides with a maximal crossing prefix (an
            // exact entry at the inner endpoint) need count subtraction.
            if crosses_fwd && !grown_fwd {
                if let Some(e) = self.labels.entry_for(ao, LabelSide::In, rank) {
                    if Some(e.dist()) == to_ao[v] {
                        repair.push((rank, true));
                    }
                }
            }
            if crosses_bwd && !grown_bwd {
                if let Some(e) = self.labels.entry_for(bi, LabelSide::Out, rank) {
                    if Some(e.dist()) == from_bi[v] {
                        repair.push((rank, false));
                    }
                }
            }
        }

        // ---- Phase A: count-repair passes (may demote on saturation). ----
        for &(rank, forward) in &repair {
            let vk = self.ranks.vertex_at_rank(rank);
            report.affected_hubs += 1;
            let seed = if forward {
                self.labels.entry_for(ao, LabelSide::In, rank)
            } else {
                self.labels.entry_for(bi, LabelSide::Out, rank)
            }
            .expect("classification verified the entry");
            match self.subtract_pass(
                rank,
                vk,
                if forward { bi } else { ao },
                seed,
                forward,
                report,
            ) {
                SubtractOutcome::Done => {}
                SubtractOutcome::Demote => {
                    // Saturated counts: recompute this hub from scratch.
                    relabel.push((rank, forward, !forward));
                }
            }
        }
        relabel.sort_unstable();
        relabel.dedup();

        // ---- Phase B: superset deletion for re-label hubs. ----------------
        let carriers = |index: &CscIndex, side: LabelSide, rank: u32| -> Vec<u32> {
            match &index.inverted {
                Some(inv) => inv.carriers(side, rank).to_vec(),
                None => (0..index.labels.vertex_count() as u32)
                    .filter(|&x| index.labels.entry_for(VertexId(x), side, rank).is_some())
                    .collect(),
            }
        };
        for &(rank, fwd, bwd) in &relabel {
            let hub = self.ranks.vertex_at_rank(rank);
            if fwd {
                if let Some(da) = to_ao[hub.index()] {
                    for x in carriers(self, LabelSide::In, rank) {
                        let x = VertexId(x);
                        let Some(e) = self.labels.entry_for(x, LabelSide::In, rank) else {
                            continue;
                        };
                        if let Some(dbx) = from_bi[x.index()] {
                            if da + 1 + dbx == e.dist() {
                                self.labels.remove(x, LabelSide::In, rank);
                                if let Some(inv) = &mut self.inverted {
                                    inv.remove(LabelSide::In, rank, x);
                                }
                                report.entries_removed += 1;
                            }
                        }
                    }
                }
            }
            if bwd {
                if let Some(db) = from_bi[hub.index()] {
                    for y in carriers(self, LabelSide::Out, rank) {
                        let y = VertexId(y);
                        let Some(e) = self.labels.entry_for(y, LabelSide::Out, rank) else {
                            continue;
                        };
                        if let Some(day) = to_ao[y.index()] {
                            if day + 1 + db == e.dist() {
                                self.labels.remove(y, LabelSide::Out, rank);
                                if let Some(inv) = &mut self.inverted {
                                    inv.remove(LabelSide::Out, rank, y);
                                }
                                report.entries_removed += 1;
                            }
                        }
                    }
                }
            }
        }

        // ---- Phase C: re-label in descending rank order. ------------------
        let CscIndex {
            ref gb,
            ref ranks,
            ref mut labels,
            ref mut inverted,
            ref mut workspace,
            ..
        } = *self;
        let graph = gb.graph();
        workspace.ensure(graph.vertex_count());
        let mut counters = crate::build::TraversalCounters::default();
        for &(rank, fwd, bwd) in &relabel {
            let hub = ranks.vertex_at_rank(rank);
            report.affected_hubs += 1;
            if fwd {
                workspace.run_in(
                    graph,
                    ranks,
                    labels,
                    inverted.as_mut(),
                    &mut counters,
                    hub,
                    WriteMode::Upsert,
                )?;
            }
            if bwd {
                workspace.run_out(
                    graph,
                    ranks,
                    labels,
                    inverted.as_mut(),
                    &mut counters,
                    hub,
                    WriteMode::Upsert,
                )?;
            }
        }
        report.entries_inserted += counters.inserted;
        report.entries_updated += counters.updated;
        report.vertices_visited += counters.dequeues;
        Ok(())
    }

    /// Subtracts the counts of `vk`-maximal shortest paths that crossed the
    /// deleted edge from `vk`'s label entries (forward: in-labels reached
    /// from `b_i`; backward: out-labels co-reached from `a_o`).
    ///
    /// Buffers all edits and applies them only when the whole cone is
    /// saturation-free; otherwise reports [`SubtractOutcome::Demote`].
    fn subtract_pass(
        &mut self,
        vk_rank: u32,
        vk: VertexId,
        start: VertexId,
        seed: LabelEntry,
        forward: bool,
        report: &mut UpdateReport,
    ) -> SubtractOutcome {
        if seed.count_saturated() {
            return SubtractOutcome::Demote;
        }
        let (own_side, target_side) = if forward {
            (LabelSide::Out, LabelSide::In)
        } else {
            (LabelSide::In, LabelSide::Out)
        };
        let graph = self.gb.graph();
        self.workspace.ensure(graph.vertex_count());
        let (state, cache) = self.workspace.parts_mut();

        fill_hub_cache(&self.labels, cache, vk, vk_rank, own_side);

        state.reset();
        state.visit(start, seed.dist() + 1, seed.count());
        state.queue.push_back(start.0);

        // (vertex, remaining count) edits; remaining == 0 removes the entry.
        let mut edits: Vec<(VertexId, u64)> = Vec::new();
        while let Some(w) = state.queue.pop_front() {
            let w = VertexId(w);
            let dw = state.dist[w.index()];
            let cw = state.count[w.index()];
            report.vertices_visited += 1;

            // Prune where the crossing paths are not shortest: distances
            // only exceed `sd` deeper in the cone, so nothing there needs
            // subtraction either.
            if dw > covered_dist(&self.labels, cache, w, target_side) {
                continue;
            }

            if let Some(e) = self.labels.entry_for(w, target_side, vk_rank) {
                if e.dist() == dw {
                    if e.count_saturated() {
                        return SubtractOutcome::Demote;
                    }
                    edits.push((w, e.count().saturating_sub(cw)));
                }
            }

            let nbrs = if forward {
                graph.nbr_out(w)
            } else {
                graph.nbr_in(w)
            };
            for &u in nbrs {
                let u = VertexId(u);
                if !state.visited(u) {
                    if vk_rank < self.ranks.rank(u) {
                        state.visit(u, dw + 1, cw);
                        state.queue.push_back(u.0);
                    }
                } else if state.dist[u.index()] == dw + 1 {
                    state.accumulate(u, cw);
                }
            }
        }

        for (w, remaining) in edits {
            if remaining == 0 {
                self.labels.remove(w, target_side, vk_rank);
                if let Some(inv) = &mut self.inverted {
                    inv.remove(target_side, vk_rank, w);
                }
                report.entries_removed += 1;
            } else {
                let e = self
                    .labels
                    .entry_for(w, target_side, vk_rank)
                    .expect("buffered");
                let updated = LabelEntry::new_unchecked(vk_rank, e.dist(), remaining);
                self.labels.upsert(w, target_side, updated);
                report.entries_updated += 1;
            }
        }
        SubtractOutcome::Done
    }
}

enum SubtractOutcome {
    Done,
    Demote,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CscConfig, UpdateStrategy};
    use csc_graph::generators::{directed_cycle, gnm, layered_cycle};
    use csc_graph::traversal::shortest_cycle_oracle;
    use csc_graph::DiGraph;

    fn assert_queries_match(idx: &CscIndex, g: &DiGraph, context: &str) {
        for v in g.vertices() {
            assert_eq!(
                idx.query(v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(g, v),
                "{context}: SCCnt({v})"
            );
        }
    }

    #[test]
    fn delete_breaks_the_only_cycle() {
        let g = directed_cycle(4);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        assert!(idx.query(VertexId(0)).is_some());
        let report = idx.remove_edge(VertexId(1), VertexId(2)).unwrap();
        assert!(report.entries_removed > 0);
        for v in g.vertices() {
            assert_eq!(idx.query(v), None, "no cycles remain");
        }
        assert_eq!(idx.original_edge_count(), 3);
        assert_eq!(idx.stats().deletions, 1);
    }

    #[test]
    fn delete_lengthens_shortest_cycles() {
        // Chorded cycle: 0..5 ring plus chord 3 -> 0. Removing the chord
        // restores the length-6 ring as the only cycle.
        let mut g = directed_cycle(6);
        g.try_add_edge(VertexId(3), VertexId(0)).unwrap();
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        assert_eq!(idx.query(VertexId(0)).unwrap().length, 4);
        idx.remove_edge(VertexId(3), VertexId(0)).unwrap();
        let g2 = directed_cycle(6);
        assert_queries_match(&idx, &g2, "after chord removal");
        assert_eq!(idx.query(VertexId(0)).unwrap().length, 6);
    }

    #[test]
    fn delete_reduces_parallel_count() {
        // Two parallel 3-cycles through 0; deleting one leaves the other.
        // This exercises the count-repair (subtraction) regime: distances
        // to the endpoints are unchanged for most hubs.
        let g = DiGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        assert_eq!(idx.query(VertexId(0)).unwrap().count, 2);
        idx.remove_edge(VertexId(3), VertexId(4)).unwrap();
        let mut g2 = g.clone();
        g2.try_remove_edge(VertexId(3), VertexId(4)).unwrap();
        assert_queries_match(&idx, &g2, "after breaking one cycle");
        let c = idx.query(VertexId(0)).unwrap();
        assert_eq!((c.length, c.count), (3, 1));
    }

    #[test]
    fn graph_errors_leave_index_clean() {
        let mut idx = CscIndex::build(&directed_cycle(3), CscConfig::default()).unwrap();
        let before = idx.total_entries();
        assert!(matches!(
            idx.remove_edge(VertexId(0), VertexId(2)),
            Err(CscError::Graph(GraphError::MissingEdge(..)))
        ));
        assert!(matches!(
            idx.remove_edge(VertexId(0), VertexId(9)),
            Err(CscError::Graph(GraphError::VertexOutOfRange { .. }))
        ));
        assert_eq!(idx.total_entries(), before);
        assert!(!idx.is_poisoned());
        assert_eq!(idx.stats().deletions, 0);
    }

    #[test]
    fn random_deletions_match_oracle() {
        for seed in 0..4 {
            let mut g = gnm(20, 70, seed);
            let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
            let edges = g.edge_vec();
            // Delete every 4th edge, verifying after each.
            for (k, &(u, w)) in edges.iter().enumerate().filter(|(k, _)| k % 4 == 0) {
                g.try_remove_edge(VertexId(u), VertexId(w)).unwrap();
                idx.remove_edge(VertexId(u), VertexId(w)).unwrap();
                assert_queries_match(&idx, &g, &format!("seed {seed} deletion {k}"));
            }
            if let Some(inv) = &idx.inverted {
                inv.validate_against(&idx.labels).unwrap();
            }
        }
    }

    #[test]
    fn deletions_without_inverted_index_fall_back_to_scan() {
        let mut g = gnm(16, 50, 3);
        let config = CscConfig::default().with_inverted(false);
        let mut idx = CscIndex::build(&g, config).unwrap();
        assert!(idx.inverted.is_none());
        let edges = g.edge_vec();
        for &(u, w) in edges.iter().take(10) {
            g.try_remove_edge(VertexId(u), VertexId(w)).unwrap();
            idx.remove_edge(VertexId(u), VertexId(w)).unwrap();
            assert_queries_match(&idx, &g, "scan fallback");
        }
    }

    #[test]
    fn delete_then_reinsert_roundtrip() {
        // The paper's dynamic experiment: remove random edges, insert them
        // back, and the index must answer like the original graph.
        for seed in [11, 12] {
            let g = gnm(18, 60, seed);
            let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
            let edges = g.edge_vec();
            let removed: Vec<_> = edges.iter().step_by(3).copied().collect();
            for &(u, w) in &removed {
                idx.remove_edge(VertexId(u), VertexId(w)).unwrap();
            }
            for &(u, w) in &removed {
                idx.insert_edge(VertexId(u), VertexId(w)).unwrap();
            }
            assert_queries_match(&idx, &g, &format!("seed {seed} roundtrip"));
        }
    }

    #[test]
    fn minimality_deletion_interplay() {
        let mut g = gnm(15, 45, 21);
        let config = CscConfig::default().with_update_strategy(UpdateStrategy::Minimality);
        let mut idx = CscIndex::build(&g, config).unwrap();
        let edges = g.edge_vec();
        for &(u, w) in edges.iter().take(12) {
            g.try_remove_edge(VertexId(u), VertexId(w)).unwrap();
            idx.remove_edge(VertexId(u), VertexId(w)).unwrap();
            assert_queries_match(&idx, &g, "minimality deletions");
        }
        idx.inverted
            .as_ref()
            .unwrap()
            .validate_against(&idx.labels)
            .unwrap();
    }

    #[test]
    fn saturated_counts_demote_to_relabel() {
        // 2^26 shortest cycles saturate the 24-bit counts; deleting an edge
        // must stay exact (demotion path) at the distance level.
        let widths = vec![2usize; 27];
        let g = layered_cycle(&widths);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let c = idx.query(VertexId(0)).unwrap();
        assert_eq!(c.length, widths.len() as u32);
        // Remove one edge of the first layer pair: cycles through vertex 0
        // halve (still saturated) and lengths stay identical.
        idx.remove_edge(VertexId(2), VertexId(4)).unwrap();
        let after = idx.query(VertexId(0)).unwrap();
        assert_eq!(after.length, widths.len() as u32);
        let oracle = shortest_cycle_oracle(&idx.original_graph(), VertexId(0)).unwrap();
        assert_eq!(after.length, oracle.0);
    }
}
