//! Decremental maintenance: edge deletion (Section V-C), batched.
//!
//! Deleting `(a, b)` removes the bipartite edge `(a_o, b_i)`. Unlike
//! insertion, a deletion can *grow* distances, which both invalidates
//! existing entries and creates brand-new hub relationships (a vertex can
//! become the highest-ranked one on a replacement shortest path it was
//! never maximal on before). The implementation repairs a whole *window*
//! of deletions at once — [`CscIndex::remove_edge`] is the one-edge
//! window — and splits the affected hubs into two regimes, classified
//! once per window:
//!
//! * **Count-repair hubs** — hubs `v` whose distance to every crossed
//!   endpoint is *unchanged* after the window (a surviving equally-short
//!   route splices into any path that crossed a deleted edge, so *every*
//!   distance from `v` is unchanged — the splicing argument applies to
//!   the last deleted edge on a path, so it survives batching). Such hubs
//!   can gain no new hub roles; they only lose the shortest paths that
//!   crossed deleted edges. Those are subtracted by **one** multi-source
//!   resumed BFS per hub side (`repair::multi_source_subtract`), merging
//!   the cones of every deleted edge the hub crosses: seeded with the
//!   hub's *pre-window* label entries at the deleted tails (the
//!   last-old-edge decomposition counts every vanished path exactly once;
//!   see the pass docs), propagating below-`v` suffix counts through a
//!   bucket queue, and decrementing each reached entry whose stored
//!   distance matches. An entry whose count reaches zero is removed.
//! * **Re-label hubs** — hubs whose distance to some crossed endpoint
//!   grew (detected exactly with pre/post-window BFS from the endpoints;
//!   the post sweeps are truncated at the pre-sweep eccentricity, which
//!   classifies every vertex without walking the post-deletion tail).
//!   Their stale entries are deleted by the paper's superset rule —
//!   evaluated against the union of the window's edges, so each carrier
//!   list is scanned once per hub instead of once per edge — and the
//!   couple-skipping pruned BFS of the static construction re-runs from
//!   them **once per hub for the whole window** in descending rank order
//!   in upsert mode: restoring over-deleted entries, refreshing changed
//!   ones, and creating the newly-maximal hubs' entries. The descending
//!   order keeps the pruning distance checks exact: they only consult
//!   strictly higher-ranked hubs, which are unaffected, already
//!   re-labeled, or only count-repaired (distances untouched). This phase
//!   dominates deletion cost, so batching attacks it twice: the
//!   per-window merge runs one pass per hub instead of one per hub per
//!   edge, and a window that demotes more than
//!   [`REBUILD_FALLBACK_PERCENT`] of all hub sides skips the sweeps
//!   entirely in favor of a from-scratch label rebuild under the existing
//!   rank order — exact by construction and cheaper than upsert-sweeping
//!   most of the index. On the committed `BENCH_delete.json` workload the
//!   fallback carries every window of 8+ deletions; the surgical merge
//!   path is what single-edge windows and sparse windows exercise.
//!
//! All distance conditions are evaluated with plain BFS traversals from
//! the edge endpoints — deliberately not with index lookups: the
//! couple-skipped index legitimately does not cover `V_out`-source pairs
//! whose maximum is the source itself, and an overestimate here could
//! silently skip a stale entry. The sweeps run through the index's pooled
//! [`TraversalWorkspace`](csc_graph::TraversalWorkspace) (endpoints
//! shared by several window edges are swept once) and stay allocation-free
//! in the steady state.
//!
//! A count-repair pass that meets a saturated (24-bit-capped) count cannot
//! subtract reliably; the hub is then demoted to the re-label regime for
//! that side, preserving exactness.
//!
//! Multi-edge windows are equivalent to the one-at-a-time path at the
//! query level (canonical entries are identical; only harmless dominated
//! leftovers may differ — label distances never under-estimate either
//! way), and single-edge windows take the identical code path from both
//! [`remove_edge`](CscIndex::remove_edge) and
//! [`apply_batch`](CscIndex::apply_batch), so the scalar/batch
//! label-identity contract is preserved by construction. The
//! `batch_equivalence` suite pins both down.

use crate::build::{build_labels, CoupleBfs, TraversalCounters, WriteMode};
use crate::error::CscError;
use crate::index::CscIndex;
use crate::invert::InvertedIndex;
use crate::parallel::par_map_indexed;
use crate::repair::{multi_source_subtract, Direction, Seed, SubtractOutcome};
use crate::stats::UpdateReport;
use csc_graph::bipartite::{in_vertex, is_in_vertex, out_vertex};
use csc_graph::{
    Csr, DistMap, GraphError, SweepHandle, SweepMaps, VertexId, WorkspacePool, UNREACHED,
};
use csc_labeling::{LabelSide, LabelingError};
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// When a window demotes more than this percentage of all hub sides to
/// the re-label regime, `repair_deletions` rebuilds every label from
/// scratch under the existing rank order instead of sweeping the demoted
/// hubs one by one (see the fallback comment in the implementation).
const REBUILD_FALLBACK_PERCENT: usize = 50;

/// Window-level accounting the batch engine surfaces in
/// [`BatchReport`](crate::BatchReport).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct DeletionRepairStats {
    /// Distinct (hub, side) repair passes across the window — subtraction
    /// passes plus re-label sweeps. The per-edge sum this replaces is
    /// `affected_hubs`-shaped and grows with the window size; this union
    /// does not.
    pub hub_union: usize,
    /// Hub caches filled (one per merged subtraction pass).
    pub cache_fills: usize,
    /// Seeds served by an already-filled hub cache — edges whose
    /// subtraction merged into an existing pass instead of refilling.
    pub cache_hits: usize,
}

/// The per-edge sweep handles resolved against the workspace pool: every
/// distance condition of the window reads through these six maps.
struct EdgeSweeps<'a> {
    ao: VertexId,
    bi: VertexId,
    /// `sd_pre(·, a_o)` (backward sweep, window edges still present).
    to_ao: &'a DistMap,
    /// `sd_pre(·, b_i)`.
    to_bi: &'a DistMap,
    /// `sd_pre(b_i, ·)`.
    from_bi: &'a DistMap,
    /// `sd_pre(a_o, ·)`.
    from_ao: &'a DistMap,
    /// `sd_post(·, b_i)`, truncated at `to_bi`'s eccentricity.
    to_bi_post: &'a DistMap,
    /// `sd_post(a_o, ·)`, truncated at `from_ao`'s eccentricity.
    from_ao_post: &'a DistMap,
}

/// Resolves each removed edge's six sweep handles against the map pool.
fn resolve_views<'a>(
    maps: SweepMaps<'a>,
    removals: &[(VertexId, VertexId)],
    pre: &HashMap<(u32, bool), SweepHandle>,
    post: &HashMap<(u32, bool), SweepHandle>,
) -> Vec<EdgeSweeps<'a>> {
    removals
        .iter()
        .map(|&(a, b)| {
            let (ao, bi) = (out_vertex(a), in_vertex(b));
            EdgeSweeps {
                ao,
                bi,
                to_ao: maps.map(pre[&(ao.0, false)]),
                to_bi: maps.map(pre[&(bi.0, false)]),
                from_bi: maps.map(pre[&(bi.0, true)]),
                from_ao: maps.map(pre[&(ao.0, true)]),
                to_bi_post: maps.map(post[&(bi.0, false)]),
                from_ao_post: maps.map(post[&(ao.0, true)]),
            }
        })
        .collect()
}

impl CscIndex {
    /// Removes the edge `(a, b)` from the graph and decrementally repairs
    /// the index (a one-edge window of the batched deletion engine).
    ///
    /// # Errors
    ///
    /// Graph errors (missing edge, out-of-range endpoints) leave the index
    /// untouched. A labeling capacity overflow mid-update poisons the index.
    pub fn remove_edge(&mut self, a: VertexId, b: VertexId) -> Result<UpdateReport, CscError> {
        self.check_ready()?;
        let n = self.original_vertex_count();
        for v in [a, b] {
            if v.index() >= n {
                return Err(GraphError::VertexOutOfRange { vertex: v, n }.into());
            }
        }
        if !self.gb.graph().has_edge(out_vertex(a), in_vertex(b)) {
            return Err(GraphError::MissingEdge(a, b).into());
        }
        let start = Instant::now();
        let mut report = UpdateReport::default();
        if let Err(e) = self.repair_deletions(&[(a, b)], &mut report) {
            self.poison(format!("label overflow during remove_edge({a}, {b}): {e}"));
            return Err(e.into());
        }
        report.duration = start.elapsed();
        self.stats.deletions += 1;
        self.stats.entries_added += report.entries_inserted;
        self.stats.entries_removed += report.entries_removed;
        Ok(report)
    }

    /// Removes a window of original edges from the graph and repairs the
    /// index once for the lot (see the [module docs](self)). Every edge
    /// must be present and distinct — callers validate.
    pub(crate) fn repair_deletions(
        &mut self,
        removals: &[(VertexId, VertexId)],
        report: &mut UpdateReport,
    ) -> Result<DeletionRepairStats, LabelingError> {
        let mut stats = DeletionRepairStats::default();
        if removals.is_empty() {
            return Ok(stats);
        }
        let t_classify = Instant::now();

        // ---- Endpoint sweeps, pre and post window. -----------------------
        // Pre maps are keyed by (vertex, direction) so endpoints shared by
        // several window edges are swept once.
        let n = self.gb.graph().vertex_count();
        self.sweeps.ensure(n);
        self.sweeps.release_all();
        self.workspace.ensure(n);
        let mut pre: HashMap<(u32, bool), csc_graph::SweepHandle> = HashMap::new();
        {
            let CscIndex {
                ref gb,
                ref mut sweeps,
                ..
            } = *self;
            let graph = gb.graph();
            for &(a, b) in removals {
                let (ao, bi) = (out_vertex(a), in_vertex(b));
                for (v, forward) in [(ao, false), (ao, true), (bi, false), (bi, true)] {
                    pre.entry((v.0, forward))
                        .or_insert_with(|| sweeps.bfs(graph, v, forward));
                }
            }
        }
        for &(a, b) in removals {
            self.gb
                .remove_original_edge(a, b)
                .expect("caller verified the edge exists");
        }
        let mut post: HashMap<(u32, bool), csc_graph::SweepHandle> = HashMap::new();
        {
            let CscIndex {
                ref gb,
                ref mut sweeps,
                ..
            } = *self;
            let graph = gb.graph();
            for &(a, b) in removals {
                let (ao, bi) = (out_vertex(a), in_vertex(b));
                // Only the distances that can *grow* need a post sweep, and
                // truncating at the pre-sweep eccentricity still classifies
                // every vertex (unchanged distances are ≤ the bound; a
                // truncated vertex is by definition grown).
                for (v, forward) in [(bi, false), (ao, true)] {
                    post.entry((v.0, forward)).or_insert_with(|| {
                        let bound = sweeps.map(pre[&(v.0, forward)]).max_dist();
                        sweeps.bfs_bounded(graph, v, forward, bound)
                    });
                }
            }
        }

        // ---- Classify V_in hubs into the two regimes, once per window. ---
        // rank -> (forward grown, backward grown); BTreeMap so later phases
        // run in descending rank order (ascending rank value).
        let mut relabel: BTreeMap<u32, (bool, bool)> = BTreeMap::new();
        // rank -> (forward seeds, backward seeds) for the merged
        // subtraction passes, snapshotted from the pre-window labels.
        let mut subtract: BTreeMap<u32, (Vec<Seed>, Vec<Seed>)> = BTreeMap::new();
        {
            let graph = self.gb.graph();
            let (maps, _) = self.sweeps.split_mut();
            let views = resolve_views(maps, removals, &pre, &post);
            for v in 0..graph.vertex_count() {
                let vid = VertexId(v as u32);
                if !is_in_vertex(vid) {
                    continue;
                }
                let (mut cross_f, mut cross_b) = (false, false);
                let (mut grown_f, mut grown_b) = (false, false);
                for ev in &views {
                    let da = ev.to_ao.get(vid);
                    if da != UNREACHED && ev.to_bi.get(vid) == da + 1 {
                        cross_f = true;
                        grown_f |= ev.to_bi_post.get(vid) != da + 1;
                    }
                    let db = ev.from_bi.get(vid);
                    if db != UNREACHED && ev.from_ao.get(vid) == db + 1 {
                        cross_b = true;
                        grown_b |= ev.from_ao_post.get(vid) != db + 1;
                    }
                    if grown_f && grown_b {
                        // Both sides re-label: no seeds will be collected
                        // and the flags cannot change back — stop scanning.
                        break;
                    }
                }
                if !cross_f && !cross_b {
                    continue;
                }
                let rank = self.ranks.rank(vid);
                if grown_f || grown_b {
                    let flags = relabel.entry(rank).or_default();
                    flags.0 |= grown_f;
                    flags.1 |= grown_b;
                }
                // Unchanged-distance sides with a maximal crossing prefix
                // (an exact entry at the deleted tail) need count
                // subtraction; each crossing edge contributes one seed to
                // the hub's merged pass.
                if (cross_f && !grown_f) || (cross_b && !grown_b) {
                    for ev in &views {
                        if cross_f && !grown_f {
                            let da = ev.to_ao.get(vid);
                            if da != UNREACHED && ev.to_bi.get(vid) == da + 1 {
                                if let Some(e) = self.labels.entry_for(ev.ao, LabelSide::In, rank) {
                                    if e.dist() == da {
                                        let seeds = &mut subtract.entry(rank).or_default().0;
                                        seeds.push((ev.bi, e.dist() + 1, e.count()));
                                    }
                                }
                            }
                        }
                        if cross_b && !grown_b {
                            let db = ev.from_bi.get(vid);
                            if db != UNREACHED && ev.from_ao.get(vid) == db + 1 {
                                if let Some(e) = self.labels.entry_for(ev.bi, LabelSide::Out, rank)
                                {
                                    if e.dist() == db {
                                        let seeds = &mut subtract.entry(rank).or_default().1;
                                        seeds.push((ev.ao, e.dist() + 1, e.count()));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let t_subtract = Instant::now();
        report.classify_time += t_subtract - t_classify;

        // ---- Rebuild fallback for overwhelming windows. ------------------
        // Each re-label side costs a full pruned BFS in upsert mode —
        // several times the per-hub cost of the append-mode static build
        // (binary-search writes against populated lists instead of pushes,
        // live adjacency instead of a CSR snapshot). When a window demotes
        // most of the index anyway, rebuilding every label from the
        // current graph under the *existing* rank order is both cheaper
        // and trivially exact (it is the ground truth the equivalence
        // suites compare against); dominated leftovers vanish as a bonus.
        let relabel_sides: usize = relabel
            .values()
            .map(|&(f, b)| usize::from(f) + usize::from(b))
            .sum();
        if relabel_sides * 100 > 2 * self.original_vertex_count() * REBUILD_FALLBACK_PERCENT {
            let result = self.rebuild_after_window(report);
            report.relabel_time += t_subtract.elapsed();
            self.sweeps.release_all();
            stats.hub_union += relabel_sides;
            return result.map(|()| stats);
        }

        let CscIndex {
            ref gb,
            ref ranks,
            ref mut labels,
            ref mut inverted,
            ref config,
            ref mut workspace,
            ref mut sweeps,
            ..
        } = *self;
        let graph = gb.graph();
        let (maps, buckets) = sweeps.split_mut();
        let views = resolve_views(maps, removals, &pre, &post);

        // ---- Phase A: merged count-repair passes (may demote). -----------
        let (state, cache) = workspace.parts_mut();
        for (&rank, (fwd_seeds, bwd_seeds)) in &subtract {
            let vk = ranks.vertex_at_rank(rank);
            for (seeds, direction) in [
                (fwd_seeds, Direction::Forward),
                (bwd_seeds, Direction::Backward),
            ] {
                if seeds.is_empty() {
                    continue;
                }
                report.affected_hubs += 1;
                stats.hub_union += 1;
                stats.cache_fills += 1;
                stats.cache_hits += seeds.len() - 1;
                let outcome = multi_source_subtract(
                    graph, ranks, labels, inverted, state, cache, buckets, direction, rank, vk,
                    seeds, report,
                );
                if matches!(outcome, SubtractOutcome::Demote) {
                    // Saturated counts: recompute this hub side from scratch.
                    let flags = relabel.entry(rank).or_default();
                    match direction {
                        Direction::Forward => flags.0 = true,
                        Direction::Backward => flags.1 = true,
                    }
                }
            }
        }
        let t_relabel = Instant::now();
        report.subtract_time += t_relabel - t_subtract;

        // ---- Phase B: superset deletion for re-label hubs. ----------------
        // One carrier scan per (hub, side) for the whole window: an entry is
        // stale iff its stored distance equals a crossing-path length
        // through *some* deleted edge, evaluated with pre-window distances.
        let mut conds: Vec<(u32, &DistMap)> = Vec::new();
        let mut stale: Vec<u32> = Vec::new();
        for (&rank, &(fwd, bwd)) in &relabel {
            let hub = ranks.vertex_at_rank(rank);
            for side in [LabelSide::In, LabelSide::Out] {
                let active = match side {
                    LabelSide::In => fwd,
                    LabelSide::Out => bwd,
                };
                if !active {
                    continue;
                }
                conds.clear();
                for ev in &views {
                    // In-side entries at x are stale when
                    // sd(hub, a_o) + 1 + sd(b_i, x) == dist; out-side when
                    // sd(x, a_o) + 1 + sd(b_i, hub) == dist.
                    let (dh, per_carrier) = match side {
                        LabelSide::In => (ev.to_ao.get(hub), ev.from_bi),
                        LabelSide::Out => (ev.from_bi.get(hub), ev.to_ao),
                    };
                    if dh != UNREACHED {
                        conds.push((dh + 1, per_carrier));
                    }
                }
                if conds.is_empty() {
                    continue;
                }
                stale.clear();
                let matches_cond = |labels: &csc_labeling::Labels, x: VertexId| {
                    let Some(e) = labels.entry_for(x, side, rank) else {
                        return false;
                    };
                    conds.iter().any(|&(dh1, m)| {
                        let dx = m.get(x);
                        dx != UNREACHED && dh1 + dx == e.dist()
                    })
                };
                match inverted {
                    Some(inv) => {
                        report.carriers_indexed += 1;
                        for &x in inv.carriers(side, rank) {
                            if matches_cond(labels, VertexId(x)) {
                                stale.push(x);
                            }
                        }
                    }
                    None => {
                        report.carriers_scanned += 1;
                        for x in 0..labels.vertex_count() as u32 {
                            if matches_cond(labels, VertexId(x)) {
                                stale.push(x);
                            }
                        }
                    }
                }
                for &x in &stale {
                    labels.remove(VertexId(x), side, rank);
                    if let Some(inv) = inverted {
                        inv.remove(side, rank, VertexId(x));
                    }
                    report.entries_removed += 1;
                }
            }
        }

        // ---- Phase C: re-label in descending rank order, once per hub. ----
        // With a parallelism width above one the sweeps run in waves:
        // per-hub traversals are collected concurrently against the
        // pre-wave labels, then committed in rank order with validation —
        // exact because Phase B already removed every distance-stale
        // entry, so the wave's upserts only add or count-refresh entries
        // (coverage grows monotonically; see the collect/commit notes in
        // `build.rs`). Upsert commits always validate, independent of the
        // `deterministic` knob, to keep the sweep serial-exact.
        let mut counters = crate::build::TraversalCounters::default();
        let width = config.parallelism.width();
        if width > 1 && relabel.len() > 1 {
            let n = graph.vertex_count();
            let hub_list: Vec<(u32, bool, bool)> =
                relabel.iter().map(|(&r, &(f, b))| (r, f, b)).collect();
            let pool: WorkspacePool<CoupleBfs> = WorkspacePool::new();
            for wave in hub_list.chunks(width) {
                let results = {
                    let labels_view: &csc_labeling::Labels = labels;
                    par_map_indexed(width, wave.len(), |i| {
                        let (rank, fwd, bwd) = wave[i];
                        let hub = ranks.vertex_at_rank(rank);
                        let mut ws = pool.checkout_with(|| CoupleBfs::new(n));
                        ws.ensure(n);
                        let mut c = TraversalCounters::default();
                        let groups_in =
                            fwd.then(|| ws.collect_in(graph, ranks, labels_view, &mut c, hub));
                        let groups_out =
                            bwd.then(|| ws.collect_out(graph, ranks, labels_view, &mut c, hub));
                        (groups_in, groups_out, c)
                    })
                };
                for (&(rank, fwd, bwd), (groups_in, groups_out, c)) in wave.iter().zip(results) {
                    let hub = ranks.vertex_at_rank(rank);
                    report.affected_hubs += 1;
                    stats.hub_union += usize::from(fwd) + usize::from(bwd);
                    counters.merge(&c);
                    let (_, cache) = workspace.parts_mut();
                    if let Some(groups) = groups_in {
                        CoupleBfs::commit_in(
                            labels,
                            inverted.as_mut(),
                            &mut counters,
                            WriteMode::Upsert,
                            cache,
                            hub,
                            rank,
                            &groups,
                            true,
                        )?;
                    }
                    let (_, cache) = workspace.parts_mut();
                    if let Some(groups) = groups_out {
                        CoupleBfs::commit_out(
                            labels,
                            inverted.as_mut(),
                            &mut counters,
                            WriteMode::Upsert,
                            cache,
                            hub,
                            rank,
                            &groups,
                            true,
                        )?;
                    }
                }
            }
        } else {
            for (&rank, &(fwd, bwd)) in &relabel {
                let hub = ranks.vertex_at_rank(rank);
                report.affected_hubs += 1;
                stats.hub_union += usize::from(fwd) + usize::from(bwd);
                if fwd {
                    workspace.run_in(
                        graph,
                        ranks,
                        labels,
                        inverted.as_mut(),
                        &mut counters,
                        hub,
                        WriteMode::Upsert,
                    )?;
                }
                if bwd {
                    workspace.run_out(
                        graph,
                        ranks,
                        labels,
                        inverted.as_mut(),
                        &mut counters,
                        hub,
                        WriteMode::Upsert,
                    )?;
                }
            }
        }
        report.entries_inserted += counters.inserted;
        report.entries_updated += counters.updated;
        report.vertices_visited += counters.dequeues;
        report.relabel_time += t_relabel.elapsed();
        self.sweeps.release_all();
        Ok(stats)
    }

    /// The overwhelming-window fallback: rebuilds every label from the
    /// current (post-removal) graph under the existing rank order — the
    /// exact static construction, so the result is correct by definition —
    /// and swaps it in, refreshing the inverted index and marking every
    /// label slot dirty so the next incremental re-freeze re-gathers the
    /// whole store (the served snapshot describes the retired layout).
    fn rebuild_after_window(&mut self, report: &mut UpdateReport) -> Result<(), LabelingError> {
        let csr = Csr::from_digraph(self.gb.graph());
        let mut counters = TraversalCounters::default();
        let labels = build_labels(&csr, &self.ranks, &mut counters, self.config.parallelism)?;
        report.entries_removed += self.labels.total_entries();
        report.entries_inserted += labels.total_entries();
        report.vertices_visited += counters.dequeues;
        report.rebuild_fallbacks += 1;
        let keep_inverted = self.inverted.is_some() || self.config.maintain_inverted;
        self.labels = labels;
        self.labels.mark_all_dirty();
        self.inverted = keep_inverted.then(|| InvertedIndex::from_labels(&self.labels));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CscConfig, UpdateStrategy};
    use csc_graph::generators::{directed_cycle, gnm, layered_cycle};
    use csc_graph::traversal::shortest_cycle_oracle;
    use csc_graph::DiGraph;

    fn assert_queries_match(idx: &CscIndex, g: &DiGraph, context: &str) {
        for v in g.vertices() {
            assert_eq!(
                idx.query(v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(g, v),
                "{context}: SCCnt({v})"
            );
        }
    }

    #[test]
    fn delete_breaks_the_only_cycle() {
        let g = directed_cycle(4);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        assert!(idx.query(VertexId(0)).is_some());
        let report = idx.remove_edge(VertexId(1), VertexId(2)).unwrap();
        assert!(report.entries_removed > 0);
        for v in g.vertices() {
            assert_eq!(idx.query(v), None, "no cycles remain");
        }
        assert_eq!(idx.original_edge_count(), 3);
        assert_eq!(idx.stats().deletions, 1);
    }

    #[test]
    fn delete_lengthens_shortest_cycles() {
        // Chorded cycle: 0..5 ring plus chord 3 -> 0. Removing the chord
        // restores the length-6 ring as the only cycle.
        let mut g = directed_cycle(6);
        g.try_add_edge(VertexId(3), VertexId(0)).unwrap();
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        assert_eq!(idx.query(VertexId(0)).unwrap().length, 4);
        idx.remove_edge(VertexId(3), VertexId(0)).unwrap();
        let g2 = directed_cycle(6);
        assert_queries_match(&idx, &g2, "after chord removal");
        assert_eq!(idx.query(VertexId(0)).unwrap().length, 6);
    }

    #[test]
    fn delete_reduces_parallel_count() {
        // Two parallel 3-cycles through 0; deleting one leaves the other.
        // This exercises the count-repair (subtraction) regime: distances
        // to the endpoints are unchanged for most hubs.
        let g = DiGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        assert_eq!(idx.query(VertexId(0)).unwrap().count, 2);
        idx.remove_edge(VertexId(3), VertexId(4)).unwrap();
        let mut g2 = g.clone();
        g2.try_remove_edge(VertexId(3), VertexId(4)).unwrap();
        assert_queries_match(&idx, &g2, "after breaking one cycle");
        let c = idx.query(VertexId(0)).unwrap();
        assert_eq!((c.length, c.count), (3, 1));
    }

    #[test]
    fn graph_errors_leave_index_clean() {
        let mut idx = CscIndex::build(&directed_cycle(3), CscConfig::default()).unwrap();
        let before = idx.total_entries();
        assert!(matches!(
            idx.remove_edge(VertexId(0), VertexId(2)),
            Err(CscError::Graph(GraphError::MissingEdge(..)))
        ));
        assert!(matches!(
            idx.remove_edge(VertexId(0), VertexId(9)),
            Err(CscError::Graph(GraphError::VertexOutOfRange { .. }))
        ));
        assert_eq!(idx.total_entries(), before);
        assert!(!idx.is_poisoned());
        assert_eq!(idx.stats().deletions, 0);
    }

    #[test]
    fn random_deletions_match_oracle() {
        for seed in 0..4 {
            let mut g = gnm(20, 70, seed);
            let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
            let edges = g.edge_vec();
            // Delete every 4th edge, verifying after each.
            for (k, &(u, w)) in edges.iter().enumerate().filter(|(k, _)| k % 4 == 0) {
                g.try_remove_edge(VertexId(u), VertexId(w)).unwrap();
                idx.remove_edge(VertexId(u), VertexId(w)).unwrap();
                assert_queries_match(&idx, &g, &format!("seed {seed} deletion {k}"));
            }
            if let Some(inv) = &idx.inverted {
                inv.validate_against(&idx.labels).unwrap();
            }
        }
    }

    #[test]
    fn deletions_without_inverted_index_fall_back_to_scan() {
        // The scalar path honors `with_inverted(false)` with a full-scan
        // carrier lookup (counted in the report); the batched path never
        // scans — it builds the inverted index on demand instead (see
        // `batch.rs`).
        let mut g = gnm(16, 50, 3);
        let config = CscConfig::default().with_inverted(false);
        let mut idx = CscIndex::build(&g, config).unwrap();
        assert!(idx.inverted.is_none());
        let edges = g.edge_vec();
        let mut scanned = 0;
        for &(u, w) in edges.iter().take(10) {
            g.try_remove_edge(VertexId(u), VertexId(w)).unwrap();
            let report = idx.remove_edge(VertexId(u), VertexId(w)).unwrap();
            assert_eq!(report.carriers_indexed, 0);
            scanned += report.carriers_scanned;
            assert_queries_match(&idx, &g, "scan fallback");
        }
        assert!(scanned > 0, "re-label hubs exercised the scan fallback");
    }

    #[test]
    fn delete_then_reinsert_roundtrip() {
        // The paper's dynamic experiment: remove random edges, insert them
        // back, and the index must answer like the original graph.
        for seed in [11, 12] {
            let g = gnm(18, 60, seed);
            let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
            let edges = g.edge_vec();
            let removed: Vec<_> = edges.iter().step_by(3).copied().collect();
            for &(u, w) in &removed {
                idx.remove_edge(VertexId(u), VertexId(w)).unwrap();
            }
            for &(u, w) in &removed {
                idx.insert_edge(VertexId(u), VertexId(w)).unwrap();
            }
            assert_queries_match(&idx, &g, &format!("seed {seed} roundtrip"));
        }
    }

    #[test]
    fn minimality_deletion_interplay() {
        let mut g = gnm(15, 45, 21);
        let config = CscConfig::default().with_update_strategy(UpdateStrategy::Minimality);
        let mut idx = CscIndex::build(&g, config).unwrap();
        let edges = g.edge_vec();
        for &(u, w) in edges.iter().take(12) {
            g.try_remove_edge(VertexId(u), VertexId(w)).unwrap();
            idx.remove_edge(VertexId(u), VertexId(w)).unwrap();
            assert_queries_match(&idx, &g, "minimality deletions");
        }
        idx.inverted
            .as_ref()
            .unwrap()
            .validate_against(&idx.labels)
            .unwrap();
    }

    #[test]
    fn saturated_counts_demote_to_relabel() {
        // 2^26 shortest cycles saturate the 24-bit counts; deleting an edge
        // must stay exact (demotion path) at the distance level.
        let widths = vec![2usize; 27];
        let g = layered_cycle(&widths);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let c = idx.query(VertexId(0)).unwrap();
        assert_eq!(c.length, widths.len() as u32);
        // Remove one edge of the first layer pair: cycles through vertex 0
        // halve (still saturated) and lengths stay identical.
        idx.remove_edge(VertexId(2), VertexId(4)).unwrap();
        let after = idx.query(VertexId(0)).unwrap();
        assert_eq!(after.length, widths.len() as u32);
        let oracle = shortest_cycle_oracle(&idx.original_graph(), VertexId(0)).unwrap();
        assert_eq!(after.length, oracle.0);
    }

    #[test]
    fn phase_timings_cover_the_deletion() {
        let g = gnm(24, 80, 7);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let (a, b) = g.edge_vec()[3];
        let report = idx.remove_edge(VertexId(a), VertexId(b)).unwrap();
        let phases = report.classify_time + report.subtract_time + report.relabel_time;
        assert!(phases > std::time::Duration::ZERO);
        assert!(phases <= report.duration, "phases nest inside the update");
        assert_eq!(report.carriers_scanned, 0, "default config is indexed");
    }

    #[test]
    fn window_repair_matches_sequential_deletions() {
        // The windowed engine against one-at-a-time application of the
        // same removals, on every query.
        for seed in [3u64, 19, 40] {
            let g = gnm(22, 88, seed);
            let base = CscIndex::build(&g, CscConfig::default()).unwrap();
            let removals: Vec<(VertexId, VertexId)> = g
                .edge_vec()
                .iter()
                .step_by(5)
                .map(|&(u, w)| (VertexId(u), VertexId(w)))
                .collect();

            let mut windowed = base.clone();
            let mut report = UpdateReport::default();
            windowed.repair_deletions(&removals, &mut report).unwrap();
            let mut sequential = base;
            for &(u, w) in &removals {
                sequential.remove_edge(u, w).unwrap();
            }
            let g_final = sequential.original_graph();
            assert_eq!(windowed.original_graph(), g_final);
            for v in g_final.vertices() {
                assert_eq!(
                    windowed.query(v),
                    sequential.query(v),
                    "seed {seed}: SCCnt({v})"
                );
            }
            assert_queries_match(&windowed, &g_final, &format!("seed {seed} window"));
            if let Some(inv) = &windowed.inverted {
                inv.validate_against(&windowed.labels).unwrap();
            }
        }
    }
}
