//! Deadline-bounded query entry points on [`CscIndex`] and
//! [`SnapshotIndex`].
//!
//! Every variant here mirrors its unbounded twin exactly — same
//! arguments, same panics, same answers — wrapped in a `Result` whose
//! error is [`CscError::DeadlineExceeded`]. The contract is:
//!
//! * **Admission**: an already-expired [`Deadline`] is refused before any
//!   work happens.
//! * **Cooperative checkpoints**: long operations derive an
//!   [`OpBudget`](csc_graph::OpBudget) from the deadline and consume it at
//!   the label-intersection granularity (see
//!   [`LabelStore::dist_count_budgeted`]). A sweep's overshoot past its
//!   deadline is bounded by one intersection — microseconds.
//! * **No observable effect on abort**: queries are read-only, so an
//!   aborted sweep simply returns the error; the index, its workspaces,
//!   and any snapshot stay fully reusable.
//!
//! Parallel snapshot sweeps derive one budget *per rayon worker* from the
//! shared deadline (`OpBudget` is `Cell`-based and deliberately not
//! `Sync`), so every worker observes the same cut-off instant without
//! cross-core contention on the countdown.
//!
//! The deadline-bounded **write** paths live next to their unbounded
//! twins: [`CscIndex::apply_batch_deadline`] (admission + a checkpoint
//! after the read-only planning pass),
//! [`MaintenanceEngine::apply_batch_deadline`](crate::MaintenanceEngine::apply_batch_deadline)
//! and [`MaintenanceEngine::step_deadline`](crate::MaintenanceEngine::step_deadline)
//! (admission-only: a WAL-logged window must run to completion), and
//! [`ConcurrentIndex`](crate::ConcurrentIndex) facade variants.

use crate::analytics::{girth_fold, rank_by_cycle_count, VertexCycles};
use crate::error::CscError;
use crate::guard::Deadline;
use crate::index::CscIndex;
use crate::snapshot::SnapshotIndex;
use csc_graph::bipartite::{in_vertex, out_vertex};
use csc_graph::{OpBudget, VertexId};
use csc_labeling::{CycleCount, LabelStore};
use rayon::prelude::*;

fn to_cycles(dc: csc_labeling::DistCount) -> CycleCount {
    debug_assert_eq!(dc.dist % 2, 1, "V_out ~> V_in distances are odd");
    CycleCount::new(dc.dist.div_ceil(2), dc.count)
}

impl CscIndex {
    /// [`query`](Self::query) under a wall-clock deadline.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the indexed graph, like
    /// [`query`](Self::query).
    pub fn query_deadline(
        &self,
        v: VertexId,
        deadline: Deadline,
    ) -> Result<Option<CycleCount>, CscError> {
        deadline.admit()?;
        self.query_budgeted(v, &deadline.budget())
    }

    fn query_budgeted(
        &self,
        v: VertexId,
        budget: &OpBudget,
    ) -> Result<Option<CycleCount>, CscError> {
        assert!(
            v.index() < self.original_vertex_count(),
            "query vertex {v} out of range ({} vertices)",
            self.original_vertex_count()
        );
        let dc = self
            .labels
            .dist_count_budgeted(out_vertex(v), in_vertex(v), budget)?;
        Ok(dc.map(to_cycles))
    }

    /// Every vertex's `SCCnt` under one shared deadline, in id order.
    fn sweep_deadline(&self, deadline: Deadline) -> Result<Vec<Option<CycleCount>>, CscError> {
        deadline.admit()?;
        let budget = deadline.budget();
        (0..self.original_vertex_count() as u32)
            .map(|v| self.query_budgeted(VertexId(v), &budget))
            .collect()
    }

    /// [`girth`](Self::girth) under a wall-clock deadline: the `O(n)`
    /// sweep aborts at the first label intersection past the cut-off.
    pub fn girth_deadline(&self, deadline: Deadline) -> Result<Option<(u32, usize)>, CscError> {
        Ok(girth_fold(self.sweep_deadline(deadline)?.into_iter()))
    }

    /// [`top_k_by_cycle_count`](Self::top_k_by_cycle_count) under a
    /// wall-clock deadline.
    pub fn top_k_by_cycle_count_deadline(
        &self,
        k: usize,
        max_length: u32,
        deadline: Deadline,
    ) -> Result<Vec<VertexCycles>, CscError> {
        Ok(rank_by_cycle_count(
            self.sweep_deadline(deadline)?.into_iter(),
            k,
            max_length,
        ))
    }
}

impl SnapshotIndex {
    /// [`query`](Self::query) under a wall-clock deadline. Out-of-range
    /// vertices still answer `Ok(None)` (stale-but-safe), never panic.
    pub fn query_deadline(
        &self,
        v: VertexId,
        deadline: Deadline,
    ) -> Result<Option<CycleCount>, CscError> {
        deadline.admit()?;
        self.query_budgeted(v, &deadline.budget())
    }

    fn query_budgeted(
        &self,
        v: VertexId,
        budget: &OpBudget,
    ) -> Result<Option<CycleCount>, CscError> {
        if v.index() >= self.original_vertex_count() {
            return Ok(None);
        }
        let dc = self
            .labels()
            .dist_count_budgeted(out_vertex(v), in_vertex(v), budget)?;
        Ok(dc.map(to_cycles))
    }

    /// [`query_batch`](Self::query_batch) under a wall-clock deadline,
    /// evaluated in parallel with one budget per rayon worker.
    pub fn query_batch_deadline(
        &self,
        vertices: &[VertexId],
        deadline: Deadline,
    ) -> Result<Vec<Option<CycleCount>>, CscError> {
        deadline.admit()?;
        vertices
            .par_iter()
            .map_init(
                || deadline.budget(),
                |budget, &v| self.query_budgeted(v, budget),
            )
            .collect()
    }

    /// [`query_all`](Self::query_all) under a wall-clock deadline,
    /// evaluated in parallel with one budget per rayon worker.
    pub fn query_all_deadline(
        &self,
        deadline: Deadline,
    ) -> Result<Vec<Option<CycleCount>>, CscError> {
        deadline.admit()?;
        (0..self.original_vertex_count() as u32)
            .into_par_iter()
            .map_init(
                || deadline.budget(),
                |budget, v| self.query_budgeted(VertexId(v), budget),
            )
            .collect()
    }

    /// [`girth`](Self::girth) under a wall-clock deadline.
    pub fn girth_deadline(&self, deadline: Deadline) -> Result<Option<(u32, usize)>, CscError> {
        Ok(girth_fold(self.query_all_deadline(deadline)?.into_iter()))
    }

    /// [`top_k_by_cycle_count`](Self::top_k_by_cycle_count) under a
    /// wall-clock deadline.
    pub fn top_k_by_cycle_count_deadline(
        &self,
        k: usize,
        max_length: u32,
        deadline: Deadline,
    ) -> Result<Vec<VertexCycles>, CscError> {
        Ok(rank_by_cycle_count(
            self.query_all_deadline(deadline)?.into_iter(),
            k,
            max_length,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::GraphUpdate;
    use crate::config::CscConfig;
    use csc_graph::generators::gnm;
    use std::time::Duration;

    fn expired() -> Deadline {
        Deadline::at(std::time::Instant::now() - Duration::from_millis(1))
    }

    fn roomy() -> Deadline {
        Deadline::within(Duration::from_secs(3600))
    }

    #[test]
    fn deadline_queries_match_unbounded_and_expire() {
        let g = gnm(40, 140, 5);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let snap = idx.freeze();
        for v in g.vertices() {
            assert_eq!(idx.query_deadline(v, roomy()).unwrap(), idx.query(v));
            assert_eq!(idx.query_deadline(v, Deadline::NONE).unwrap(), idx.query(v));
            assert_eq!(snap.query_deadline(v, roomy()).unwrap(), snap.query(v));
        }
        assert_eq!(
            idx.query_deadline(VertexId(0), expired()),
            Err(CscError::DeadlineExceeded)
        );
        // An aborted query has no observable effect: the same index
        // answers the retry exactly.
        assert_eq!(
            idx.query_deadline(VertexId(0), roomy()).unwrap(),
            idx.query(VertexId(0))
        );
    }

    #[test]
    fn deadline_sweeps_match_unbounded_and_expire() {
        let g = gnm(50, 190, 6);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let snap = idx.freeze();
        assert_eq!(idx.girth_deadline(roomy()).unwrap(), idx.girth());
        assert_eq!(snap.girth_deadline(roomy()).unwrap(), snap.girth());
        assert_eq!(
            idx.top_k_by_cycle_count_deadline(7, u32::MAX, roomy())
                .unwrap(),
            idx.top_k_by_cycle_count(7, u32::MAX)
        );
        assert_eq!(
            snap.top_k_by_cycle_count_deadline(7, 5, roomy()).unwrap(),
            snap.top_k_by_cycle_count(7, 5)
        );
        assert_eq!(snap.query_all_deadline(roomy()).unwrap(), snap.query_all());
        let some: Vec<VertexId> = g.vertices().step_by(3).collect();
        assert_eq!(
            snap.query_batch_deadline(&some, roomy()).unwrap(),
            snap.query_batch(&some)
        );

        assert_eq!(
            idx.girth_deadline(expired()),
            Err(CscError::DeadlineExceeded)
        );
        assert_eq!(
            snap.query_all_deadline(expired()),
            Err(CscError::DeadlineExceeded)
        );
        assert_eq!(
            snap.top_k_by_cycle_count_deadline(3, 4, expired()),
            Err(CscError::DeadlineExceeded)
        );
    }

    #[test]
    fn snapshot_deadline_query_is_stale_safe_out_of_range() {
        let g = gnm(10, 30, 1);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let snap = idx.freeze();
        assert_eq!(snap.query_deadline(VertexId(99), roomy()).unwrap(), None);
    }

    #[test]
    fn aborted_batch_has_no_observable_effect() {
        let g = gnm(20, 55, 7);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let before = idx.to_bytes().unwrap();
        let updates = [
            GraphUpdate::AddVertex,
            GraphUpdate::InsertEdge(VertexId(0), VertexId(20)),
        ];
        assert_eq!(
            idx.apply_batch_deadline(&updates, expired()),
            Err(CscError::DeadlineExceeded)
        );
        assert_eq!(
            idx.to_bytes().unwrap(),
            before,
            "refused batch left no trace"
        );
        // The identical retry under a live deadline applies normally and
        // matches the unbounded path on a pristine clone.
        let mut twin = CscIndex::from_bytes(&before).unwrap();
        let r1 = idx.apply_batch_deadline(&updates, roomy()).unwrap();
        let r2 = twin.apply_batch(&updates).unwrap();
        assert_eq!(r1.edges_inserted, r2.edges_inserted);
        assert_eq!(idx.to_bytes().unwrap(), twin.to_bytes().unwrap());
    }

    #[test]
    fn engine_batch_deadline_is_admission_only() {
        use crate::maintain::MaintenanceEngine;
        let g = gnm(16, 40, 2);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, CscConfig::default()).unwrap());
        let updates = [GraphUpdate::AddVertex];
        assert_eq!(
            engine.apply_batch_deadline(&updates, expired()),
            Err(CscError::DeadlineExceeded)
        );
        assert_eq!(
            engine.index().original_vertex_count(),
            16,
            "refused before logging or applying"
        );
        let report = engine.apply_batch_deadline(&updates, roomy()).unwrap();
        assert_eq!(report.vertices_added, 1);
        assert_eq!(engine.index().original_vertex_count(), 17);
    }
}
