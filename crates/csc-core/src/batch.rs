//! The batch update engine: apply a whole slice of graph updates in one
//! call, with per-*hub* (not per-edge) label repair.
//!
//! Streaming workloads rarely deliver one edge at a time; they deliver
//! windows of a trace. Applying a window through [`CscIndex::apply_batch`]
//! beats replaying it one [`insert_edge`](CscIndex::insert_edge) /
//! [`remove_edge`](CscIndex::remove_edge) at a time three ways:
//!
//! 1. **Normalization** — duplicate operations and insert/delete pairs on
//!    the same edge cancel before any repair work happens. A hot edge
//!    flapping ten times inside a window costs zero traversals.
//! 2. **Hub-union repair for insertions** — every inserted edge is added
//!    to the graph first, then the union of affected hubs is computed once
//!    and each hub runs *one* multi-source repair pass (the batched
//!    traversal in the crate-internal `repair` module) covering all the
//!    edges that affect it, in descending rank order. Dense batches share
//!    most of their affected hubs (high-ranked hubs appear in almost every
//!    label), so the pass count approaches the hub-union size instead of
//!    the per-edge sum.
//! 3. **Windowed deletion repair** — all net removals leave the graph
//!    first, then the window is classified *once* (shared pre/post
//!    endpoint sweeps through the pooled traversal workspace) and each
//!    affected hub runs at most one merged subtraction pass and one
//!    re-label sweep per side for the whole window (see `csc-core::delete`
//!    — the re-label sweeps dominate deletion cost, so merging them is
//!    where batched deletions win). The deletion phase never scans label
//!    lists for carriers: when the index was built `with_inverted(false)`,
//!    the inverted index is built on demand before the first batched
//!    deletion and maintained incrementally from then on
//!    ([`UpdateReport::carriers_scanned`] stays zero on this path).
//! 4. **One snapshot publication** — a
//!    [`ConcurrentIndex::apply_batch`](crate::ConcurrentIndex::apply_batch)
//!    caller republishes at most once per batch, and incrementally (see
//!    [`FrozenLabels::refreeze_spans`](csc_labeling::FrozenLabels::refreeze_spans)).
//!
//! ## Semantics
//!
//! `apply_batch(updates)` is equivalent to applying `updates` in order,
//! one at a time, *skipping* the individual operations that would fail
//! (inserting a present edge, removing an absent one, self-loops,
//! out-of-range endpoints). Skipped operations are counted in
//! [`BatchReport::rejected`] rather than failing the batch; the
//! `batch_equivalence` property suite pins this contract down. Vertices
//! created by [`GraphUpdate::AddVertex`] get ids in submission order, so
//! later operations in the same batch may reference them.

use crate::build::CoupleBfs;
use crate::config::UpdateStrategy;
use crate::error::CscError;
use crate::index::CscIndex;
use crate::parallel::par_map_indexed;
use crate::repair::{
    multi_source_collect, multi_source_commit, multi_source_pass, Direction, Seed,
};
use crate::stats::UpdateReport;
use csc_graph::bipartite::{in_vertex, is_in_vertex, out_vertex};
use csc_graph::{BucketQueue, VertexId, WorkspacePool};
use csc_labeling::LabelingError;
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// One element of an update stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphUpdate {
    /// Insert the original edge `(a, b)`.
    InsertEdge(VertexId, VertexId),
    /// Remove the original edge `(a, b)`.
    RemoveEdge(VertexId, VertexId),
    /// Append a fresh isolated vertex (ranked at the bottom of the order).
    AddVertex,
}

/// What one [`CscIndex::apply_batch`] call did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Updates in the submitted slice.
    pub updates_submitted: usize,
    /// Vertices appended by [`GraphUpdate::AddVertex`].
    pub vertices_added: usize,
    /// Net edge insertions applied to the graph and index.
    pub edges_inserted: usize,
    /// Net edge removals applied to the graph and index.
    pub edges_removed: usize,
    /// Valid operations that cancelled against each other during
    /// normalization (duplicate edges, insert/delete pairs) and therefore
    /// cost no repair work.
    pub cancelled: usize,
    /// Operations skipped because they would have failed individually
    /// (insert of a present edge, removal of an absent one, self-loop,
    /// out-of-range vertex).
    pub rejected: usize,
    /// Distinct hubs in the union of the insertion phase's affected-hub
    /// sets — each ran at most two (forward/backward) repair passes for
    /// the *whole* batch.
    pub insert_hub_union: usize,
    /// Distinct (hub, side) repair passes in the deletion phase —
    /// subtraction passes plus re-label sweeps, each covering the whole
    /// window. The per-edge engine this replaced ran a multiple of this
    /// that grew with the window size.
    pub delete_hub_union: usize,
    /// Hub caches filled across the batch's repair passes (one per merged
    /// pass).
    pub hub_cache_fills: usize,
    /// Seeds served by an already-filled hub cache: edges whose repair
    /// merged into an existing pass instead of refilling per edge.
    pub hub_cache_hits: usize,
    /// Updates accepted into the maintenance plane's write-ahead replay
    /// queue instead of being applied now. Always `0` from
    /// [`CscIndex::apply_batch`] itself; non-zero only when a
    /// [`MaintenanceEngine`](crate::MaintenanceEngine) (or its
    /// [`ConcurrentIndex`](crate::ConcurrentIndex) facade) receives the
    /// batch mid-rejuvenation.
    pub queued: usize,
    /// Aggregated label-repair counters across the batch, including its
    /// wall-clock duration.
    pub repair: UpdateReport,
}

impl BatchReport {
    /// Updates that changed the graph: the batch's weight against
    /// [`CscConfig::snapshot_every`](crate::CscConfig::snapshot_every)
    /// and the denominator for per-update costs.
    pub fn applied_updates(&self) -> usize {
        self.vertices_added + self.edges_inserted + self.edges_removed
    }
}

/// The net effect of a batch, relative to the pre-batch graph.
#[derive(Debug, Default, PartialEq, Eq)]
struct NormalizedBatch {
    add_vertices: usize,
    /// Net removals, stable-ordered by hub rank of the endpoints.
    removals: Vec<(VertexId, VertexId)>,
    /// Net insertions, stable-ordered by hub rank of the endpoints.
    insertions: Vec<(VertexId, VertexId)>,
    cancelled: usize,
    rejected: usize,
}

/// Per-chunk, per-edge summary for the parallel normalize scan: the
/// chunk's operation subsequence on one edge, pre-simulated from *both*
/// possible entry states (`[entered absent, entered present]`), each
/// branch recording `(exit state, accepted ops, rejected ops)`. Branches
/// compose associatively across chunks, so a sequential merge that knows
/// the real entry state replays the whole batch exactly.
type EdgeBranches = [(bool, u32, u32); 2];

/// What one chunk of the parallel normalize scan contributes: its
/// `AddVertex` count, its state-independent rejections (self-loops and
/// out-of-range endpoints — exact, because each chunk knows its virtual
/// vertex base), and the dual-entry summaries of every edge it touches.
struct NormChunk {
    add_vertices: usize,
    rejected: usize,
    edges: HashMap<(u32, u32), EdgeBranches>,
}

impl CscIndex {
    /// Simulates the batch against the current graph: which operations
    /// succeed when applied in order, and what the per-edge net effect is.
    ///
    /// With a parallel width configured, the scan itself fans out over
    /// contiguous chunks (see [`Self::normalize_scan_parallel`]); both
    /// paths produce identical results, so the thread matrix only changes
    /// wall-clock, never the batch semantics.
    fn normalize_batch(&self, updates: &[GraphUpdate]) -> NormalizedBatch {
        let mut norm = NormalizedBatch::default();
        let width = self.config.parallelism.width();
        let edges = if width > 1 && updates.len() > 1 {
            self.normalize_scan_parallel(updates, width, &mut norm)
        } else {
            self.normalize_scan(updates, &mut norm)
        };
        for ((a, b), (initially, finally, accepted)) in edges {
            let (a, b) = (VertexId(a), VertexId(b));
            if initially == finally {
                norm.cancelled += accepted;
            } else {
                norm.cancelled += accepted - 1;
                if finally {
                    norm.insertions.push((a, b));
                } else {
                    norm.removals.push((a, b));
                }
            }
        }
        // Stable order by hub rank: highest-ranked (lowest rank value)
        // inner endpoints first, so consecutive edges share as much of
        // their affected-hub neighborhoods as possible and the whole
        // batch is deterministic regardless of submission order.
        //
        // Endpoints created by this batch's AddVertex ops are not in the
        // rank table yet; they sort last (they will occupy the lowest
        // ranks once added).
        let n = self.original_vertex_count();
        let key = |&(a, b): &(VertexId, VertexId)| {
            let rank = |v: VertexId, inner: bool| {
                if v.index() >= n {
                    u32::MAX
                } else if inner {
                    self.ranks.rank(in_vertex(v))
                } else {
                    self.ranks.rank(out_vertex(v))
                }
            };
            (rank(b, true), rank(a, false), a.0, b.0)
        };
        norm.insertions.sort_by_key(key);
        norm.removals.sort_by_key(key);
        norm
    }

    /// Sequential normalize scan: walks the updates in order, tracking the
    /// virtual vertex count and per-edge `(present initially, present now,
    /// accepted op count)` state.
    fn normalize_scan(
        &self,
        updates: &[GraphUpdate],
        norm: &mut NormalizedBatch,
    ) -> HashMap<(u32, u32), (bool, bool, usize)> {
        // Virtual vertex count: grows as AddVertex ops are scanned, so an
        // edge op may reference vertices created *earlier* in the batch
        // (exactly the ids one-by-one application would accept).
        let mut n_virtual = self.original_vertex_count() as u64;
        let mut edges: HashMap<(u32, u32), (bool, bool, usize)> = HashMap::new();
        for update in updates {
            let (a, b, insert) = match *update {
                GraphUpdate::AddVertex => {
                    n_virtual += 1;
                    norm.add_vertices += 1;
                    continue;
                }
                GraphUpdate::InsertEdge(a, b) => (a, b, true),
                GraphUpdate::RemoveEdge(a, b) => (a, b, false),
            };
            if a == b || u64::from(a.0) >= n_virtual || u64::from(b.0) >= n_virtual {
                norm.rejected += 1;
                continue;
            }
            let state = edges.entry((a.0, b.0)).or_insert_with(|| {
                let present = self.contains_edge(a, b);
                (present, present, 0)
            });
            if state.1 == insert {
                // Inserting a present edge / removing an absent one: the
                // one-at-a-time call would error; skip it.
                norm.rejected += 1;
            } else {
                state.1 = insert;
                state.2 += 1;
            }
        }
        edges
    }

    /// Parallel normalize scan: splits the batch into `width` contiguous
    /// chunks, scans them concurrently, and merges sequentially.
    ///
    /// Two facts make the fan-out exact rather than approximate:
    ///
    /// * Range validation only needs the virtual vertex count at each
    ///   op's position, which is the chunk's base (a prefix sum of
    ///   earlier chunks' `AddVertex` counts, computed up front) plus the
    ///   `AddVertex` ops earlier in the same chunk.
    /// * Accept/reject of an edge op depends only on the edge's state
    ///   when the chunk began, so each chunk simulates its subsequence
    ///   from *both* possible entry states. The merge picks the branch
    ///   matching the real state (consulting the graph on first touch)
    ///   and composes chunk exits in order — bit-identical to the
    ///   sequential scan at every width.
    fn normalize_scan_parallel(
        &self,
        updates: &[GraphUpdate],
        width: usize,
        norm: &mut NormalizedBatch,
    ) -> HashMap<(u32, u32), (bool, bool, usize)> {
        let chunk_len = updates.len().div_ceil(width);
        let chunks: Vec<&[GraphUpdate]> = updates.chunks(chunk_len).collect();
        // Prefix-sum the AddVertex counts so each chunk knows the virtual
        // vertex count it starts from.
        let mut bases = Vec::with_capacity(chunks.len());
        let mut base = self.original_vertex_count() as u64;
        for chunk in &chunks {
            bases.push(base);
            base += chunk
                .iter()
                .filter(|u| matches!(u, GraphUpdate::AddVertex))
                .count() as u64;
        }
        let scanned = par_map_indexed(width, chunks.len(), |i| {
            let mut n_virtual = bases[i];
            let mut out = NormChunk {
                add_vertices: 0,
                rejected: 0,
                edges: HashMap::new(),
            };
            for update in chunks[i] {
                let (a, b, insert) = match *update {
                    GraphUpdate::AddVertex => {
                        n_virtual += 1;
                        out.add_vertices += 1;
                        continue;
                    }
                    GraphUpdate::InsertEdge(a, b) => (a, b, true),
                    GraphUpdate::RemoveEdge(a, b) => (a, b, false),
                };
                if a == b || u64::from(a.0) >= n_virtual || u64::from(b.0) >= n_virtual {
                    out.rejected += 1;
                    continue;
                }
                let branches = out
                    .edges
                    .entry((a.0, b.0))
                    .or_insert([(false, 0, 0), (true, 0, 0)]);
                for branch in branches.iter_mut() {
                    if branch.0 == insert {
                        branch.2 += 1;
                    } else {
                        branch.0 = insert;
                        branch.1 += 1;
                    }
                }
            }
            out
        });
        let mut edges: HashMap<(u32, u32), (bool, bool, usize)> = HashMap::new();
        for chunk in scanned {
            norm.add_vertices += chunk.add_vertices;
            norm.rejected += chunk.rejected;
            for ((a, b), branches) in chunk.edges {
                let state = edges.entry((a, b)).or_insert_with(|| {
                    let present = self.contains_edge(VertexId(a), VertexId(b));
                    (present, present, 0)
                });
                let branch = branches[usize::from(state.1)];
                state.1 = branch.0;
                state.2 += branch.1 as usize;
                norm.rejected += branch.2 as usize;
            }
        }
        edges
    }

    /// Applies a batch of graph updates in one call, with label repair run
    /// per affected *hub* rather than per edge, and returns what happened.
    ///
    /// Equivalent to applying the updates in order one at a time while
    /// skipping individually-invalid operations (see the [module
    /// docs](crate::batch) for the exact contract); the batched form
    /// cancels opposing operations during normalization and merges the
    /// insertion repair passes of all edges that share an affected hub.
    ///
    /// ```
    /// use csc_core::{CscConfig, CscIndex, GraphUpdate};
    /// use csc_graph::{DiGraph, VertexId};
    ///
    /// let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2)]);
    /// let mut index = CscIndex::build(&g, CscConfig::default()).unwrap();
    ///
    /// let report = index
    ///     .apply_batch(&[
    ///         GraphUpdate::InsertEdge(VertexId(2), VertexId(0)), // close a triangle
    ///         GraphUpdate::InsertEdge(VertexId(2), VertexId(3)), // flapping edge...
    ///         GraphUpdate::RemoveEdge(VertexId(2), VertexId(3)), // ...cancels out
    ///     ])
    ///     .unwrap();
    ///
    /// assert_eq!(report.edges_inserted, 1);
    /// assert_eq!(report.cancelled, 2);
    /// assert_eq!(index.query(VertexId(0)).unwrap().length, 3);
    /// ```
    ///
    /// # Errors
    ///
    /// Individually-invalid operations never error — they are skipped and
    /// counted in [`BatchReport::rejected`]. A labeling capacity overflow
    /// mid-batch poisons the index (see [`CscIndex::is_poisoned`]), like
    /// the single-update paths.
    pub fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Result<BatchReport, CscError> {
        self.apply_batch_inner(updates, crate::guard::Deadline::NONE)
    }

    /// [`apply_batch`](Self::apply_batch) under a wall-clock deadline.
    ///
    /// The deadline is checked at **admission** and once more after the
    /// read-only normalization (planning) pass; both abort with
    /// [`CscError::DeadlineExceeded`] and *no observable effect* — the
    /// caller may retry the identical batch later and get the identical
    /// result. Once mutation begins the batch runs to completion: a
    /// half-applied window is never exposed, so a deadline can bound
    /// *when* a batch starts, not how long its commit takes.
    pub fn apply_batch_deadline(
        &mut self,
        updates: &[GraphUpdate],
        deadline: crate::guard::Deadline,
    ) -> Result<BatchReport, CscError> {
        deadline.admit()?;
        self.apply_batch_inner(updates, deadline)
    }

    fn apply_batch_inner(
        &mut self,
        updates: &[GraphUpdate],
        deadline: crate::guard::Deadline,
    ) -> Result<BatchReport, CscError> {
        self.check_ready()?;
        faultpoint!("batch.begin");
        let start = Instant::now();
        let norm = self.normalize_batch(updates);
        // Planning checkpoint: normalization is read-only, so an exceeded
        // deadline still aborts with nothing mutated.
        deadline.admit()?;
        let mut report = BatchReport {
            updates_submitted: updates.len(),
            cancelled: norm.cancelled,
            rejected: norm.rejected,
            ..Default::default()
        };

        // Phase 1: new vertices, in submission order (ids must match the
        // one-by-one application).
        for _ in 0..norm.add_vertices {
            self.add_vertex();
        }
        report.vertices_added = norm.add_vertices;

        // Phase 2: net removals, repaired as one window (classification,
        // merged subtraction, and one re-label sweep per affected hub for
        // the whole lot). The hot path must never scan for carriers, so an
        // index built without the inverted structure gets one on demand
        // here — a one-time O(entries) build, maintained incrementally by
        // every write path afterwards.
        if !norm.removals.is_empty() {
            if self.inverted.is_none() {
                self.inverted = Some(crate::invert::InvertedIndex::from_labels(&self.labels));
            }
            match self.repair_deletions(&norm.removals, &mut report.repair) {
                Ok(del) => {
                    report.delete_hub_union = del.hub_union;
                    report.hub_cache_fills += del.cache_fills;
                    report.hub_cache_hits += del.cache_hits;
                }
                Err(e) => {
                    self.poison(format!(
                        "label overflow during batched deletion repair: {e}"
                    ));
                    return Err(e.into());
                }
            }
            self.stats.deletions += norm.removals.len();
        }
        report.edges_removed = norm.removals.len();

        // Phase 3: net insertions — all edges enter the graph first, then
        // one multi-source pass per affected hub repairs the lot.
        if let Err(e) = self.batched_insert_repair(&norm.insertions, &mut report) {
            self.poison(format!("label overflow during batched insert repair: {e}"));
            return Err(e.into());
        }
        report.edges_inserted = norm.insertions.len();
        self.stats.insertions += norm.insertions.len();

        self.stats.entries_added += report.repair.entries_inserted;
        self.stats.entries_removed += report.repair.entries_removed;
        report.repair.duration = start.elapsed();
        Ok(report)
    }

    /// The insertion phase of [`apply_batch`](Self::apply_batch).
    ///
    /// Inserts every edge into the bipartite graph, snapshots the seed
    /// entries (`L_in(a_o)` / `L_out(b_i)` *before any repair*, so each
    /// seed counts exactly the pre-batch path class of its edge), unions
    /// the affected hubs across edges, and runs the per-hub multi-source
    /// passes in descending rank order.
    fn batched_insert_repair(
        &mut self,
        insertions: &[(VertexId, VertexId)],
        report: &mut BatchReport,
    ) -> Result<(), LabelingError> {
        if insertions.is_empty() {
            return Ok(());
        }
        for &(a, b) in insertions {
            self.gb
                .insert_original_edge(a, b)
                .expect("normalization verified the insertion");
        }
        // The graph now carries the new edges but no label has been
        // repaired yet — the widest torn window a crash can expose.
        faultpoint!("batch.insert.graphed");

        // rank -> (forward seeds, backward seeds), iterated in ascending
        // rank (descending importance).
        let mut hubs: BTreeMap<u32, (Vec<Seed>, Vec<Seed>)> = BTreeMap::new();
        for &(a, b) in insertions {
            let (ao, bi) = (out_vertex(a), in_vertex(b));
            let (rank_ao, rank_bi) = (self.ranks.rank(ao), self.ranks.rank(bi));
            for e in self.labels.in_of(ao) {
                let r = e.hub_rank();
                if r < rank_bi && is_in_vertex(self.ranks.vertex_at_rank(r)) {
                    let seeds = &mut hubs.entry(r).or_default().0;
                    seeds.push((bi, e.dist() + 1, e.count()));
                }
            }
            for e in self.labels.out_of(bi) {
                let r = e.hub_rank();
                if r < rank_ao && is_in_vertex(self.ranks.vertex_at_rank(r)) {
                    let seeds = &mut hubs.entry(r).or_default().1;
                    seeds.push((ao, e.dist() + 1, e.count()));
                }
            }
        }
        report.insert_hub_union = hubs.len();

        let CscIndex {
            ref gb,
            ref ranks,
            ref mut labels,
            ref mut inverted,
            ref config,
            ref mut workspace,
            ref mut sweeps,
            ..
        } = *self;
        let graph = gb.graph();
        let n = graph.vertex_count();
        workspace.ensure(n);

        // The wave-parallel path needs monotone label writes so that a
        // stale compute view can only under-prune (see
        // `multi_source_collect`); Minimality's mid-pass cleaning removes
        // entries, so it keeps the direct sequential pass.
        let width = config.parallelism.width();
        if width > 1 && config.update_strategy == UpdateStrategy::Redundancy && hubs.len() > 1 {
            let hub_list: Vec<(u32, &[Seed], &[Seed])> = hubs
                .iter()
                .map(|(&r, (fwd, bwd))| (r, fwd.as_slice(), bwd.as_slice()))
                .collect();
            let pool: WorkspacePool<(CoupleBfs, BucketQueue)> = WorkspacePool::new();
            for wave in hub_list.chunks(width) {
                // Compute phase: every wave hub traverses against the
                // pre-wave labels with a worker-private workspace.
                let results = {
                    let labels_view: &csc_labeling::Labels = labels;
                    par_map_indexed(width, wave.len(), |i| {
                        // On worker threads: an injected panic here must
                        // cross the scope join and reach the engine's
                        // degradation catch, like any real worker bug.
                        faultpoint!("batch.wave.worker");
                        let (r, fwd, bwd) = wave[i];
                        let vk = ranks.vertex_at_rank(r);
                        let mut ws =
                            pool.checkout_with(|| (CoupleBfs::new(n), BucketQueue::default()));
                        let (bfs, buckets) = &mut *ws;
                        bfs.ensure(n);
                        let (state, cache) = bfs.parts_mut();
                        let mut visited = 0usize;
                        let collect = |seeds: &[Seed],
                                       direction,
                                       state: &mut _,
                                       cache: &mut _,
                                       buckets: &mut _,
                                       visited: &mut _| {
                            (!seeds.is_empty()).then(|| {
                                multi_source_collect(
                                    graph,
                                    ranks,
                                    labels_view,
                                    state,
                                    cache,
                                    buckets,
                                    direction,
                                    r,
                                    vk,
                                    seeds,
                                    visited,
                                )
                            })
                        };
                        let f =
                            collect(fwd, Direction::Forward, state, cache, buckets, &mut visited);
                        let b = collect(
                            bwd,
                            Direction::Backward,
                            state,
                            cache,
                            buckets,
                            &mut visited,
                        );
                        (f, b, visited)
                    })
                };
                // Commit phase: ascending rank, forward before backward —
                // the sequential pass order.
                let (_, cache) = workspace.parts_mut();
                for (&(r, fwd, bwd), (f, b, visited)) in wave.iter().zip(results) {
                    let vk = ranks.vertex_at_rank(r);
                    report.repair.vertices_visited += visited;
                    for (visits, seeds, direction) in
                        [(f, fwd, Direction::Forward), (b, bwd, Direction::Backward)]
                    {
                        let Some(visits) = visits else { continue };
                        report.repair.affected_hubs += 1;
                        report.hub_cache_fills += 1;
                        report.hub_cache_hits += seeds.len() - 1;
                        multi_source_commit(
                            labels,
                            inverted,
                            cache,
                            direction,
                            r,
                            vk,
                            &visits,
                            &mut report.repair,
                        )?;
                    }
                }
            }
            return Ok(());
        }

        let (state, cache) = workspace.parts_mut();
        let buckets = sweeps.buckets_mut();
        for (&r, (fwd, bwd)) in &hubs {
            let vk = ranks.vertex_at_rank(r);
            for (seeds, direction) in [(fwd, Direction::Forward), (bwd, Direction::Backward)] {
                if seeds.is_empty() {
                    continue;
                }
                report.repair.affected_hubs += 1;
                report.hub_cache_fills += 1;
                report.hub_cache_hits += seeds.len() - 1;
                multi_source_pass(
                    graph,
                    ranks,
                    labels,
                    inverted,
                    state,
                    cache,
                    buckets,
                    config.update_strategy,
                    direction,
                    r,
                    vk,
                    seeds,
                    &mut report.repair,
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CscConfig, UpdateStrategy};
    use csc_graph::generators::{directed_cycle, gnm};
    use csc_graph::traversal::shortest_cycle_oracle;
    use csc_graph::DiGraph;
    use GraphUpdate::{AddVertex, InsertEdge, RemoveEdge};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn assert_matches_oracle(idx: &CscIndex, context: &str) {
        let g = idx.original_graph();
        for x in g.vertices() {
            assert_eq!(
                idx.query(x).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&g, x),
                "{context}: SCCnt({x})"
            );
        }
    }

    /// One-by-one reference semantics: apply in order, skipping failures.
    fn apply_sequentially(idx: &mut CscIndex, updates: &[GraphUpdate]) -> usize {
        let mut applied = 0;
        for u in updates {
            let ok = match *u {
                InsertEdge(a, b) => idx.insert_edge(a, b).is_ok(),
                RemoveEdge(a, b) => idx.remove_edge(a, b).is_ok(),
                AddVertex => {
                    idx.add_vertex();
                    true
                }
            };
            applied += usize::from(ok);
        }
        applied
    }

    #[test]
    fn empty_batch_is_a_cheap_no_op() {
        let mut idx = CscIndex::build(&directed_cycle(4), CscConfig::default()).unwrap();
        let before = idx.total_entries();
        let report = idx.apply_batch(&[]).unwrap();
        assert_eq!(report.applied_updates(), 0);
        assert_eq!(
            report.repair,
            UpdateReport {
                duration: report.repair.duration,
                ..Default::default()
            }
        );
        assert_eq!(idx.total_entries(), before);
    }

    #[test]
    fn normalization_cancels_and_rejects() {
        let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 0)]);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let norm = idx.normalize_batch(&[
            InsertEdge(v(0), v(2)), // net insertion
            InsertEdge(v(0), v(2)), // duplicate: rejected
            InsertEdge(v(3), v(0)), // cancels with the removal below
            RemoveEdge(v(3), v(0)), // ...
            RemoveEdge(v(1), v(2)), // net removal
            InsertEdge(v(1), v(2)), // reinsertion: cancels the removal
            RemoveEdge(v(1), v(2)), // net removal after all
            InsertEdge(v(2), v(2)), // self-loop: rejected
            RemoveEdge(v(0), v(9)), // out of range: rejected
            RemoveEdge(v(3), v(1)), // absent edge: rejected
        ]);
        assert_eq!(norm.insertions, vec![(v(0), v(2))]);
        assert_eq!(norm.removals, vec![(v(1), v(2))]);
        assert_eq!(norm.rejected, 4);
        assert_eq!(norm.cancelled, 4);
        assert_eq!(norm.add_vertices, 0);
    }

    #[test]
    fn parallel_normalize_matches_sequential_at_every_width() {
        let g = DiGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 0), (3, 4)]);
        // A batch engineered so edge histories, AddVertex-dependent range
        // checks, and rejections all straddle chunk boundaries at widths
        // 2 and 4 (chunk lengths 7 and 4).
        let updates = vec![
            InsertEdge(v(0), v(2)),
            RemoveEdge(v(0), v(2)), // cancels across ops 0/1
            AddVertex,              // vertex 5 exists from here on
            InsertEdge(v(5), v(6)), // rejected: 6 not yet added
            RemoveEdge(v(3), v(4)),
            InsertEdge(v(3), v(4)), // flap resolves to no-op
            RemoveEdge(v(3), v(4)), // ...then a net removal
            AddVertex,              // vertex 6, first op of chunk 2 at width 2
            InsertEdge(v(5), v(6)), // now valid: net insertion
            InsertEdge(v(5), v(6)), // duplicate: rejected
            RemoveEdge(v(2), v(2)), // self-loop: rejected
            InsertEdge(v(2), v(0)), // present edge: rejected
            RemoveEdge(v(2), v(0)), // net removal
            InsertEdge(v(1), v(5)), // net insertion
        ];
        let seq = CscIndex::build(&g, CscConfig::default().with_threads(1)).unwrap();
        let expected = seq.normalize_batch(&updates);
        for threads in [2, 4, 8] {
            let par = CscIndex::build(&g, CscConfig::default().with_threads(threads)).unwrap();
            assert_eq!(
                par.normalize_batch(&updates),
                expected,
                "width {threads} diverged from the sequential scan"
            );
        }
    }

    #[test]
    fn batch_can_reference_vertices_it_creates() {
        let mut idx = CscIndex::build(&directed_cycle(3), CscConfig::default()).unwrap();
        let report = idx
            .apply_batch(&[
                AddVertex,              // becomes vertex 3
                InsertEdge(v(0), v(3)), // valid: 3 exists by now
                InsertEdge(v(4), v(0)), // rejected: 4 not created yet
                AddVertex,              // becomes vertex 4
                InsertEdge(v(3), v(4)),
                InsertEdge(v(4), v(0)), // now valid
            ])
            .unwrap();
        assert_eq!(report.vertices_added, 2);
        assert_eq!(report.edges_inserted, 3);
        assert_eq!(report.rejected, 1);
        assert_matches_oracle(&idx, "batch-created vertices");
        assert_eq!(idx.query(v(4)).unwrap().length, 3, "0 -> 3 -> 4 -> 0");
    }

    #[test]
    fn single_update_batches_match_the_scalar_paths() {
        let g = gnm(18, 40, 5);
        let mut batched = CscIndex::build(&g, CscConfig::default()).unwrap();
        let mut scalar = batched.clone();
        let victims: Vec<_> = g.edge_vec().into_iter().step_by(5).take(6).collect();
        for &(a, b) in &victims {
            batched.apply_batch(&[RemoveEdge(v(a), v(b))]).unwrap();
            scalar.remove_edge(v(a), v(b)).unwrap();
            assert_eq!(batched.labels, scalar.labels, "after removing ({a},{b})");
        }
        for &(a, b) in &victims {
            batched.apply_batch(&[InsertEdge(v(a), v(b))]).unwrap();
            scalar.insert_edge(v(a), v(b)).unwrap();
            assert_eq!(batched.labels, scalar.labels, "after inserting ({a},{b})");
        }
        assert_matches_oracle(&batched, "single-update batches");
    }

    #[test]
    fn mixed_batch_equals_sequential_application() {
        let g = gnm(20, 55, 11);
        let base = CscIndex::build(&g, CscConfig::default()).unwrap();
        let edges = g.edge_vec();
        let mut updates: Vec<GraphUpdate> = Vec::new();
        for (k, &(a, b)) in edges.iter().enumerate().take(16) {
            if k % 3 == 0 {
                updates.push(RemoveEdge(v(a), v(b)));
            }
        }
        updates.push(AddVertex);
        updates.push(InsertEdge(v(20), v(0)));
        updates.push(InsertEdge(v(5), v(20)));
        for s in 0..10u32 {
            let a = (s * 7 + 1) % 20;
            let b = (s * 13 + 3) % 20;
            if a != b {
                updates.push(InsertEdge(v(a), v(b)));
            }
        }

        let mut batched = base.clone();
        let report = batched.apply_batch(&updates).unwrap();
        let mut sequential = base.clone();
        let applied = apply_sequentially(&mut sequential, &updates);
        assert_eq!(report.applied_updates() + report.cancelled, applied);

        let g_final = sequential.original_graph();
        assert_eq!(batched.original_graph(), g_final, "same net graph");
        for x in g_final.vertices() {
            assert_eq!(batched.query(x), sequential.query(x), "SCCnt({x})");
        }
        assert_matches_oracle(&batched, "mixed batch");
    }

    #[test]
    fn hub_union_is_smaller_than_per_edge_sum() {
        // Many insertions into one graph: the union of affected hubs must
        // not exceed (and in practice undercuts) the per-edge hub total.
        let g = gnm(40, 120, 3);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let mut updates = Vec::new();
        let mut s = 1u64;
        while updates.len() < 24 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = v((s >> 33) as u32 % 40);
            let b = v((s >> 13) as u32 % 40);
            if a != b && !idx.contains_edge(a, b) {
                updates.push(InsertEdge(a, b));
            }
        }
        let per_edge_hubs: usize = updates
            .iter()
            .map(|u| {
                let InsertEdge(a, b) = *u else { unreachable!() };
                idx.labels.in_of(out_vertex(a)).len() + idx.labels.out_of(in_vertex(b)).len()
            })
            .sum();
        let report = idx.apply_batch(&updates).unwrap();
        assert!(report.insert_hub_union > 0);
        assert!(
            report.insert_hub_union < per_edge_hubs,
            "union {} >= per-edge sum {}",
            report.insert_hub_union,
            per_edge_hubs
        );
        assert_matches_oracle(&idx, "hub union batch");
    }

    #[test]
    fn minimality_strategy_supported_in_batches() {
        let g = gnm(16, 40, 9);
        let config = CscConfig::default().with_update_strategy(UpdateStrategy::Minimality);
        let mut idx = CscIndex::build(&g, config).unwrap();
        let edges = g.edge_vec();
        let mut updates: Vec<GraphUpdate> = edges
            .iter()
            .step_by(4)
            .map(|&(a, b)| RemoveEdge(v(a), v(b)))
            .collect();
        updates.push(InsertEdge(v(0), v(8)));
        updates.push(InsertEdge(v(8), v(0)));
        idx.apply_batch(&updates).unwrap();
        assert_matches_oracle(&idx, "minimality batch");
        idx.inverted
            .as_ref()
            .unwrap()
            .validate_against(&idx.labels)
            .unwrap();
    }

    #[test]
    fn wave_parallel_batches_match_serial_labels() {
        // The insertion waves and the deletion phase-C waves must commit
        // the exact label set the sequential engine writes, at any width.
        let g = gnm(24, 70, 7);
        let edges = g.edge_vec();
        let mut updates: Vec<GraphUpdate> = edges
            .iter()
            .step_by(9)
            .map(|&(a, b)| RemoveEdge(v(a), v(b)))
            .collect();
        for s in 0..12u32 {
            let a = (s * 5 + 2) % 24;
            let b = (s * 11 + 7) % 24;
            if a != b {
                updates.push(InsertEdge(v(a), v(b)));
            }
        }

        let mut serial = CscIndex::build(&g, CscConfig::default().with_threads(1)).unwrap();
        serial.apply_batch(&updates).unwrap();
        assert_matches_oracle(&serial, "serial reference");
        for threads in [2, 4] {
            let mut par = CscIndex::build(&g, CscConfig::default().with_threads(threads)).unwrap();
            let report = par.apply_batch(&updates).unwrap();
            assert!(report.applied_updates() > 0);
            assert_eq!(par.labels, serial.labels, "width {threads} diverged");
        }
    }

    #[test]
    fn flapping_edges_cost_no_repair_work() {
        let mut idx = CscIndex::build(&directed_cycle(5), CscConfig::default()).unwrap();
        let mut updates = Vec::new();
        for _ in 0..10 {
            updates.push(InsertEdge(v(2), v(0)));
            updates.push(RemoveEdge(v(2), v(0)));
        }
        let report = idx.apply_batch(&updates).unwrap();
        assert_eq!(report.applied_updates(), 0);
        assert_eq!(report.cancelled, 20);
        assert_eq!(report.repair.vertices_visited, 0, "no traversal ran");
        assert_eq!(idx.query(v(0)).unwrap().length, 5);
    }

    #[test]
    fn poisoned_index_refuses_batches() {
        let mut idx = CscIndex::build(&directed_cycle(3), CscConfig::default()).unwrap();
        idx.poison("simulated");
        assert!(matches!(
            idx.apply_batch(&[AddVertex]),
            Err(CscError::Poisoned { .. })
        ));
    }
}
