//! Index reduction (Section IV-E): exploiting couple symmetry to halve
//! label storage.
//!
//! Couple-vertex skipping writes every in-label of `w_i` onto `w_o` as well
//! (distance `+1`, same count), and symmetrically for out-labels. A cycle
//! query, however, only ever reads `L_out(v_o)` and `L_in(v_i)`. The
//! reduced index therefore keeps exactly those two lists per original
//! vertex — about half the entries — and can *recover* the dropped halves
//! by the couple derivation:
//!
//! * `L_in(v_o)  = {(v_o, 0, 1)} ∪ shift₊₁(L_in(v_i))`
//! * `L_out(v_i) = {(v_i, 0, 1)} ∪ shift₊₁(L_out(v_o) \ self \ hub==v_i)`
//!
//! (the excluded `hub == v_i` entries of `L_out(v_o)` are the cycle
//! closures the backward traversal pruned at the couple — they have no
//! counterpart on `v_i`).
//!
//! The derivation is exact for freshly built indexes. Dynamic maintenance
//! updates couple members independently, so recovery after updates is
//! rejected unless the pairing still holds; the reduced index itself stays
//! queryable either way, since the query-relevant halves are stored
//! verbatim.

use crate::error::CscError;
use crate::index::CscIndex;
use csc_graph::bipartite::{in_vertex, out_vertex};
use csc_graph::{RankTable, VertexId};
use csc_labeling::{CycleCount, LabelEntry, LabelSide, Labels};

/// What reduction would save on a given index.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReductionReport {
    /// Entries in the full index.
    pub full_entries: usize,
    /// Entries kept by the reduced form.
    pub reduced_entries: usize,
    /// Fraction of entries saved (`0.0 ..= 1.0`).
    pub savings: f64,
    /// Whether the couple derivation can recover the dropped halves
    /// exactly (true for freshly built indexes).
    pub exactly_recoverable: bool,
}

/// A compact, read-only cycle-counting snapshot: `L_in(v_i)` and
/// `L_out(v_o)` per original vertex.
#[derive(Clone, Debug)]
pub struct ReducedIndex {
    in_of_vi: Vec<Vec<LabelEntry>>,
    out_of_vo: Vec<Vec<LabelEntry>>,
    ranks: RankTable,
    exactly_recoverable: bool,
}

impl ReducedIndex {
    /// Builds the reduced snapshot from a full index and reports whether
    /// the dropped halves are derivable.
    pub fn from_index(index: &CscIndex) -> ReducedIndex {
        let n = index.original_vertex_count();
        let labels = index.labels();
        let mut in_of_vi = Vec::with_capacity(n);
        let mut out_of_vo = Vec::with_capacity(n);
        let mut recoverable = true;
        for v in 0..n as u32 {
            let v = VertexId(v);
            let (vi, vo) = (in_vertex(v), out_vertex(v));
            in_of_vi.push(labels.in_of(vi).to_vec());
            out_of_vo.push(labels.out_of(vo).to_vec());
            if recoverable {
                recoverable = derive_in_of_vo(labels.in_of(vi), index.ranks().rank(vo)).as_deref()
                    == Some(labels.in_of(vo))
                    && derive_out_of_vi(
                        labels.out_of(vo),
                        index.ranks().rank(vi),
                        index.ranks().rank(vo),
                    )
                    .as_deref()
                        == Some(labels.out_of(vi));
            }
        }
        ReducedIndex {
            in_of_vi,
            out_of_vo,
            ranks: index.ranks().clone(),
            exactly_recoverable: recoverable,
        }
    }

    /// Number of original vertices covered.
    pub fn vertex_count(&self) -> usize {
        self.in_of_vi.len()
    }

    /// `SCCnt(v)` on the reduced snapshot — identical answers to the full
    /// index it was built from.
    pub fn query(&self, v: VertexId) -> Option<CycleCount> {
        let dc =
            csc_labeling::labels::intersect(&self.out_of_vo[v.index()], &self.in_of_vi[v.index()])?;
        Some(CycleCount::new(dc.dist.div_ceil(2), dc.count))
    }

    /// Entries stored by the reduced form.
    pub fn total_entries(&self) -> usize {
        let a: usize = self.in_of_vi.iter().map(Vec::len).sum();
        let b: usize = self.out_of_vo.iter().map(Vec::len).sum();
        a + b
    }

    /// Bytes under the 64-bit entry encoding.
    pub fn entry_bytes(&self) -> usize {
        self.total_entries() * 8
    }

    /// `true` if [`recover`](Self::recover) will succeed.
    pub fn exactly_recoverable(&self) -> bool {
        self.exactly_recoverable
    }

    /// Recovers the full four-list label set by couple derivation.
    ///
    /// # Errors
    ///
    /// Fails when the snapshot came from a dynamically updated index whose
    /// couple pairing no longer holds.
    pub fn recover(&self) -> Result<Labels, CscError> {
        if !self.exactly_recoverable {
            return Err(CscError::Serial(
                "couple pairing broken by dynamic updates; recovery is not exact".into(),
            ));
        }
        let n = self.in_of_vi.len();
        let mut labels = Labels::new(2 * n);
        for v in 0..n as u32 {
            let v = VertexId(v);
            let (vi, vo) = (in_vertex(v), out_vertex(v));
            let (ri, ro) = (self.ranks.rank(vi), self.ranks.rank(vo));
            for &e in &self.in_of_vi[v.index()] {
                labels.append(vi, LabelSide::In, e);
            }
            for e in derive_in_of_vo(&self.in_of_vi[v.index()], ro).expect("checked recoverable") {
                labels.append(vo, LabelSide::In, e);
            }
            for e in
                derive_out_of_vi(&self.out_of_vo[v.index()], ri, ro).expect("checked recoverable")
            {
                labels.append(vi, LabelSide::Out, e);
            }
            for &e in &self.out_of_vo[v.index()] {
                labels.append(vo, LabelSide::Out, e);
            }
        }
        Ok(labels)
    }
}

/// `L_in(v_o)` from `L_in(v_i)`: shift distances by one, self entry last.
fn derive_in_of_vo(in_of_vi: &[LabelEntry], vo_rank: u32) -> Option<Vec<LabelEntry>> {
    let mut out = Vec::with_capacity(in_of_vi.len() + 1);
    for e in in_of_vi {
        out.push(e.with_dist_count(e.dist() + 1, e.count()).ok()?);
    }
    out.push(LabelEntry::new(vo_rank, 0, 1).ok()?);
    Some(out)
}

/// `L_out(v_i)` from `L_out(v_o)`: drop the self entry and the cycle
/// closures (`hub == v_i`), shift the rest, append `v_i`'s self entry.
fn derive_out_of_vi(
    out_of_vo: &[LabelEntry],
    vi_rank: u32,
    vo_rank: u32,
) -> Option<Vec<LabelEntry>> {
    let mut out = Vec::with_capacity(out_of_vo.len());
    for e in out_of_vo {
        if e.hub_rank() == vo_rank || e.hub_rank() == vi_rank {
            continue;
        }
        out.push(e.with_dist_count(e.dist() + 1, e.count()).ok()?);
    }
    out.push(LabelEntry::new(vi_rank, 0, 1).ok()?);
    Some(out)
}

/// Analyzes the savings reduction would achieve on `index`.
pub fn analyze(index: &CscIndex) -> ReductionReport {
    let reduced = ReducedIndex::from_index(index);
    let full = index.total_entries();
    let kept = reduced.total_entries();
    ReductionReport {
        full_entries: full,
        reduced_entries: kept,
        savings: if full == 0 {
            0.0
        } else {
            1.0 - kept as f64 / full as f64
        },
        exactly_recoverable: reduced.exactly_recoverable(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CscConfig;
    use csc_graph::fixtures::figure2;
    use csc_graph::generators::{directed_cycle, gnm};
    use csc_graph::DiGraph;

    fn check_queries_equal(index: &CscIndex, reduced: &ReducedIndex) {
        for v in 0..index.original_vertex_count() as u32 {
            assert_eq!(
                reduced.query(VertexId(v)),
                index.query(VertexId(v)),
                "reduced query mismatch at {v}"
            );
        }
    }

    #[test]
    fn reduction_halves_static_indexes_and_recovers() {
        for g in [figure2(), gnm(30, 120, 4), directed_cycle(8)] {
            let index = CscIndex::build(&g, CscConfig::default()).unwrap();
            let reduced = ReducedIndex::from_index(&index);
            assert!(reduced.exactly_recoverable(), "static pairing holds");
            check_queries_equal(&index, &reduced);
            // Recovery reproduces the full label set bit for bit.
            let recovered = reduced.recover().unwrap();
            assert_eq!(&recovered, index.labels());

            let report = analyze(&index);
            assert_eq!(report.full_entries, index.total_entries());
            assert!(
                report.savings > 0.3,
                "couple sharing saves a large fraction: {report:?}"
            );
        }
    }

    #[test]
    fn reduced_queries_survive_dynamic_history() {
        // After updates the pairing may break, but queries must still match.
        let g = DiGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut index = CscIndex::build(&g, CscConfig::default()).unwrap();
        index.insert_edge(VertexId(4), VertexId(0)).unwrap();
        index.insert_edge(VertexId(2), VertexId(0)).unwrap();
        index.remove_edge(VertexId(2), VertexId(0)).unwrap();
        let reduced = ReducedIndex::from_index(&index);
        check_queries_equal(&index, &reduced);
        if !reduced.exactly_recoverable() {
            assert!(matches!(reduced.recover(), Err(CscError::Serial(_))));
        }
    }

    #[test]
    fn savings_reported_sanely() {
        let g = gnm(20, 80, 7);
        let index = CscIndex::build(&g, CscConfig::default()).unwrap();
        let report = analyze(&index);
        assert!(report.reduced_entries < report.full_entries);
        assert!((0.0..=1.0).contains(&report.savings));
    }
}
