//! Error types for the CSC index.

use csc_graph::GraphError;
use csc_labeling::LabelingError;
use std::fmt;

/// Errors from building, querying, or maintaining a [`CscIndex`](crate::CscIndex).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CscError {
    /// A graph-level problem (bad vertex, duplicate/missing edge, ...).
    Graph(GraphError),
    /// A labeling-level problem (capacity overflow).
    Labeling(LabelingError),
    /// The index was left inconsistent by an earlier failed update or a
    /// panic caught on the write path, and must be recovered (from
    /// checkpoint + WAL, or by a rebuild) before further writes. `detail`
    /// names what went wrong.
    Poisoned {
        /// What poisoned the writer (the failed operation or the caught
        /// panic message).
        detail: String,
    },
    /// A persisted byte stream (checkpoint or WAL) failed its framing or
    /// checksum validation: the file is truncated, bit-flipped, or not
    /// what its header claims. Recovery falls back to the previous valid
    /// checkpoint.
    Corrupt {
        /// Which framed section failed (`"magic"`, `"edges"`, `"labels"`,
        /// `"wal-record"`, ...).
        section: String,
        /// What exactly failed (length mismatch, CRC mismatch, ...).
        detail: String,
    },
    /// A serialization problem (unknown format version, unsupported
    /// field value) — the bytes are well-formed but unusable.
    Serial(String),
    /// A degenerate configuration rejected by
    /// [`CscConfig::validate`](crate::CscConfig::validate).
    Config(String),
}

impl CscError {
    /// Shorthand for a [`CscError::Corrupt`] with owned strings.
    pub fn corrupt(section: impl Into<String>, detail: impl Into<String>) -> Self {
        CscError::Corrupt {
            section: section.into(),
            detail: detail.into(),
        }
    }

    /// Shorthand for a [`CscError::Poisoned`] with an owned detail.
    pub fn poisoned(detail: impl Into<String>) -> Self {
        CscError::Poisoned {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for CscError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CscError::Graph(e) => write!(f, "graph error: {e}"),
            CscError::Labeling(e) => write!(f, "labeling error: {e}"),
            CscError::Poisoned { detail } => write!(
                f,
                "index is poisoned ({detail}); recover or rebuild it before writing"
            ),
            CscError::Corrupt { section, detail } => {
                write!(f, "corrupt {section}: {detail}")
            }
            CscError::Serial(msg) => write!(f, "serialization error: {msg}"),
            CscError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for CscError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CscError::Graph(e) => Some(e),
            CscError::Labeling(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CscError {
    fn from(e: GraphError) -> Self {
        CscError::Graph(e)
    }
}

impl From<LabelingError> for CscError {
    fn from(e: LabelingError) -> Self {
        CscError::Labeling(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csc_graph::VertexId;

    #[test]
    fn conversions_and_messages() {
        let e: CscError = GraphError::SelfLoop(VertexId(1)).into();
        assert!(e.to_string().contains("self-loop"));
        assert!(std::error::Error::source(&e).is_some());
        let p = CscError::poisoned("panic in apply_batch: boom");
        assert!(p.to_string().contains("boom"), "{p}");
        assert!(p.to_string().contains("recover"), "{p}");
        assert!(CscError::Serial("bad magic".into())
            .to_string()
            .contains("bad magic"));
        let c = CscError::corrupt("labels", "crc mismatch");
        assert_eq!(c.to_string(), "corrupt labels: crc mismatch");
        assert!(matches!(c, CscError::Corrupt { .. }));
    }
}
