//! Error types for the CSC index.

use csc_graph::GraphError;
use csc_labeling::LabelingError;
use std::fmt;

/// Errors from building, querying, or maintaining a [`CscIndex`](crate::CscIndex).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CscError {
    /// A graph-level problem (bad vertex, duplicate/missing edge, ...).
    Graph(GraphError),
    /// A labeling-level problem (capacity overflow).
    Labeling(LabelingError),
    /// The index was left inconsistent by an earlier failed update and must
    /// be rebuilt before further use.
    Poisoned,
    /// A serialization problem.
    Serial(String),
    /// A degenerate configuration rejected by
    /// [`CscConfig::validate`](crate::CscConfig::validate).
    Config(String),
}

impl fmt::Display for CscError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CscError::Graph(e) => write!(f, "graph error: {e}"),
            CscError::Labeling(e) => write!(f, "labeling error: {e}"),
            CscError::Poisoned => write!(
                f,
                "index is poisoned by an earlier failed update; rebuild it"
            ),
            CscError::Serial(msg) => write!(f, "serialization error: {msg}"),
            CscError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for CscError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CscError::Graph(e) => Some(e),
            CscError::Labeling(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CscError {
    fn from(e: GraphError) -> Self {
        CscError::Graph(e)
    }
}

impl From<LabelingError> for CscError {
    fn from(e: LabelingError) -> Self {
        CscError::Labeling(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csc_graph::VertexId;

    #[test]
    fn conversions_and_messages() {
        let e: CscError = GraphError::SelfLoop(VertexId(1)).into();
        assert!(e.to_string().contains("self-loop"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(CscError::Poisoned.to_string().contains("rebuild"));
        assert!(CscError::Serial("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }
}
