//! Error types for the CSC index.

use csc_graph::GraphError;
use csc_labeling::LabelingError;
use std::fmt;

/// Errors from building, querying, or maintaining a [`CscIndex`](crate::CscIndex).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CscError {
    /// A graph-level problem (bad vertex, duplicate/missing edge, ...).
    Graph(GraphError),
    /// A labeling-level problem (capacity overflow).
    Labeling(LabelingError),
    /// The index was left inconsistent by an earlier failed update or a
    /// panic caught on the write path, and must be recovered (from
    /// checkpoint + WAL, or by a rebuild) before further writes. `detail`
    /// names what went wrong.
    Poisoned {
        /// What poisoned the writer (the failed operation or the caught
        /// panic message).
        detail: String,
    },
    /// A persisted byte stream (checkpoint or WAL) failed its framing or
    /// checksum validation: the file is truncated, bit-flipped, or not
    /// what its header claims. Recovery falls back to the previous valid
    /// checkpoint.
    Corrupt {
        /// Which framed section failed (`"magic"`, `"edges"`, `"labels"`,
        /// `"wal-record"`, ...).
        section: String,
        /// What exactly failed (length mismatch, CRC mismatch, ...).
        detail: String,
    },
    /// A serialization problem (unknown format version, unsupported
    /// field value) — the bytes are well-formed but unusable.
    Serial(String),
    /// A degenerate configuration rejected by
    /// [`CscConfig::validate`](crate::CscConfig::validate).
    Config(String),
    /// A deadline-bounded operation hit its wall-clock budget at a
    /// cooperative cancellation checkpoint and was aborted. The aborted
    /// operation had **no observable effect**: queries leave their
    /// workspaces reusable, writes abort only before their commit point
    /// (see `docs/ARCHITECTURE.md`, "resource guards & overload").
    DeadlineExceeded,
    /// A write was refused by the backpressure policy
    /// ([`OverloadPolicy::Reject`](crate::OverloadPolicy::Reject)): the
    /// pending-write queue is at its high watermark. Transient — retry
    /// after the maintenance plane drains the queue.
    Overloaded {
        /// Updates sitting in the pending-write queue at rejection time.
        queued: usize,
        /// The configured high watermark that was hit.
        limit: usize,
    },
    /// The engine is in the `Saturated` state: the tracked label +
    /// workspace footprint exceeds
    /// [`CscConfig::memory_budget`](crate::CscConfig::memory_budget) even
    /// after forced compaction. Writes are refused (readers are
    /// unaffected) until the footprint drops or the budget is raised.
    Saturated {
        /// Tracked bytes at refusal time.
        bytes: usize,
        /// The configured budget.
        budget: usize,
    },
    /// An I/O operation on the durability plane (WAL append/fsync,
    /// checkpoint write/rename/dir-sync) failed and exhausted its
    /// retries. Carries the [`std::io::ErrorKind`] so callers can
    /// distinguish persistent exhaustion (`ENOSPC`) from transient
    /// failures.
    Io {
        /// The instrumented operation that failed (`"wal.append"`,
        /// `"checkpoint.dirsync"`, ...).
        op: String,
        /// The kind of the underlying [`std::io::Error`].
        kind: std::io::ErrorKind,
        /// The underlying error's message.
        detail: String,
    },
}

impl CscError {
    /// Shorthand for a [`CscError::Corrupt`] with owned strings.
    pub fn corrupt(section: impl Into<String>, detail: impl Into<String>) -> Self {
        CscError::Corrupt {
            section: section.into(),
            detail: detail.into(),
        }
    }

    /// Shorthand for a [`CscError::Poisoned`] with an owned detail.
    pub fn poisoned(detail: impl Into<String>) -> Self {
        CscError::Poisoned {
            detail: detail.into(),
        }
    }

    /// Wraps an [`std::io::Error`] from the named durability operation.
    pub fn io(op: impl Into<String>, e: &std::io::Error) -> Self {
        CscError::Io {
            op: op.into(),
            kind: e.kind(),
            detail: e.to_string(),
        }
    }

    /// `true` for errors worth a bounded retry: transient I/O failures.
    /// Corruption, config, and graph errors are deterministic and retries
    /// would only repeat them; `ENOSPC`-style exhaustion is persistent
    /// until an operator intervenes.
    pub fn is_transient_io(&self) -> bool {
        use std::io::ErrorKind as K;
        match self {
            CscError::Io { kind, .. } => !matches!(
                kind,
                K::StorageFull
                    | K::QuotaExceeded
                    | K::ReadOnlyFilesystem
                    | K::PermissionDenied
                    | K::Unsupported
                    | K::NotFound
            ),
            _ => false,
        }
    }
}

impl fmt::Display for CscError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CscError::Graph(e) => write!(f, "graph error: {e}"),
            CscError::Labeling(e) => write!(f, "labeling error: {e}"),
            CscError::Poisoned { detail } => write!(
                f,
                "index is poisoned ({detail}); recover or rebuild it before writing"
            ),
            CscError::Corrupt { section, detail } => {
                write!(f, "corrupt {section}: {detail}")
            }
            CscError::Serial(msg) => write!(f, "serialization error: {msg}"),
            CscError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            CscError::DeadlineExceeded => {
                write!(
                    f,
                    "deadline exceeded; the operation was aborted with no effect"
                )
            }
            CscError::Overloaded { queued, limit } => write!(
                f,
                "write rejected: {queued} updates pending (high watermark {limit}); retry later"
            ),
            CscError::Saturated { bytes, budget } => write!(
                f,
                "index saturated: {bytes} bytes tracked against a {budget}-byte memory budget; \
                 writes refused until the footprint drops"
            ),
            CscError::Io { op, kind, detail } => {
                write!(f, "i/o error during {op} ({kind:?}): {detail}")
            }
        }
    }
}

impl From<csc_graph::BudgetExceeded> for CscError {
    fn from(_: csc_graph::BudgetExceeded) -> Self {
        CscError::DeadlineExceeded
    }
}

impl std::error::Error for CscError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CscError::Graph(e) => Some(e),
            CscError::Labeling(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CscError {
    fn from(e: GraphError) -> Self {
        CscError::Graph(e)
    }
}

impl From<LabelingError> for CscError {
    fn from(e: LabelingError) -> Self {
        CscError::Labeling(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csc_graph::VertexId;

    #[test]
    fn conversions_and_messages() {
        let e: CscError = GraphError::SelfLoop(VertexId(1)).into();
        assert!(e.to_string().contains("self-loop"));
        assert!(std::error::Error::source(&e).is_some());
        let p = CscError::poisoned("panic in apply_batch: boom");
        assert!(p.to_string().contains("boom"), "{p}");
        assert!(p.to_string().contains("recover"), "{p}");
        assert!(CscError::Serial("bad magic".into())
            .to_string()
            .contains("bad magic"));
        let c = CscError::corrupt("labels", "crc mismatch");
        assert_eq!(c.to_string(), "corrupt labels: crc mismatch");
        assert!(matches!(c, CscError::Corrupt { .. }));
    }
}
