//! Index statistics and per-update reports.

use csc_labeling::BuildStats;
use std::time::Duration;

/// Cumulative statistics for a [`CscIndex`](crate::CscIndex).
#[derive(Clone, Debug, Default)]
pub struct IndexStats {
    /// Statistics of the initial construction.
    pub build: BuildStats,
    /// Number of edge insertions applied.
    pub insertions: usize,
    /// Number of edge deletions applied.
    pub deletions: usize,
    /// Net label entries added by incremental updates.
    pub entries_added: usize,
    /// Net label entries removed by updates (deletions and cleaning).
    pub entries_removed: usize,
    /// Label entries whose count saturated during updates.
    pub saturated_counts: usize,
}

/// What one `insert_edge` / `remove_edge` call did — the measurements behind
/// the paper's Figures 11(b) and 12(b).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Brand-new label entries inserted.
    pub entries_inserted: usize,
    /// Existing entries overwritten (shorter distance or added counts).
    pub entries_updated: usize,
    /// Entries removed (stale deletion, redundancy cleaning).
    pub entries_removed: usize,
    /// Affected hubs that started a maintenance traversal.
    pub affected_hubs: usize,
    /// Total vertices dequeued across all maintenance traversals.
    pub vertices_visited: usize,
    /// Wall-clock time of the update.
    pub duration: Duration,
    /// Deletion repair: time classifying the window (endpoint BFS sweeps
    /// + per-hub regime assignment). Zero for insertions.
    pub classify_time: Duration,
    /// Deletion repair: time in the merged count-subtraction passes.
    pub subtract_time: Duration,
    /// Deletion repair: time in the re-label regime (superset deletion +
    /// upsert BFS sweeps) — historically the dominant share.
    pub relabel_time: Duration,
    /// Affected-hub carrier lookups served by the inverted index.
    pub carriers_indexed: usize,
    /// Carrier lookups that fell back to scanning every label list (the
    /// batched deletion path keeps this at zero by building the inverted
    /// index on demand).
    pub carriers_scanned: usize,
    /// Deletion windows that demoted so much of the index that repairing
    /// fell back to a from-scratch label rebuild under the existing rank
    /// order (exact by construction, and cheaper than sweeping most hubs
    /// in upsert mode).
    pub rebuild_fallbacks: usize,
}

impl UpdateReport {
    /// Net change in index entry count.
    pub fn net_entries(&self) -> isize {
        self.entries_inserted as isize - self.entries_removed as isize
    }
}

/// Publication-side statistics of a
/// [`ConcurrentIndex`](crate::ConcurrentIndex)'s snapshot pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Snapshots published since construction (including the initial one).
    pub published: usize,
    /// Successful updates applied since the last publication — how stale
    /// the currently served snapshot is, in updates.
    pub pending_updates: usize,
    /// Updates the source index had applied when the served snapshot was
    /// frozen.
    pub snapshot_updates_applied: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_entries_signs() {
        let r = UpdateReport {
            entries_inserted: 5,
            entries_removed: 8,
            ..Default::default()
        };
        assert_eq!(r.net_entries(), -3);
        let r = UpdateReport {
            entries_inserted: 8,
            entries_removed: 5,
            ..Default::default()
        };
        assert_eq!(r.net_entries(), 3);
    }
}
