//! Index configuration.

use crate::error::CscError;
use crate::guard::RetryPolicy;
use crate::health::RebuildPolicy;
use csc_graph::OrderingStrategy;

/// How incremental updates treat label entries that new shortest paths have
/// made redundant (Section V-B, "Efficiency Trade-off").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum UpdateStrategy {
    /// Leave dominated entries in place. They can never win the
    /// minimum-distance selection at query time, so correctness is
    /// unaffected, and skipping the redundancy checks makes updates 58–678x
    /// faster in the paper's measurements. This is the paper's (and our)
    /// recommended default.
    #[default]
    Redundancy,
    /// Eagerly remove dominated entries after every label change
    /// (Algorithm 8, `CLEAN_LABEL`), keeping the index minimal at a high
    /// per-update cost. Requires the inverted hub indexes.
    Minimality,
}

/// When the write-ahead log flushes its file to stable storage.
///
/// The WAL always *writes* every record before the update applies; this
/// knob only controls how often those writes are `fsync`ed. A crash
/// between syncs can lose at most the unsynced suffix of acknowledged
/// windows — recovery still lands on a consistent prefix state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record: an acknowledged update is
    /// durable. The default — this is the durability plane's reason to
    /// exist.
    #[default]
    Always,
    /// `fsync` every `n` appended records (`n >= 1`; rejected at `0` by
    /// [`CscConfig::validate`]). Bounds loss to the last `n - 1`
    /// acknowledged windows while amortizing the sync cost.
    Every(u32),
    /// Never `fsync` from the WAL path (the OS flushes on its own
    /// schedule; rotation still syncs). For workloads where process
    /// death, not power loss, is the failure model.
    Never,
}

/// Durability knobs: write-ahead logging, checkpoint cadence, and the
/// post-swap/post-recovery integrity check. Only consulted once a
/// directory is attached via
/// [`MaintenanceEngine::attach_durability`](crate::MaintenanceEngine::attach_durability)
/// (or [`ConcurrentIndex::attach_durability`](crate::ConcurrentIndex::attach_durability));
/// an unattached engine runs exactly as before.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// WAL fsync cadence (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Write a fresh checkpoint (and rotate the WAL) every this many
    /// logged update windows. Smaller values bound recovery time (less
    /// WAL to replay); larger values amortize the serialize-and-rename
    /// cost. Must be `>= 1`; checkpoints are deferred while a
    /// rejuvenation is in flight (the WAL suffix must cover the queued
    /// writes) and taken at the next serving-state window.
    pub checkpoint_every: u32,
    /// How many checkpoint generations to keep on disk. The newest is
    /// the recovery fast path; older ones are the fallback when the
    /// newest is torn or bit-flipped. Must be `>= 1`; `2` (the default)
    /// survives a crash *during* checkpointing.
    pub keep_checkpoints: u32,
    /// Run [`check_integrity`](crate::verify::check_integrity) — the
    /// `O(entries)` structural sweep — after every rejuvenation swap and
    /// at the end of every recovery, degrading the engine instead of
    /// serving a structurally broken index.
    pub check_integrity: bool,
    /// Retry schedule for transient I/O failures on the durability plane
    /// (WAL append/fsync, checkpoint write/rename/dir-sync, recovery
    /// reads). When every attempt fails — or the failure is persistent
    /// (`ENOSPC`-class) — the engine degrades durability to a loud
    /// in-memory-only mode instead of poisoning the writer. Persisted at
    /// microsecond resolution.
    pub io_retry: RetryPolicy,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            fsync: FsyncPolicy::Always,
            checkpoint_every: 64,
            keep_checkpoints: 2,
            check_integrity: false,
            io_retry: RetryPolicy::DEFAULT_IO,
        }
    }
}

impl DurabilityConfig {
    /// Rejects degenerate cadences; called from [`CscConfig::validate`].
    pub fn validate(&self) -> Result<(), String> {
        if self.checkpoint_every == 0 {
            return Err("durability.checkpoint_every must be >= 1 (a zero cadence would checkpoint never or always, both degenerate)".into());
        }
        if self.keep_checkpoints == 0 {
            return Err(
                "durability.keep_checkpoints must be >= 1 (recovery needs at least one)".into(),
            );
        }
        if self.fsync == FsyncPolicy::Every(0) {
            return Err(
                "durability.fsync Every(0) is degenerate; use Always or Every(n >= 1)".into(),
            );
        }
        if self.io_retry.max_attempts == 0 {
            return Err("durability.io_retry.max_attempts must be >= 1 (the first try)".into());
        }
        if self.io_retry.base > self.io_retry.cap && self.io_retry.max_attempts > 1 {
            return Err("durability.io_retry.base must be <= cap when retries are enabled".into());
        }
        Ok(())
    }
}

/// What a write meets when the pending-write queue is at its high
/// watermark (see [`OverloadConfig`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Admit the write, but first *synchronously drive* the maintenance
    /// plane ([`MaintenanceEngine::step`](crate::MaintenanceEngine::step))
    /// until the queue drains below the low watermark. The caller pays
    /// the drain latency — classic blocking backpressure; no update is
    /// ever lost or refused. The default.
    #[default]
    Block,
    /// Refuse the write with [`CscError::Overloaded`](crate::CscError)
    /// and count it in [`IndexHealth::writes_rejected`](crate::IndexHealth::writes_rejected).
    /// The caller owns the retry; readers see zero added latency.
    Reject,
    /// Admit the write by dropping the *oldest* queued update, counted in
    /// [`IndexHealth::writes_shed`](crate::IndexHealth::writes_shed).
    /// **Lossy**: the index diverges from the full update stream, which
    /// only suits workloads that tolerate approximate freshness. The shed
    /// counter is the loud part of the contract.
    ShedOldest,
}

/// Backpressure on the maintenance plane's pending-write queue.
///
/// During a rejuvenation, writes are absorbed into a replay queue and
/// drained by [`step`](crate::MaintenanceEngine::step) calls. Unbounded,
/// a write surge can grow that queue without limit; these watermarks
/// bound it. With `high_watermark == 0` (the default) the queue is
/// unbounded and this configuration is inert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverloadConfig {
    /// What happens at the high watermark. See [`OverloadPolicy`].
    pub policy: OverloadPolicy,
    /// Queue depth (in updates) at which `policy` engages. `0` disables
    /// backpressure entirely.
    pub high_watermark: u32,
    /// Queue depth [`OverloadPolicy::Block`] drains down to before
    /// admitting the blocked write; also where a rejecting engine starts
    /// accepting again. Must be `< high_watermark` when backpressure is
    /// enabled.
    pub low_watermark: u32,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            policy: OverloadPolicy::Block,
            high_watermark: 0,
            low_watermark: 0,
        }
    }
}

impl OverloadConfig {
    /// Rejects inverted watermarks; called from [`CscConfig::validate`].
    pub fn validate(&self) -> Result<(), String> {
        if self.high_watermark > 0 && self.low_watermark >= self.high_watermark {
            return Err(format!(
                "overload.low_watermark ({}) must be < high_watermark ({}); equal watermarks \
                 would re-engage the policy on every write",
                self.low_watermark, self.high_watermark
            ));
        }
        Ok(())
    }

    /// `true` when a queue of `depth` updates must engage the policy.
    pub fn over_high(&self, depth: usize) -> bool {
        self.high_watermark > 0 && depth >= self.high_watermark as usize
    }

    /// `true` once a draining queue has fallen below the low watermark.
    pub fn under_low(&self, depth: usize) -> bool {
        depth <= self.low_watermark as usize
    }
}

/// Parallel execution knobs for the write and build planes.
///
/// These are *runtime* knobs: they steer how label work is scheduled
/// across the worker pool, never what the index contains. With
/// [`deterministic`](Self::deterministic) `true` (the default), per-hub
/// results computed in parallel are validated and committed in hub-rank
/// order, which makes the label arenas — and therefore
/// [`to_bytes`](crate::CscIndex::to_bytes) — byte-identical regardless of
/// `threads`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelismConfig {
    /// Worker width for parallel label passes: `0` (the default) follows
    /// the pool default (`CSC_THREADS`, else available parallelism); any
    /// other value decomposes work as if that many workers were present
    /// (physical threads are still capped by the pool). `1` forces the
    /// fully sequential path.
    pub threads: u32,
    /// Commit parallel per-hub results to the label store in hub-rank
    /// order, re-validating each against the already-committed prefix.
    /// This reproduces the sequential execution exactly, so serialized
    /// indexes are byte-identical across thread counts. `false` skips
    /// the re-validation during static builds, which may retain a few
    /// redundant (never query-winning) label entries whose set depends
    /// on the decomposition width.
    pub deterministic: bool,
}

impl Default for ParallelismConfig {
    fn default() -> Self {
        ParallelismConfig {
            threads: 0,
            deterministic: true,
        }
    }
}

/// Ceiling on [`ParallelismConfig::threads`]: wide enough for any real
/// machine, small enough to catch garbage (and to fit the serialized
/// form's validation budget).
pub(crate) const MAX_THREADS: u32 = 4096;

impl ParallelismConfig {
    /// Rejects degenerate widths; called from [`CscConfig::validate`].
    pub fn validate(&self) -> Result<(), String> {
        if self.threads > MAX_THREADS {
            return Err(format!(
                "parallelism.threads must be <= {MAX_THREADS} (0 = pool default), got {}",
                self.threads
            ));
        }
        Ok(())
    }

    /// The effective decomposition width: `threads` when set, else the
    /// global pool width (`CSC_THREADS` / available parallelism). This is
    /// the wave size the parallel write & build plane actually uses — and
    /// what benchmark records should report.
    pub fn width(&self) -> usize {
        if self.threads == 0 {
            rayon::current_num_threads()
        } else {
            self.threads as usize
        }
    }
}

/// Configuration for building a [`CscIndex`](crate::CscIndex).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CscConfig {
    /// Vertex-ordering strategy, applied to the *original* graph; couples in
    /// the bipartite graph inherit the order with `v_i` directly above
    /// `v_o` (the couple-vertex-skipping precondition).
    ///
    /// The strategy is persisted in checkpoints and re-applied whenever the
    /// maintenance plane recomputes the order, so switching a live index to
    /// [`OrderingStrategy::CoverageSampling`] (see
    /// [`set_order`](crate::CscIndex::set_order)) migrates the labeling to
    /// the smaller order during its next rejuvenation.
    pub order: OrderingStrategy,
    /// Redundancy vs. minimality on updates.
    pub update_strategy: UpdateStrategy,
    /// Maintain the inverted hub indexes (`inv_in` / `inv_out`).
    ///
    /// Required by [`UpdateStrategy::Minimality`] and used by edge deletion
    /// to find affected entries in output-sensitive time; without it,
    /// deletions fall back to a full label scan. Costs one `u32` of memory
    /// per label entry.
    pub maintain_inverted: bool,
    /// How often [`ConcurrentIndex`](crate::ConcurrentIndex) republishes
    /// its read snapshot, counted in *update units*: every successful
    /// `insert_edge` / `remove_edge` / `add_vertex` weighs 1, and an
    /// [`apply_batch`](crate::ConcurrentIndex::apply_batch) weighs its
    /// applied update count — but a batch publishes at most once, at its
    /// end.
    ///
    /// Publication is incremental (only the label lists dirtied since the
    /// last snapshot are re-frozen; the rest of the arena is carried over
    /// by a flat copy), but still costs an arena copy — so the default of
    /// `8` amortizes it over a burst while bounding snapshot-reader
    /// staleness at 7 updates. Set `1` to republish after every update or
    /// batch (readers at most one batch stale), or `0` to disable
    /// automatic republication entirely and call
    /// [`ConcurrentIndex::refresh`](crate::ConcurrentIndex::refresh)
    /// manually.
    ///
    /// `0` is a *defined* value, not a degenerate one:
    /// [`CscConfig::validate`] accepts it and pins the manual-publication
    /// semantics down.
    pub snapshot_every: usize,
    /// When the maintenance plane should rejuvenate (rebuild) the index —
    /// see [`RebuildPolicy`]. Default: trigger measurement at 200% label
    /// growth, automatic rebuild off.
    pub rebuild: RebuildPolicy,
    /// Durability knobs (WAL fsync, checkpoint cadence, integrity
    /// check); inert until a directory is attached. See
    /// [`DurabilityConfig`].
    pub durability: DurabilityConfig,
    /// Parallel execution knobs (worker width, deterministic commit).
    /// Runtime-only: they never change what the index contains. See
    /// [`ParallelismConfig`].
    pub parallelism: ParallelismConfig,
    /// Backpressure on the maintenance plane's pending-write queue
    /// (watermarks + [`OverloadPolicy`]). Inert at the default
    /// (`high_watermark == 0`). See [`OverloadConfig`].
    pub overload: OverloadConfig,
    /// Soft ceiling, in bytes, on the index's tracked heap footprint
    /// (label arenas + traversal workspaces + pending-write queue). A
    /// breach first forces a compaction attempt; if the footprint still
    /// exceeds the budget the engine enters the `Saturated` state and
    /// refuses writes (readers are unaffected) until it fits again. `0`
    /// (the default) disables the budget.
    pub memory_budget: usize,
}

impl Default for CscConfig {
    fn default() -> Self {
        CscConfig {
            order: OrderingStrategy::Degree,
            update_strategy: UpdateStrategy::Redundancy,
            maintain_inverted: true,
            snapshot_every: 8,
            rebuild: RebuildPolicy::default(),
            durability: DurabilityConfig::default(),
            parallelism: ParallelismConfig::default(),
            overload: OverloadConfig::default(),
            memory_budget: 0,
        }
    }
}

impl CscConfig {
    /// The paper's recommended configuration (degree order, redundancy).
    pub fn recommended() -> Self {
        Self::default()
    }

    /// Builder-style: set the ordering strategy.
    pub fn with_order(mut self, order: OrderingStrategy) -> Self {
        self.order = order;
        self
    }

    /// Builder-style: set the update strategy. Selecting minimality also
    /// switches the inverted indexes on (they are required).
    pub fn with_update_strategy(mut self, s: UpdateStrategy) -> Self {
        self.update_strategy = s;
        if s == UpdateStrategy::Minimality {
            self.maintain_inverted = true;
        }
        self
    }

    /// Builder-style: toggle the inverted indexes (ignored — forced on —
    /// under minimality).
    pub fn with_inverted(mut self, on: bool) -> Self {
        self.maintain_inverted = on || self.update_strategy == UpdateStrategy::Minimality;
        self
    }

    /// Builder-style: set the snapshot republication interval (see
    /// [`CscConfig::snapshot_every`]).
    pub fn with_snapshot_every(mut self, every: usize) -> Self {
        self.snapshot_every = every;
        self
    }

    /// Builder-style: set the rebuild (rejuvenation) policy.
    pub fn with_rebuild_policy(mut self, policy: RebuildPolicy) -> Self {
        self.rebuild = policy;
        self
    }

    /// Builder-style: set the durability knobs.
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = durability;
        self
    }

    /// Builder-style: set the checkpoint cadence (windows between
    /// checkpoints) without touching the other durability knobs.
    pub fn with_checkpoint_every(mut self, windows: u32) -> Self {
        self.durability.checkpoint_every = windows;
        self
    }

    /// Builder-style: set the WAL fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.durability.fsync = fsync;
        self
    }

    /// Builder-style: toggle the post-swap / post-recovery integrity
    /// check.
    pub fn with_integrity_check(mut self, on: bool) -> Self {
        self.durability.check_integrity = on;
        self
    }

    /// Builder-style: set the parallel decomposition width (`0` = pool
    /// default, `1` = sequential). See [`ParallelismConfig::threads`].
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.parallelism.threads = threads;
        self
    }

    /// Builder-style: toggle deterministic (rank-ordered, validated)
    /// commit of parallel results. See
    /// [`ParallelismConfig::deterministic`].
    pub fn with_deterministic(mut self, on: bool) -> Self {
        self.parallelism.deterministic = on;
        self
    }

    /// Builder-style: set the backpressure configuration. See
    /// [`OverloadConfig`].
    pub fn with_overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = overload;
        self
    }

    /// Builder-style: set the overload policy with the given watermarks
    /// (shorthand for [`with_overload`](Self::with_overload)).
    pub fn with_overload_policy(mut self, policy: OverloadPolicy, high: u32, low: u32) -> Self {
        self.overload = OverloadConfig {
            policy,
            high_watermark: high,
            low_watermark: low,
        };
        self
    }

    /// Builder-style: set the memory budget in bytes (`0` = unlimited).
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Builder-style: set the durability plane's transient-I/O retry
    /// schedule. See [`RetryPolicy`].
    pub fn with_io_retry(mut self, retry: RetryPolicy) -> Self {
        self.durability.io_retry = retry;
        self
    }

    /// Rejects degenerate configurations. Called by `CscIndex::build` and
    /// `CscIndex::from_bytes`, so an invalid configuration can never reach
    /// a live index.
    ///
    /// The pinned semantics of the boundary values:
    ///
    /// * `snapshot_every == 0` is **valid** and means *never auto-publish*
    ///   — [`ConcurrentIndex`](crate::ConcurrentIndex) republishes only on
    ///   an explicit [`refresh`](crate::ConcurrentIndex::refresh) (or at a
    ///   rejuvenation swap, which must publish to stay coherent).
    /// * `rebuild.max_growth_percent` must be `0` (disabled) or `> 100`: a
    ///   threshold at or below 100% would re-trigger immediately after the
    ///   rebuild that satisfied it.
    /// * `rebuild.max_dead_percent` must be `<= 100` — it is a fraction of
    ///   the arena.
    ///
    /// # Errors
    ///
    /// Returns [`CscError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), CscError> {
        self.rebuild.validate().map_err(CscError::Config)?;
        self.durability.validate().map_err(CscError::Config)?;
        self.parallelism.validate().map_err(CscError::Config)?;
        self.overload.validate().map_err(CscError::Config)?;
        if self.update_strategy == UpdateStrategy::Minimality && !self.maintain_inverted {
            return Err(CscError::Config(
                "update_strategy Minimality requires maintain_inverted".into(),
            ));
        }
        if let OrderingStrategy::CoverageSampling {
            samples_per_log_n, ..
        } = self.order
        {
            if samples_per_log_n == 0 {
                return Err(CscError::Config(
                    "order.samples_per_log_n must be >= 1 (zero trees would rank nothing)".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_recommendation() {
        let c = CscConfig::default();
        assert_eq!(c.order, OrderingStrategy::Degree);
        assert_eq!(c.update_strategy, UpdateStrategy::Redundancy);
        assert!(c.maintain_inverted);
        assert_eq!(c.snapshot_every, 8, "freeze cost amortized by default");
        assert_eq!(CscConfig::recommended(), c);
    }

    #[test]
    fn snapshot_interval_builder() {
        let c = CscConfig::default().with_snapshot_every(64);
        assert_eq!(c.snapshot_every, 64);
        assert_eq!(
            CscConfig::default().with_snapshot_every(0).snapshot_every,
            0
        );
    }

    #[test]
    fn minimality_forces_inverted() {
        let c = CscConfig::default()
            .with_inverted(false)
            .with_update_strategy(UpdateStrategy::Minimality);
        assert!(c.maintain_inverted);
        let c2 = CscConfig::default()
            .with_update_strategy(UpdateStrategy::Minimality)
            .with_inverted(false);
        assert!(c2.maintain_inverted, "inverted stays on under minimality");
    }

    #[test]
    fn validate_pins_snapshot_every_zero_as_manual_only() {
        // `0` is the documented manual-publication mode, not an error; the
        // concurrent tests (`manual_refresh_and_disabled_auto`) pin the
        // runtime behavior, this pins that validation agrees.
        let c = CscConfig::default().with_snapshot_every(0);
        assert!(c.validate().is_ok());
        assert!(CscConfig::default().validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_rebuild_thresholds() {
        let c = CscConfig::default()
            .with_rebuild_policy(RebuildPolicy::default().with_growth_percent(100));
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("max_growth_percent"), "{err}");
        let c = CscConfig::default()
            .with_rebuild_policy(RebuildPolicy::default().with_dead_percent(150));
        assert!(c.validate().is_err());
        // Disabled thresholds stay valid.
        let c = CscConfig::default().with_rebuild_policy(RebuildPolicy::manual_only());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_durability_knobs() {
        let c = CscConfig::default().with_checkpoint_every(0);
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("checkpoint_every"), "{err}");

        let c = CscConfig::default().with_durability(DurabilityConfig {
            keep_checkpoints: 0,
            ..Default::default()
        });
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("keep_checkpoints"), "{err}");

        let c = CscConfig::default().with_fsync(FsyncPolicy::Every(0));
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("Every(0)"), "{err}");

        // The defaults and the legitimate boundary values stay valid.
        assert!(CscConfig::default().validate().is_ok());
        assert!(CscConfig::default()
            .with_checkpoint_every(1)
            .with_fsync(FsyncPolicy::Every(1))
            .validate()
            .is_ok());
        assert!(CscConfig::default()
            .with_fsync(FsyncPolicy::Never)
            .with_integrity_check(true)
            .validate()
            .is_ok());
    }

    #[test]
    fn durability_defaults_favor_safety() {
        let d = DurabilityConfig::default();
        assert_eq!(d.fsync, FsyncPolicy::Always, "acknowledged == durable");
        assert_eq!(d.keep_checkpoints, 2, "survive a crash mid-checkpoint");
        assert!(d.checkpoint_every >= 1);
    }

    #[test]
    fn parallelism_defaults_and_builders() {
        let c = CscConfig::default();
        assert_eq!(c.parallelism.threads, 0, "0 = follow the pool default");
        assert!(c.parallelism.deterministic, "reproducible by default");

        let c = CscConfig::default()
            .with_threads(4)
            .with_deterministic(false);
        assert_eq!(c.parallelism.threads, 4);
        assert!(!c.parallelism.deterministic);
        assert!(c.validate().is_ok());
        assert!(c.parallelism.width() == 4);
        assert!(CscConfig::default().with_threads(0).parallelism.width() >= 1);
    }

    #[test]
    fn validate_rejects_zero_sampling_budget() {
        let c = CscConfig::default().with_order(OrderingStrategy::CoverageSampling {
            seed: 1,
            samples_per_log_n: 0,
        });
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("samples_per_log_n"), "{err}");
        assert!(CscConfig::default()
            .with_order(OrderingStrategy::coverage(1))
            .validate()
            .is_ok());
    }

    #[test]
    fn validate_rejects_absurd_thread_widths() {
        let c = CscConfig::default().with_threads(MAX_THREADS + 1);
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("parallelism.threads"), "{err}");
        assert!(CscConfig::default()
            .with_threads(MAX_THREADS)
            .validate()
            .is_ok());
    }

    #[test]
    fn overload_defaults_are_inert_and_watermarks_validate() {
        let o = OverloadConfig::default();
        assert_eq!(o.policy, OverloadPolicy::Block);
        assert_eq!(o.high_watermark, 0, "backpressure off by default");
        assert!(!o.over_high(usize::MAX), "0 watermark never engages");
        assert!(CscConfig::default().validate().is_ok());

        let c = CscConfig::default().with_overload_policy(OverloadPolicy::Reject, 8, 8);
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("low_watermark"), "{err}");
        let c = CscConfig::default().with_overload_policy(OverloadPolicy::Reject, 8, 2);
        assert!(c.validate().is_ok());
        assert!(c.overload.over_high(8) && !c.overload.over_high(7));
        assert!(c.overload.under_low(2) && !c.overload.under_low(3));
    }

    #[test]
    fn memory_budget_and_io_retry_builders() {
        let c = CscConfig::default().with_memory_budget(1 << 20);
        assert_eq!(c.memory_budget, 1 << 20);
        assert_eq!(
            CscConfig::default().memory_budget,
            0,
            "unlimited by default"
        );

        let r = crate::guard::RetryPolicy::new(
            3,
            std::time::Duration::from_millis(1),
            std::time::Duration::from_millis(8),
        );
        let c = CscConfig::default().with_io_retry(r);
        assert_eq!(c.durability.io_retry, r);
        assert!(c.validate().is_ok());

        let bad = CscConfig::default().with_io_retry(crate::guard::RetryPolicy {
            max_attempts: 2,
            base: std::time::Duration::from_millis(9),
            cap: std::time::Duration::from_millis(1),
        });
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("io_retry"), "{err}");
    }

    #[test]
    fn builder_chains() {
        let c = CscConfig::default()
            .with_order(OrderingStrategy::Identity)
            .with_inverted(false);
        assert_eq!(c.order, OrderingStrategy::Identity);
        assert!(!c.maintain_inverted);
    }
}
