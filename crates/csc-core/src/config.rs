//! Index configuration.

use crate::error::CscError;
use crate::health::RebuildPolicy;
use csc_graph::OrderingStrategy;

/// How incremental updates treat label entries that new shortest paths have
/// made redundant (Section V-B, "Efficiency Trade-off").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum UpdateStrategy {
    /// Leave dominated entries in place. They can never win the
    /// minimum-distance selection at query time, so correctness is
    /// unaffected, and skipping the redundancy checks makes updates 58–678x
    /// faster in the paper's measurements. This is the paper's (and our)
    /// recommended default.
    #[default]
    Redundancy,
    /// Eagerly remove dominated entries after every label change
    /// (Algorithm 8, `CLEAN_LABEL`), keeping the index minimal at a high
    /// per-update cost. Requires the inverted hub indexes.
    Minimality,
}

/// Configuration for building a [`CscIndex`](crate::CscIndex).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CscConfig {
    /// Vertex-ordering strategy, applied to the *original* graph; couples in
    /// the bipartite graph inherit the order with `v_i` directly above
    /// `v_o` (the couple-vertex-skipping precondition).
    pub order: OrderingStrategy,
    /// Redundancy vs. minimality on updates.
    pub update_strategy: UpdateStrategy,
    /// Maintain the inverted hub indexes (`inv_in` / `inv_out`).
    ///
    /// Required by [`UpdateStrategy::Minimality`] and used by edge deletion
    /// to find affected entries in output-sensitive time; without it,
    /// deletions fall back to a full label scan. Costs one `u32` of memory
    /// per label entry.
    pub maintain_inverted: bool,
    /// How often [`ConcurrentIndex`](crate::ConcurrentIndex) republishes
    /// its read snapshot, counted in *update units*: every successful
    /// `insert_edge` / `remove_edge` / `add_vertex` weighs 1, and an
    /// [`apply_batch`](crate::ConcurrentIndex::apply_batch) weighs its
    /// applied update count — but a batch publishes at most once, at its
    /// end.
    ///
    /// Publication is incremental (only the label lists dirtied since the
    /// last snapshot are re-frozen; the rest of the arena is carried over
    /// by a flat copy), but still costs an arena copy — so the default of
    /// `8` amortizes it over a burst while bounding snapshot-reader
    /// staleness at 7 updates. Set `1` to republish after every update or
    /// batch (readers at most one batch stale), or `0` to disable
    /// automatic republication entirely and call
    /// [`ConcurrentIndex::refresh`](crate::ConcurrentIndex::refresh)
    /// manually.
    ///
    /// `0` is a *defined* value, not a degenerate one:
    /// [`CscConfig::validate`] accepts it and pins the manual-publication
    /// semantics down.
    pub snapshot_every: usize,
    /// When the maintenance plane should rejuvenate (rebuild) the index —
    /// see [`RebuildPolicy`]. Default: trigger measurement at 200% label
    /// growth, automatic rebuild off.
    pub rebuild: RebuildPolicy,
}

impl Default for CscConfig {
    fn default() -> Self {
        CscConfig {
            order: OrderingStrategy::Degree,
            update_strategy: UpdateStrategy::Redundancy,
            maintain_inverted: true,
            snapshot_every: 8,
            rebuild: RebuildPolicy::default(),
        }
    }
}

impl CscConfig {
    /// The paper's recommended configuration (degree order, redundancy).
    pub fn recommended() -> Self {
        Self::default()
    }

    /// Builder-style: set the ordering strategy.
    pub fn with_order(mut self, order: OrderingStrategy) -> Self {
        self.order = order;
        self
    }

    /// Builder-style: set the update strategy. Selecting minimality also
    /// switches the inverted indexes on (they are required).
    pub fn with_update_strategy(mut self, s: UpdateStrategy) -> Self {
        self.update_strategy = s;
        if s == UpdateStrategy::Minimality {
            self.maintain_inverted = true;
        }
        self
    }

    /// Builder-style: toggle the inverted indexes (ignored — forced on —
    /// under minimality).
    pub fn with_inverted(mut self, on: bool) -> Self {
        self.maintain_inverted = on || self.update_strategy == UpdateStrategy::Minimality;
        self
    }

    /// Builder-style: set the snapshot republication interval (see
    /// [`CscConfig::snapshot_every`]).
    pub fn with_snapshot_every(mut self, every: usize) -> Self {
        self.snapshot_every = every;
        self
    }

    /// Builder-style: set the rebuild (rejuvenation) policy.
    pub fn with_rebuild_policy(mut self, policy: RebuildPolicy) -> Self {
        self.rebuild = policy;
        self
    }

    /// Rejects degenerate configurations. Called by `CscIndex::build` and
    /// `CscIndex::from_bytes`, so an invalid configuration can never reach
    /// a live index.
    ///
    /// The pinned semantics of the boundary values:
    ///
    /// * `snapshot_every == 0` is **valid** and means *never auto-publish*
    ///   — [`ConcurrentIndex`](crate::ConcurrentIndex) republishes only on
    ///   an explicit [`refresh`](crate::ConcurrentIndex::refresh) (or at a
    ///   rejuvenation swap, which must publish to stay coherent).
    /// * `rebuild.max_growth_percent` must be `0` (disabled) or `> 100`: a
    ///   threshold at or below 100% would re-trigger immediately after the
    ///   rebuild that satisfied it.
    /// * `rebuild.max_dead_percent` must be `<= 100` — it is a fraction of
    ///   the arena.
    ///
    /// # Errors
    ///
    /// Returns [`CscError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), CscError> {
        self.rebuild.validate().map_err(CscError::Config)?;
        if self.update_strategy == UpdateStrategy::Minimality && !self.maintain_inverted {
            return Err(CscError::Config(
                "update_strategy Minimality requires maintain_inverted".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_recommendation() {
        let c = CscConfig::default();
        assert_eq!(c.order, OrderingStrategy::Degree);
        assert_eq!(c.update_strategy, UpdateStrategy::Redundancy);
        assert!(c.maintain_inverted);
        assert_eq!(c.snapshot_every, 8, "freeze cost amortized by default");
        assert_eq!(CscConfig::recommended(), c);
    }

    #[test]
    fn snapshot_interval_builder() {
        let c = CscConfig::default().with_snapshot_every(64);
        assert_eq!(c.snapshot_every, 64);
        assert_eq!(
            CscConfig::default().with_snapshot_every(0).snapshot_every,
            0
        );
    }

    #[test]
    fn minimality_forces_inverted() {
        let c = CscConfig::default()
            .with_inverted(false)
            .with_update_strategy(UpdateStrategy::Minimality);
        assert!(c.maintain_inverted);
        let c2 = CscConfig::default()
            .with_update_strategy(UpdateStrategy::Minimality)
            .with_inverted(false);
        assert!(c2.maintain_inverted, "inverted stays on under minimality");
    }

    #[test]
    fn validate_pins_snapshot_every_zero_as_manual_only() {
        // `0` is the documented manual-publication mode, not an error; the
        // concurrent tests (`manual_refresh_and_disabled_auto`) pin the
        // runtime behavior, this pins that validation agrees.
        let c = CscConfig::default().with_snapshot_every(0);
        assert!(c.validate().is_ok());
        assert!(CscConfig::default().validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_rebuild_thresholds() {
        let c = CscConfig::default()
            .with_rebuild_policy(RebuildPolicy::default().with_growth_percent(100));
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("max_growth_percent"), "{err}");
        let c = CscConfig::default()
            .with_rebuild_policy(RebuildPolicy::default().with_dead_percent(150));
        assert!(c.validate().is_err());
        // Disabled thresholds stay valid.
        let c = CscConfig::default().with_rebuild_policy(RebuildPolicy::manual_only());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_chains() {
        let c = CscConfig::default()
            .with_order(OrderingStrategy::Identity)
            .with_inverted(false);
        assert_eq!(c.order, OrderingStrategy::Identity);
        assert!(!c.maintain_inverted);
    }
}
