//! Index configuration.

use csc_graph::OrderingStrategy;

/// How incremental updates treat label entries that new shortest paths have
/// made redundant (Section V-B, "Efficiency Trade-off").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum UpdateStrategy {
    /// Leave dominated entries in place. They can never win the
    /// minimum-distance selection at query time, so correctness is
    /// unaffected, and skipping the redundancy checks makes updates 58–678x
    /// faster in the paper's measurements. This is the paper's (and our)
    /// recommended default.
    #[default]
    Redundancy,
    /// Eagerly remove dominated entries after every label change
    /// (Algorithm 8, `CLEAN_LABEL`), keeping the index minimal at a high
    /// per-update cost. Requires the inverted hub indexes.
    Minimality,
}

/// Configuration for building a [`CscIndex`](crate::CscIndex).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CscConfig {
    /// Vertex-ordering strategy, applied to the *original* graph; couples in
    /// the bipartite graph inherit the order with `v_i` directly above
    /// `v_o` (the couple-vertex-skipping precondition).
    pub order: OrderingStrategy,
    /// Redundancy vs. minimality on updates.
    pub update_strategy: UpdateStrategy,
    /// Maintain the inverted hub indexes (`inv_in` / `inv_out`).
    ///
    /// Required by [`UpdateStrategy::Minimality`] and used by edge deletion
    /// to find affected entries in output-sensitive time; without it,
    /// deletions fall back to a full label scan. Costs one `u32` of memory
    /// per label entry.
    pub maintain_inverted: bool,
    /// How often [`ConcurrentIndex`](crate::ConcurrentIndex) republishes
    /// its read snapshot, counted in *update units*: every successful
    /// `insert_edge` / `remove_edge` / `add_vertex` weighs 1, and an
    /// [`apply_batch`](crate::ConcurrentIndex::apply_batch) weighs its
    /// applied update count — but a batch publishes at most once, at its
    /// end.
    ///
    /// Publication is incremental (only the label lists dirtied since the
    /// last snapshot are re-frozen; the rest of the arena is carried over
    /// by a flat copy), but still costs an arena copy — so the default of
    /// `8` amortizes it over a burst while bounding snapshot-reader
    /// staleness at 7 updates. Set `1` to republish after every update or
    /// batch (readers at most one batch stale), or `0` to disable
    /// automatic republication entirely and call
    /// [`ConcurrentIndex::refresh`](crate::ConcurrentIndex::refresh)
    /// manually.
    pub snapshot_every: usize,
}

impl Default for CscConfig {
    fn default() -> Self {
        CscConfig {
            order: OrderingStrategy::Degree,
            update_strategy: UpdateStrategy::Redundancy,
            maintain_inverted: true,
            snapshot_every: 8,
        }
    }
}

impl CscConfig {
    /// The paper's recommended configuration (degree order, redundancy).
    pub fn recommended() -> Self {
        Self::default()
    }

    /// Builder-style: set the ordering strategy.
    pub fn with_order(mut self, order: OrderingStrategy) -> Self {
        self.order = order;
        self
    }

    /// Builder-style: set the update strategy. Selecting minimality also
    /// switches the inverted indexes on (they are required).
    pub fn with_update_strategy(mut self, s: UpdateStrategy) -> Self {
        self.update_strategy = s;
        if s == UpdateStrategy::Minimality {
            self.maintain_inverted = true;
        }
        self
    }

    /// Builder-style: toggle the inverted indexes (ignored — forced on —
    /// under minimality).
    pub fn with_inverted(mut self, on: bool) -> Self {
        self.maintain_inverted = on || self.update_strategy == UpdateStrategy::Minimality;
        self
    }

    /// Builder-style: set the snapshot republication interval (see
    /// [`CscConfig::snapshot_every`]).
    pub fn with_snapshot_every(mut self, every: usize) -> Self {
        self.snapshot_every = every;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_recommendation() {
        let c = CscConfig::default();
        assert_eq!(c.order, OrderingStrategy::Degree);
        assert_eq!(c.update_strategy, UpdateStrategy::Redundancy);
        assert!(c.maintain_inverted);
        assert_eq!(c.snapshot_every, 8, "freeze cost amortized by default");
        assert_eq!(CscConfig::recommended(), c);
    }

    #[test]
    fn snapshot_interval_builder() {
        let c = CscConfig::default().with_snapshot_every(64);
        assert_eq!(c.snapshot_every, 64);
        assert_eq!(
            CscConfig::default().with_snapshot_every(0).snapshot_every,
            0
        );
    }

    #[test]
    fn minimality_forces_inverted() {
        let c = CscConfig::default()
            .with_inverted(false)
            .with_update_strategy(UpdateStrategy::Minimality);
        assert!(c.maintain_inverted);
        let c2 = CscConfig::default()
            .with_update_strategy(UpdateStrategy::Minimality)
            .with_inverted(false);
        assert!(c2.maintain_inverted, "inverted stays on under minimality");
    }

    #[test]
    fn builder_chains() {
        let c = CscConfig::default()
            .with_order(OrderingStrategy::Identity)
            .with_inverted(false);
        assert_eq!(c.order, OrderingStrategy::Identity);
        assert!(!c.maintain_inverted);
    }
}
