//! Deterministic fault injection for crash-recovery testing.
//!
//! The write path, checkpointing, WAL appends, rejuvenation chunks, and
//! recovery itself are instrumented with named `faultpoint!(..)` hooks.
//! Without the `fault-injection` feature the macro compiles to nothing —
//! zero cost in production builds. With the feature, each hook reports to
//! the registry in this module, which a test can *arm* to panic at an
//! exact hit — simulating a crash at that precise point (the in-memory
//! state is torn down by the unwind; the on-disk files are left exactly
//! as a killed process would leave them, including half-written records).
//!
//! The crash-recovery property tests use the two-pass scheme this
//! enables: run a trace once unarmed while counting hits, then rerun it
//! once per interesting hit index with [`arm_global`] set to that index,
//! recover from the files the "crash" left behind, and prove equivalence
//! against the oracle.
//!
//! All state is process-global and the engine is single-threaded, so
//! tests that arm faults must serialize themselves on [`test_lock`].

#![cfg(feature = "fault-injection")]

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// An armed I/O-error injection on one named point.
struct IoFault {
    /// Hits to let pass before the first injected failure (0 = fail the
    /// next hit).
    countdown: u64,
    /// How many consecutive hits fail once the countdown elapses. A
    /// count larger than the site's retry budget simulates a persistent
    /// failure; a smaller one, a transient blip the retries absorb.
    failures: u64,
    /// The [`std::io::ErrorKind`] of every injected error.
    kind: std::io::ErrorKind,
}

struct Registry {
    /// Total faultpoint hits since the last [`reset`].
    total: u64,
    /// Panic when `total` reaches this value (1-based), regardless of
    /// which point is hit.
    global_trigger: Option<u64>,
    /// Per-point countdowns: panic when the named point's counter
    /// reaches zero.
    per_point: HashMap<String, u64>,
    /// Hits per point since the last [`reset`] (for tests that want to
    /// target one phase).
    seen: HashMap<String, u64>,
    /// Total I/O-site hits since the last [`reset`] — a separate sample
    /// space from `total`, because I/O sites *return* errors instead of
    /// panicking.
    io_total: u64,
    /// Inject at the I/O-site hit with this 1-based index, whichever
    /// site it lands on (the sweep tests' scheme), with this kind.
    io_global: Option<(u64, std::io::ErrorKind)>,
    /// Per-point I/O injections.
    per_point_io: HashMap<String, IoFault>,
}

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| {
            Mutex::new(Registry {
                total: 0,
                global_trigger: None,
                per_point: HashMap::new(),
                seen: HashMap::new(),
                io_total: 0,
                io_global: None,
                per_point_io: HashMap::new(),
            })
        })
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Serializes fault-arming tests: the registry is process-global, so two
/// concurrent `#[test]`s arming faults would crash each other. Take this
/// guard first in every test that calls [`arm`] / [`arm_global`].
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Reports a hit of the named faultpoint; panics if a trigger is armed
/// for it. Called by the `faultpoint!` macro — not directly.
pub fn hit(name: &str) {
    let fire = {
        let mut reg = registry();
        reg.total += 1;
        *reg.seen.entry(name.to_string()).or_insert(0) += 1;
        let mut fire = reg.global_trigger == Some(reg.total);
        if let Some(remaining) = reg.per_point.get_mut(name) {
            *remaining -= 1;
            if *remaining == 0 {
                reg.per_point.remove(name);
                fire = true;
            }
        }
        fire
    };
    if fire {
        panic!("faultpoint '{name}' fired (injected crash)");
    }
}

/// Arms the named point to panic on its `nth` hit from now (1-based).
pub fn arm(name: &str, nth: u64) {
    assert!(nth >= 1, "nth is 1-based");
    registry().per_point.insert(name.to_string(), nth);
}

/// Arms a global trigger: panic at the `nth` faultpoint hit from now
/// (1-based), whichever point it lands on. This is what the
/// crash-at-any-point property tests use.
pub fn arm_global(nth: u64) {
    assert!(nth >= 1, "nth is 1-based");
    let mut reg = registry();
    let base = reg.total;
    reg.global_trigger = Some(base + nth);
}

/// Reports a hit of the named *I/O* faultpoint, returning the
/// [`std::io::Error`] to inject — the instrumented site returns it as if
/// the real operation had failed — or `None` to proceed normally.
/// Called by the `faultpoint_io!` macro — not directly.
pub fn take_io(name: &str) -> Option<std::io::Error> {
    let mut reg = registry();
    reg.io_total += 1;
    *reg.seen.entry(name.to_string()).or_insert(0) += 1;
    if let Some((at, kind)) = reg.io_global {
        if reg.io_total == at {
            reg.io_global = None;
            return Some(std::io::Error::new(kind, format!("injected at '{name}'")));
        }
    }
    if let Some(fault) = reg.per_point_io.get_mut(name) {
        if fault.countdown > 0 {
            fault.countdown -= 1;
        } else if fault.failures > 0 {
            fault.failures -= 1;
            let kind = fault.kind;
            if fault.failures == 0 {
                reg.per_point_io.remove(name);
            }
            return Some(std::io::Error::new(kind, format!("injected at '{name}'")));
        }
    }
    None
}

/// Arms the named I/O point to fail its `nth` hit from now (1-based)
/// and the `count - 1` hits after it, each with an error of `kind`.
/// `count` larger than the site's retry budget simulates a persistent
/// failure; smaller, a transient blip the retries absorb.
pub fn arm_io(name: &str, nth: u64, kind: std::io::ErrorKind, count: u64) {
    assert!(nth >= 1, "nth is 1-based");
    assert!(count >= 1, "count must inject at least one failure");
    registry().per_point_io.insert(
        name.to_string(),
        IoFault {
            countdown: nth - 1,
            failures: count,
            kind,
        },
    );
}

/// Arms a global I/O trigger: inject one error of `kind` at the `nth`
/// I/O-site hit from now (1-based), whichever site it lands on. This is
/// what the every-instrumented-site sweep tests use.
pub fn arm_io_global(nth: u64, kind: std::io::ErrorKind) {
    assert!(nth >= 1, "nth is 1-based");
    let mut reg = registry();
    let base = reg.io_total;
    reg.io_global = Some((base + nth, kind));
}

/// Total I/O-site hits since the last [`reset`] — the sample space for
/// [`arm_io_global`].
pub fn io_total_hits() -> u64 {
    registry().io_total
}

/// Disarms everything and zeroes the counters.
pub fn reset() {
    let mut reg = registry();
    reg.total = 0;
    reg.global_trigger = None;
    reg.per_point.clear();
    reg.seen.clear();
    reg.io_total = 0;
    reg.io_global = None;
    reg.per_point_io.clear();
}

/// Total hits since the last [`reset`] — the sample space for
/// [`arm_global`].
pub fn total_hits() -> u64 {
    registry().total
}

/// Hits of one named point since the last [`reset`].
pub fn hits(name: &str) -> u64 {
    registry().seen.get(name).copied().unwrap_or(0)
}

/// Swallows panic-hook output for the duration of a closure expected to
/// panic (injected crashes are intentional; a backtrace per proptest
/// case would drown the test log), returning the caught panic payload's
/// message if it panicked.
pub fn quiet_catch<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    std::panic::set_hook(prev);
    result.map_err(|payload| crate::maintain::panic_message(&*payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_and_fire() {
        let _guard = test_lock();
        reset();
        hit("a");
        assert_eq!(total_hits(), 1);
        assert_eq!(hits("a"), 1);

        arm("b", 2);
        hit("b"); // first hit: armed for the second
        let err = quiet_catch(|| hit("b")).unwrap_err();
        assert!(err.contains("faultpoint 'b' fired"), "{err}");

        reset();
        arm_global(3);
        hit("x");
        hit("y");
        let err = quiet_catch(|| hit("z")).unwrap_err();
        assert!(err.contains("'z'"), "{err}");
        // The trigger is one-shot.
        hit("z");
        reset();
    }

    #[test]
    fn io_injection_counts_down_and_exhausts() {
        let _guard = test_lock();
        reset();
        assert!(take_io("io.a").is_none(), "unarmed sites pass through");
        assert_eq!(io_total_hits(), 1);
        assert_eq!(hits("io.a"), 1);

        // Fail the 2nd and 3rd hits from now, then recover.
        arm_io("io.a", 2, std::io::ErrorKind::Interrupted, 2);
        assert!(take_io("io.a").is_none());
        let e = take_io("io.a").unwrap();
        assert_eq!(e.kind(), std::io::ErrorKind::Interrupted);
        assert!(e.to_string().contains("io.a"), "{e}");
        assert!(take_io("io.a").is_some());
        assert!(take_io("io.a").is_none(), "injection budget exhausted");

        // The global trigger fires once, at whichever site is nth.
        reset();
        arm_io_global(2, std::io::ErrorKind::StorageFull);
        assert!(take_io("io.x").is_none());
        assert_eq!(
            take_io("io.y").unwrap().kind(),
            std::io::ErrorKind::StorageFull
        );
        assert!(take_io("io.y").is_none(), "one-shot");
        reset();
    }
}
