//! CRC32 (IEEE 802.3, the zlib/gzip polynomial) for checkpoint and WAL
//! framing.
//!
//! A table-driven byte-at-a-time implementation is plenty: checksumming
//! runs once per serialized section / WAL record, against file I/O that
//! dwarfs it. The table is built in a `const` context so there is no
//! runtime initialization to synchronize.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 of `bytes` (initial value `!0`, final complement — the standard
/// parameterization, so values match `zlib`'s `crc32()`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 check values (verifiable against zlib).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"length-prefixed, CRC32-checksummed records".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}.{bit} undetected");
            }
        }
    }
}
