//! Index invariant checking at two price points.
//!
//! [`check_integrity`] is the cheap `O(entries)` *structural* sweep —
//! sortedness, the per-side entry counters, the inverted-index mirror,
//! and bipartite well-formedness. It is fast enough to run in
//! production after a rejuvenation swap or a recovery (gate it with
//! [`DurabilityConfig::check_integrity`](crate::DurabilityConfig)).
//!
//! [`verify_index`] is the expensive *semantic* check for tests and
//! debugging: it includes the structural sweep, then cross-checks every
//! label distance and every query against brute-force BFS oracles —
//! `O(n * (n + m))`, meant for test-sized graphs. The property-test
//! suites run it after every mutation batch.

use crate::config::UpdateStrategy;
use crate::error::CscError;
use crate::index::CscIndex;
use csc_graph::bipartite::is_in_vertex;
use csc_graph::traversal::{bfs_distances, shortest_cycle_oracle};
use csc_graph::DiGraph;

/// What [`check_integrity`] swept, for logging and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegrityReport {
    /// Label entries visited.
    pub entries: usize,
    /// Whether the inverted indexes were present and cross-checked.
    pub inverted_checked: bool,
}

/// The cheap `O(entries)` structural sweep: bipartite well-formedness,
/// label sortedness/uniqueness, the maintained per-side entry counters
/// against a ground-truth recount, and (when maintained) the inverted
/// indexes as an exact mirror of the labels.
///
/// This deliberately checks only *internal* consistency — nothing here
/// touches a BFS oracle — so it is safe to run inline after a
/// rejuvenation swap or a recovery. Semantic correctness is
/// [`verify_index`]'s job.
///
/// # Errors
///
/// Returns [`CscError::Corrupt`] (section `"integrity"`) describing the
/// first violated invariant.
pub fn check_integrity(index: &CscIndex) -> Result<IntegrityReport, CscError> {
    let violation = |detail: String| CscError::corrupt("integrity", detail);
    index.bipartite().validate().map_err(violation)?;
    // Sortedness, uniqueness, and the side counters vs. a recount.
    index.labels().validate_sorted().map_err(violation)?;
    let mut inverted_checked = false;
    if let Some(inv) = index.inverted.as_ref() {
        inv.validate_against(index.labels()).map_err(violation)?;
        if inv.total_entries() != index.labels().total_entries() {
            return Err(violation(
                "inverted entry count diverges from label entry count".into(),
            ));
        }
        if inv.rank_count() != index.ranks().len() {
            return Err(violation(
                "inverted index rank count diverges from rank table".into(),
            ));
        }
        inverted_checked = true;
    }
    Ok(IntegrityReport {
        entries: index.labels().total_entries(),
        inverted_checked,
    })
}

impl CscIndex {
    /// Reconstructs the original (non-bipartite) graph from the index.
    pub fn original_graph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.original_vertex_count());
        for (u, v) in self.original_edges() {
            g.try_add_edge(u, v).expect("index edges are valid");
        }
        g
    }
}

/// Checks every structural and semantic invariant of the index:
///
/// 1. the bipartite graph is structurally valid;
/// 2. label lists are sorted and duplicate-free;
/// 3. the inverted indexes (if maintained) mirror the labels exactly;
/// 4. every non-self label hub is an incoming vertex;
/// 5. no label entry under-estimates a true distance, and under the
///    minimality strategy no entry over-estimates one either;
/// 6. every `SCCnt` query matches the brute-force oracle.
///
/// Returns a description of the first violation found.
pub fn verify_index(index: &CscIndex) -> Result<(), String> {
    // Invariants 1–3 are the structural sweep, shared with the
    // production-grade fast path.
    check_integrity(index).map_err(|e| e.to_string())?;

    let gb = index.bipartite().graph();
    let ranks = index.ranks();
    let minimal = index.config().update_strategy == UpdateStrategy::Minimality
        && index.stats().insertions + index.stats().deletions > 0;

    // Per-hub forward/backward BFS gives exact distances for invariant 5.
    for hub_rank in 0..ranks.len() as u32 {
        let hub = ranks.vertex_at_rank(hub_rank);
        let fwd = bfs_distances(gb, hub);
        let bwd = csc_graph::traversal::bfs_distances_dir(gb, hub, false);
        for v in gb.vertices() {
            if let Some(e) = index
                .labels()
                .entry_for(v, csc_labeling::LabelSide::In, hub_rank)
            {
                if !is_in_vertex(hub) && hub != v {
                    return Err(format!("V_out vertex {hub} is a hub of Lin({v})"));
                }
                match fwd[v.index()] {
                    None => {
                        return Err(format!(
                            "Lin({v}) entry for unreachable hub {hub} (d={})",
                            e.dist()
                        ))
                    }
                    Some(sd) if e.dist() < sd => {
                        return Err(format!(
                            "Lin({v}) hub {hub}: stored {} < true {sd}",
                            e.dist()
                        ))
                    }
                    Some(sd) if minimal && e.dist() > sd => {
                        return Err(format!(
                            "minimality violated: Lin({v}) hub {hub}: stored {} > true {sd}",
                            e.dist()
                        ))
                    }
                    _ => {}
                }
            }
            if let Some(e) = index
                .labels()
                .entry_for(v, csc_labeling::LabelSide::Out, hub_rank)
            {
                if !is_in_vertex(hub) && hub != v {
                    return Err(format!("V_out vertex {hub} is a hub of Lout({v})"));
                }
                match bwd[v.index()] {
                    None => {
                        return Err(format!(
                            "Lout({v}) entry for hub {hub} that cannot be reached (d={})",
                            e.dist()
                        ))
                    }
                    Some(sd) if e.dist() < sd => {
                        return Err(format!(
                            "Lout({v}) hub {hub}: stored {} < true {sd}",
                            e.dist()
                        ))
                    }
                    Some(sd) if minimal && e.dist() > sd => {
                        return Err(format!(
                            "minimality violated: Lout({v}) hub {hub}: stored {} > true {sd}",
                            e.dist()
                        ))
                    }
                    _ => {}
                }
            }
        }
    }

    // Invariant 6: query equivalence with the oracle.
    let g = index.original_graph();
    for v in g.vertices() {
        let got = index.query(v).map(|c| (c.length, c.count));
        let want = shortest_cycle_oracle(&g, v);
        if got != want {
            return Err(format!(
                "SCCnt({v}): index says {got:?}, oracle says {want:?}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CscConfig;
    use csc_graph::generators::{gnm, preferential_attachment};
    use csc_graph::VertexId;

    #[test]
    fn fresh_indexes_verify() {
        for seed in 0..3 {
            let g = gnm(20, 60, seed);
            let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
            verify_index(&idx).unwrap();
        }
        let g = preferential_attachment(40, 2, 0.6, 5);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        verify_index(&idx).unwrap();
    }

    #[test]
    fn verification_survives_update_storms() {
        let mut g = gnm(16, 40, 8);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        // Remove five edges, insert five fresh ones, verifying throughout.
        let victims: Vec<_> = g.edge_vec().into_iter().take(5).collect();
        for (u, w) in victims {
            g.try_remove_edge(VertexId(u), VertexId(w)).unwrap();
            idx.remove_edge(VertexId(u), VertexId(w)).unwrap();
            verify_index(&idx).unwrap();
        }
        let mut s = 99u64;
        let mut added = 0;
        while added < 5 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = VertexId((s >> 33) as u32 % 16);
            let b = VertexId((s >> 11) as u32 % 16);
            if a != b && !g.has_edge(a, b) {
                g.try_add_edge(a, b).unwrap();
                idx.insert_edge(a, b).unwrap();
                verify_index(&idx).unwrap();
                added += 1;
            }
        }
    }

    #[test]
    fn integrity_sweep_passes_and_reports_coverage() {
        let g = gnm(20, 60, 3);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let report = check_integrity(&idx).unwrap();
        assert_eq!(report.entries, idx.total_entries());
        assert!(report.inverted_checked);

        let bare = CscIndex::build(&g, CscConfig::default().with_inverted(false)).unwrap();
        let report = check_integrity(&bare).unwrap();
        assert!(!report.inverted_checked, "nothing to mirror without inv");
        assert_eq!(report.entries, bare.total_entries());
    }

    #[test]
    fn original_graph_roundtrip() {
        let g = gnm(12, 30, 1);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        assert_eq!(idx.original_graph(), g);
    }
}
