//! Fan-out helper for the parallel write and build planes.
//!
//! Label work parallelizes across *hubs*: a wave of per-hub traversals is
//! computed concurrently against an immutable label snapshot, then the
//! results are committed in hub-rank order (see `build.rs`). The items
//! are few and heavy — far below the data-parallel iterator cutoff — so
//! the fan-out here spawns one scope task per worker and lets the tasks
//! pull indexes from a shared counter, which load-balances skewed hub
//! cones without caring which pool worker runs what.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `0..len` with up to `width` concurrent workers, returning
/// the results in index order. `width <= 1` (or a single item) runs inline
/// on the caller. A panic inside `f` propagates to the caller with its
/// original payload once all in-flight items have settled, so the
/// engine's `catch_unwind` degradation path sees worker faults exactly
/// like sequential ones.
pub(crate) fn par_map_indexed<T, F>(width: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if width <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    rayon::scope(|s| {
        for _ in 0..width.min(len) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= len {
                    break;
                }
                let value = f(i);
                let prev = slots[i].lock().expect("slot lock poisoned").replace(value);
                debug_assert!(prev.is_none(), "each index is claimed exactly once");
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("scope settled every claimed index")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_at_any_width() {
        for width in [0, 1, 2, 4, 9] {
            let out = par_map_indexed(width, 23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(par_map_indexed(4, 0, |i| i).is_empty());
    }

    #[test]
    fn panics_propagate_from_workers() {
        let caught = std::panic::catch_unwind(|| {
            par_map_indexed(3, 16, |i| {
                if i == 7 {
                    panic!("hub 7 exploded");
                }
                i
            })
        });
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("hub 7 exploded"), "got {msg:?}");
    }
}
