//! Index health reporting and the rebuild (rejuvenation) policy.
//!
//! Dynamic maintenance preserves *correctness* but not *quality*: every
//! added vertex lands at the bottom of the rank order, deletions leave
//! redundant entries behind (under the default redundancy strategy), and
//! incremental snapshots accumulate relocation dead space. A long-lived
//! index therefore drifts away from the one a fresh build over the same
//! graph would produce — and with it query latency and memory.
//!
//! [`IndexHealth`] quantifies that drift against the *baseline* captured
//! at the last full (re)build, and [`RebuildPolicy`] decides when drift
//! has gone far enough to be worth a rejuvenation pass (see
//! `csc_core::maintain`). The policy thresholds are integer percentages so
//! the configuration stays `Copy + Eq` and serializes exactly.

use std::fmt;

/// Why a rejuvenation pass started.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebuildReason {
    /// Total label entries grew past
    /// [`RebuildPolicy::max_growth_percent`] of the baseline.
    LabelGrowth,
    /// The served arena's dead space crossed
    /// [`RebuildPolicy::max_dead_percent`].
    DeadSpace,
    /// More than [`RebuildPolicy::max_churned_vertices`] vertices were
    /// appended (bottom-ranked) since the baseline.
    Churn,
    /// An explicit caller request.
    Manual,
    /// The tracked heap footprint breached
    /// [`CscConfig::memory_budget`](crate::CscConfig::memory_budget): the
    /// engine forces a compacting rebuild before entering the
    /// `Saturated` state.
    Memory,
}

impl fmt::Display for RebuildReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RebuildReason::LabelGrowth => "label growth over baseline",
            RebuildReason::DeadSpace => "arena dead space",
            RebuildReason::Churn => "bottom-ranked churn vertices",
            RebuildReason::Manual => "manual trigger",
            RebuildReason::Memory => "memory budget breach",
        })
    }
}

/// When the maintenance plane should rejuvenate (rebuild) the index.
///
/// Every threshold uses `0` for *disabled*; the policy as a whole only
/// fires automatically when [`auto`](RebuildPolicy::auto) is set —
/// otherwise the thresholds still drive [`IndexHealth::triggered`] (so
/// operators can alert on them) but nothing rebuilds without an explicit
/// `rejuvenate` call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RebuildPolicy {
    /// Rebuild when `total_entries * 100 / baseline_entries` meets or
    /// exceeds this. Must exceed 100 when enabled (100 would re-trigger
    /// immediately after every rebuild). `0` disables. Default `200`
    /// (entries doubled).
    pub max_growth_percent: u32,
    /// Rebuild when the served arena's dead space reaches this percent of
    /// the arena. Must be `<= 100`; `0` disables. Default `0`: incremental
    /// publication already compacts past
    /// [`MAX_DEAD_FRACTION`](crate::snapshot::MAX_DEAD_FRACTION), so this
    /// is an opt-in tighter bound.
    pub max_dead_percent: u32,
    /// Rebuild when this many vertices have been appended (all of them
    /// bottom-ranked) since the baseline. `0` disables. Default `0`.
    pub max_churned_vertices: u32,
    /// Rebuild automatically from the write path when a threshold trips.
    /// Off by default: callers opt in to background rebuild work.
    pub auto: bool,
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        RebuildPolicy {
            max_growth_percent: 200,
            max_dead_percent: 0,
            max_churned_vertices: 0,
            auto: false,
        }
    }
}

impl RebuildPolicy {
    /// A policy that never triggers on its own: rejuvenation only via the
    /// explicit call.
    pub fn manual_only() -> Self {
        RebuildPolicy {
            max_growth_percent: 0,
            max_dead_percent: 0,
            max_churned_vertices: 0,
            auto: false,
        }
    }

    /// Checks the thresholds for internal consistency (degenerate values
    /// would either never fire or fire on every update).
    pub fn validate(&self) -> Result<(), String> {
        if self.max_growth_percent != 0 && self.max_growth_percent <= 100 {
            return Err(format!(
                "rebuild max_growth_percent must be 0 (disabled) or > 100, got {}",
                self.max_growth_percent
            ));
        }
        if self.max_dead_percent > 100 {
            return Err(format!(
                "rebuild max_dead_percent must be <= 100, got {}",
                self.max_dead_percent
            ));
        }
        Ok(())
    }

    /// Builder-style: set the growth threshold.
    pub fn with_growth_percent(mut self, percent: u32) -> Self {
        self.max_growth_percent = percent;
        self
    }

    /// Builder-style: set the dead-space threshold.
    pub fn with_dead_percent(mut self, percent: u32) -> Self {
        self.max_dead_percent = percent;
        self
    }

    /// Builder-style: set the churned-vertex threshold.
    pub fn with_churned_vertices(mut self, count: u32) -> Self {
        self.max_churned_vertices = count;
        self
    }

    /// Builder-style: toggle automatic rejuvenation from the write path.
    pub fn with_auto(mut self, auto: bool) -> Self {
        self.auto = auto;
        self
    }
}

/// The drift baseline captured at build / load / rejuvenation time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthBaseline {
    /// Total label entries right after the (re)build.
    pub entries: usize,
    /// In-side entries right after the (re)build.
    pub in_entries: usize,
    /// Out-side entries right after the (re)build.
    pub out_entries: usize,
    /// Original-graph vertices covered by the (re)build's rank order;
    /// vertices appended later are bottom-ranked churn.
    pub vertices: usize,
    /// Rejuvenation passes completed over the index's lifetime.
    pub rejuvenations: u32,
}

/// A point-in-time drift report for an index or snapshot.
///
/// Produced by `CscIndex::health`, `SnapshotIndex::health`, and (with the
/// maintenance-plane fields filled in) `ConcurrentIndex::health`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexHealth {
    /// Label entries currently stored.
    pub total_entries: usize,
    /// In-side entries currently stored.
    pub in_entries: usize,
    /// Out-side entries currently stored.
    pub out_entries: usize,
    /// Total entries at the baseline (post-build / post-rejuvenation).
    pub baseline_entries: usize,
    /// In-side entries at the baseline.
    pub baseline_in_entries: usize,
    /// Out-side entries at the baseline.
    pub baseline_out_entries: usize,
    /// `total_entries * 100 / baseline_entries` (`100` = exactly at
    /// baseline; saturates at `u32::MAX`; `100` when the baseline is 0).
    pub growth_percent: u32,
    /// Dead fraction of the measured arena, `0.0..=1.0`. Always `0.0` for
    /// the live (nested-list) store; meaningful for frozen snapshots.
    pub dead_fraction: f64,
    /// Vertices appended — all bottom-ranked — since the baseline.
    pub churned_vertices: usize,
    /// Rejuvenation passes completed so far.
    pub rejuvenations: u32,
    /// Updates sitting in the write-ahead replay queue (non-zero only
    /// while a rejuvenation is in flight).
    pub replay_queued: usize,
    /// `true` while a rejuvenation rebuild/replay is in flight.
    pub rebuilding: bool,
    /// Writes refused by [`OverloadPolicy::Reject`](crate::OverloadPolicy)
    /// at the high watermark, over the engine's lifetime.
    pub writes_rejected: u64,
    /// Queued updates dropped by
    /// [`OverloadPolicy::ShedOldest`](crate::OverloadPolicy) — the loud
    /// record of lossy admission.
    pub writes_shed: u64,
    /// Tracked heap footprint in bytes (label lists + traversal
    /// workspaces + replay queue) as of the last enforcement pass; `0`
    /// until a memory budget is configured.
    pub memory_bytes: usize,
    /// `true` while the engine refuses writes because the footprint
    /// exceeds [`CscConfig::memory_budget`](crate::CscConfig::memory_budget)
    /// even after forced compaction. Readers are unaffected.
    pub saturated: bool,
    /// `true` after persistent I/O failure forced the durability plane
    /// into in-memory-only mode: the engine keeps serving and accepting
    /// writes, but nothing is logged or checkpointed until an operator
    /// re-attaches durability.
    pub durability_degraded: bool,
    /// Torn-tail bytes dropped from the WAL by recoveries over this
    /// engine's lifetime (each drop was an unacknowledged-or-unsynced
    /// suffix; surfacing the count keeps the loss visible).
    pub wal_truncated_bytes: u64,
}

impl IndexHealth {
    /// Computes the growth percentage for the report. An empty baseline
    /// with stored entries is *infinite* growth (saturated) — an index
    /// built over an empty graph that later grows must still be able to
    /// trip the growth threshold — while empty-on-empty is flat 100%.
    pub(crate) fn growth(total: usize, baseline: usize) -> u32 {
        match total.saturating_mul(100).checked_div(baseline) {
            Some(pct) => u32::try_from(pct).unwrap_or(u32::MAX),
            None if total == 0 => 100,
            None => u32::MAX,
        }
    }

    /// Which policy threshold (if any) this report trips, checked in
    /// growth → dead-space → churn order. Ignores
    /// [`RebuildPolicy::auto`] — this is the *measurement*; whether
    /// anything acts on it is the caller's business.
    pub fn triggered(&self, policy: &RebuildPolicy) -> Option<RebuildReason> {
        if policy.max_growth_percent != 0 && self.growth_percent >= policy.max_growth_percent {
            return Some(RebuildReason::LabelGrowth);
        }
        if policy.max_dead_percent != 0
            && self.dead_fraction * 100.0 >= f64::from(policy.max_dead_percent)
        {
            return Some(RebuildReason::DeadSpace);
        }
        if policy.max_churned_vertices != 0
            && self.churned_vertices >= policy.max_churned_vertices as usize
        {
            return Some(RebuildReason::Churn);
        }
        None
    }
}

impl fmt::Display for IndexHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "entries {} (in {} / out {}) vs baseline {} ({}%), dead {:.1}%, \
             churned {}, rejuvenations {}, replay queue {}{}",
            self.total_entries,
            self.in_entries,
            self.out_entries,
            self.baseline_entries,
            self.growth_percent,
            self.dead_fraction * 100.0,
            self.churned_vertices,
            self.rejuvenations,
            self.replay_queued,
            if self.rebuilding { " [rebuilding]" } else { "" },
        )?;
        if self.writes_rejected > 0 || self.writes_shed > 0 {
            write!(
                f,
                ", rejected {}, shed {}",
                self.writes_rejected, self.writes_shed
            )?;
        }
        if self.saturated {
            write!(f, " [saturated at {} bytes]", self.memory_bytes)?;
        }
        if self.durability_degraded {
            f.write_str(" [durability degraded: in-memory only]")?;
        }
        if self.wal_truncated_bytes > 0 {
            write!(f, " [wal dropped {} torn bytes]", self.wal_truncated_bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn health(growth_percent: u32, dead: f64, churned: usize) -> IndexHealth {
        IndexHealth {
            total_entries: 0,
            in_entries: 0,
            out_entries: 0,
            baseline_entries: 0,
            baseline_in_entries: 0,
            baseline_out_entries: 0,
            growth_percent,
            dead_fraction: dead,
            churned_vertices: churned,
            rejuvenations: 0,
            replay_queued: 0,
            rebuilding: false,
            writes_rejected: 0,
            writes_shed: 0,
            memory_bytes: 0,
            saturated: false,
            durability_degraded: false,
            wal_truncated_bytes: 0,
        }
    }

    #[test]
    fn growth_percent_math() {
        assert_eq!(IndexHealth::growth(150, 100), 150);
        assert_eq!(IndexHealth::growth(99, 100), 99);
        assert_eq!(IndexHealth::growth(0, 0), 100, "empty on empty is flat");
        assert_eq!(
            IndexHealth::growth(5, 0),
            u32::MAX,
            "growth from an empty baseline is infinite, not hidden"
        );
        assert_eq!(IndexHealth::growth(usize::MAX, 1), u32::MAX, "saturates");
    }

    #[test]
    fn trigger_order_and_disabling() {
        let p = RebuildPolicy {
            max_growth_percent: 150,
            max_dead_percent: 40,
            max_churned_vertices: 10,
            auto: false,
        };
        assert_eq!(
            health(150, 0.5, 20).triggered(&p),
            Some(RebuildReason::LabelGrowth),
            "growth checked first"
        );
        assert_eq!(
            health(149, 0.4, 20).triggered(&p),
            Some(RebuildReason::DeadSpace)
        );
        assert_eq!(
            health(149, 0.39, 10).triggered(&p),
            Some(RebuildReason::Churn)
        );
        assert_eq!(health(149, 0.39, 9).triggered(&p), None);
        assert_eq!(
            health(u32::MAX, 1.0, usize::MAX).triggered(&RebuildPolicy::manual_only()),
            None,
            "disabled thresholds never fire"
        );
    }

    #[test]
    fn policy_validation() {
        assert!(RebuildPolicy::default().validate().is_ok());
        assert!(RebuildPolicy::manual_only().validate().is_ok());
        assert!(RebuildPolicy::default()
            .with_growth_percent(100)
            .validate()
            .is_err());
        assert!(RebuildPolicy::default()
            .with_growth_percent(101)
            .validate()
            .is_ok());
        assert!(RebuildPolicy::default()
            .with_dead_percent(101)
            .validate()
            .is_err());
        assert!(RebuildPolicy::default()
            .with_dead_percent(100)
            .validate()
            .is_ok());
    }

    #[test]
    fn display_mentions_the_load_bearing_numbers() {
        let mut h = health(123, 0.25, 7);
        h.total_entries = 41;
        h.rebuilding = true;
        let s = h.to_string();
        assert!(s.contains("123%") && s.contains("25.0%") && s.contains("[rebuilding]"));
    }
}
