//! Versioned binary serialization for [`CscIndex`].
//!
//! Persisting the index avoids the (potentially hours-long at paper scale)
//! rebuild on restart. The format stores the original edge list, the rank
//! table, the configuration, and every label list verbatim; the inverted
//! indexes are reconstructed on load (they are derived data and compress
//! poorly).
//!
//! Layout (little-endian):
//!
//! ```text
//! magic    "CSCIDX\x03\n"                       8 bytes
//! n        original vertex count                u32
//! m        original edge count                  u64
//! edges    (u32, u32) * m
//! ranks    vertex_at[rank] for 2n ranks         u32 * 2n
//! config   order tag + seed, strategy, inverted,
//!          snapshot refresh interval            u8, u64, u8, u8, u32
//! rebuild  growth %, dead %, churned vertices,
//!          auto flag                            u32, u32, u32, u8
//! baseline entries, in entries, out entries,
//!          vertices, rejuvenations              u64, u64, u64, u32, u32
//! labels   per bipartite vertex: in-len u32, in entries u64*,
//!          out-len u32, out entries u64*
//! ```
//!
//! The rank table is persisted verbatim — after a rejuvenation it is the
//! *recomputed* order, not a derivable one — and the health baseline
//! rides along so a reloaded index keeps measuring drift from its last
//! rebuild, not from the load.
//!
//! (Format `\x02` predates the rebuild policy and health baseline,
//! `\x01` the snapshot refresh interval; there are no persisted older
//! indexes to migrate, so both are rejected with a version message.)

use crate::build::CoupleBfs;
use crate::config::{CscConfig, UpdateStrategy};
use crate::error::CscError;
use crate::health::{HealthBaseline, RebuildPolicy};
use crate::index::CscIndex;
use crate::invert::InvertedIndex;
use crate::stats::IndexStats;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use csc_graph::bipartite::BipartiteGraph;
use csc_graph::{DiGraph, OrderingStrategy, RankTable, VertexId};
use csc_labeling::{LabelEntry, LabelSide, Labels};

const MAGIC: &[u8; 8] = b"CSCIDX\x03\n";

fn order_tag(o: OrderingStrategy) -> (u8, u64) {
    match o {
        OrderingStrategy::Degree => (0, 0),
        OrderingStrategy::DegreeProduct => (1, 0),
        OrderingStrategy::Identity => (2, 0),
        OrderingStrategy::Random(seed) => (3, seed),
    }
}

fn order_from_tag(tag: u8, seed: u64) -> Result<OrderingStrategy, CscError> {
    Ok(match tag {
        0 => OrderingStrategy::Degree,
        1 => OrderingStrategy::DegreeProduct,
        2 => OrderingStrategy::Identity,
        3 => OrderingStrategy::Random(seed),
        _ => return Err(CscError::Serial(format!("unknown ordering tag {tag}"))),
    })
}

impl CscIndex {
    /// Serializes the index to a byte buffer.
    ///
    /// # Errors
    ///
    /// Fails on a poisoned index — persisting a known-inconsistent index
    /// would just defer the corruption to a future process.
    pub fn to_bytes(&self) -> Result<Bytes, CscError> {
        self.check_ready()?;
        let n = self.original_vertex_count();
        let m = self.original_edge_count();
        let two_n = 2 * n;
        let mut buf = BytesMut::with_capacity(64 + m * 8 + two_n * 4 + self.total_entries() * 9);
        buf.put_slice(MAGIC);
        buf.put_u32_le(n as u32);
        buf.put_u64_le(m as u64);
        for (u, v) in self.original_edges() {
            buf.put_u32_le(u.0);
            buf.put_u32_le(v.0);
        }
        for rank in 0..two_n as u32 {
            buf.put_u32_le(self.ranks.vertex_at_rank(rank).0);
        }
        let (tag, seed) = order_tag(self.config.order);
        buf.put_u8(tag);
        buf.put_u64_le(seed);
        buf.put_u8(match self.config.update_strategy {
            UpdateStrategy::Redundancy => 0,
            UpdateStrategy::Minimality => 1,
        });
        buf.put_u8(self.config.maintain_inverted as u8);
        buf.put_u32_le(
            u32::try_from(self.config.snapshot_every)
                .map_err(|_| CscError::Serial("snapshot_every exceeds u32".into()))?,
        );
        buf.put_u32_le(self.config.rebuild.max_growth_percent);
        buf.put_u32_le(self.config.rebuild.max_dead_percent);
        buf.put_u32_le(self.config.rebuild.max_churned_vertices);
        buf.put_u8(self.config.rebuild.auto as u8);
        buf.put_u64_le(self.baseline.entries as u64);
        buf.put_u64_le(self.baseline.in_entries as u64);
        buf.put_u64_le(self.baseline.out_entries as u64);
        buf.put_u32_le(
            u32::try_from(self.baseline.vertices)
                .map_err(|_| CscError::Serial("baseline vertex count exceeds u32".into()))?,
        );
        buf.put_u32_le(self.baseline.rejuvenations);
        for v in 0..two_n as u32 {
            let v = VertexId(v);
            for side in [LabelSide::In, LabelSide::Out] {
                let list = self.labels.side_of(v, side);
                buf.put_u32_le(list.len() as u32);
                for e in list {
                    buf.put_u64_le(e.raw());
                }
            }
        }
        Ok(buf.freeze())
    }

    /// Deserializes an index from bytes produced by
    /// [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<CscIndex, CscError> {
        let mut buf = bytes;
        let need = |buf: &[u8], n: usize, what: &str| -> Result<(), CscError> {
            if buf.remaining() < n {
                Err(CscError::Serial(format!(
                    "truncated input while reading {what}"
                )))
            } else {
                Ok(())
            }
        };
        need(buf, 8, "magic")?;
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            if magic[..6] == MAGIC[..6] {
                return Err(CscError::Serial(format!(
                    "unsupported CSC index format version {} (this build reads {})",
                    magic[6], MAGIC[6]
                )));
            }
            return Err(CscError::Serial("bad magic (not a CSC index)".into()));
        }
        need(buf, 12, "header")?;
        let n = buf.get_u32_le() as usize;
        let m = buf.get_u64_le() as usize;
        need(buf, m * 8, "edge list")?;
        let mut g = DiGraph::new(n);
        for _ in 0..m {
            let u = buf.get_u32_le();
            let v = buf.get_u32_le();
            g.try_add_edge(VertexId(u), VertexId(v))
                .map_err(|e| CscError::Serial(format!("bad edge: {e}")))?;
        }
        let two_n = 2 * n;
        need(buf, two_n * 4, "rank table")?;
        let mut order = Vec::with_capacity(two_n);
        for _ in 0..two_n {
            order.push(VertexId(buf.get_u32_le()));
        }
        need(buf, 15, "config")?;
        let tag = buf.get_u8();
        let seed = buf.get_u64_le();
        let strategy = match buf.get_u8() {
            0 => UpdateStrategy::Redundancy,
            1 => UpdateStrategy::Minimality,
            other => return Err(CscError::Serial(format!("unknown update strategy {other}"))),
        };
        let maintain_inverted = buf.get_u8() != 0;
        let snapshot_every = buf.get_u32_le() as usize;
        need(buf, 13, "rebuild policy")?;
        let rebuild = RebuildPolicy {
            max_growth_percent: buf.get_u32_le(),
            max_dead_percent: buf.get_u32_le(),
            max_churned_vertices: buf.get_u32_le(),
            auto: buf.get_u8() != 0,
        };
        let config = CscConfig {
            order: order_from_tag(tag, seed)?,
            update_strategy: strategy,
            maintain_inverted,
            snapshot_every,
            rebuild,
        };
        config.validate()?;
        need(buf, 32, "health baseline")?;
        let baseline = HealthBaseline {
            entries: buf.get_u64_le() as usize,
            in_entries: buf.get_u64_le() as usize,
            out_entries: buf.get_u64_le() as usize,
            vertices: buf.get_u32_le() as usize,
            rejuvenations: buf.get_u32_le(),
        };

        let mut labels = Labels::new(two_n);
        for v in 0..two_n as u32 {
            let v = VertexId(v);
            for side in [LabelSide::In, LabelSide::Out] {
                need(buf, 4, "label length")?;
                let len = buf.get_u32_le() as usize;
                need(buf, len * 8, "label entries")?;
                let mut prev: Option<u32> = None;
                for _ in 0..len {
                    let e = LabelEntry::from_raw(buf.get_u64_le());
                    if prev.is_some_and(|p| p >= e.hub_rank()) {
                        return Err(CscError::Serial(format!(
                            "label list of vertex {v} is not sorted"
                        )));
                    }
                    prev = Some(e.hub_rank());
                    labels.append(v, side, e);
                }
            }
        }
        if buf.remaining() != 0 {
            return Err(CscError::Serial(format!(
                "{} trailing bytes after index",
                buf.remaining()
            )));
        }

        let ranks = if order.is_empty() {
            RankTable::from_order(&[])
        } else {
            RankTable::from_order(&order)
        };
        let gb = BipartiteGraph::from_graph(&g);
        let inverted = maintain_inverted.then(|| InvertedIndex::from_labels(&labels));
        Ok(CscIndex {
            gb,
            ranks,
            labels,
            inverted,
            config,
            stats: IndexStats::default(),
            baseline,
            poisoned: false,
            workspace: CoupleBfs::new(two_n),
            sweeps: csc_graph::TraversalWorkspace::new(two_n),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_index;
    use csc_graph::fixtures::figure2;
    use csc_graph::generators::gnm;

    #[test]
    fn roundtrip_static_index() {
        let g = figure2();
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let bytes = idx.to_bytes().unwrap();
        let back = CscIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.labels(), idx.labels());
        assert_eq!(back.ranks(), idx.ranks());
        assert_eq!(back.config(), idx.config());
        assert_eq!(back.original_graph(), g);
        verify_index(&back).unwrap();
    }

    #[test]
    fn roundtrip_after_updates_preserves_behaviour() {
        let g = gnm(20, 60, 5);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let victims: Vec<_> = idx.original_edges().take(4).collect();
        for (u, v) in &victims {
            idx.remove_edge(*u, *v).unwrap();
        }
        for (u, v) in &victims {
            idx.insert_edge(*u, *v).unwrap();
        }
        let bytes = idx.to_bytes().unwrap();
        let back = CscIndex::from_bytes(&bytes).unwrap();
        for v in 0..20u32 {
            assert_eq!(back.query(VertexId(v)), idx.query(VertexId(v)));
        }
        // The restored index remains maintainable.
        let mut back = back;
        let (u, v) = victims[0];
        back.remove_edge(u, v).unwrap();
        verify_index(&back).unwrap();
    }

    #[test]
    fn roundtrip_churned_then_rejuvenated_index() {
        use crate::health::{RebuildPolicy, RebuildReason};
        use crate::maintain::MaintenanceEngine;

        let g = gnm(20, 60, 9);
        let config = CscConfig::default().with_rebuild_policy(
            RebuildPolicy::default()
                .with_growth_percent(180)
                .with_churned_vertices(50)
                .with_auto(true),
        );
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, config).unwrap());
        for k in 0..3u32 {
            let nv = engine.add_vertex();
            engine.insert_edge(VertexId(k), nv).unwrap().unwrap();
            engine.insert_edge(nv, VertexId(k + 4)).unwrap().unwrap();
        }
        engine.rejuvenate(RebuildReason::Manual).unwrap();
        // Post-rejuvenation churn, so the persisted baseline differs from
        // the current state — a real mid-life index.
        let nv = engine.add_vertex();
        engine.insert_edge(VertexId(0), nv).unwrap().unwrap();
        let idx = engine.into_index();

        let bytes = idx.to_bytes().unwrap();
        let back = CscIndex::from_bytes(&bytes).unwrap();
        // The recomputed (post-rejuvenation) ranks and the re-anchored
        // baseline both survive the round trip.
        assert_eq!(back.ranks(), idx.ranks());
        assert_eq!(back.baseline(), idx.baseline());
        assert_eq!(back.baseline().rejuvenations, 1);
        assert_eq!(back.config(), idx.config());
        assert_eq!(back.health(), idx.health());
        assert_eq!(back.labels(), idx.labels());
        for v in 0..back.original_vertex_count() as u32 {
            assert_eq!(back.query(VertexId(v)), idx.query(VertexId(v)));
        }
        verify_index(&back).unwrap();
    }

    #[test]
    fn rejects_old_format_versions() {
        let idx = CscIndex::build(&figure2(), CscConfig::default()).unwrap();
        let mut bytes = idx.to_bytes().unwrap().to_vec();
        bytes[6] = 2; // the PR-2 era format
        let err = CscIndex::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version 2"), "{err}");
        bytes[6] = 1;
        assert!(CscIndex::from_bytes(&bytes)
            .unwrap_err()
            .to_string()
            .contains("version 1"));
    }

    #[test]
    fn load_validates_the_configuration() {
        let idx = CscIndex::build(&figure2(), CscConfig::default()).unwrap();
        let mut bytes = idx.to_bytes().unwrap().to_vec();
        // Patch rebuild.max_growth_percent (first field after the 15-byte
        // config block) to a degenerate 50%.
        let off =
            8 + 4 + 8 + idx.original_edge_count() * 8 + 2 * idx.original_vertex_count() * 4 + 15;
        bytes[off..off + 4].copy_from_slice(&50u32.to_le_bytes());
        assert!(matches!(
            CscIndex::from_bytes(&bytes),
            Err(CscError::Config(_))
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            CscIndex::from_bytes(b"not an index"),
            Err(CscError::Serial(_))
        ));
        assert!(matches!(
            CscIndex::from_bytes(b""),
            Err(CscError::Serial(_))
        ));
    }

    #[test]
    fn rejects_truncation_and_trailing_bytes() {
        let g = figure2();
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let bytes = idx.to_bytes().unwrap();
        for cut in [9, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    CscIndex::from_bytes(&bytes[..cut]),
                    Err(CscError::Serial(_))
                ),
                "cut at {cut} must fail"
            );
        }
        let mut extended = bytes.to_vec();
        extended.push(0);
        assert!(matches!(
            CscIndex::from_bytes(&extended),
            Err(CscError::Serial(_))
        ));
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = DiGraph::new(0);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let bytes = idx.to_bytes().unwrap();
        let back = CscIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.original_vertex_count(), 0);
    }
}
