//! Versioned, checksummed binary serialization for [`CscIndex`].
//!
//! Persisting the index avoids the (potentially hours-long at paper scale)
//! rebuild on restart, and — since PR 6 — is the checkpoint format of the
//! durability plane, so the decoder must never trust the bytes: a
//! truncated or bit-flipped file has to come back as a precise
//! [`CscError::Corrupt`], not as garbage labels, a panic, or an attempted
//! multi-gigabyte allocation.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic      "CSCIDX\x04\n"                     8 bytes
//! total_len  whole-file length, magic included  u64
//! sections, in fixed order, each framed as:
//!   tag      section id                         u8
//!   len      payload length                     u64
//!   crc      CRC32 of the payload               u32
//!   payload
//! ```
//!
//! | tag | section  | payload |
//! |-----|----------|---------|
//! | 1   | header   | n `u32`, m `u64` |
//! | 2   | edges    | (`u32`, `u32`) × m |
//! | 3   | ranks    | `vertex_at[rank]` `u32` × 2n |
//! | 4   | config   | ordering, update strategy, inverted flag, snapshot interval, rebuild policy, durability knobs, parallelism knobs, resource guards |
//! | 5   | baseline | entries ×3 `u64`, vertices `u32`, rejuvenations `u32` |
//! | 6   | labels   | per bipartite vertex and side: len `u32`, entries `u64` × len |
//!
//! Decoding is defensive in three layers: `total_len` catches truncation
//! and trailing bytes before any section is touched, every claimed
//! section length is checked against the remaining buffer *before*
//! allocating, and every payload must match its CRC before it is parsed.
//! A corrupted file therefore reports *which* section is damaged.
//!
//! The rank table is persisted verbatim — after a rejuvenation it is the
//! *recomputed* order, not a derivable one — and the health baseline
//! rides along so a reloaded index keeps measuring drift from its last
//! rebuild, not from the load. The inverted indexes are reconstructed on
//! load (derived data, compresses poorly).
//!
//! (Format `\x03` predates the section framing and checksums, `\x02` the
//! rebuild policy and health baseline, `\x01` the snapshot refresh
//! interval; there are no persisted older indexes to migrate, so all are
//! rejected with a version message.)

use crate::build::CoupleBfs;
use crate::config::{
    CscConfig, DurabilityConfig, FsyncPolicy, OverloadConfig, OverloadPolicy, ParallelismConfig,
    UpdateStrategy,
};
use crate::crc::crc32;
use crate::error::CscError;
use crate::guard::RetryPolicy;
use crate::health::{HealthBaseline, RebuildPolicy};
use crate::index::CscIndex;
use crate::invert::InvertedIndex;
use crate::stats::IndexStats;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use csc_graph::bipartite::BipartiteGraph;
use csc_graph::{DiGraph, OrderingStrategy, RankTable, VertexId};
use csc_labeling::{LabelEntry, LabelSide, Labels};
use std::time::Duration;

const MAGIC: &[u8; 8] = b"CSCIDX\x04\n";

const TAG_HEADER: u8 = 1;
const TAG_EDGES: u8 = 2;
const TAG_RANKS: u8 = 3;
const TAG_CONFIG: u8 = 4;
const TAG_BASELINE: u8 = 5;
const TAG_LABELS: u8 = 6;

/// Encodes the ordering strategy as `(tag, seed, samples)`; the seed slot
/// is shared by `Random` and `CoverageSampling`, and `samples` rides in
/// the trailing config field new writers always emit.
fn order_tag(o: OrderingStrategy) -> (u8, u64, u32) {
    match o {
        OrderingStrategy::Degree => (0, 0, 0),
        OrderingStrategy::DegreeProduct => (1, 0, 0),
        OrderingStrategy::Identity => (2, 0, 0),
        OrderingStrategy::Random(seed) => (3, seed, 0),
        OrderingStrategy::CoverageSampling {
            seed,
            samples_per_log_n,
        } => (4, seed, samples_per_log_n),
    }
}

fn order_from_tag(tag: u8, seed: u64, samples: u32) -> Result<OrderingStrategy, CscError> {
    Ok(match tag {
        0 => OrderingStrategy::Degree,
        1 => OrderingStrategy::DegreeProduct,
        2 => OrderingStrategy::Identity,
        3 => OrderingStrategy::Random(seed),
        4 => OrderingStrategy::CoverageSampling {
            seed,
            samples_per_log_n: samples,
        },
        _ => return Err(CscError::Serial(format!("unknown ordering tag {tag}"))),
    })
}

fn fsync_tag(f: FsyncPolicy) -> (u8, u32) {
    match f {
        FsyncPolicy::Always => (0, 0),
        FsyncPolicy::Every(n) => (1, n),
        FsyncPolicy::Never => (2, 0),
    }
}

fn fsync_from_tag(tag: u8, arg: u32) -> Result<FsyncPolicy, CscError> {
    Ok(match tag {
        0 => FsyncPolicy::Always,
        1 => FsyncPolicy::Every(arg),
        2 => FsyncPolicy::Never,
        _ => return Err(CscError::Serial(format!("unknown fsync policy tag {tag}"))),
    })
}

/// Appends one framed section: tag, length, payload CRC, payload.
fn put_section(buf: &mut BytesMut, tag: u8, payload: &[u8]) {
    buf.put_u8(tag);
    buf.put_u64_le(payload.len() as u64);
    buf.put_u32_le(crc32(payload));
    buf.put_slice(payload);
}

/// Pops the next section off `rest`, insisting on `tag`, verifying the
/// length against the remaining bytes *before* touching the payload, and
/// the CRC before handing it out.
fn take_section<'a>(rest: &mut &'a [u8], tag: u8, name: &str) -> Result<&'a [u8], CscError> {
    if rest.len() < 13 {
        return Err(CscError::corrupt(
            name,
            format!("section header truncated ({} of 13 bytes)", rest.len()),
        ));
    }
    if rest[0] != tag {
        return Err(CscError::corrupt(
            name,
            format!("unexpected section tag {} (wanted {tag})", rest[0]),
        ));
    }
    let len = u64::from_le_bytes(rest[1..9].try_into().unwrap());
    let crc = u32::from_le_bytes(rest[9..13].try_into().unwrap());
    let body = &rest[13..];
    if (body.len() as u64) < len {
        return Err(CscError::corrupt(
            name,
            format!("payload truncated ({} of {len} bytes)", body.len()),
        ));
    }
    let payload = &body[..len as usize];
    if crc32(payload) != crc {
        return Err(CscError::corrupt(name, "payload crc mismatch"));
    }
    *rest = &body[len as usize..];
    Ok(payload)
}

/// `need`-style guard *inside* a CRC-verified payload: tripping means the
/// payload was internally inconsistent despite a matching checksum (a
/// writer bug or a deliberately crafted file) — still an error, never a
/// panic.
fn need(buf: &[u8], n: usize, name: &str, what: &str) -> Result<(), CscError> {
    if buf.remaining() < n {
        Err(CscError::corrupt(
            name,
            format!("payload ends inside {what}"),
        ))
    } else {
        Ok(())
    }
}

impl CscIndex {
    /// Serializes the index to a byte buffer (the checkpoint format).
    ///
    /// # Errors
    ///
    /// Fails on a poisoned index — persisting a known-inconsistent index
    /// would just defer the corruption to a future process.
    pub fn to_bytes(&self) -> Result<Bytes, CscError> {
        self.check_ready()?;
        let n = self.original_vertex_count();
        let m = self.original_edge_count();
        let two_n = 2 * n;

        let mut header = BytesMut::with_capacity(12);
        header.put_u32_le(n as u32);
        header.put_u64_le(m as u64);

        let mut edges = BytesMut::with_capacity(m * 8);
        for (u, v) in self.original_edges() {
            edges.put_u32_le(u.0);
            edges.put_u32_le(v.0);
        }

        let mut ranks = BytesMut::with_capacity(two_n * 4);
        for rank in 0..two_n as u32 {
            ranks.put_u32_le(self.ranks.vertex_at_rank(rank).0);
        }

        let mut config = BytesMut::with_capacity(51);
        let (tag, seed, samples) = order_tag(self.config.order);
        config.put_u8(tag);
        config.put_u64_le(seed);
        config.put_u8(match self.config.update_strategy {
            UpdateStrategy::Redundancy => 0,
            UpdateStrategy::Minimality => 1,
        });
        config.put_u8(self.config.maintain_inverted as u8);
        config.put_u32_le(
            u32::try_from(self.config.snapshot_every)
                .map_err(|_| CscError::Serial("snapshot_every exceeds u32".into()))?,
        );
        config.put_u32_le(self.config.rebuild.max_growth_percent);
        config.put_u32_le(self.config.rebuild.max_dead_percent);
        config.put_u32_le(self.config.rebuild.max_churned_vertices);
        config.put_u8(self.config.rebuild.auto as u8);
        let (ftag, farg) = fsync_tag(self.config.durability.fsync);
        config.put_u8(ftag);
        config.put_u32_le(farg);
        config.put_u32_le(self.config.durability.checkpoint_every);
        config.put_u32_le(self.config.durability.keep_checkpoints);
        config.put_u8(self.config.durability.check_integrity as u8);
        // Parallelism is a non-semantic runtime field: it steers how label
        // work is scheduled, never what the labels contain. It rides along
        // so a reloaded engine keeps its operator-tuned width.
        config.put_u32_le(self.config.parallelism.threads);
        config.put_u8(self.config.parallelism.deterministic as u8);
        // Trailing ordering argument (the coverage-sampling budget);
        // appended after the parallelism knobs so both older payload
        // lengths (39 and 47 bytes) still load with defaults.
        config.put_u32_le(samples);
        // Resource-guard knobs (memory budget, backpressure, I/O retry),
        // appended as one 37-byte group after the ordering argument;
        // payloads of 39/47/51 bytes predate them and load with defaults.
        config.put_u64_le(self.config.memory_budget as u64);
        config.put_u8(match self.config.overload.policy {
            OverloadPolicy::Block => 0,
            OverloadPolicy::Reject => 1,
            OverloadPolicy::ShedOldest => 2,
        });
        config.put_u32_le(self.config.overload.high_watermark);
        config.put_u32_le(self.config.overload.low_watermark);
        config.put_u32_le(self.config.durability.io_retry.max_attempts);
        config.put_u64_le(
            u64::try_from(self.config.durability.io_retry.base.as_micros())
                .map_err(|_| CscError::Serial("io_retry.base exceeds u64 microseconds".into()))?,
        );
        config.put_u64_le(
            u64::try_from(self.config.durability.io_retry.cap.as_micros())
                .map_err(|_| CscError::Serial("io_retry.cap exceeds u64 microseconds".into()))?,
        );

        let mut baseline = BytesMut::with_capacity(32);
        baseline.put_u64_le(self.baseline.entries as u64);
        baseline.put_u64_le(self.baseline.in_entries as u64);
        baseline.put_u64_le(self.baseline.out_entries as u64);
        baseline.put_u32_le(
            u32::try_from(self.baseline.vertices)
                .map_err(|_| CscError::Serial("baseline vertex count exceeds u32".into()))?,
        );
        baseline.put_u32_le(self.baseline.rejuvenations);

        let mut labels = BytesMut::with_capacity(two_n * 8 + self.total_entries() * 8);
        for v in 0..two_n as u32 {
            let v = VertexId(v);
            for side in [LabelSide::In, LabelSide::Out] {
                let list = self.labels.side_of(v, side);
                labels.put_u32_le(list.len() as u32);
                for e in list {
                    labels.put_u64_le(e.raw());
                }
            }
        }

        let sections: [(u8, &[u8]); 6] = [
            (TAG_HEADER, &header),
            (TAG_EDGES, &edges),
            (TAG_RANKS, &ranks),
            (TAG_CONFIG, &config),
            (TAG_BASELINE, &baseline),
            (TAG_LABELS, &labels),
        ];
        let total: usize = 16 + sections.iter().map(|(_, p)| 13 + p.len()).sum::<usize>();
        let mut buf = BytesMut::with_capacity(total);
        buf.put_slice(MAGIC);
        buf.put_u64_le(total as u64);
        for (tag, payload) in sections {
            put_section(&mut buf, tag, payload);
        }
        debug_assert_eq!(buf.len(), total);
        Ok(buf.freeze())
    }

    /// Deserializes an index from bytes produced by
    /// [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// * [`CscError::Corrupt`] — truncation, framing damage, or a CRC
    ///   mismatch, naming the damaged section. This is the checkpoint
    ///   loader's signal to fall back to an older generation.
    /// * [`CscError::Serial`] — not a CSC index at all, an unsupported
    ///   format version, or an unknown enum value.
    /// * [`CscError::Config`] — the stored configuration fails
    ///   [`CscConfig::validate`].
    pub fn from_bytes(bytes: &[u8]) -> Result<CscIndex, CscError> {
        if bytes.len() < 8 {
            return Err(CscError::corrupt(
                "framing",
                format!("file truncated before magic ({} bytes)", bytes.len()),
            ));
        }
        if &bytes[..8] != MAGIC {
            if bytes[..6] == MAGIC[..6] {
                return Err(CscError::Serial(format!(
                    "unsupported CSC index format version {} (this build reads {})",
                    bytes[6], MAGIC[6]
                )));
            }
            return Err(CscError::Serial("bad magic (not a CSC index)".into()));
        }
        if bytes.len() < 16 {
            return Err(CscError::corrupt(
                "framing",
                "file truncated in length field",
            ));
        }
        let total = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        if (bytes.len() as u64) < total {
            return Err(CscError::corrupt(
                "framing",
                format!("file truncated ({} of {total} bytes)", bytes.len()),
            ));
        }
        if (bytes.len() as u64) > total {
            return Err(CscError::corrupt(
                "framing",
                format!("{} trailing bytes after index", bytes.len() as u64 - total),
            ));
        }
        let mut rest = &bytes[16..];

        let mut p = take_section(&mut rest, TAG_HEADER, "header")?;
        need(p, 12, "header", "counts")?;
        let n = p.get_u32_le() as usize;
        let m = p.get_u64_le() as usize;
        let two_n = 2 * n;

        let mut p = take_section(&mut rest, TAG_EDGES, "edges")?;
        if p.len() != m * 8 {
            return Err(CscError::corrupt(
                "edges",
                format!("payload is {} bytes, header claims {m} edges", p.len()),
            ));
        }
        let mut g = DiGraph::new(n);
        for _ in 0..m {
            let u = p.get_u32_le();
            let v = p.get_u32_le();
            g.try_add_edge(VertexId(u), VertexId(v))
                .map_err(|e| CscError::corrupt("edges", format!("bad edge: {e}")))?;
        }

        let mut p = take_section(&mut rest, TAG_RANKS, "ranks")?;
        if p.len() != two_n * 4 {
            return Err(CscError::corrupt(
                "ranks",
                format!("payload is {} bytes, expected {} ranks", p.len(), two_n),
            ));
        }
        let mut order = Vec::with_capacity(two_n);
        let mut seen = vec![false; two_n];
        for _ in 0..two_n {
            let v = p.get_u32_le() as usize;
            // A permutation check: out-of-range or duplicated entries
            // would panic deep inside the rank table / query path later.
            if v >= two_n || seen[v] {
                return Err(CscError::corrupt(
                    "ranks",
                    format!("rank table is not a permutation (vertex {v})"),
                ));
            }
            seen[v] = true;
            order.push(VertexId(v as u32));
        }

        let mut p = take_section(&mut rest, TAG_CONFIG, "config")?;
        need(p, 39, "config", "knobs")?;
        let tag = p.get_u8();
        let seed = p.get_u64_le();
        let strategy = match p.get_u8() {
            0 => UpdateStrategy::Redundancy,
            1 => UpdateStrategy::Minimality,
            other => return Err(CscError::Serial(format!("unknown update strategy {other}"))),
        };
        let maintain_inverted = p.get_u8() != 0;
        let snapshot_every = p.get_u32_le() as usize;
        let rebuild = RebuildPolicy {
            max_growth_percent: p.get_u32_le(),
            max_dead_percent: p.get_u32_le(),
            max_churned_vertices: p.get_u32_le(),
            auto: p.get_u8() != 0,
        };
        let ftag = p.get_u8();
        let farg = p.get_u32_le();
        let mut durability = DurabilityConfig {
            fsync: fsync_from_tag(ftag, farg)?,
            checkpoint_every: p.get_u32_le(),
            keep_checkpoints: p.get_u32_le(),
            check_integrity: p.get_u8() != 0,
            io_retry: RetryPolicy::DEFAULT_IO,
        };
        // The parallelism knobs were appended to the config payload after
        // its first release; a 39-byte payload predates them and means
        // "defaults" (non-semantic runtime field either way).
        let parallelism = if p.remaining() >= 5 {
            ParallelismConfig {
                threads: p.get_u32_le(),
                deterministic: p.get_u8() != 0,
            }
        } else {
            ParallelismConfig::default()
        };
        // The ordering argument trails the parallelism knobs (added with
        // ordering tag 4); shorter payloads predate every strategy that
        // needs it, so 0 is safe.
        let samples = if p.remaining() >= 4 {
            p.get_u32_le()
        } else {
            0
        };
        // The resource-guard knobs (memory budget, backpressure, I/O
        // retry) trail the ordering argument as one 37-byte group;
        // shorter payloads predate them and mean "defaults".
        let (memory_budget, overload, io_retry) = if p.remaining() >= 37 {
            let memory_budget = usize::try_from(p.get_u64_le())
                .map_err(|_| CscError::Serial("memory_budget exceeds usize".into()))?;
            let policy = match p.get_u8() {
                0 => OverloadPolicy::Block,
                1 => OverloadPolicy::Reject,
                2 => OverloadPolicy::ShedOldest,
                other => return Err(CscError::Serial(format!("unknown overload policy {other}"))),
            };
            let overload = OverloadConfig {
                policy,
                high_watermark: p.get_u32_le(),
                low_watermark: p.get_u32_le(),
            };
            let io_retry = RetryPolicy {
                max_attempts: p.get_u32_le(),
                base: Duration::from_micros(p.get_u64_le()),
                cap: Duration::from_micros(p.get_u64_le()),
            };
            (memory_budget, overload, io_retry)
        } else {
            (0, OverloadConfig::default(), RetryPolicy::DEFAULT_IO)
        };
        durability.io_retry = io_retry;
        let config = CscConfig {
            order: order_from_tag(tag, seed, samples)?,
            update_strategy: strategy,
            maintain_inverted,
            snapshot_every,
            rebuild,
            durability,
            parallelism,
            overload,
            memory_budget,
        };
        config.validate()?;

        let mut p = take_section(&mut rest, TAG_BASELINE, "baseline")?;
        need(p, 32, "baseline", "counters")?;
        let baseline = HealthBaseline {
            entries: p.get_u64_le() as usize,
            in_entries: p.get_u64_le() as usize,
            out_entries: p.get_u64_le() as usize,
            vertices: p.get_u32_le() as usize,
            rejuvenations: p.get_u32_le(),
        };

        let mut p = take_section(&mut rest, TAG_LABELS, "labels")?;
        let mut labels = Labels::new(two_n);
        for v in 0..two_n as u32 {
            let v = VertexId(v);
            for side in [LabelSide::In, LabelSide::Out] {
                need(p, 4, "labels", "list length")?;
                let len = p.get_u32_le() as usize;
                need(p, len.saturating_mul(8), "labels", "list entries")?;
                let mut prev: Option<u32> = None;
                for _ in 0..len {
                    let e = LabelEntry::from_raw(p.get_u64_le());
                    if e.hub_rank() as usize >= two_n {
                        return Err(CscError::corrupt(
                            "labels",
                            format!("vertex {v}: hub rank {} out of range", e.hub_rank()),
                        ));
                    }
                    if prev.is_some_and(|r| r >= e.hub_rank()) {
                        return Err(CscError::corrupt(
                            "labels",
                            format!("label list of vertex {v} is not sorted"),
                        ));
                    }
                    prev = Some(e.hub_rank());
                    labels.append(v, side, e);
                }
            }
        }
        if !p.is_empty() {
            return Err(CscError::corrupt(
                "labels",
                format!("{} bytes left over after the last list", p.len()),
            ));
        }
        if !rest.is_empty() {
            return Err(CscError::corrupt(
                "framing",
                format!("{} bytes of unexpected extra sections", rest.len()),
            ));
        }

        let ranks = if order.is_empty() {
            RankTable::from_order(&[])
        } else {
            RankTable::from_order(&order)
        };
        let gb = BipartiteGraph::from_graph(&g);
        let inverted = maintain_inverted.then(|| InvertedIndex::from_labels(&labels));
        Ok(CscIndex {
            gb,
            ranks,
            labels,
            inverted,
            config,
            stats: IndexStats::default(),
            baseline,
            poisoned: None,
            workspace: CoupleBfs::new(two_n),
            sweeps: csc_graph::TraversalWorkspace::new(two_n),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_index;
    use csc_graph::fixtures::figure2;
    use csc_graph::generators::gnm;

    #[test]
    fn roundtrip_static_index() {
        let g = figure2();
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let bytes = idx.to_bytes().unwrap();
        let back = CscIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.labels(), idx.labels());
        assert_eq!(back.ranks(), idx.ranks());
        assert_eq!(back.config(), idx.config());
        assert_eq!(back.original_graph(), g);
        verify_index(&back).unwrap();
    }

    #[test]
    fn roundtrip_after_updates_preserves_behaviour() {
        let g = gnm(20, 60, 5);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let victims: Vec<_> = idx.original_edges().take(4).collect();
        for (u, v) in &victims {
            idx.remove_edge(*u, *v).unwrap();
        }
        for (u, v) in &victims {
            idx.insert_edge(*u, *v).unwrap();
        }
        let bytes = idx.to_bytes().unwrap();
        let back = CscIndex::from_bytes(&bytes).unwrap();
        for v in 0..20u32 {
            assert_eq!(back.query(VertexId(v)), idx.query(VertexId(v)));
        }
        // The restored index remains maintainable.
        let mut back = back;
        let (u, v) = victims[0];
        back.remove_edge(u, v).unwrap();
        verify_index(&back).unwrap();
    }

    #[test]
    fn roundtrip_churned_then_rejuvenated_index() {
        use crate::health::{RebuildPolicy, RebuildReason};
        use crate::maintain::MaintenanceEngine;

        let g = gnm(20, 60, 9);
        let config = CscConfig::default().with_rebuild_policy(
            RebuildPolicy::default()
                .with_growth_percent(180)
                .with_churned_vertices(50)
                .with_auto(true),
        );
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, config).unwrap());
        for k in 0..3u32 {
            let nv = engine.add_vertex().unwrap();
            engine.insert_edge(VertexId(k), nv).unwrap().unwrap();
            engine.insert_edge(nv, VertexId(k + 4)).unwrap().unwrap();
        }
        engine.rejuvenate(RebuildReason::Manual).unwrap();
        // Post-rejuvenation churn, so the persisted baseline differs from
        // the current state — a real mid-life index.
        let nv = engine.add_vertex().unwrap();
        engine.insert_edge(VertexId(0), nv).unwrap().unwrap();
        let idx = engine.into_index();

        let bytes = idx.to_bytes().unwrap();
        let back = CscIndex::from_bytes(&bytes).unwrap();
        // The recomputed (post-rejuvenation) ranks and the re-anchored
        // baseline both survive the round trip.
        assert_eq!(back.ranks(), idx.ranks());
        assert_eq!(back.baseline(), idx.baseline());
        assert_eq!(back.baseline().rejuvenations, 1);
        assert_eq!(back.config(), idx.config());
        assert_eq!(back.health(), idx.health());
        assert_eq!(back.labels(), idx.labels());
        for v in 0..back.original_vertex_count() as u32 {
            assert_eq!(back.query(VertexId(v)), idx.query(VertexId(v)));
        }
        verify_index(&back).unwrap();
    }

    #[test]
    fn durability_config_survives_the_roundtrip() {
        let config = CscConfig::default()
            .with_fsync(FsyncPolicy::Every(8))
            .with_checkpoint_every(17)
            .with_integrity_check(true);
        let idx = CscIndex::build(&figure2(), config).unwrap();
        let back = CscIndex::from_bytes(&idx.to_bytes().unwrap()).unwrap();
        assert_eq!(back.config().durability, config.durability);
    }

    #[test]
    fn parallelism_config_survives_the_roundtrip() {
        let config = CscConfig::default()
            .with_threads(3)
            .with_deterministic(false);
        let idx = CscIndex::build(&figure2(), config).unwrap();
        let back = CscIndex::from_bytes(&idx.to_bytes().unwrap()).unwrap();
        assert_eq!(back.config().parallelism, config.parallelism);
        assert_eq!(back.config(), idx.config());
    }

    #[test]
    fn coverage_sampling_order_survives_the_roundtrip() {
        let config = CscConfig::default().with_order(OrderingStrategy::CoverageSampling {
            seed: 0xDEAD_BEEF,
            samples_per_log_n: 7,
        });
        let idx = CscIndex::build(&figure2(), config).unwrap();
        let back = CscIndex::from_bytes(&idx.to_bytes().unwrap()).unwrap();
        assert_eq!(back.config().order, config.order);
        assert_eq!(back.ranks(), idx.ranks());
        assert_eq!(back.labels(), idx.labels());
    }

    #[test]
    fn legacy_39_byte_config_payload_defaults_parallelism() {
        // Pre-parallelism checkpoints carried a 39-byte config payload;
        // loading one must succeed with default parallelism knobs rather
        // than erroring on the missing trailing bytes.
        let idx = CscIndex::build(&figure2(), CscConfig::default()).unwrap();
        let bytes = idx.to_bytes().unwrap().to_vec();
        let mut off = 16;
        for _ in 0..3 {
            let len = u64::from_le_bytes(bytes[off + 1..off + 9].try_into().unwrap());
            off += 13 + len as usize;
        }
        assert_eq!(bytes[off], TAG_CONFIG);
        let len = u64::from_le_bytes(bytes[off + 1..off + 9].try_into().unwrap()) as usize;
        assert_eq!(
            len, 88,
            "config payload = 42 legacy + 5 parallelism + 4 ordering-arg + 37 resource-guard bytes"
        );
        // Shrink the section to each historical length and re-frame; every
        // legacy prefix must load with defaults for the missing groups.
        for keep in [42usize, 47, 51] {
            let mut bytes = bytes.clone();
            let payload_at = off + 13;
            bytes.drain(payload_at + keep..payload_at + len);
            bytes[off + 1..off + 9].copy_from_slice(&(keep as u64).to_le_bytes());
            let crc = crc32(&bytes[payload_at..payload_at + keep]);
            bytes[off + 9..off + 13].copy_from_slice(&crc.to_le_bytes());
            let total = bytes.len() as u64;
            bytes[8..16].copy_from_slice(&total.to_le_bytes());
            let back = CscIndex::from_bytes(&bytes).unwrap();
            assert_eq!(back.config().parallelism, ParallelismConfig::default());
            assert_eq!(back.config().overload, OverloadConfig::default());
            assert_eq!(back.config().memory_budget, 0);
            assert_eq!(back.config().durability.io_retry, RetryPolicy::DEFAULT_IO);
        }
    }

    #[test]
    fn resource_guard_knobs_round_trip() {
        let config = CscConfig::default()
            .with_memory_budget(64 << 20)
            .with_overload_policy(OverloadPolicy::Reject, 512, 128)
            .with_io_retry(RetryPolicy::new(
                6,
                Duration::from_micros(750),
                Duration::from_millis(20),
            ));
        let idx = CscIndex::build(&figure2(), config).unwrap();
        let back = CscIndex::from_bytes(&idx.to_bytes().unwrap()).unwrap();
        assert_eq!(back.config(), idx.config());
        assert_eq!(back.config().memory_budget, 64 << 20);
        assert_eq!(back.config().overload.policy, OverloadPolicy::Reject);
        assert_eq!(back.config().durability.io_retry.max_attempts, 6);
    }

    #[test]
    fn rejects_old_format_versions() {
        let idx = CscIndex::build(&figure2(), CscConfig::default()).unwrap();
        let mut bytes = idx.to_bytes().unwrap().to_vec();
        bytes[6] = 3; // the PR-2..5 era format
        let err = CscIndex::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version 3"), "{err}");
        bytes[6] = 1;
        assert!(CscIndex::from_bytes(&bytes)
            .unwrap_err()
            .to_string()
            .contains("version 1"));
    }

    #[test]
    fn load_validates_the_configuration() {
        let idx = CscIndex::build(&figure2(), CscConfig::default()).unwrap();
        let mut bytes = idx.to_bytes().unwrap().to_vec();
        // Walk the framing to the config section, patch
        // rebuild.max_growth_percent (offset 15 in its payload) to a
        // degenerate 50%, and re-checksum so only validation can object.
        let mut off = 16;
        for _ in 0..3 {
            let len = u64::from_le_bytes(bytes[off + 1..off + 9].try_into().unwrap());
            off += 13 + len as usize;
        }
        assert_eq!(bytes[off], TAG_CONFIG);
        let len = u64::from_le_bytes(bytes[off + 1..off + 9].try_into().unwrap()) as usize;
        let field = off + 13 + 15;
        bytes[field..field + 4].copy_from_slice(&50u32.to_le_bytes());
        let crc = crc32(&bytes[off + 13..off + 13 + len]);
        bytes[off + 9..off + 13].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            CscIndex::from_bytes(&bytes),
            Err(CscError::Config(_))
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            CscIndex::from_bytes(b"not an index"),
            Err(CscError::Serial(_))
        ));
        assert!(matches!(
            CscIndex::from_bytes(b""),
            Err(CscError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncation_at_every_prefix_length_errs_and_never_panics() {
        let g = figure2();
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let bytes = idx.to_bytes().unwrap();
        for cut in 0..bytes.len() {
            let prefix = bytes[..cut].to_vec();
            let result = std::panic::catch_unwind(move || CscIndex::from_bytes(&prefix));
            match result {
                Ok(Err(CscError::Corrupt { section, .. })) => {
                    assert!(!section.is_empty(), "cut at {cut}")
                }
                // A cut inside the magic can also read as a wrong format.
                Ok(Err(CscError::Serial(_))) if cut < 16 => {}
                Ok(other) => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
                Err(_) => panic!("cut at {cut}: the loader panicked"),
            }
        }
        let mut extended = bytes.to_vec();
        extended.push(0);
        assert!(matches!(
            CscIndex::from_bytes(&extended),
            Err(CscError::Corrupt { section, .. }) if section == "framing"
        ));
    }

    #[test]
    fn bit_flips_anywhere_err_and_never_panic_or_load() {
        let g = figure2();
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let bytes = idx.to_bytes().unwrap();
        let mut s = 0xD1CEu64;
        for trial in 0..300 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let byte = (s >> 33) as usize % bytes.len();
            let bit = (s >> 29) as u8 & 7;
            let mut flipped = bytes.to_vec();
            flipped[byte] ^= 1 << bit;
            let result = std::panic::catch_unwind(move || CscIndex::from_bytes(&flipped));
            match result {
                // Every single-bit flip is caught: by the magic check, a
                // framing length, or a section CRC. None may load.
                Ok(Err(CscError::Corrupt { .. }) | Err(CscError::Serial(_))) => {}
                Ok(other) => {
                    panic!("trial {trial}: flip of bit {bit} at byte {byte} gave {other:?}")
                }
                Err(_) => panic!("trial {trial}: flip at byte {byte} panicked the loader"),
            }
        }
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = DiGraph::new(0);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let bytes = idx.to_bytes().unwrap();
        let back = CscIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.original_vertex_count(), 0);
    }
}
