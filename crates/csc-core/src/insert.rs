//! Incremental maintenance: `INCCNT` (Section V-A, Algorithms 5–7).
//!
//! Inserting the original edge `(a, b)` adds exactly one bipartite edge
//! `(a_o, b_i)`. Every brand-new shortest path runs through that edge
//! (Lemma V.2), and decomposes as `old-shortest(v ~> a_o) + edge +
//! old-shortest(b_i ~> w)`. The highest-ranked vertex of the left segment
//! is, by the cover constraint, already a hub in `L_in(a_o)`; of the right
//! segment, a hub in `L_out(b_i)`. So resumed BFS passes from exactly those
//! *affected hubs* — seeded with the hub's own label distance and count
//! (Theorem V.1: using the full `SPCnt` would double-count non-canonical
//! hubs) — reach every label that must change.
//!
//! Passes run in descending rank order so that when a pass consults the
//! index (`D_G(v_k, w)` pruning), entries of higher-ranked affected hubs
//! are already updated. The pass itself and the primitives it shares with
//! deletion and the batch engine live in `csc-core::repair`; this module
//! contributes the per-edge affected-hub derivation.
//!
//! ## Skipping `V_out` hubs
//!
//! `L_in(a_o)` always contains `a_o`'s own self entry, and the paper's
//! Algorithm 5 would start a pass from it. We skip passes whose hub is an
//! outgoing vertex: the labels they would create are never consulted by a
//! cycle query, because on any `v_o ~> v_i` path every outgoing vertex is
//! outranked by an incoming vertex on the same path (its couple — for the
//! source `v_o`, the target `v_i`), so the highest-ranked vertex (the hub
//! the query needs) is always an incoming vertex. Keeping `V_out` ranks
//! out of the label lists is also what keeps the decremental
//! distance-condition checks sound (see `csc-core::delete`). The
//! incremental-vs-rebuild equivalence tests exercise this invariant.
//!
//! ## Redundancy vs. minimality
//!
//! Under [`UpdateStrategy::Redundancy`](crate::UpdateStrategy::Redundancy)
//! dominated entries are left behind: an entry whose stored distance
//! exceeds the true shortest distance can never win the minimum-distance
//! selection of a query (label distances never under-estimate, so a stale
//! component pushes the candidate sum strictly above the covered minimum)
//! and is therefore harmless. Minimality mode calls `CLEAN_LABEL` after
//! every improving write.

use crate::error::CscError;
use crate::index::CscIndex;
use crate::repair::{maintenance_pass, Direction};
use crate::stats::UpdateReport;
use csc_graph::bipartite::is_in_vertex;
use csc_graph::VertexId;
use csc_labeling::{LabelEntry, LabelingError};
use std::time::Instant;

impl CscIndex {
    /// Inserts the edge `(a, b)` into the graph and incrementally repairs
    /// the index (`INCCNT`).
    ///
    /// # Errors
    ///
    /// Graph errors (self-loop, duplicate, out-of-range) leave the index
    /// untouched. A labeling capacity overflow mid-update poisons the index
    /// (see [`CscIndex::is_poisoned`]); rebuild it in that case.
    pub fn insert_edge(&mut self, a: VertexId, b: VertexId) -> Result<UpdateReport, CscError> {
        self.check_ready()?;
        let start = Instant::now();
        let (ao, bi) = self.gb.insert_original_edge(a, b)?;
        let mut report = UpdateReport::default();
        if let Err(e) = self.inccnt(ao, bi, &mut report) {
            self.poison(format!("label overflow during insert_edge({a}, {b}): {e}"));
            return Err(e.into());
        }
        report.duration = start.elapsed();
        self.stats.insertions += 1;
        self.stats.entries_added += report.entries_inserted;
        self.stats.entries_removed += report.entries_removed;
        Ok(report)
    }

    fn inccnt(
        &mut self,
        ao: VertexId,
        bi: VertexId,
        report: &mut UpdateReport,
    ) -> Result<(), LabelingError> {
        let rank_ao = self.ranks.rank(ao);
        let rank_bi = self.ranks.rank(bi);
        // Affected hubs, snapshotted before any label changes.
        let hub_a: Vec<LabelEntry> = self.labels.in_of(ao).to_vec();
        let hub_b: Vec<LabelEntry> = self.labels.out_of(bi).to_vec();

        let CscIndex {
            ref gb,
            ref ranks,
            ref mut labels,
            ref mut inverted,
            ref config,
            ref mut workspace,
            ref mut sweeps,
            ..
        } = *self;
        let graph = gb.graph();
        workspace.ensure(graph.vertex_count());
        let (state, cache) = workspace.parts_mut();
        let buckets = sweeps.buckets_mut();

        // Merge both sorted hub lists in ascending rank (descending
        // importance); a hub present in both runs both passes.
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            let ra = hub_a.get(i).map_or(u32::MAX, |e| e.hub_rank());
            let rb = hub_b.get(j).map_or(u32::MAX, |e| e.hub_rank());
            if ra == u32::MAX && rb == u32::MAX {
                break;
            }
            let r = ra.min(rb);
            let vk = ranks.vertex_at_rank(r);
            if is_in_vertex(vk) {
                if ra == r && r < rank_bi {
                    let seed = hub_a[i];
                    report.affected_hubs += 1;
                    maintenance_pass(
                        graph,
                        ranks,
                        labels,
                        inverted,
                        state,
                        cache,
                        buckets,
                        config.update_strategy,
                        Direction::Forward,
                        r,
                        vk,
                        bi,
                        seed.dist() + 1,
                        seed.count(),
                        report,
                    )?;
                }
                if rb == r && r < rank_ao {
                    let seed = hub_b[j];
                    report.affected_hubs += 1;
                    maintenance_pass(
                        graph,
                        ranks,
                        labels,
                        inverted,
                        state,
                        cache,
                        buckets,
                        config.update_strategy,
                        Direction::Backward,
                        r,
                        vk,
                        ao,
                        seed.dist() + 1,
                        seed.count(),
                        report,
                    )?;
                }
            }
            if ra == r {
                i += 1;
            }
            if rb == r {
                j += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CscConfig, UpdateStrategy};
    use csc_graph::generators::{directed_cycle, gnm};
    use csc_graph::traversal::shortest_cycle_oracle;
    use csc_graph::DiGraph;

    fn assert_queries_match(idx: &CscIndex, g: &DiGraph, context: &str) {
        for v in g.vertices() {
            assert_eq!(
                idx.query(v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(g, v),
                "{context}: SCCnt({v})"
            );
        }
    }

    #[test]
    fn insert_closes_a_cycle() {
        // Path 0 -> 1 -> 2, then insert 2 -> 0: a triangle appears.
        let g = DiGraph::from_edges(3, vec![(0, 1), (1, 2)]);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        assert_eq!(idx.query(VertexId(0)), None);
        let report = idx.insert_edge(VertexId(2), VertexId(0)).unwrap();
        assert!(report.entries_inserted + report.entries_updated > 0);
        assert!(report.affected_hubs > 0);
        let mut g2 = g.clone();
        g2.try_add_edge(VertexId(2), VertexId(0)).unwrap();
        assert_queries_match(&idx, &g2, "after closing triangle");
        assert_eq!(idx.original_edge_count(), 3);
    }

    #[test]
    fn insert_shortens_existing_cycles() {
        // 6-cycle; chord 3 -> 0 shortens the cycle through 0..3 to length 4.
        let g = directed_cycle(6);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        assert_eq!(idx.query(VertexId(0)).unwrap().length, 6);
        idx.insert_edge(VertexId(3), VertexId(0)).unwrap();
        let mut g2 = g.clone();
        g2.try_add_edge(VertexId(3), VertexId(0)).unwrap();
        assert_queries_match(&idx, &g2, "after chord");
        assert_eq!(idx.query(VertexId(0)).unwrap().length, 4);
        assert_eq!(idx.query(VertexId(4)).unwrap().length, 6);
    }

    #[test]
    fn insert_adds_parallel_shortest_cycles() {
        // Triangle 0-1-2 plus a second disjoint route 0 -> 3 -> 4 -> 0 of
        // equal length: counts must accumulate, not overwrite.
        let g = DiGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 0), (0, 3), (3, 4)]);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        assert_eq!(idx.query(VertexId(0)).unwrap().count, 1);
        idx.insert_edge(VertexId(4), VertexId(0)).unwrap();
        let mut g2 = g.clone();
        g2.try_add_edge(VertexId(4), VertexId(0)).unwrap();
        assert_queries_match(&idx, &g2, "after second cycle");
        let c = idx.query(VertexId(0)).unwrap();
        assert_eq!((c.length, c.count), (3, 2));
    }

    #[test]
    fn graph_errors_leave_index_clean() {
        let mut idx = CscIndex::build(&directed_cycle(3), CscConfig::default()).unwrap();
        let before = idx.total_entries();
        assert!(idx.insert_edge(VertexId(0), VertexId(0)).is_err());
        assert!(idx.insert_edge(VertexId(0), VertexId(1)).is_err()); // duplicate
        assert!(idx.insert_edge(VertexId(0), VertexId(9)).is_err());
        assert_eq!(idx.total_entries(), before);
        assert!(!idx.is_poisoned());
        assert_eq!(idx.stats().insertions, 0);
    }

    #[test]
    fn incremental_equals_oracle_over_random_insertions() {
        for seed in 0..4 {
            let mut g = gnm(20, 30, seed);
            let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
            // Insert 25 random new edges one at a time.
            let mut added = 0;
            let mut s = seed;
            while added < 25 {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = VertexId((s >> 33) as u32 % 20);
                let b = VertexId((s >> 13) as u32 % 20);
                if a == b || g.has_edge(a, b) {
                    continue;
                }
                g.try_add_edge(a, b).unwrap();
                idx.insert_edge(a, b).unwrap();
                added += 1;
                assert_queries_match(&idx, &g, &format!("seed {seed} after edge {added}"));
            }
            assert_eq!(idx.stats().insertions, 25);
        }
    }

    #[test]
    fn minimality_strategy_matches_and_stays_lean() {
        let mut g = gnm(18, 30, 9);
        let config = CscConfig::default().with_update_strategy(UpdateStrategy::Minimality);
        let mut idx_min = CscIndex::build(&g, config).unwrap();
        let mut idx_red = CscIndex::build(&g, CscConfig::default()).unwrap();
        let mut s = 7u64;
        let mut added = 0;
        while added < 20 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = VertexId((s >> 33) as u32 % 18);
            let b = VertexId((s >> 11) as u32 % 18);
            if a == b || g.has_edge(a, b) {
                continue;
            }
            g.try_add_edge(a, b).unwrap();
            idx_min.insert_edge(a, b).unwrap();
            idx_red.insert_edge(a, b).unwrap();
            added += 1;
            assert_queries_match(&idx_min, &g, "minimality");
            assert_queries_match(&idx_red, &g, "redundancy");
        }
        // Minimality never stores more entries than redundancy.
        assert!(idx_min.total_entries() <= idx_red.total_entries());
        idx_min
            .inverted
            .as_ref()
            .unwrap()
            .validate_against(&idx_min.labels)
            .unwrap();
    }

    #[test]
    fn insert_touching_new_vertex() {
        let mut idx = CscIndex::build(&directed_cycle(3), CscConfig::default()).unwrap();
        let nv = idx.add_vertex();
        idx.insert_edge(VertexId(0), nv).unwrap();
        idx.insert_edge(nv, VertexId(1)).unwrap();
        // New vertex now sits on a cycle nv -> 1 -> 2 -> 0 -> nv of length 4.
        let c = idx.query(nv).unwrap();
        assert_eq!((c.length, c.count), (4, 1));
        // And vertex 0 still has its length-3 cycle.
        assert_eq!(idx.query(VertexId(0)).unwrap().length, 3);
    }
}
