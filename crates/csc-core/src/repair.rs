//! Shared label-repair primitives for dynamic maintenance.
//!
//! Incremental insertion (`csc-core::insert`), decremental deletion
//! (`csc-core::delete`), and the batch engine (`csc-core::batch`) all
//! repair labels the same way: resume a counting traversal from an
//! *affected hub*, prune where the index already covers the distance, and
//! upsert the entries the traversal proves changed. This module holds the
//! pieces they share:
//!
//! * [`fill_hub_cache`] — scatter the hub's own label for `O(|label|)`
//!   per-vertex distance checks;
//! * [`covered_dist`] — `D_G(v_k, w)` through strictly-higher-ranked hubs,
//!   evaluated against the (partially repaired) current index;
//! * [`update_label`] — `UPDATE_LABEL` (Algorithm 7);
//! * [`maintenance_pass`] — the single-seed resumed BFS of Algorithm 6
//!   (one inserted edge, one affected hub);
//! * [`multi_source_pass`] — the batched generalization: one pass per
//!   affected hub no matter how many inserted edges affect it. Seeds sit
//!   at different depths, so the plain BFS queue becomes a monotone
//!   *bucket queue* (unit edge weights keep it `O(V + E)`), and a seed
//!   reached earlier by the traversal itself is relaxed downward — which
//!   is exactly what makes the first-new-edge decomposition exact: every
//!   brand-new shortest path decomposes as an *old* shortest prefix to the
//!   first inserted edge it crosses (covered by that edge's pre-batch seed
//!   entry) plus a suffix in the updated graph, which the traversal walks
//!   because all batch edges are already present.

use crate::clean::clean_label;
use crate::config::UpdateStrategy;
use crate::invert::InvertedIndex;
use crate::stats::UpdateReport;
use csc_graph::{DiGraph, RankTable, VertexId};
use csc_labeling::{HubCache, LabelEntry, LabelSide, LabelingError, Labels, SearchState, INF};

/// Which side of the index a repair traversal rebuilds.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Direction {
    /// `FORWARD_PASS`: repair in-labels reachable from the seed(s).
    Forward,
    /// `BACKWARD_PASS`: repair out-labels co-reachable from the seed(s).
    Backward,
}

impl Direction {
    /// `(own_side, target_side)`: the hub's own label side consulted for
    /// pruning, and the side of the entries the pass writes.
    #[inline]
    pub(crate) fn sides(self) -> (LabelSide, LabelSide) {
        match self {
            Direction::Forward => (LabelSide::Out, LabelSide::In),
            Direction::Backward => (LabelSide::In, LabelSide::Out),
        }
    }
}

/// Scatters the hub's own `own_side` label (plus its rank-0 self entry)
/// into `cache` for constant-time `D_G(v_k, ·)` component lookups.
#[inline]
pub(crate) fn fill_hub_cache(
    labels: &Labels,
    cache: &mut HubCache,
    vk: VertexId,
    vk_rank: u32,
    own_side: LabelSide,
) {
    cache.begin();
    for e in labels.side_of(vk, own_side) {
        cache.put(e.hub_rank(), e.dist(), e.count());
    }
    cache.put(vk_rank, 0, 1);
}

/// `D_G(v_k, w)` (or `D_G(w, v_k)` for backward passes) under the current
/// index, restricted to the hubs scattered in `cache` — i.e. through the
/// pass hub itself and strictly higher-ranked hubs, whose entries are
/// already repaired when passes run in descending rank order.
#[inline]
pub(crate) fn covered_dist(
    labels: &Labels,
    cache: &HubCache,
    w: VertexId,
    target_side: LabelSide,
) -> u32 {
    let mut dg = INF;
    for e in labels.side_of(w, target_side) {
        if let Some((dh, _)) = cache.get(e.hub_rank()) {
            dg = dg.min(dh + e.dist());
        }
    }
    dg
}

/// `UPDATE_LABEL` (Algorithm 7). Returns `true` when the write shortened a
/// distance or created an entry (the cases that can strand redundancy).
#[allow(clippy::too_many_arguments)]
pub(crate) fn update_label(
    labels: &mut Labels,
    inverted: &mut Option<InvertedIndex>,
    w: VertexId,
    side: LabelSide,
    vk: VertexId,
    vk_rank: u32,
    d: u32,
    c: u64,
    report: &mut UpdateReport,
) -> Result<bool, LabelingError> {
    let wrap = |source| LabelingError::Entry {
        hub: vk,
        vertex: w,
        source,
    };
    match labels.entry_for(w, side, vk_rank) {
        Some(old) => {
            if d < old.dist() {
                labels.upsert(w, side, LabelEntry::new(vk_rank, d, c).map_err(wrap)?);
                report.entries_updated += 1;
                Ok(true)
            } else if d == old.dist() {
                // New same-length shortest paths: accumulate the counting.
                let merged = c.saturating_add(old.count());
                labels.upsert(w, side, LabelEntry::new(vk_rank, d, merged).map_err(wrap)?);
                report.entries_updated += 1;
                Ok(false)
            } else {
                // The traversal found only a longer connection than the
                // recorded one; nothing to repair. (Unreachable when the
                // seed label was exact, possible with stale seeds under
                // the redundancy strategy.)
                Ok(false)
            }
        }
        None => {
            labels.upsert(w, side, LabelEntry::new(vk_rank, d, c).map_err(wrap)?);
            if let Some(inv) = inverted {
                inv.add(side, vk_rank, w);
            }
            report.entries_inserted += 1;
            Ok(true)
        }
    }
}

/// One resumed traversal from an affected hub (Algorithm 6 and its
/// mirror), for a single inserted edge. With one seed the multi-source
/// bucket queue degenerates to exactly the BFS level order, so this is a
/// thin wrapper — one copy of the delicate prune/count/update logic
/// serves both `insert_edge` and `apply_batch`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn maintenance_pass(
    graph: &DiGraph,
    ranks: &RankTable,
    labels: &mut Labels,
    inverted: &mut Option<InvertedIndex>,
    state: &mut SearchState,
    cache: &mut HubCache,
    strategy: UpdateStrategy,
    direction: Direction,
    vk_rank: u32,
    vk: VertexId,
    start: VertexId,
    seed_dist: u32,
    seed_count: u64,
    report: &mut UpdateReport,
) -> Result<(), LabelingError> {
    multi_source_pass(
        graph,
        ranks,
        labels,
        inverted,
        state,
        cache,
        strategy,
        direction,
        vk_rank,
        vk,
        &[(start, seed_dist, seed_count)],
        report,
    )
}

/// A repair seed: traversal start vertex, its seed distance from the pass
/// hub, and the count of hub-maximal shortest paths realizing it.
pub(crate) type Seed = (VertexId, u32, u64);

/// The batched counterpart of [`maintenance_pass`]: one traversal repairs
/// everything a whole batch of edge insertions changed for hub `vk`.
///
/// Seeds sit at heterogeneous depths (one per inserted edge the hub's
/// pre-batch label reaches), so vertices are processed in nondecreasing
/// distance order through a monotone bucket queue. Two extra cases versus
/// the single-seed BFS:
///
/// * colliding seeds (two edges sharing an endpoint) merge — minimum
///   distance wins, equal distances accumulate counts;
/// * a seed the traversal reaches *earlier* than its seed depth is
///   relaxed downward (its seeded path class is not shortest and counts
///   for nothing), the only downward relaxation possible — non-seed
///   vertices are discovered in final-distance order, exactly as in BFS.
#[allow(clippy::too_many_arguments)]
pub(crate) fn multi_source_pass(
    graph: &DiGraph,
    ranks: &RankTable,
    labels: &mut Labels,
    inverted: &mut Option<InvertedIndex>,
    state: &mut SearchState,
    cache: &mut HubCache,
    strategy: UpdateStrategy,
    direction: Direction,
    vk_rank: u32,
    vk: VertexId,
    seeds: &[Seed],
    report: &mut UpdateReport,
) -> Result<(), LabelingError> {
    debug_assert!(!seeds.is_empty());
    let (own_side, target_side) = direction.sides();
    fill_hub_cache(labels, cache, vk, vk_rank, own_side);

    state.reset();
    let base = seeds.iter().map(|&(_, d, _)| d).min().expect("non-empty");
    // buckets[d - base] holds the frontier at distance d; pushes always
    // target the current or a deeper bucket (monotonicity), so stale
    // entries are filtered by re-checking the recorded distance at pop.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new()];
    let push = |buckets: &mut Vec<Vec<u32>>, d: u32, v: VertexId| {
        let level = (d - base) as usize;
        if buckets.len() <= level {
            buckets.resize_with(level + 1, Vec::new);
        }
        buckets[level].push(v.0);
    };

    for &(start, d, c) in seeds {
        if !state.visited(start) {
            state.visit(start, d, c);
            push(&mut buckets, d, start);
        } else if state.dist[start.index()] == d {
            state.accumulate(start, c);
        } else if d < state.dist[start.index()] {
            state.relax(start, d, c);
            push(&mut buckets, d, start);
        }
        // d > recorded: a longer seeded class to the same start; its paths
        // are not shortest and contribute nothing.
    }

    let mut level = 0usize;
    while level < buckets.len() {
        let mut i = 0usize;
        while i < buckets[level].len() {
            let w = VertexId(buckets[level][i]);
            i += 1;
            let dw = base + level as u32;
            if state.dist[w.index()] != dw {
                continue; // superseded by a downward relaxation
            }
            let cw = state.count[w.index()];
            report.vertices_visited += 1;

            if dw > covered_dist(labels, cache, w, target_side) {
                continue;
            }

            let improved = update_label(
                labels,
                inverted,
                w,
                target_side,
                vk,
                vk_rank,
                dw,
                cw,
                report,
            )?;
            if improved && strategy == UpdateStrategy::Minimality {
                let inv = inverted
                    .as_mut()
                    .expect("minimality requires inverted indexes");
                clean_label(labels, inv, ranks, w, target_side, report);
            }

            let nbrs = match direction {
                Direction::Forward => graph.nbr_out(w),
                Direction::Backward => graph.nbr_in(w),
            };
            for &u in nbrs {
                let u = VertexId(u);
                if !state.visited(u) {
                    if vk_rank < ranks.rank(u) {
                        state.visit(u, dw + 1, cw);
                        push(&mut buckets, dw + 1, u);
                    }
                } else if state.dist[u.index()] == dw + 1 {
                    state.accumulate(u, cw);
                } else if state.dist[u.index()] > dw + 1 {
                    // Only deeper-seeded vertices can be relaxed downward.
                    state.relax(u, dw + 1, cw);
                    push(&mut buckets, dw + 1, u);
                }
            }
        }
        level += 1;
    }
    Ok(())
}
