//! Shared label-repair primitives for dynamic maintenance.
//!
//! Incremental insertion (`csc-core::insert`), decremental deletion
//! (`csc-core::delete`), and the batch engine (`csc-core::batch`) all
//! repair labels the same way: resume a counting traversal from an
//! *affected hub*, prune where the index already covers the distance, and
//! upsert the entries the traversal proves changed. This module holds the
//! pieces they share:
//!
//! * [`fill_hub_cache`] — scatter the hub's own label for `O(|label|)`
//!   per-vertex distance checks;
//! * [`covered_dist`] — `D_G(v_k, w)` through strictly-higher-ranked hubs,
//!   evaluated against the (partially repaired) current index;
//! * [`update_label`] — `UPDATE_LABEL` (Algorithm 7);
//! * [`maintenance_pass`] — the single-seed resumed BFS of Algorithm 6
//!   (one inserted edge, one affected hub);
//! * [`multi_source_pass`] — the batched generalization: one pass per
//!   affected hub no matter how many inserted edges affect it. Seeds sit
//!   at different depths, so the plain BFS queue becomes a monotone
//!   *bucket queue* (unit edge weights keep it `O(V + E)`; the queue
//!   itself is recycled across passes via
//!   [`csc_graph::BucketQueue`]), and a seed reached earlier by the
//!   traversal itself is relaxed downward — which is exactly what makes
//!   the first-new-edge decomposition exact: every brand-new shortest
//!   path decomposes as an *old* shortest prefix to the first inserted
//!   edge it crosses (covered by that edge's pre-batch seed entry) plus a
//!   suffix in the updated graph, which the traversal walks because all
//!   batch edges are already present;
//! * [`multi_source_subtract`] — the decremental mirror: one pass per
//!   count-repair hub subtracts every shortest path a whole *deletion*
//!   window removed, via the dual last-old-edge decomposition (see its
//!   docs).

use crate::clean::clean_label;
use crate::config::UpdateStrategy;
use crate::invert::InvertedIndex;
use crate::stats::UpdateReport;
use csc_graph::{BucketQueue, DiGraph, RankTable, VertexId};
use csc_labeling::{
    HubCache, LabelEntry, LabelSide, LabelingError, Labels, SearchState, INF, MAX_COUNT,
};

/// Which side of the index a repair traversal rebuilds.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Direction {
    /// `FORWARD_PASS`: repair in-labels reachable from the seed(s).
    Forward,
    /// `BACKWARD_PASS`: repair out-labels co-reachable from the seed(s).
    Backward,
}

impl Direction {
    /// `(own_side, target_side)`: the hub's own label side consulted for
    /// pruning, and the side of the entries the pass writes.
    #[inline]
    pub(crate) fn sides(self) -> (LabelSide, LabelSide) {
        match self {
            Direction::Forward => (LabelSide::Out, LabelSide::In),
            Direction::Backward => (LabelSide::In, LabelSide::Out),
        }
    }
}

/// Scatters the hub's own `own_side` label (plus its rank-0 self entry)
/// into `cache` for constant-time `D_G(v_k, ·)` component lookups.
#[inline]
pub(crate) fn fill_hub_cache(
    labels: &Labels,
    cache: &mut HubCache,
    vk: VertexId,
    vk_rank: u32,
    own_side: LabelSide,
) {
    cache.begin();
    for e in labels.side_of(vk, own_side) {
        cache.put(e.hub_rank(), e.dist(), e.count());
    }
    cache.put(vk_rank, 0, 1);
}

/// `D_G(v_k, w)` (or `D_G(w, v_k)` for backward passes) under the current
/// index, restricted to the hubs scattered in `cache` — i.e. through the
/// pass hub itself and strictly higher-ranked hubs, whose entries are
/// already repaired when passes run in descending rank order. The cache
/// never holds a rank above `vk_rank` (a hub's own label only stores
/// higher-ranked hubs plus itself), so the rank-sorted scan stops at that
/// prefix.
#[inline]
pub(crate) fn covered_dist(
    labels: &Labels,
    cache: &HubCache,
    vk_rank: u32,
    w: VertexId,
    target_side: LabelSide,
) -> u32 {
    let mut dg = INF;
    for e in labels.side_of(w, target_side) {
        if e.hub_rank() > vk_rank {
            break;
        }
        if let Some((dh, _)) = cache.get(e.hub_rank()) {
            dg = dg.min(dh + e.dist());
        }
    }
    dg
}

/// `UPDATE_LABEL` (Algorithm 7). Returns `true` when the write shortened a
/// distance or created an entry (the cases that can strand redundancy).
#[allow(clippy::too_many_arguments)]
pub(crate) fn update_label(
    labels: &mut Labels,
    inverted: &mut Option<InvertedIndex>,
    w: VertexId,
    side: LabelSide,
    vk: VertexId,
    vk_rank: u32,
    d: u32,
    c: u64,
    report: &mut UpdateReport,
) -> Result<bool, LabelingError> {
    let wrap = |source| LabelingError::Entry {
        hub: vk,
        vertex: w,
        source,
    };
    match labels.entry_for(w, side, vk_rank) {
        Some(old) => {
            if d < old.dist() {
                labels.upsert(w, side, LabelEntry::new(vk_rank, d, c).map_err(wrap)?);
                report.entries_updated += 1;
                Ok(true)
            } else if d == old.dist() {
                // New same-length shortest paths: accumulate the counting.
                let merged = c.saturating_add(old.count());
                labels.upsert(w, side, LabelEntry::new(vk_rank, d, merged).map_err(wrap)?);
                report.entries_updated += 1;
                Ok(false)
            } else {
                // The traversal found only a longer connection than the
                // recorded one; nothing to repair. (Unreachable when the
                // seed label was exact, possible with stale seeds under
                // the redundancy strategy.)
                Ok(false)
            }
        }
        None => {
            labels.upsert(w, side, LabelEntry::new(vk_rank, d, c).map_err(wrap)?);
            if let Some(inv) = inverted {
                inv.add(side, vk_rank, w);
            }
            report.entries_inserted += 1;
            Ok(true)
        }
    }
}

/// One resumed traversal from an affected hub (Algorithm 6 and its
/// mirror), for a single inserted edge. With one seed the multi-source
/// bucket queue degenerates to exactly the BFS level order, so this is a
/// thin wrapper — one copy of the delicate prune/count/update logic
/// serves both `insert_edge` and `apply_batch`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn maintenance_pass(
    graph: &DiGraph,
    ranks: &RankTable,
    labels: &mut Labels,
    inverted: &mut Option<InvertedIndex>,
    state: &mut SearchState,
    cache: &mut HubCache,
    buckets: &mut BucketQueue,
    strategy: UpdateStrategy,
    direction: Direction,
    vk_rank: u32,
    vk: VertexId,
    start: VertexId,
    seed_dist: u32,
    seed_count: u64,
    report: &mut UpdateReport,
) -> Result<(), LabelingError> {
    multi_source_pass(
        graph,
        ranks,
        labels,
        inverted,
        state,
        cache,
        buckets,
        strategy,
        direction,
        vk_rank,
        vk,
        &[(start, seed_dist, seed_count)],
        report,
    )
}

/// A repair seed: traversal start vertex, its seed distance from the pass
/// hub, and the count of hub-maximal shortest paths realizing it.
pub(crate) type Seed = (VertexId, u32, u64);

/// The batched counterpart of [`maintenance_pass`]: one traversal repairs
/// everything a whole batch of edge insertions changed for hub `vk`.
///
/// Seeds sit at heterogeneous depths (one per inserted edge the hub's
/// pre-batch label reaches), so vertices are processed in nondecreasing
/// distance order through a monotone bucket queue. Two extra cases versus
/// the single-seed BFS:
///
/// * colliding seeds (two edges sharing an endpoint) merge — minimum
///   distance wins, equal distances accumulate counts;
/// * a seed the traversal reaches *earlier* than its seed depth is
///   relaxed downward (its seeded path class is not shortest and counts
///   for nothing), the only downward relaxation possible — non-seed
///   vertices are discovered in final-distance order, exactly as in BFS.
#[allow(clippy::too_many_arguments)]
pub(crate) fn multi_source_pass(
    graph: &DiGraph,
    ranks: &RankTable,
    labels: &mut Labels,
    inverted: &mut Option<InvertedIndex>,
    state: &mut SearchState,
    cache: &mut HubCache,
    buckets: &mut BucketQueue,
    strategy: UpdateStrategy,
    direction: Direction,
    vk_rank: u32,
    vk: VertexId,
    seeds: &[Seed],
    report: &mut UpdateReport,
) -> Result<(), LabelingError> {
    debug_assert!(!seeds.is_empty());
    let (own_side, target_side) = direction.sides();
    fill_hub_cache(labels, cache, vk, vk_rank, own_side);
    let base = seed_buckets(state, buckets, seeds);

    let mut level = 0usize;
    while level < buckets.depth() {
        let mut i = 0usize;
        while i < buckets.len_at(level) {
            let w = VertexId(buckets.at(level, i));
            i += 1;
            let dw = base + level as u32;
            if state.dist[w.index()] != dw {
                continue; // superseded by a downward relaxation
            }
            let cw = state.count[w.index()];
            report.vertices_visited += 1;

            if dw > covered_dist(labels, cache, vk_rank, w, target_side) {
                continue;
            }

            let improved = update_label(
                labels,
                inverted,
                w,
                target_side,
                vk,
                vk_rank,
                dw,
                cw,
                report,
            )?;
            if improved && strategy == UpdateStrategy::Minimality {
                let inv = inverted
                    .as_mut()
                    .expect("minimality requires inverted indexes");
                clean_label(labels, inv, ranks, w, target_side, report);
            }

            let nbrs = match direction {
                Direction::Forward => graph.nbr_out(w),
                Direction::Backward => graph.nbr_in(w),
            };
            for &u in nbrs {
                let u = VertexId(u);
                if !state.visited(u) {
                    if vk_rank < ranks.rank(u) {
                        state.visit(u, dw + 1, cw);
                        buckets.push((dw + 1 - base) as usize, u.0);
                    }
                } else if state.dist[u.index()] == dw + 1 {
                    state.accumulate(u, cw);
                } else if state.dist[u.index()] > dw + 1 {
                    // Only deeper-seeded vertices can be relaxed downward.
                    state.relax(u, dw + 1, cw);
                    buckets.push((dw + 1 - base) as usize, u.0);
                }
            }
        }
        level += 1;
    }
    Ok(())
}

/// One buffered visit of [`multi_source_collect`]: the vertex, its
/// traversal distance, and its hub-maximal new-path count.
pub(crate) type RepairVisit = (VertexId, u32, u64);

/// The compute half of [`multi_source_pass`], split for the parallel
/// batch engine: the identical traversal run against an *immutable* label
/// view, buffering the would-be [`update_label`] calls instead of
/// writing. A pass never reads its own writes (the hub cache is filled
/// once up front and the covered-distance scan of a vertex only consults
/// that vertex's own list, which the pass touches at most at its single
/// processing), so collect-then-commit over one label state equals the
/// direct pass exactly.
///
/// When the view is *stale* — missing the writes of other same-wave
/// passes — pruning can only be weaker than sequential: repair writes are
/// monotone (entries are only added, shortened, or count-accumulated,
/// never lengthened or removed), so a fresher view covers at least as
/// much. [`multi_source_commit`] re-checks coverage against the live
/// labels and drops what sequential would have pruned; a dropped visit's
/// whole buffered subtree is covered at strictly smaller slack and drops
/// with it, so the surviving writes — distances *and* counts — are the
/// sequential ones. (Not valid under [`UpdateStrategy::Minimality`],
/// whose cleaning *removes* entries mid-pass; the batch engine falls back
/// to the direct pass there.)
#[allow(clippy::too_many_arguments)]
pub(crate) fn multi_source_collect(
    graph: &DiGraph,
    ranks: &RankTable,
    labels: &Labels,
    state: &mut SearchState,
    cache: &mut HubCache,
    buckets: &mut BucketQueue,
    direction: Direction,
    vk_rank: u32,
    vk: VertexId,
    seeds: &[Seed],
    visited: &mut usize,
) -> Vec<RepairVisit> {
    debug_assert!(!seeds.is_empty());
    let (own_side, target_side) = direction.sides();
    fill_hub_cache(labels, cache, vk, vk_rank, own_side);
    let base = seed_buckets(state, buckets, seeds);
    let mut visits = Vec::new();

    let mut level = 0usize;
    while level < buckets.depth() {
        let mut i = 0usize;
        while i < buckets.len_at(level) {
            let w = VertexId(buckets.at(level, i));
            i += 1;
            let dw = base + level as u32;
            if state.dist[w.index()] != dw {
                continue; // superseded by a downward relaxation
            }
            let cw = state.count[w.index()];
            *visited += 1;

            if dw > covered_dist(labels, cache, vk_rank, w, target_side) {
                continue;
            }
            visits.push((w, dw, cw));

            let nbrs = match direction {
                Direction::Forward => graph.nbr_out(w),
                Direction::Backward => graph.nbr_in(w),
            };
            for &u in nbrs {
                let u = VertexId(u);
                if !state.visited(u) {
                    if vk_rank < ranks.rank(u) {
                        state.visit(u, dw + 1, cw);
                        buckets.push((dw + 1 - base) as usize, u.0);
                    }
                } else if state.dist[u.index()] == dw + 1 {
                    state.accumulate(u, cw);
                } else if state.dist[u.index()] > dw + 1 {
                    state.relax(u, dw + 1, cw);
                    buckets.push((dw + 1 - base) as usize, u.0);
                }
            }
        }
        level += 1;
    }
    visits
}

/// The write half of [`multi_source_collect`]: re-validates each buffered
/// visit's coverage against the live labels and applies the survivors via
/// [`update_label`]. Run in ascending rank order (and, per hub, forward
/// before backward) this restores the sequential pass order exactly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn multi_source_commit(
    labels: &mut Labels,
    inverted: &mut Option<InvertedIndex>,
    cache: &mut HubCache,
    direction: Direction,
    vk_rank: u32,
    vk: VertexId,
    visits: &[RepairVisit],
    report: &mut UpdateReport,
) -> Result<(), LabelingError> {
    let (own_side, target_side) = direction.sides();
    fill_hub_cache(labels, cache, vk, vk_rank, own_side);
    for &(w, dw, cw) in visits {
        if dw > covered_dist(labels, cache, vk_rank, w, target_side) {
            continue;
        }
        update_label(
            labels,
            inverted,
            w,
            target_side,
            vk,
            vk_rank,
            dw,
            cw,
            report,
        )?;
    }
    Ok(())
}

/// Resets `state` and `buckets` and loads `seeds` into them, merging
/// colliding seeds (minimum distance wins, equal distances accumulate).
/// Returns the base distance buckets are relative to.
fn seed_buckets(state: &mut SearchState, buckets: &mut BucketQueue, seeds: &[Seed]) -> u32 {
    state.reset();
    buckets.reset();
    let base = seeds.iter().map(|&(_, d, _)| d).min().expect("non-empty");
    for &(start, d, c) in seeds {
        if !state.visited(start) {
            state.visit(start, d, c);
            buckets.push((d - base) as usize, start.0);
        } else if state.dist[start.index()] == d {
            state.accumulate(start, c);
        } else if d < state.dist[start.index()] {
            state.relax(start, d, c);
            buckets.push((d - base) as usize, start.0);
        }
        // d > recorded: a longer seeded class to the same start; its paths
        // are not shortest and contribute nothing.
    }
    base
}

/// What a count-subtraction pass concluded.
pub(crate) enum SubtractOutcome {
    /// The cone was saturation-free and every buffered edit was applied.
    Done,
    /// A saturated (24-bit-capped) count was met — nothing was written;
    /// the caller must demote the hub to the re-label regime.
    Demote,
}

/// The decremental mirror of [`multi_source_pass`]: one traversal
/// *subtracts* everything a whole window of edge deletions removed from
/// hub `vk`'s shortest-path counts.
///
/// Exactness rests on the **last-old-edge decomposition** — the dual of
/// the insertion engine's first-new-edge one. Every `vk`-maximal
/// pre-window shortest path that crossed at least one deleted edge splits
/// uniquely at its *last* crossing `(a_o, b_i)`: an arbitrary pre-window
/// shortest prefix to `a_o` (counted exactly by the hub's *pre-window*
/// seed entry, snapshotted before any repair) plus a suffix that crosses
/// no deleted edge — which is exactly what the traversal walks, because
/// all window edges are already gone from the graph. Summing over seeds
/// therefore counts each vanished path once, no matter how many deleted
/// edges it crossed.
///
/// Only applicable to hubs whose distances survived the window (the
/// count-repair regime): every reached entry is decremented where its
/// stored distance matches the traversal's, removed when the count hits
/// zero. Edits are buffered and applied only when the whole merged cone
/// is saturation-free; otherwise nothing is written and
/// [`SubtractOutcome::Demote`] tells the caller to re-label instead.
#[allow(clippy::too_many_arguments)]
pub(crate) fn multi_source_subtract(
    graph: &DiGraph,
    ranks: &RankTable,
    labels: &mut Labels,
    inverted: &mut Option<InvertedIndex>,
    state: &mut SearchState,
    cache: &mut HubCache,
    buckets: &mut BucketQueue,
    direction: Direction,
    vk_rank: u32,
    vk: VertexId,
    seeds: &[Seed],
    report: &mut UpdateReport,
) -> SubtractOutcome {
    debug_assert!(!seeds.is_empty());
    if seeds.iter().any(|&(_, _, c)| c >= MAX_COUNT) {
        return SubtractOutcome::Demote;
    }
    let (own_side, target_side) = direction.sides();
    fill_hub_cache(labels, cache, vk, vk_rank, own_side);
    let base = seed_buckets(state, buckets, seeds);

    // (vertex, remaining count) edits; remaining == 0 removes the entry.
    let mut edits: Vec<(VertexId, u64)> = Vec::new();
    let mut level = 0usize;
    while level < buckets.depth() {
        let mut i = 0usize;
        while i < buckets.len_at(level) {
            let w = VertexId(buckets.at(level, i));
            i += 1;
            let dw = base + level as u32;
            if state.dist[w.index()] != dw {
                continue;
            }
            let cw = state.count[w.index()];
            report.vertices_visited += 1;

            // Prune where the crossing paths are not shortest: distances
            // only exceed `sd` deeper in the cone, so nothing there needs
            // subtraction either.
            if dw > covered_dist(labels, cache, vk_rank, w, target_side) {
                continue;
            }

            if let Some(e) = labels.entry_for(w, target_side, vk_rank) {
                if e.dist() == dw {
                    if e.count_saturated() {
                        return SubtractOutcome::Demote;
                    }
                    edits.push((w, e.count().saturating_sub(cw)));
                }
            }

            let nbrs = match direction {
                Direction::Forward => graph.nbr_out(w),
                Direction::Backward => graph.nbr_in(w),
            };
            for &u in nbrs {
                let u = VertexId(u);
                if !state.visited(u) {
                    if vk_rank < ranks.rank(u) {
                        state.visit(u, dw + 1, cw);
                        buckets.push((dw + 1 - base) as usize, u.0);
                    }
                } else if state.dist[u.index()] == dw + 1 {
                    state.accumulate(u, cw);
                }
                // dist[u] < dw + 1: the class through w is not shortest at
                // u; its counts were already excluded there. dist[u] >
                // dw + 1 cannot happen — subtraction seeds sit at exact
                // pre-window distances, so no downward relaxation exists.
            }
        }
        level += 1;
    }

    for (w, remaining) in edits {
        if remaining == 0 {
            labels.remove(w, target_side, vk_rank);
            if let Some(inv) = inverted {
                inv.remove(target_side, vk_rank, w);
            }
            report.entries_removed += 1;
        } else {
            let e = labels
                .entry_for(w, target_side, vk_rank)
                .expect("buffered edit targets an existing entry");
            let updated = LabelEntry::new_unchecked(vk_rank, e.dist(), remaining);
            labels.upsert(w, target_side, updated);
            report.entries_updated += 1;
        }
    }
    SubtractOutcome::Done
}
