//! Inverted hub indexes (`inv_in` / `inv_out`, Section V-A).
//!
//! `inv_in[r]` lists the vertices whose in-label contains the hub ranked
//! `r`; `inv_out[r]` the same for out-labels. They let edge deletion and
//! `CLEAN_LABEL` find all entries of an affected hub in output-sensitive
//! time instead of scanning every label list. The paper constructs them
//! during initial index creation; we maintain them across updates.
//!
//! Lists are kept sorted so membership updates are `O(log k)` and the
//! structure can be diffed deterministically in tests.

use csc_graph::VertexId;
use csc_labeling::{LabelSide, Labels};

/// Both inverted indexes, keyed by hub rank.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InvertedIndex {
    inv_in: Vec<Vec<u32>>,
    inv_out: Vec<Vec<u32>>,
}

impl InvertedIndex {
    /// Creates empty inverted indexes for `n` ranks.
    pub fn new(n: usize) -> Self {
        InvertedIndex {
            inv_in: vec![Vec::new(); n],
            inv_out: vec![Vec::new(); n],
        }
    }

    /// Builds the inverted indexes from existing labels (initial creation).
    pub fn from_labels(labels: &Labels) -> Self {
        let n = labels.vertex_count();
        let mut inv = InvertedIndex::new(n);
        for v in 0..n as u32 {
            let v = VertexId(v);
            for e in labels.in_of(v) {
                inv.inv_in[e.hub_rank() as usize].push(v.0);
            }
            for e in labels.out_of(v) {
                inv.inv_out[e.hub_rank() as usize].push(v.0);
            }
        }
        // Vertex ids were visited in ascending order, so lists are sorted.
        inv
    }

    /// Number of ranks covered.
    pub fn rank_count(&self) -> usize {
        self.inv_in.len()
    }

    /// Grows to cover one more rank.
    pub fn push_rank(&mut self) {
        self.inv_in.push(Vec::new());
        self.inv_out.push(Vec::new());
    }

    /// Heap bytes held by both inverted indexes (outer spines plus every
    /// per-rank list's capacity) — memory-budget accounting.
    pub fn heap_bytes(&self) -> usize {
        let list = |lists: &Vec<Vec<u32>>| {
            lists.capacity() * std::mem::size_of::<Vec<u32>>()
                + lists
                    .iter()
                    .map(|l| l.capacity() * std::mem::size_of::<u32>())
                    .sum::<usize>()
        };
        list(&self.inv_in) + list(&self.inv_out)
    }

    fn side(&self, side: LabelSide) -> &Vec<Vec<u32>> {
        match side {
            LabelSide::In => &self.inv_in,
            LabelSide::Out => &self.inv_out,
        }
    }

    fn side_mut(&mut self, side: LabelSide) -> &mut Vec<Vec<u32>> {
        match side {
            LabelSide::In => &mut self.inv_in,
            LabelSide::Out => &mut self.inv_out,
        }
    }

    /// The vertices whose `side` label contains hub rank `r` (sorted).
    pub fn carriers(&self, side: LabelSide, r: u32) -> &[u32] {
        &self.side(side)[r as usize]
    }

    /// Records that `v`'s `side` label now contains hub rank `r`.
    /// Idempotent.
    pub fn add(&mut self, side: LabelSide, r: u32, v: VertexId) {
        let list = &mut self.side_mut(side)[r as usize];
        if let Err(pos) = list.binary_search(&v.0) {
            list.insert(pos, v.0);
        }
    }

    /// Records that `v`'s `side` label no longer contains hub rank `r`.
    pub fn remove(&mut self, side: LabelSide, r: u32, v: VertexId) {
        let list = &mut self.side_mut(side)[r as usize];
        if let Ok(pos) = list.binary_search(&v.0) {
            list.remove(pos);
        }
    }

    /// Total inverted entries (should equal the label entry count).
    pub fn total_entries(&self) -> usize {
        let a: usize = self.inv_in.iter().map(Vec::len).sum();
        let b: usize = self.inv_out.iter().map(Vec::len).sum();
        a + b
    }

    /// Verifies that the inverted indexes exactly mirror `labels`.
    pub fn validate_against(&self, labels: &Labels) -> Result<(), String> {
        let rebuilt = InvertedIndex::from_labels(labels);
        if rebuilt.inv_in != self.inv_in {
            return Err("inv_in diverges from labels".into());
        }
        if rebuilt.inv_out != self.inv_out {
            return Err("inv_out diverges from labels".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csc_labeling::LabelEntry;

    fn e(h: u32, d: u32, c: u64) -> LabelEntry {
        LabelEntry::new(h, d, c).unwrap()
    }

    #[test]
    fn from_labels_mirrors() {
        let mut labels = Labels::new(3);
        labels.append(VertexId(0), LabelSide::In, e(0, 0, 1));
        labels.append(VertexId(1), LabelSide::In, e(0, 1, 1));
        labels.append(VertexId(1), LabelSide::Out, e(0, 2, 1));
        labels.append(VertexId(2), LabelSide::In, e(0, 2, 2));
        let inv = InvertedIndex::from_labels(&labels);
        assert_eq!(inv.carriers(LabelSide::In, 0), &[0, 1, 2]);
        assert_eq!(inv.carriers(LabelSide::Out, 0), &[1]);
        assert_eq!(inv.total_entries(), labels.total_entries());
        inv.validate_against(&labels).unwrap();
    }

    #[test]
    fn add_remove_keep_sorted() {
        let mut inv = InvertedIndex::new(2);
        inv.add(LabelSide::In, 1, VertexId(5));
        inv.add(LabelSide::In, 1, VertexId(2));
        inv.add(LabelSide::In, 1, VertexId(5)); // idempotent
        assert_eq!(inv.carriers(LabelSide::In, 1), &[2, 5]);
        inv.remove(LabelSide::In, 1, VertexId(2));
        assert_eq!(inv.carriers(LabelSide::In, 1), &[5]);
        inv.remove(LabelSide::In, 1, VertexId(99)); // absent: no-op
        assert_eq!(inv.total_entries(), 1);
    }

    #[test]
    fn validate_catches_divergence() {
        let mut labels = Labels::new(1);
        labels.append(VertexId(0), LabelSide::In, e(0, 0, 1));
        let mut inv = InvertedIndex::new(1);
        assert!(inv.validate_against(&labels).is_err());
        inv.add(LabelSide::In, 0, VertexId(0));
        inv.validate_against(&labels).unwrap();
    }

    #[test]
    fn push_rank_grows() {
        let mut inv = InvertedIndex::new(1);
        inv.push_rank();
        assert_eq!(inv.rank_count(), 2);
        inv.add(LabelSide::Out, 1, VertexId(0));
        assert_eq!(inv.carriers(LabelSide::Out, 1), &[0]);
    }
}
