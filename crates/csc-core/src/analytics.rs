//! Graph-level analytics over the index: batch updates, vertex retirement,
//! girth, and the top-k screening primitive behind the fraud case study.
//!
//! Whole-graph sweeps (`girth`, `top_k_by_cycle_count`) exist on both
//! [`CscIndex`] (sequential, over the live nested labels) and
//! [`SnapshotIndex`] (parallel, over the frozen arena). Prefer the
//! snapshot variants for analytics: they see an immutable state, never
//! block a writer, and fan the per-vertex label intersections out across
//! cores.

use crate::error::CscError;
use crate::index::CscIndex;
use crate::snapshot::SnapshotIndex;
use crate::stats::UpdateReport;
use csc_graph::VertexId;
use csc_labeling::CycleCount;

/// A vertex together with its shortest-cycle profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VertexCycles {
    /// The vertex.
    pub vertex: VertexId,
    /// Its shortest-cycle length and count.
    pub cycles: CycleCount,
}

impl CscIndex {
    /// Inserts a batch of edges, aggregating the per-edge reports.
    ///
    /// Stops at the first error (earlier edges stay applied — the index
    /// remains consistent, mirroring a partially applied stream).
    pub fn insert_edges(
        &mut self,
        edges: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> Result<UpdateReport, CscError> {
        let mut total = UpdateReport::default();
        for (a, b) in edges {
            let r = self.insert_edge(a, b)?;
            total.entries_inserted += r.entries_inserted;
            total.entries_updated += r.entries_updated;
            total.entries_removed += r.entries_removed;
            total.affected_hubs += r.affected_hubs;
            total.vertices_visited += r.vertices_visited;
            total.duration += r.duration;
        }
        Ok(total)
    }

    /// Removes a batch of edges, aggregating the per-edge reports.
    pub fn remove_edges(
        &mut self,
        edges: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> Result<UpdateReport, CscError> {
        let mut total = UpdateReport::default();
        for (a, b) in edges {
            let r = self.remove_edge(a, b)?;
            total.entries_inserted += r.entries_inserted;
            total.entries_updated += r.entries_updated;
            total.entries_removed += r.entries_removed;
            total.affected_hubs += r.affected_hubs;
            total.vertices_visited += r.vertices_visited;
            total.duration += r.duration;
        }
        Ok(total)
    }

    /// Retires a vertex by removing all of its incident edges (the paper's
    /// reduction of vertex deletion to edge deletions, Section II-A). The
    /// vertex id remains valid but isolated; its queries return `None`.
    pub fn retire_vertex(&mut self, v: VertexId) -> Result<UpdateReport, CscError> {
        self.check_ready()?;
        let n = self.original_vertex_count();
        if v.index() >= n {
            return Err(csc_graph::GraphError::VertexOutOfRange { vertex: v, n }.into());
        }
        let g = self.original_graph();
        let out: Vec<_> = g.nbr_out(v).iter().map(|&w| (v, VertexId(w))).collect();
        let inn: Vec<_> = g.nbr_in(v).iter().map(|&u| (VertexId(u), v)).collect();
        let mut report = self.remove_edges(out)?;
        let r2 = self.remove_edges(inn)?;
        report.entries_inserted += r2.entries_inserted;
        report.entries_updated += r2.entries_updated;
        report.entries_removed += r2.entries_removed;
        report.affected_hubs += r2.affected_hubs;
        report.vertices_visited += r2.vertices_visited;
        report.duration += r2.duration;
        Ok(report)
    }

    /// The girth of the indexed graph — the globally shortest cycle length
    /// — together with the total number of shortest-cycle *incidences*
    /// (vertices realizing it). `None` for acyclic graphs.
    ///
    /// One index query per vertex: `O(n)` label intersections.
    pub fn girth(&self) -> Option<(u32, usize)> {
        girth_fold((0..self.original_vertex_count() as u32).map(|v| self.query(VertexId(v))))
    }

    /// The `k` most cycle-laden vertices among those whose shortest cycle
    /// is at most `max_length` — the screening primitive of the fraud case
    /// study (count descending, then length ascending, then id).
    pub fn top_k_by_cycle_count(&self, k: usize, max_length: u32) -> Vec<VertexCycles> {
        rank_by_cycle_count(
            (0..self.original_vertex_count() as u32).map(|v| self.query(VertexId(v))),
            k,
            max_length,
        )
    }
}

/// Shared girth accumulator: minimum cycle length and how many vertices
/// realize it, over per-vertex `SCCnt` results in id order.
pub(crate) fn girth_fold(
    results: impl Iterator<Item = Option<CycleCount>>,
) -> Option<(u32, usize)> {
    let mut best: Option<(u32, usize)> = None;
    for c in results.flatten() {
        best = Some(match best {
            None => (c.length, 1),
            Some((b, _)) if c.length < b => (c.length, 1),
            Some((b, k)) if c.length == b => (b, k + 1),
            Some(keep) => keep,
        });
    }
    best
}

/// Shared top-k screening: filter by `max_length`, order by count
/// descending / length ascending / vertex id, truncate to `k`. Takes
/// per-vertex `SCCnt` results in id order.
pub(crate) fn rank_by_cycle_count(
    results: impl Iterator<Item = Option<CycleCount>>,
    k: usize,
    max_length: u32,
) -> Vec<VertexCycles> {
    let mut all: Vec<VertexCycles> = results
        .enumerate()
        .filter_map(|(v, c)| {
            c.map(|cycles| VertexCycles {
                vertex: VertexId(v as u32),
                cycles,
            })
        })
        .filter(|vc| vc.cycles.length <= max_length)
        .collect();
    all.sort_by(|a, b| {
        b.cycles
            .count
            .cmp(&a.cycles.count)
            .then(a.cycles.length.cmp(&b.cycles.length))
            .then(a.vertex.cmp(&b.vertex))
    });
    all.truncate(k);
    all
}

impl SnapshotIndex {
    /// The girth and shortest-cycle incidence count of the snapshotted
    /// graph (same contract as [`CscIndex::girth`]), with the `O(n)` label
    /// intersections evaluated in parallel on the frozen arena.
    pub fn girth(&self) -> Option<(u32, usize)> {
        girth_fold(self.query_all().into_iter())
    }

    /// The `k` most cycle-laden vertices among those whose shortest cycle
    /// is at most `max_length` (same contract and ordering as
    /// [`CscIndex::top_k_by_cycle_count`]), with the per-vertex queries
    /// evaluated in parallel on the frozen arena.
    pub fn top_k_by_cycle_count(&self, k: usize, max_length: u32) -> Vec<VertexCycles> {
        rank_by_cycle_count(self.query_all().into_iter(), k, max_length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CscConfig;
    use csc_graph::generators::{directed_cycle, gnm, laundering_network, LaunderingParams};
    use csc_graph::traversal::shortest_cycle_oracle;
    use csc_graph::DiGraph;

    #[test]
    fn batch_updates_aggregate() {
        let g = DiGraph::new(4);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let edges = [(0u32, 1u32), (1, 2), (2, 3), (3, 0)];
        let report = idx
            .insert_edges(edges.iter().map(|&(a, b)| (VertexId(a), VertexId(b))))
            .unwrap();
        assert!(report.entries_inserted > 0);
        assert_eq!(idx.query(VertexId(0)).unwrap().length, 4);
        let report = idx.remove_edges([(VertexId(3), VertexId(0))]).unwrap();
        assert!(report.entries_removed > 0);
        assert_eq!(idx.query(VertexId(0)), None);
    }

    #[test]
    fn batch_error_keeps_prior_edges() {
        let g = DiGraph::new(3);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let result = idx.insert_edges([
            (VertexId(0), VertexId(1)),
            (VertexId(1), VertexId(1)), // self-loop: fails here
            (VertexId(1), VertexId(2)),
        ]);
        assert!(result.is_err());
        assert!(idx.contains_edge(VertexId(0), VertexId(1)));
        assert!(!idx.contains_edge(VertexId(1), VertexId(2)));
        assert!(!idx.is_poisoned(), "graph-level errors never poison");
    }

    #[test]
    fn retire_vertex_isolates_and_stays_exact() {
        let mut g = gnm(14, 50, 3);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let victim = VertexId(5);
        idx.retire_vertex(victim).unwrap();
        for &w in g.nbr_out(victim).to_vec().iter() {
            g.try_remove_edge(victim, VertexId(w)).unwrap();
        }
        for &u in g.nbr_in(victim).to_vec().iter() {
            g.try_remove_edge(VertexId(u), victim).unwrap();
        }
        assert_eq!(idx.query(victim), None);
        for v in g.vertices() {
            assert_eq!(
                idx.query(v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&g, v),
                "post-retirement SCCnt({v})"
            );
        }
        assert!(matches!(
            idx.retire_vertex(VertexId(99)),
            Err(CscError::Graph(_))
        ));
    }

    #[test]
    fn girth_via_index() {
        let idx = CscIndex::build(&directed_cycle(5), CscConfig::default()).unwrap();
        assert_eq!(idx.girth(), Some((5, 5)));
        let dag = DiGraph::from_edges(3, vec![(0, 1), (1, 2)]);
        let idx = CscIndex::build(&dag, CscConfig::default()).unwrap();
        assert_eq!(idx.girth(), None);
        // Cross-check against the brute-force girth on a random graph.
        let g = gnm(25, 70, 8);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        assert_eq!(idx.girth(), csc_graph::enumerate::girth(&g));
    }

    #[test]
    fn snapshot_sweeps_match_live_index() {
        let g = gnm(60, 240, 13);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let snap = idx.freeze();
        assert_eq!(snap.girth(), idx.girth());
        assert_eq!(
            snap.top_k_by_cycle_count(10, u32::MAX),
            idx.top_k_by_cycle_count(10, u32::MAX)
        );
        assert_eq!(
            snap.top_k_by_cycle_count(3, 4),
            idx.top_k_by_cycle_count(3, 4)
        );
    }

    #[test]
    fn top_k_screening_finds_planted_rings() {
        let net = laundering_network(
            LaunderingParams {
                accounts: 600,
                background_edges: 1200,
                criminals: 4,
                cycles_per_criminal: 7,
                cycle_len: 4,
            },
            5,
        );
        let idx = CscIndex::build(&net.graph, CscConfig::default()).unwrap();
        let top = idx.top_k_by_cycle_count(4, net.cycle_len);
        assert_eq!(top.len(), 4);
        let planted: std::collections::HashSet<u32> = net.criminals.iter().map(|c| c.0).collect();
        let hits = top
            .iter()
            .filter(|vc| planted.contains(&vc.vertex.0))
            .count();
        assert!(hits >= 3, "screening recovered only {hits}/4 rings");
        // Ordered by count descending.
        for w in top.windows(2) {
            assert!(w[0].cycles.count >= w[1].cycles.count);
        }
    }
}
