//! CSC index construction: Algorithms 3–4 (bipartite hub labeling with
//! couple-vertex skipping).
//!
//! Only `V_in` vertices ever act as hubs: on any `v_o ~> v_i` path the
//! highest-ranked vertex is always an incoming vertex, because every
//! interior outgoing vertex is immediately preceded by its (higher-ranked)
//! couple and the source `v_o` is outranked by the target `v_i`. A hub's
//! forward BFS therefore only ever *queues* `V_in` vertices: when `w_i` is
//! dequeued and labeled, its couple `w_o` is labeled in the same step at
//! distance `+1` with the same count (every path into `w_o` runs through
//! `w_i`), and expansion continues from `w_o`'s out-neighbors. The backward
//! BFS mirrors this on `V_out`, with one special case: reaching the hub's
//! own couple `u_o` means a cycle closed back to the hub — the entry goes
//! into `L_out(u_o)` (this is exactly the entry a cycle query reads) and the
//! traversal prunes there, since the only backward continuation would
//! re-enter the hub.
//!
//! The same traversal, switched from append-only to upsert mode, is the
//! re-labeling pass of decremental maintenance (`csc-core::delete`).

use crate::config::ParallelismConfig;
use crate::invert::InvertedIndex;
use crate::parallel::par_map_indexed;
use csc_graph::bipartite::{couple, is_in_vertex};
use csc_graph::{Csr, DiGraph, RankTable, VertexId, WorkspacePool};
use csc_labeling::{HubCache, LabelEntry, LabelSide, LabelingError, Labels, SearchState, INF};

/// Adjacency access abstraction: the static build runs over a cache-friendly
/// [`Csr`] snapshot, while dynamic maintenance traverses the live
/// [`DiGraph`].
pub(crate) trait Adjacency {
    /// Out-neighbors of `v`.
    fn succ(&self, v: VertexId) -> &[u32];
    /// In-neighbors of `v`.
    fn pred(&self, v: VertexId) -> &[u32];
}

impl Adjacency for Csr {
    #[inline]
    fn succ(&self, v: VertexId) -> &[u32] {
        self.nbr_out(v)
    }
    #[inline]
    fn pred(&self, v: VertexId) -> &[u32] {
        self.nbr_in(v)
    }
}

impl Adjacency for DiGraph {
    #[inline]
    fn succ(&self, v: VertexId) -> &[u32] {
        self.nbr_out(v)
    }
    #[inline]
    fn pred(&self, v: VertexId) -> &[u32] {
        self.nbr_in(v)
    }
}

/// How label writes behave.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WriteMode {
    /// Push entries in hub-rank order (static construction: each hub's rank
    /// exceeds all previously appended ones).
    Append,
    /// Insert-or-replace, skipping writes whose value is unchanged
    /// (decremental re-labeling).
    Upsert,
}

/// Counters for one or more traversals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct TraversalCounters {
    pub inserted: usize,
    pub updated: usize,
    pub unchanged: usize,
    pub pruned: usize,
    pub dequeues: usize,
    pub canonical: usize,
    pub non_canonical: usize,
    pub saturated: usize,
}

impl TraversalCounters {
    /// Folds another counter set (e.g. one worker's compute-phase
    /// counters) into this one.
    pub(crate) fn merge(&mut self, other: &TraversalCounters) {
        self.inserted += other.inserted;
        self.updated += other.updated;
        self.unchanged += other.unchanged;
        self.pruned += other.pruned;
        self.dequeues += other.dequeues;
        self.canonical += other.canonical;
        self.non_canonical += other.non_canonical;
        self.saturated += other.saturated;
    }
}

/// One dequeued vertex of a buffered hub traversal: stands for the label
/// entry `(w, d, c)` plus — couple skipping — the couple's entry at
/// distance `d + 1`, exactly as the direct traversal would have written.
#[derive(Clone, Copy, Debug)]
pub(crate) struct VisitGroup {
    w: VertexId,
    dw: u32,
    cw: u64,
    /// The prune scan tied (`d_idx == dw`) against the compute-time label
    /// view: the entry is non-canonical. Recomputed at commit time when
    /// validation is on.
    tie: bool,
}

/// The reusable couple-skipping traversal engine.
pub(crate) struct CoupleBfs {
    state: SearchState,
    cache: HubCache,
}

impl CoupleBfs {
    pub(crate) fn new(n: usize) -> Self {
        CoupleBfs {
            state: SearchState::new(n),
            cache: HubCache::new(n),
        }
    }

    pub(crate) fn ensure(&mut self, n: usize) {
        self.state.ensure(n);
        self.cache.ensure(n);
    }

    /// Splits the workspace into its BFS state and hub cache (used by the
    /// plain — non-couple-skipping — maintenance passes).
    pub(crate) fn parts_mut(&mut self) -> (&mut SearchState, &mut HubCache) {
        (&mut self.state, &mut self.cache)
    }

    /// Heap bytes held by the BFS state and hub cache (memory-budget
    /// accounting).
    pub(crate) fn heap_bytes(&self) -> usize {
        self.state.heap_bytes() + self.cache.heap_bytes()
    }

    /// Writes one entry according to `mode`, maintaining the inverted index
    /// and counters. Returns the error on capacity overflow.
    #[allow(clippy::too_many_arguments)]
    fn write(
        labels: &mut Labels,
        inverted: Option<&mut InvertedIndex>,
        counters: &mut TraversalCounters,
        mode: WriteMode,
        v: VertexId,
        side: LabelSide,
        hub: VertexId,
        hub_rank: u32,
        dist: u32,
        count: u64,
    ) -> Result<(), LabelingError> {
        let entry =
            LabelEntry::new(hub_rank, dist, count).map_err(|source| LabelingError::Entry {
                hub,
                vertex: v,
                source,
            })?;
        if entry.count_saturated() {
            counters.saturated += 1;
        }
        match mode {
            WriteMode::Append => {
                labels.append(v, side, entry);
                counters.inserted += 1;
                if let Some(inv) = inverted {
                    inv.add(side, hub_rank, v);
                }
            }
            WriteMode::Upsert => {
                if labels.entry_for(v, side, hub_rank) == Some(entry) {
                    counters.unchanged += 1;
                    return Ok(());
                }
                match labels.upsert(v, side, entry) {
                    Some(_) => counters.updated += 1,
                    None => {
                        counters.inserted += 1;
                        if let Some(inv) = inverted {
                            inv.add(side, hub_rank, v);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Forward traversal from `hub` (must be a `V_in` vertex): produces the
    /// in-labels `(hub, d, c)` of every vertex for which `hub` is the
    /// highest-ranked vertex on at least one shortest `hub ~> ·` path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_in(
        &mut self,
        graph: &impl Adjacency,
        ranks: &RankTable,
        labels: &mut Labels,
        mut inverted: Option<&mut InvertedIndex>,
        counters: &mut TraversalCounters,
        hub: VertexId,
        mode: WriteMode,
    ) -> Result<(), LabelingError> {
        debug_assert!(is_in_vertex(hub), "hubs must be incoming vertices");
        let hub_rank = ranks.rank(hub);

        // Scatter the hub's out-labels for the O(|label|) distance check.
        self.cache.begin();
        for e in labels.out_of(hub) {
            self.cache.put(e.hub_rank(), e.dist(), e.count());
        }
        self.cache.put(hub_rank, 0, 1);

        let state = &mut self.state;
        state.reset();
        state.visit(hub, 0, 1);
        state.queue.push_back(hub.0);

        while let Some(w) = state.queue.pop_front() {
            let w = VertexId(w); // always in V_in
            let dw = state.dist[w.index()];
            let cw = state.count[w.index()];
            counters.dequeues += 1;

            // Shortest hub ~> w distance through strictly higher-ranked
            // hubs. Lists are rank-sorted and the cache never holds a rank
            // above the traversal hub's, so the scan stops at the prefix.
            let mut d_idx = INF;
            for e in labels.in_of(w) {
                if e.hub_rank() > hub_rank {
                    break;
                }
                if let Some((dh, _)) = self.cache.get(e.hub_rank()) {
                    d_idx = d_idx.min(dh + e.dist());
                }
            }
            if d_idx < dw {
                counters.pruned += 1;
                continue;
            }
            if d_idx == dw {
                counters.non_canonical += 2;
            } else {
                counters.canonical += 2;
            }

            // Label w and, via couple skipping, its outgoing couple.
            let wo = couple(w);
            Self::write(
                labels,
                inverted.as_deref_mut(),
                counters,
                mode,
                w,
                LabelSide::In,
                hub,
                hub_rank,
                dw,
                cw,
            )?;
            Self::write(
                labels,
                inverted.as_deref_mut(),
                counters,
                mode,
                wo,
                LabelSide::In,
                hub,
                hub_rank,
                dw + 1,
                cw,
            )?;

            state.visit(wo, dw + 1, cw);
            for &u in graph.succ(wo) {
                let u = VertexId(u); // back in V_in
                if !state.visited(u) {
                    if hub_rank < ranks.rank(u) {
                        state.visit(u, dw + 2, cw);
                        state.queue.push_back(u.0);
                    }
                } else if state.dist[u.index()] == dw + 2 {
                    state.accumulate(u, cw);
                }
            }
        }
        Ok(())
    }

    /// Backward traversal from `hub` (a `V_in` vertex): produces out-labels.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_out(
        &mut self,
        graph: &impl Adjacency,
        ranks: &RankTable,
        labels: &mut Labels,
        mut inverted: Option<&mut InvertedIndex>,
        counters: &mut TraversalCounters,
        hub: VertexId,
        mode: WriteMode,
    ) -> Result<(), LabelingError> {
        debug_assert!(is_in_vertex(hub), "hubs must be incoming vertices");
        let hub_rank = ranks.rank(hub);
        let hub_couple = couple(hub);

        self.cache.begin();
        for e in labels.in_of(hub) {
            self.cache.put(e.hub_rank(), e.dist(), e.count());
        }
        self.cache.put(hub_rank, 0, 1);

        let state = &mut self.state;
        state.reset();
        state.visit(hub, 0, 1);
        counters.dequeues += 1;
        counters.canonical += 1;
        Self::write(
            labels,
            inverted.as_deref_mut(),
            counters,
            mode,
            hub,
            LabelSide::Out,
            hub,
            hub_rank,
            0,
            1,
        )?;
        for &xo in graph.pred(hub) {
            let xo = VertexId(xo); // in V_out (self-loops are impossible)
            if hub_rank < ranks.rank(xo) {
                state.visit(xo, 1, 1);
                state.queue.push_back(xo.0);
            }
        }

        while let Some(w) = state.queue.pop_front() {
            let w = VertexId(w); // always in V_out
            let dw = state.dist[w.index()];
            let cw = state.count[w.index()];
            counters.dequeues += 1;

            let mut d_idx = INF;
            for e in labels.out_of(w) {
                if e.hub_rank() > hub_rank {
                    break;
                }
                if let Some((dh, _)) = self.cache.get(e.hub_rank()) {
                    d_idx = d_idx.min(e.dist() + dh);
                }
            }
            if d_idx < dw {
                counters.pruned += 1;
                continue;
            }

            Self::write(
                labels,
                inverted.as_deref_mut(),
                counters,
                mode,
                w,
                LabelSide::Out,
                hub,
                hub_rank,
                dw,
                cw,
            )?;
            if w == hub_couple {
                // The traversal closed a cycle back onto the hub's couple:
                // this entry is the one SCCnt queries read. Continuing
                // backward would re-enter the hub, so prune here.
                counters.canonical += 1;
                continue;
            }
            if d_idx == dw {
                counters.non_canonical += 2;
            } else {
                counters.canonical += 2;
            }

            let wi = couple(w);
            Self::write(
                labels,
                inverted.as_deref_mut(),
                counters,
                mode,
                wi,
                LabelSide::Out,
                hub,
                hub_rank,
                dw + 1,
                cw,
            )?;
            state.visit(wi, dw + 1, cw);
            for &yo in graph.pred(wi) {
                let yo = VertexId(yo); // in V_out
                if !state.visited(yo) {
                    if hub_rank < ranks.rank(yo) {
                        state.visit(yo, dw + 2, cw);
                        state.queue.push_back(yo.0);
                    }
                } else if state.dist[yo.index()] == dw + 2 {
                    state.accumulate(yo, cw);
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Buffered (compute/commit) form of the same traversals.
    //
    // `collect_in` / `collect_out` run the identical BFS against an
    // *immutable* label view and buffer the would-be writes;
    // `commit_in` / `commit_out` apply a buffer to the store. Within one
    // hub's traversal the direct form never reads its own writes (the
    // prune scan at a vertex runs before that vertex's write, couples are
    // never dequeued on their writing side, and the hub cache is
    // scattered once up front), so collect-then-commit over the same
    // label state is behaviorally identical to the direct form.
    //
    // The parallel build and repair waves exploit this: a wave of hubs is
    // collected concurrently against the pre-wave labels, then committed
    // in rank order. Because a wave member's compute view may be missing
    // the writes of same-wave higher-ranked hubs, its pruning can only be
    // *weaker* than sequential (label writes are monotone under Append
    // and Upsert — entries are only added or improved, so more committed
    // labels mean more pruning, never less). Committing with
    // `validate: true` re-runs the prune scan against the
    // fully-committed prefix and drops every group the sequential pass
    // would have pruned; dropped groups take their whole buffered
    // subtree with them (coverage at a vertex extends to everything it
    // expanded to, at strictly smaller slack), so the surviving entries
    // — distances *and* counts — match the sequential execution exactly.
    // ------------------------------------------------------------------

    /// Buffered [`run_in`](Self::run_in): identical traversal, reads
    /// `labels` immutably, returns the visit groups instead of writing.
    pub(crate) fn collect_in(
        &mut self,
        graph: &impl Adjacency,
        ranks: &RankTable,
        labels: &Labels,
        counters: &mut TraversalCounters,
        hub: VertexId,
    ) -> Vec<VisitGroup> {
        debug_assert!(is_in_vertex(hub), "hubs must be incoming vertices");
        let hub_rank = ranks.rank(hub);
        let mut groups = Vec::new();

        self.cache.begin();
        for e in labels.out_of(hub) {
            self.cache.put(e.hub_rank(), e.dist(), e.count());
        }
        self.cache.put(hub_rank, 0, 1);

        let state = &mut self.state;
        state.reset();
        state.visit(hub, 0, 1);
        state.queue.push_back(hub.0);

        while let Some(w) = state.queue.pop_front() {
            let w = VertexId(w);
            let dw = state.dist[w.index()];
            let cw = state.count[w.index()];
            counters.dequeues += 1;

            let mut d_idx = INF;
            for e in labels.in_of(w) {
                if e.hub_rank() > hub_rank {
                    break;
                }
                if let Some((dh, _)) = self.cache.get(e.hub_rank()) {
                    d_idx = d_idx.min(dh + e.dist());
                }
            }
            if d_idx < dw {
                counters.pruned += 1;
                continue;
            }
            groups.push(VisitGroup {
                w,
                dw,
                cw,
                tie: d_idx == dw,
            });

            let wo = couple(w);
            state.visit(wo, dw + 1, cw);
            for &u in graph.succ(wo) {
                let u = VertexId(u);
                if !state.visited(u) {
                    if hub_rank < ranks.rank(u) {
                        state.visit(u, dw + 2, cw);
                        state.queue.push_back(u.0);
                    }
                } else if state.dist[u.index()] == dw + 2 {
                    state.accumulate(u, cw);
                }
            }
        }
        groups
    }

    /// Buffered [`run_out`](Self::run_out). The hub's own out-entry is
    /// not buffered (it is unconditional); [`commit_out`](Self::commit_out)
    /// writes it.
    pub(crate) fn collect_out(
        &mut self,
        graph: &impl Adjacency,
        ranks: &RankTable,
        labels: &Labels,
        counters: &mut TraversalCounters,
        hub: VertexId,
    ) -> Vec<VisitGroup> {
        debug_assert!(is_in_vertex(hub), "hubs must be incoming vertices");
        let hub_rank = ranks.rank(hub);
        let hub_couple = couple(hub);
        let mut groups = Vec::new();

        self.cache.begin();
        for e in labels.in_of(hub) {
            self.cache.put(e.hub_rank(), e.dist(), e.count());
        }
        self.cache.put(hub_rank, 0, 1);

        let state = &mut self.state;
        state.reset();
        state.visit(hub, 0, 1);
        counters.dequeues += 1;
        for &xo in graph.pred(hub) {
            let xo = VertexId(xo);
            if hub_rank < ranks.rank(xo) {
                state.visit(xo, 1, 1);
                state.queue.push_back(xo.0);
            }
        }

        while let Some(w) = state.queue.pop_front() {
            let w = VertexId(w);
            let dw = state.dist[w.index()];
            let cw = state.count[w.index()];
            counters.dequeues += 1;

            let mut d_idx = INF;
            for e in labels.out_of(w) {
                if e.hub_rank() > hub_rank {
                    break;
                }
                if let Some((dh, _)) = self.cache.get(e.hub_rank()) {
                    d_idx = d_idx.min(e.dist() + dh);
                }
            }
            if d_idx < dw {
                counters.pruned += 1;
                continue;
            }
            groups.push(VisitGroup {
                w,
                dw,
                cw,
                tie: d_idx == dw,
            });
            if w == hub_couple {
                // Cycle closure: the direct form prunes here too.
                continue;
            }

            let wi = couple(w);
            state.visit(wi, dw + 1, cw);
            for &yo in graph.pred(wi) {
                let yo = VertexId(yo);
                if !state.visited(yo) {
                    if hub_rank < ranks.rank(yo) {
                        state.visit(yo, dw + 2, cw);
                        state.queue.push_back(yo.0);
                    }
                } else if state.dist[yo.index()] == dw + 2 {
                    state.accumulate(yo, cw);
                }
            }
        }
        groups
    }

    /// Commits a [`collect_in`](Self::collect_in) buffer. With `validate`
    /// the prune scan re-runs against the *current* labels (using
    /// `cache` as scratch), dropping groups the sequential pass would
    /// have pruned — see the module notes above for why that reproduces
    /// the sequential output exactly.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn commit_in(
        labels: &mut Labels,
        mut inverted: Option<&mut InvertedIndex>,
        counters: &mut TraversalCounters,
        mode: WriteMode,
        cache: &mut HubCache,
        hub: VertexId,
        hub_rank: u32,
        groups: &[VisitGroup],
        validate: bool,
    ) -> Result<(), LabelingError> {
        if validate {
            cache.begin();
            for e in labels.out_of(hub) {
                cache.put(e.hub_rank(), e.dist(), e.count());
            }
            cache.put(hub_rank, 0, 1);
        }
        for g in groups {
            let mut tie = g.tie;
            if validate {
                let mut d_idx = INF;
                for e in labels.in_of(g.w) {
                    if e.hub_rank() > hub_rank {
                        break;
                    }
                    if let Some((dh, _)) = cache.get(e.hub_rank()) {
                        d_idx = d_idx.min(dh + e.dist());
                    }
                }
                if d_idx < g.dw {
                    counters.pruned += 1;
                    continue;
                }
                tie = d_idx == g.dw;
            }
            if tie {
                counters.non_canonical += 2;
            } else {
                counters.canonical += 2;
            }
            Self::write(
                labels,
                inverted.as_deref_mut(),
                counters,
                mode,
                g.w,
                LabelSide::In,
                hub,
                hub_rank,
                g.dw,
                g.cw,
            )?;
            Self::write(
                labels,
                inverted.as_deref_mut(),
                counters,
                mode,
                couple(g.w),
                LabelSide::In,
                hub,
                hub_rank,
                g.dw + 1,
                g.cw,
            )?;
        }
        Ok(())
    }

    /// Commits a [`collect_out`](Self::collect_out) buffer, including the
    /// hub's unconditional self-entry.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn commit_out(
        labels: &mut Labels,
        mut inverted: Option<&mut InvertedIndex>,
        counters: &mut TraversalCounters,
        mode: WriteMode,
        cache: &mut HubCache,
        hub: VertexId,
        hub_rank: u32,
        groups: &[VisitGroup],
        validate: bool,
    ) -> Result<(), LabelingError> {
        let hub_couple = couple(hub);
        if validate {
            cache.begin();
            for e in labels.in_of(hub) {
                cache.put(e.hub_rank(), e.dist(), e.count());
            }
            cache.put(hub_rank, 0, 1);
        }
        counters.canonical += 1;
        Self::write(
            labels,
            inverted.as_deref_mut(),
            counters,
            mode,
            hub,
            LabelSide::Out,
            hub,
            hub_rank,
            0,
            1,
        )?;
        for g in groups {
            let mut tie = g.tie;
            if validate {
                let mut d_idx = INF;
                for e in labels.out_of(g.w) {
                    if e.hub_rank() > hub_rank {
                        break;
                    }
                    if let Some((dh, _)) = cache.get(e.hub_rank()) {
                        d_idx = d_idx.min(e.dist() + dh);
                    }
                }
                if d_idx < g.dw {
                    counters.pruned += 1;
                    continue;
                }
                tie = d_idx == g.dw;
            }
            Self::write(
                labels,
                inverted.as_deref_mut(),
                counters,
                mode,
                g.w,
                LabelSide::Out,
                hub,
                hub_rank,
                g.dw,
                g.cw,
            )?;
            if g.w == hub_couple {
                counters.canonical += 1;
                continue;
            }
            if tie {
                counters.non_canonical += 2;
            } else {
                counters.canonical += 2;
            }
            Self::write(
                labels,
                inverted.as_deref_mut(),
                counters,
                mode,
                couple(g.w),
                LabelSide::Out,
                hub,
                hub_rank,
                g.dw + 1,
                g.cw,
            )?;
        }
        Ok(())
    }
}

/// A resumable run of the static construction (Algorithm 3): hubs are
/// processed in descending rank order, and [`advance`](Self::advance)
/// covers a bounded number of ranks per call. A cooperative caller — the
/// maintenance plane's rejuvenation rebuild — can therefore interleave
/// other work (accepting writes into its replay queue, publishing
/// snapshots) between chunks instead of disappearing into one monolithic
/// build. [`build_labels`] is the degenerate single-chunk driver, so the
/// static and rejuvenation builds share one code path.
pub(crate) struct LabelBuildTask {
    labels: Labels,
    bfs: CoupleBfs,
    counters: TraversalCounters,
    next_rank: u32,
    par: ParallelismConfig,
    /// Per-worker traversal workspaces for the wave-parallel path; lazily
    /// populated on first use, reused across waves and `advance` calls.
    pool: WorkspacePool<CoupleBfs>,
}

impl LabelBuildTask {
    /// Starts a build over `n` bipartite vertices.
    pub(crate) fn new(n: usize, par: ParallelismConfig) -> Result<Self, LabelingError> {
        let max = (csc_labeling::MAX_HUB_RANK as usize) + 1;
        if n > max {
            return Err(LabelingError::TooManyVertices { got: n, max });
        }
        Ok(LabelBuildTask {
            labels: Labels::new(n),
            bfs: CoupleBfs::new(n),
            counters: TraversalCounters::default(),
            next_rank: 0,
            par,
            pool: WorkspacePool::new(),
        })
    }

    /// `(ranks processed, ranks total)` — total is only meaningful against
    /// the rank table passed to [`advance`](Self::advance).
    pub(crate) fn ranks_done(&self) -> u32 {
        self.next_rank
    }

    /// Processes up to `rank_budget` further ranks of `ranks` over the
    /// adjacency snapshot `csr`. Returns `true` once every rank has been
    /// processed (construction complete). `csr` and `ranks` must be the
    /// same on every call of one task.
    ///
    /// With a parallelism width above one, ranks are processed in
    /// *waves* of `width` consecutive ranks: a wave's per-hub traversals
    /// are collected concurrently against the pre-wave labels, then
    /// committed in rank order (validated when `deterministic` is on, so
    /// the labels — and thus the serialized arenas — are identical at
    /// every width). Waves are aligned to absolute rank boundaries and a
    /// budget is rounded up to the next boundary, so a chunked build
    /// takes the exact same waves as a monolithic one.
    pub(crate) fn advance(
        &mut self,
        csr: &Csr,
        ranks: &RankTable,
        rank_budget: usize,
    ) -> Result<bool, LabelingError> {
        let width = self.par.width().max(1);
        if width <= 1 {
            let end = (self.next_rank as usize).saturating_add(rank_budget.max(1));
            let end = end.min(ranks.len()) as u32;
            while self.next_rank < end {
                let hub = ranks.vertex_at_rank(self.next_rank);
                if is_in_vertex(hub) {
                    self.bfs.run_in(
                        csr,
                        ranks,
                        &mut self.labels,
                        None,
                        &mut self.counters,
                        hub,
                        WriteMode::Append,
                    )?;
                    self.bfs.run_out(
                        csr,
                        ranks,
                        &mut self.labels,
                        None,
                        &mut self.counters,
                        hub,
                        WriteMode::Append,
                    )?;
                } else {
                    Self::vout_self_entries(&mut self.labels, &mut self.counters, hub, ranks)?;
                }
                self.next_rank += 1;
            }
            return Ok(self.next_rank as usize >= ranks.len());
        }

        let total = ranks.len();
        let requested = (self.next_rank as usize).saturating_add(rank_budget.max(1));
        let end = requested.div_ceil(width).saturating_mul(width).min(total);
        let n = csr.vertex_count();
        let validate = self.par.deterministic;

        while (self.next_rank as usize) < end {
            let wave_start = self.next_rank;
            let wave_end = ((wave_start as usize / width + 1) * width).min(total);
            let wave_len = wave_end - wave_start as usize;

            // Compute phase: each in-flight hub traverses against the
            // pre-wave labels with a worker-private workspace.
            let results = {
                let labels = &self.labels;
                let pool = &self.pool;
                par_map_indexed(width, wave_len, |i| {
                    let hub = ranks.vertex_at_rank(wave_start + i as u32);
                    if !is_in_vertex(hub) {
                        return None;
                    }
                    let mut ws = pool.checkout_with(|| CoupleBfs::new(n));
                    ws.ensure(n);
                    let mut counters = TraversalCounters::default();
                    let groups_in = ws.collect_in(csr, ranks, labels, &mut counters, hub);
                    let groups_out = ws.collect_out(csr, ranks, labels, &mut counters, hub);
                    Some((groups_in, groups_out, counters))
                })
            };

            // Commit phase: strictly ascending rank order restores the
            // sequential write order (and, validated, the sequential
            // write *set*).
            for (i, result) in results.into_iter().enumerate() {
                let hub = ranks.vertex_at_rank(wave_start + i as u32);
                match result {
                    Some((groups_in, groups_out, wave_counters)) => {
                        self.counters.merge(&wave_counters);
                        let hub_rank = wave_start + i as u32;
                        let (_, cache) = self.bfs.parts_mut();
                        CoupleBfs::commit_in(
                            &mut self.labels,
                            None,
                            &mut self.counters,
                            WriteMode::Append,
                            cache,
                            hub,
                            hub_rank,
                            &groups_in,
                            validate,
                        )?;
                        let (_, cache) = self.bfs.parts_mut();
                        CoupleBfs::commit_out(
                            &mut self.labels,
                            None,
                            &mut self.counters,
                            WriteMode::Append,
                            cache,
                            hub,
                            hub_rank,
                            &groups_out,
                            validate,
                        )?;
                    }
                    None => {
                        Self::vout_self_entries(&mut self.labels, &mut self.counters, hub, ranks)?;
                    }
                }
                self.next_rank += 1;
            }
        }
        Ok(self.next_rank as usize >= ranks.len())
    }

    /// `V_out` vertices never act as hubs for other vertices (Algorithm 3
    /// lines 6-8): self labels only.
    fn vout_self_entries(
        labels: &mut Labels,
        counters: &mut TraversalCounters,
        hub: VertexId,
        ranks: &RankTable,
    ) -> Result<(), LabelingError> {
        let r = ranks.rank(hub);
        let self_entry = LabelEntry::new(r, 0, 1).map_err(|source| LabelingError::Entry {
            hub,
            vertex: hub,
            source,
        })?;
        labels.append(hub, LabelSide::In, self_entry);
        labels.append(hub, LabelSide::Out, self_entry);
        counters.canonical += 2;
        counters.inserted += 2;
        Ok(())
    }

    /// Consumes the task, yielding the built labels and counters.
    pub(crate) fn finish(self) -> (Labels, TraversalCounters) {
        (self.labels, self.counters)
    }
}

/// Builds the full CSC label set for a bipartite graph under `ranks`
/// (Algorithm 3) in one go. Returns labels and traversal counters.
pub(crate) fn build_labels(
    csr: &Csr,
    ranks: &RankTable,
    counters: &mut TraversalCounters,
    par: ParallelismConfig,
) -> Result<Labels, LabelingError> {
    let mut task = LabelBuildTask::new(csr.vertex_count(), par)?;
    while !task.advance(csr, ranks, usize::MAX)? {}
    let (labels, built) = task.finish();
    *counters = built;
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csc_graph::bipartite::{in_vertex, out_vertex, BipartiteGraph};
    use csc_graph::fixtures::{figure2, figure2_order, pv};
    use csc_graph::generators::directed_cycle;
    use csc_graph::OrderingStrategy;

    fn build_for(g: &DiGraph, order: OrderingStrategy) -> (Labels, RankTable) {
        let gb = BipartiteGraph::from_graph(g);
        let ranks = RankTable::build(g, order).bipartite_order();
        let csr = Csr::from_digraph(gb.graph());
        let mut counters = TraversalCounters::default();
        let labels =
            build_labels(&csr, &ranks, &mut counters, ParallelismConfig::default()).unwrap();
        labels.validate_sorted().unwrap();
        assert_eq!(
            counters.inserted,
            labels.total_entries(),
            "append mode inserts exactly the stored entries"
        );
        (labels, ranks)
    }

    #[test]
    fn chunked_build_equals_monolithic() {
        let g = csc_graph::generators::gnm(30, 100, 8);
        let gb = BipartiteGraph::from_graph(&g);
        let ranks = RankTable::build(&g, OrderingStrategy::Degree).bipartite_order();
        let csr = Csr::from_digraph(gb.graph());
        let mut counters = TraversalCounters::default();
        let whole =
            build_labels(&csr, &ranks, &mut counters, ParallelismConfig::default()).unwrap();

        let mut task =
            LabelBuildTask::new(csr.vertex_count(), ParallelismConfig::default()).unwrap();
        let mut chunks = 0;
        while !task.advance(&csr, &ranks, 7).unwrap() {
            chunks += 1;
            assert!(task.ranks_done() > 0 && (task.ranks_done() as usize) < ranks.len());
        }
        let (labels, chunk_counters) = task.finish();
        assert!(chunks > 2, "the budget actually chunked the build");
        assert_eq!(labels, whole);
        assert_eq!(chunk_counters, counters);
    }

    #[test]
    fn wave_parallel_build_matches_serial_at_any_width() {
        let g = csc_graph::generators::gnm(40, 160, 11);
        let gb = BipartiteGraph::from_graph(&g);
        let ranks = RankTable::build(&g, OrderingStrategy::Degree).bipartite_order();
        let csr = Csr::from_digraph(gb.graph());
        let serial_par = ParallelismConfig {
            threads: 1,
            deterministic: true,
        };
        let mut serial_counters = TraversalCounters::default();
        let serial = build_labels(&csr, &ranks, &mut serial_counters, serial_par).unwrap();

        for threads in [2, 3, 4, 7] {
            let par = ParallelismConfig {
                threads,
                deterministic: true,
            };
            let mut counters = TraversalCounters::default();
            let labels = build_labels(&csr, &ranks, &mut counters, par).unwrap();
            labels.validate_sorted().unwrap();
            assert_eq!(labels, serial, "width {threads} diverged from serial");
            // The validated commit reproduces the serial write set, so the
            // write-side counters agree; only the traversal-shape counters
            // (dequeues / pruned) may differ across widths.
            assert_eq!(counters.inserted, labels.total_entries());
            assert_eq!(counters.canonical, serial_counters.canonical, "w{threads}");
            assert_eq!(
                counters.non_canonical, serial_counters.non_canonical,
                "w{threads}"
            );
        }
    }

    #[test]
    fn chunked_wave_build_equals_monolithic_wave_build() {
        let g = csc_graph::generators::gnm(30, 100, 8);
        let gb = BipartiteGraph::from_graph(&g);
        let ranks = RankTable::build(&g, OrderingStrategy::Degree).bipartite_order();
        let csr = Csr::from_digraph(gb.graph());
        let par = ParallelismConfig {
            threads: 4,
            deterministic: true,
        };
        let mut counters = TraversalCounters::default();
        let whole = build_labels(&csr, &ranks, &mut counters, par).unwrap();

        // Budget 3 < width 4: each call rounds up to one whole wave, so
        // the chunked run takes the exact same waves as the monolithic
        // one — labels *and* counters agree.
        let mut task = LabelBuildTask::new(csr.vertex_count(), par).unwrap();
        while !task.advance(&csr, &ranks, 3).unwrap() {}
        let (labels, chunk_counters) = task.finish();
        assert_eq!(labels, whole);
        assert_eq!(chunk_counters, counters);
    }

    #[test]
    fn relaxed_commit_still_answers_queries_exactly() {
        // deterministic: false skips commit validation: the labels may
        // keep entries the sequential pass would have pruned, but every
        // survivor is strictly covered (see the collect/commit notes), so
        // cycle queries still read the exact serial answers.
        let g = csc_graph::generators::gnm(40, 160, 11);
        let gb = BipartiteGraph::from_graph(&g);
        let ranks = RankTable::build(&g, OrderingStrategy::Degree).bipartite_order();
        let csr = Csr::from_digraph(gb.graph());
        let serial_par = ParallelismConfig {
            threads: 1,
            deterministic: true,
        };
        let mut c0 = TraversalCounters::default();
        let serial = build_labels(&csr, &ranks, &mut c0, serial_par).unwrap();

        let par = ParallelismConfig {
            threads: 4,
            deterministic: false,
        };
        let mut c1 = TraversalCounters::default();
        let relaxed = build_labels(&csr, &ranks, &mut c1, par).unwrap();
        relaxed.validate_sorted().unwrap();
        assert!(relaxed.total_entries() >= serial.total_entries());
        for v in g.vertices() {
            assert_eq!(
                relaxed.dist_count(out_vertex(v), in_vertex(v)),
                serial.dist_count(out_vertex(v), in_vertex(v)),
                "SCCnt({v:?}) diverged under relaxed commit"
            );
        }
    }

    #[test]
    fn triangle_cycle_entries() {
        let g = directed_cycle(3);
        let (labels, _) = build_for(&g, OrderingStrategy::Degree);
        // SCCnt(0) via labels: distance v_o ~> v_i must be 5 (= 2*3 - 1).
        let dc = labels
            .dist_count(out_vertex(VertexId(0)), in_vertex(VertexId(0)))
            .unwrap();
        assert_eq!((dc.dist, dc.count), (5, 1));
    }

    #[test]
    fn figure2_table_iii_entries() {
        // Table III: Lin(v7_i) = {(v1_i, 4, 2), (v7_i, 0, 1)};
        // Lout(v7_o) = {(v1_i, 7, 1), (v7_i, 11, 1), (v7_o, 0, 1)}.
        let g = figure2();
        let ranks = RankTable::from_order(&figure2_order()).bipartite_order();
        let csr = Csr::from_digraph(BipartiteGraph::from_graph(&g).graph());
        let mut counters = TraversalCounters::default();
        let labels =
            build_labels(&csr, &ranks, &mut counters, ParallelismConfig::default()).unwrap();

        let v7i = in_vertex(pv(7));
        let v7o = out_vertex(pv(7));
        let r = |v: VertexId| ranks.rank(v);

        let lin = labels.in_of(v7i);
        assert_eq!(lin.len(), 2, "Lin(v7_i): {lin:?}");
        assert_eq!(
            (lin[0].hub_rank(), lin[0].dist(), lin[0].count()),
            (r(in_vertex(pv(1))), 4, 2)
        );
        assert_eq!(
            (lin[1].hub_rank(), lin[1].dist(), lin[1].count()),
            (r(v7i), 0, 1)
        );

        let lout = labels.out_of(v7o);
        assert_eq!(lout.len(), 3, "Lout(v7_o): {lout:?}");
        assert_eq!(
            (lout[0].hub_rank(), lout[0].dist(), lout[0].count()),
            (r(in_vertex(pv(1))), 7, 1)
        );
        assert_eq!(
            (lout[1].hub_rank(), lout[1].dist(), lout[1].count()),
            (r(v7i), 11, 1)
        );
        assert_eq!(
            (lout[2].hub_rank(), lout[2].dist(), lout[2].count()),
            (r(v7o), 0, 1)
        );

        // Example 6: SCCnt(v7) = (11+1)/2 = 6 with count 2*1 + 1*1 = 3.
        let dc = labels.dist_count(v7o, in_vertex(pv(7))).unwrap();
        assert_eq!((dc.dist, dc.count), (11, 3));
    }

    #[test]
    fn only_vin_vertices_are_hubs() {
        let g = figure2();
        let (labels, ranks) = build_for(&g, OrderingStrategy::Degree);
        for v in 0..labels.vertex_count() as u32 {
            let v = VertexId(v);
            for e in labels.in_of(v).iter().chain(labels.out_of(v)) {
                let hub = ranks.vertex_at_rank(e.hub_rank());
                assert!(
                    is_in_vertex(hub) || hub == v,
                    "non-self V_out hub {hub:?} on {v:?}"
                );
            }
        }
    }

    #[test]
    fn couple_edge_label_exists() {
        // (v_i, 1, 1) must be in Lin(v_o) for every vertex (Section IV-B).
        let g = figure2();
        let (labels, ranks) = build_for(&g, OrderingStrategy::Degree);
        for v in g.vertices() {
            let (vi, vo) = (in_vertex(v), out_vertex(v));
            let e = labels
                .entry_for(vo, LabelSide::In, ranks.rank(vi))
                .unwrap_or_else(|| panic!("missing (v_i, 1, 1) in Lin({vo:?})"));
            assert_eq!((e.dist(), e.count()), (1, 1));
        }
    }
}
