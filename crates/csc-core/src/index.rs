//! The CSC index: construction entry point, queries, and accessors.

use crate::build::{build_labels, CoupleBfs, TraversalCounters};
use crate::config::CscConfig;
use crate::error::CscError;
use crate::health::{HealthBaseline, IndexHealth};
use crate::invert::InvertedIndex;
use crate::stats::IndexStats;
use csc_graph::bipartite::{in_vertex, out_vertex, BipartiteGraph};
use csc_graph::{Csr, DiGraph, OrderingStrategy, RankTable, TraversalWorkspace, VertexId};
use csc_labeling::{BuildStats, CycleCount, DistCount, LabelEntry, LabelSide, Labels};
use std::time::Instant;

/// A dynamic shortest-cycle-counting index (the paper's CSC).
///
/// Build once with [`CscIndex::build`], query with [`CscIndex::query`] in
/// microseconds, and keep the index synchronized with the graph through
/// [`insert_edge`](CscIndex::insert_edge) /
/// [`remove_edge`](CscIndex::remove_edge) instead of rebuilding.
///
/// ```
/// use csc_core::CscIndex;
/// use csc_graph::{DiGraph, VertexId};
///
/// // A triangle plus a chord: two cycles through vertex 0.
/// let g = DiGraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0), (0, 2)]);
/// let index = CscIndex::build(&g, Default::default()).unwrap();
/// let c = index.query(VertexId(0)).unwrap();
/// assert_eq!((c.length, c.count), (2, 1)); // the 0 -> 2 -> 0 two-cycle
/// ```
pub struct CscIndex {
    pub(crate) gb: BipartiteGraph,
    pub(crate) ranks: RankTable,
    pub(crate) labels: Labels,
    pub(crate) inverted: Option<InvertedIndex>,
    pub(crate) config: CscConfig,
    pub(crate) stats: IndexStats,
    pub(crate) baseline: HealthBaseline,
    /// `Some(detail)` after a failed update or a caught panic left the
    /// label state inconsistent; writes refuse until recovery.
    pub(crate) poisoned: Option<String>,
    pub(crate) workspace: CoupleBfs,
    /// Pooled endpoint-sweep maps and the shared bucket queue for the
    /// dynamic repair paths (never cloned or serialized — scratch only).
    pub(crate) sweeps: TraversalWorkspace,
}

impl Clone for CscIndex {
    fn clone(&self) -> Self {
        CscIndex {
            gb: self.gb.clone(),
            ranks: self.ranks.clone(),
            labels: self.labels.clone(),
            inverted: self.inverted.clone(),
            config: self.config,
            stats: self.stats.clone(),
            baseline: self.baseline,
            poisoned: self.poisoned.clone(),
            workspace: CoupleBfs::new(self.gb.graph().vertex_count()),
            sweeps: TraversalWorkspace::new(self.gb.graph().vertex_count()),
        }
    }
}

impl std::fmt::Debug for CscIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CscIndex")
            .field("vertices", &self.original_vertex_count())
            .field("edges", &self.original_edge_count())
            .field("entries", &self.total_entries())
            .field("poisoned", &self.poisoned.is_some())
            .finish()
    }
}

impl CscIndex {
    /// Builds the index for `g` under `config`.
    ///
    /// # Errors
    ///
    /// Fails if `config` is degenerate (see [`CscConfig::validate`]), if
    /// the bipartite graph exceeds the 23-bit hub capacity, or if any
    /// label distance exceeds 17 bits (see `csc-labeling::entry`).
    pub fn build(g: &DiGraph, config: CscConfig) -> Result<Self, CscError> {
        config.validate()?;
        let start = Instant::now();
        let gb = BipartiteGraph::from_graph(g);
        let ranks = RankTable::build(g, config.order).bipartite_order();
        let csr = Csr::from_digraph(gb.graph());
        let mut counters = TraversalCounters::default();
        let labels = build_labels(&csr, &ranks, &mut counters, config.parallelism)?;
        let inverted = config
            .maintain_inverted
            .then(|| InvertedIndex::from_labels(&labels));
        let n = gb.graph().vertex_count();
        let stats = IndexStats {
            build: BuildStats {
                canonical: counters.canonical,
                non_canonical: counters.non_canonical,
                pruned: counters.pruned,
                dequeues: counters.dequeues,
                saturated_counts: counters.saturated,
                build_time: start.elapsed(),
            },
            ..Default::default()
        };
        let baseline = HealthBaseline {
            entries: labels.total_entries(),
            in_entries: labels.side_entries(LabelSide::In),
            out_entries: labels.side_entries(LabelSide::Out),
            vertices: gb.original_vertex_count(),
            rejuvenations: 0,
        };
        Ok(CscIndex {
            gb,
            ranks,
            labels,
            inverted,
            config,
            stats,
            baseline,
            poisoned: None,
            workspace: CoupleBfs::new(n),
            sweeps: TraversalWorkspace::new(n),
        })
    }

    /// `SCCnt(v)`: the length and number of the shortest cycles through
    /// `v`, or `None` if no cycle passes through `v`.
    ///
    /// Evaluates `SPCnt(v_o, v_i)` on the bipartite labels; the bipartite
    /// distance `d` maps back to a cycle length of `(d + 1) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the indexed graph.
    pub fn query(&self, v: VertexId) -> Option<CycleCount> {
        let dc = self.query_raw(v)?;
        debug_assert_eq!(dc.dist % 2, 1, "V_out ~> V_in distances are odd");
        Some(CycleCount::new(dc.dist.div_ceil(2), dc.count))
    }

    /// The raw bipartite `(distance, count)` behind [`query`](Self::query).
    pub fn query_raw(&self, v: VertexId) -> Option<DistCount> {
        assert!(
            v.index() < self.original_vertex_count(),
            "query vertex {v} out of range ({} vertices)",
            self.original_vertex_count()
        );
        self.labels.dist_count(out_vertex(v), in_vertex(v))
    }

    /// Appends a fresh isolated vertex to the graph and index, ranked at
    /// the bottom of the order. Returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let v = self.gb.add_original_vertex();
        let (vi, vo) = (in_vertex(v), out_vertex(v));
        self.ranks.push_lowest();
        self.ranks.push_lowest();
        debug_assert_eq!(self.ranks.vertex_at_rank(self.ranks.len() as u32 - 2), vi);
        self.labels.push_vertex();
        self.labels.push_vertex();
        let (ri, ro) = (self.ranks.rank(vi), self.ranks.rank(vo));
        // Exactly the labels the static build gives an isolated couple.
        self.labels
            .append(vi, LabelSide::In, LabelEntry::new_unchecked(ri, 0, 1));
        self.labels
            .append(vi, LabelSide::Out, LabelEntry::new_unchecked(ri, 0, 1));
        self.labels
            .append(vo, LabelSide::In, LabelEntry::new_unchecked(ri, 1, 1));
        self.labels
            .append(vo, LabelSide::In, LabelEntry::new_unchecked(ro, 0, 1));
        self.labels
            .append(vo, LabelSide::Out, LabelEntry::new_unchecked(ro, 0, 1));
        if let Some(inv) = &mut self.inverted {
            inv.push_rank();
            inv.push_rank();
            inv.add(LabelSide::In, ri, vi);
            inv.add(LabelSide::Out, ri, vi);
            inv.add(LabelSide::In, ri, vo);
            inv.add(LabelSide::In, ro, vo);
            inv.add(LabelSide::Out, ro, vo);
        }
        self.workspace.ensure(self.gb.graph().vertex_count());
        self.sweeps.ensure(self.gb.graph().vertex_count());
        v
    }

    /// Number of vertices in the indexed (original) graph.
    #[inline]
    pub fn original_vertex_count(&self) -> usize {
        self.gb.original_vertex_count()
    }

    /// Number of edges in the indexed (original) graph.
    #[inline]
    pub fn original_edge_count(&self) -> usize {
        self.gb.original_edge_count()
    }

    /// `true` if the original edge `(a, b)` is currently indexed.
    pub fn contains_edge(&self, a: VertexId, b: VertexId) -> bool {
        if a.index() >= self.original_vertex_count() || b.index() >= self.original_vertex_count() {
            return false;
        }
        self.gb.graph().has_edge(out_vertex(a), in_vertex(b))
    }

    /// Iterates the original graph's edges.
    pub fn original_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.gb.graph().edges().filter_map(|(u, w)| {
            let (ou, su) = csc_graph::bipartite::original(u);
            let (ow, sw) = csc_graph::bipartite::original(w);
            use csc_graph::bipartite::Side;
            (su == Side::Out && sw == Side::In).then_some((ou, ow))
        })
    }

    /// The bipartite graph backing the index.
    pub fn bipartite(&self) -> &BipartiteGraph {
        &self.gb
    }

    /// The label store (bipartite vertex ids, hub ranks).
    pub fn labels(&self) -> &Labels {
        &self.labels
    }

    /// The bipartite rank table.
    pub fn ranks(&self) -> &RankTable {
        &self.ranks
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &CscConfig {
        &self.config
    }

    /// Retunes the parallelism knobs on a live index.
    ///
    /// Parallelism is a non-semantic runtime field — it steers how label
    /// work is scheduled, never what the labels contain — so unlike the
    /// rest of [`CscConfig`] it may be changed after build, e.g. to adapt
    /// a loaded checkpoint to the host it now runs on.
    pub fn set_parallelism(&mut self, parallelism: crate::config::ParallelismConfig) {
        self.config.parallelism = parallelism;
    }

    /// Retargets the ordering strategy on a live index.
    ///
    /// The current labels keep answering queries under the order they were
    /// built with; the new strategy takes effect the next time the order is
    /// *recomputed* — i.e. at the next rejuvenation, which rebuilds the
    /// labeling under the new order and atomically swaps it in (the
    /// migration path for moving a long-lived index onto
    /// [`OrderingStrategy::CoverageSampling`]). Persisted by `to_bytes`, so
    /// checkpoints taken before the rejuvenation still migrate after a
    /// reload.
    ///
    /// Returns an error if the strategy fails [`CscConfig::validate`]
    /// (e.g. a zero sampling budget).
    pub fn set_order(&mut self, order: OrderingStrategy) -> Result<(), crate::CscError> {
        let candidate = CscConfig {
            order,
            ..self.config
        };
        candidate.validate()?;
        self.config.order = order;
        Ok(())
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// The drift baseline captured at build / load / rejuvenation time.
    pub fn baseline(&self) -> &HealthBaseline {
        &self.baseline
    }

    /// The current drift report against the baseline.
    ///
    /// The live store has no frozen arena, so
    /// [`dead_fraction`](IndexHealth::dead_fraction) is always `0.0` here;
    /// [`SnapshotIndex::health`](crate::SnapshotIndex::health) reports the
    /// served arena's real value, and
    /// [`ConcurrentIndex::health`](crate::ConcurrentIndex::health)
    /// combines both with the maintenance-plane state.
    pub fn health(&self) -> IndexHealth {
        let total = self.labels.total_entries();
        IndexHealth {
            total_entries: total,
            in_entries: self.labels.side_entries(LabelSide::In),
            out_entries: self.labels.side_entries(LabelSide::Out),
            baseline_entries: self.baseline.entries,
            baseline_in_entries: self.baseline.in_entries,
            baseline_out_entries: self.baseline.out_entries,
            growth_percent: IndexHealth::growth(total, self.baseline.entries),
            dead_fraction: 0.0,
            churned_vertices: self
                .original_vertex_count()
                .saturating_sub(self.baseline.vertices),
            rejuvenations: self.baseline.rejuvenations,
            replay_queued: 0,
            rebuilding: false,
            writes_rejected: 0,
            writes_shed: 0,
            memory_bytes: 0,
            saturated: false,
            durability_degraded: false,
            wal_truncated_bytes: 0,
        }
    }

    /// Tracked heap footprint in bytes: label lists, the inverted index,
    /// and the pooled traversal workspaces. `O(n)` over the label store —
    /// the maintenance engine measures once per applied window, not per
    /// operation.
    pub fn memory_bytes(&self) -> usize {
        self.labels.heap_bytes()
            + self.inverted.as_ref().map_or(0, |inv| inv.heap_bytes())
            + self.workspace.heap_bytes()
            + self.sweeps.heap_bytes()
    }

    /// Re-anchors the drift baseline at the current state (the epilogue of
    /// a rejuvenation swap, and the load path's way of restoring a
    /// persisted baseline).
    pub(crate) fn rebaseline(&mut self, rejuvenations: u32) {
        self.baseline = HealthBaseline {
            entries: self.labels.total_entries(),
            in_entries: self.labels.side_entries(LabelSide::In),
            out_entries: self.labels.side_entries(LabelSide::Out),
            vertices: self.original_vertex_count(),
            rejuvenations,
        };
    }

    /// Total label entries (Figure 9(b)'s index size is `8 *` this).
    pub fn total_entries(&self) -> usize {
        self.labels.total_entries()
    }

    /// Index size in bytes under the paper's 64-bit entry encoding.
    pub fn index_bytes(&self) -> usize {
        self.labels.entry_bytes()
    }

    /// `true` if an earlier failed update left the index inconsistent.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Why the index is poisoned, if it is (the failed operation or the
    /// caught panic message).
    pub fn poison_detail(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Marks the index poisoned with a reason; subsequent writes return
    /// [`CscError::Poisoned`] until recovery clears it.
    pub(crate) fn poison(&mut self, detail: impl Into<String>) {
        self.poisoned = Some(detail.into());
    }

    pub(crate) fn check_ready(&self) -> Result<(), CscError> {
        match &self.poisoned {
            Some(detail) => Err(CscError::poisoned(detail.clone())),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csc_graph::fixtures::{figure2, pv};
    use csc_graph::generators::{directed_cycle, gnm, preferential_attachment};
    use csc_graph::traversal::shortest_cycle_oracle;
    use csc_graph::OrderingStrategy;

    fn assert_all_queries_match(g: &DiGraph, config: CscConfig) {
        let idx = CscIndex::build(g, config).unwrap();
        for v in g.vertices() {
            assert_eq!(
                idx.query(v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(g, v),
                "SCCnt({v})"
            );
        }
    }

    #[test]
    fn example_1_and_6_figure2() {
        let g = figure2();
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        assert_eq!(idx.query(pv(7)), Some(CycleCount::new(6, 3)));
        // Every vertex of Figure 2 lies on the same big cycle structure.
        for v in g.vertices() {
            assert_eq!(
                idx.query(v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&g, v),
                "SCCnt({v})"
            );
        }
    }

    #[test]
    fn matches_oracle_on_random_graphs_all_orders() {
        for seed in 0..6 {
            let g = gnm(28, 84, seed);
            for order in [
                OrderingStrategy::Degree,
                OrderingStrategy::Identity,
                OrderingStrategy::Random(seed),
                OrderingStrategy::DegreeProduct,
            ] {
                assert_all_queries_match(&g, CscConfig::default().with_order(order));
            }
        }
    }

    #[test]
    fn matches_oracle_on_reciprocal_graphs() {
        let g = preferential_attachment(120, 3, 0.5, 11);
        assert_all_queries_match(&g, CscConfig::default());
    }

    #[test]
    fn dag_has_no_cycles() {
        let g = DiGraph::from_edges(5, vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        for v in g.vertices() {
            assert_eq!(idx.query(v), None);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn query_out_of_range_panics() {
        let idx = CscIndex::build(&directed_cycle(3), CscConfig::default()).unwrap();
        idx.query(VertexId(3));
    }

    #[test]
    fn accessors_and_debug() {
        let g = figure2();
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        assert_eq!(idx.original_vertex_count(), 10);
        assert_eq!(idx.original_edge_count(), 13);
        assert!(idx.contains_edge(pv(1), pv(3)));
        assert!(!idx.contains_edge(pv(3), pv(1)));
        assert!(!idx.contains_edge(VertexId(99), VertexId(0)));
        let mut edges: Vec<_> = idx.original_edges().collect();
        edges.sort();
        assert_eq!(edges.len(), 13);
        assert!(edges.contains(&(pv(1), pv(3))));
        assert_eq!(idx.index_bytes(), idx.total_entries() * 8);
        assert!(!idx.is_poisoned());
        let dbg = format!("{idx:?}");
        assert!(dbg.contains("entries"));
        // Build stats classified every entry.
        let s = idx.stats();
        assert_eq!(
            s.build.canonical + s.build.non_canonical,
            idx.total_entries()
        );
    }

    #[test]
    fn inverted_index_matches_labels_after_build() {
        let g = gnm(40, 160, 2);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        idx.inverted
            .as_ref()
            .expect("default config maintains inverted")
            .validate_against(&idx.labels)
            .unwrap();
        let idx2 = CscIndex::build(&g, CscConfig::default().with_inverted(false)).unwrap();
        assert!(idx2.inverted.is_none());
        assert_eq!(idx2.total_entries(), idx.total_entries());
    }

    #[test]
    fn add_vertex_matches_static_build() {
        // Index of (cycle + fresh vertex) == index of 4-vertex graph where
        // vertex 3 is isolated, under the same order.
        let g3 = directed_cycle(3);
        let mut idx = CscIndex::build(&g3, CscConfig::default()).unwrap();
        let nv = idx.add_vertex();
        assert_eq!(nv, VertexId(3));

        let mut g4 = directed_cycle(3);
        let v = g4.add_vertex();
        assert_eq!(v, VertexId(3));
        let fresh = CscIndex::build(&g4, CscConfig::default()).unwrap();

        assert_eq!(idx.labels, fresh.labels);
        assert_eq!(idx.ranks, fresh.ranks);
        assert_eq!(idx.gb, fresh.gb);
        assert_eq!(idx.inverted, fresh.inverted);
        assert_eq!(idx.query(nv), None);
    }

    #[test]
    fn health_tracks_drift_from_build_baseline() {
        let g = gnm(24, 70, 4);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let h = idx.health();
        assert_eq!(h.growth_percent, 100, "fresh build sits at baseline");
        assert_eq!(h.total_entries, idx.total_entries());
        assert_eq!(h.in_entries + h.out_entries, h.total_entries);
        assert_eq!(
            (h.churned_vertices, h.rejuvenations, h.dead_fraction),
            (0, 0, 0.0)
        );
        assert!(!h.rebuilding);

        let nv = idx.add_vertex();
        idx.insert_edge(VertexId(0), nv).unwrap();
        idx.insert_edge(nv, VertexId(1)).unwrap();
        let h = idx.health();
        assert_eq!(h.churned_vertices, 1);
        assert!(h.total_entries > h.baseline_entries);
        assert!(h.growth_percent > 100);
        assert_eq!(h.baseline_entries, idx.baseline().entries);
    }

    #[test]
    fn build_rejects_invalid_config() {
        let bad = CscConfig::default()
            .with_rebuild_policy(crate::health::RebuildPolicy::default().with_growth_percent(50));
        assert!(matches!(
            CscIndex::build(&directed_cycle(3), bad),
            Err(crate::CscError::Config(_))
        ));
    }

    #[test]
    fn poisoned_index_refuses_every_operation() {
        let g = directed_cycle(3);
        let mut idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        idx.poison("simulated failed mid-update state");
        assert!(idx.is_poisoned());
        assert_eq!(
            idx.poison_detail(),
            Some("simulated failed mid-update state")
        );
        assert!(matches!(
            idx.insert_edge(VertexId(0), VertexId(2)),
            Err(crate::CscError::Poisoned { .. })
        ));
        assert!(matches!(
            idx.remove_edge(VertexId(0), VertexId(1)),
            Err(crate::CscError::Poisoned { .. })
        ));
        assert!(matches!(
            idx.to_bytes(),
            Err(crate::CscError::Poisoned { .. })
        ));
        // Queries still work (documented: reads may be stale, writes fail).
        let _ = idx.query(VertexId(0));
    }

    #[test]
    fn clone_is_independent() {
        let g = directed_cycle(4);
        let idx = CscIndex::build(&g, CscConfig::default()).unwrap();
        let clone = idx.clone();
        assert_eq!(clone.total_entries(), idx.total_entries());
        assert_eq!(clone.query(VertexId(0)), idx.query(VertexId(0)));
    }
}
