//! The write-ahead log and checkpoint files: the durability plane's
//! storage layer.
//!
//! ## File layout
//!
//! A durability directory holds one append-only log plus a small ring of
//! checkpoint generations:
//!
//! ```text
//! <dir>/wal.log                      the live write-ahead log
//! <dir>/checkpoint-<seq>.cscidx      serialized CscIndex (CSCIDX\x04)
//! <dir>/checkpoint-<seq>.tmp         in-flight checkpoint (ignored)
//! ```
//!
//! `<seq>` is the zero-padded window sequence number the checkpoint
//! covers: every logged window carries a monotonically increasing `seq`,
//! and a checkpoint named `seq` contains the state after applying all
//! windows `<= seq`. Recovery loads the newest readable checkpoint and
//! replays exactly the WAL records with a larger `seq`.
//!
//! ## Log format (little-endian)
//!
//! ```text
//! header   "CSCWAL\x01\n"  8 bytes
//!          base_seq        u64   (seq of the checkpoint this log follows)
//!          crc32           u32   (over magic + base_seq)
//! record   payload_len     u32
//!          crc32           u32   (over the payload)
//!          payload:
//!            seq           u64
//!            count         u32
//!            ops           count * (tag u8, a u32, b u32)
//! ```
//!
//! Every record is appended with one buffered write per field group and
//! (per [`FsyncPolicy`]) fsynced, *before* the window is applied to the
//! index — so an applied update is always reconstructible. A crash mid-
//! append leaves a torn tail: on open, the scan stops at the first record
//! whose length prefix runs past the file, whose CRC mismatches, or
//! whose payload is malformed, and truncates the file there. Whatever
//! validly precedes the tear is kept — it is exactly the acknowledged-
//! and-durable prefix.

use crate::batch::GraphUpdate;
use crate::config::FsyncPolicy;
use crate::crc::crc32;
use crate::error::CscError;
use csc_graph::VertexId;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The WAL header magic (version 1).
const WAL_MAGIC: &[u8; 8] = b"CSCWAL\x01\n";
/// Header length: magic + base_seq + crc.
const WAL_HEADER_LEN: u64 = 8 + 8 + 4;
/// Upper bound on a record payload, guarding allocation against garbage
/// length prefixes (a window of ~7.4M updates — far beyond any batch).
const MAX_RECORD_PAYLOAD: u32 = 1 << 26;

/// The log file's name inside a durability directory.
pub const WAL_FILE: &str = "wal.log";

fn wal_corrupt(detail: impl Into<String>) -> CscError {
    CscError::corrupt("wal", detail)
}

/// One decoded WAL record: an update window and its sequence number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// The window's sequence number (monotone across the log).
    pub seq: u64,
    /// The updates of the window, in submission order.
    pub updates: Vec<GraphUpdate>,
}

/// What opening (and possibly repairing) a log found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalOpenReport {
    /// Valid records present after the scan.
    pub records: usize,
    /// Bytes dropped from the tail (torn final append or trailing
    /// corruption).
    pub truncated_bytes: u64,
}

fn encode_update(buf: &mut Vec<u8>, u: GraphUpdate) {
    let (tag, a, b) = match u {
        GraphUpdate::InsertEdge(a, b) => (0u8, a.0, b.0),
        GraphUpdate::RemoveEdge(a, b) => (1u8, a.0, b.0),
        GraphUpdate::AddVertex => (2u8, 0, 0),
    };
    buf.push(tag);
    buf.extend_from_slice(&a.to_le_bytes());
    buf.extend_from_slice(&b.to_le_bytes());
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    if payload.len() < 12 {
        return None;
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().ok()?);
    let count = u32::from_le_bytes(payload[8..12].try_into().ok()?) as usize;
    if payload.len() != 12 + count * 9 {
        return None;
    }
    let mut updates = Vec::with_capacity(count);
    for chunk in payload[12..].chunks_exact(9) {
        let a = VertexId(u32::from_le_bytes(chunk[1..5].try_into().ok()?));
        let b = VertexId(u32::from_le_bytes(chunk[5..9].try_into().ok()?));
        updates.push(match chunk[0] {
            0 => GraphUpdate::InsertEdge(a, b),
            1 => GraphUpdate::RemoveEdge(a, b),
            2 => GraphUpdate::AddVertex,
            _ => return None,
        });
    }
    Some(WalRecord { seq, updates })
}

/// Scans `bytes` (positioned after the header) into valid records,
/// returning them plus the byte offset just past the last valid record.
fn scan_records(bytes: &[u8], base_seq: u64) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut last_seq = base_seq;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            break; // empty or torn length/crc prefix
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        if len > MAX_RECORD_PAYLOAD || rest.len() < 8 + len as usize {
            break; // garbage length or torn payload
        }
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let payload = &rest[8..8 + len as usize];
        if crc32(payload) != crc {
            break; // bit rot or torn rewrite
        }
        let Some(record) = decode_payload(payload) else {
            break; // internally malformed despite a matching CRC
        };
        if record.seq <= last_seq {
            break; // sequence regressed: not a continuation of this log
        }
        last_seq = record.seq;
        pos += 8 + len as usize;
        records.push(record);
    }
    (records, pos)
}

/// An append-only, CRC-framed log of update windows.
pub struct WriteAheadLog {
    file: File,
    path: PathBuf,
    base_seq: u64,
    last_seq: u64,
    fsync: FsyncPolicy,
    appends_since_sync: u32,
}

impl WriteAheadLog {
    /// Creates (truncating any previous log at `path`) a fresh log whose
    /// records will follow checkpoint `base_seq`.
    pub fn create(path: &Path, base_seq: u64, fsync: FsyncPolicy) -> Result<Self, CscError> {
        faultpoint_io!("io.wal.create");
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| CscError::io("wal.create", &e))?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&base_seq.to_le_bytes());
        let crc = crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());
        file.write_all(&header)
            .and_then(|()| file.sync_all())
            .map_err(|e| CscError::io("wal.create", &e))?;
        Ok(WriteAheadLog {
            file,
            path: path.to_path_buf(),
            base_seq,
            last_seq: base_seq,
            fsync,
            appends_since_sync: 0,
        })
    }

    /// Opens an existing log for appending, truncating any torn tail
    /// first (see the module docs). Errors with [`CscError::Corrupt`] if
    /// the *header* itself is unreadable — there is then no trustworthy
    /// prefix at all.
    pub fn open(path: &Path, fsync: FsyncPolicy) -> Result<(Self, WalOpenReport), CscError> {
        let bytes = fs::read(path)
            .map_err(|e| wal_corrupt(format!("cannot read {}: {e}", path.display())))?;
        let base_seq = Self::check_header(&bytes)?;
        let (records, body_end) = scan_records(&bytes[WAL_HEADER_LEN as usize..], base_seq);
        let valid_end = WAL_HEADER_LEN + body_end as u64;
        let truncated = bytes.len() as u64 - valid_end;
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| wal_corrupt(format!("cannot open {}: {e}", path.display())))?;
        if truncated > 0 {
            file.set_len(valid_end)
                .and_then(|()| file.sync_all())
                .map_err(|e| wal_corrupt(format!("cannot truncate torn tail: {e}")))?;
        }
        let mut file = file;
        file.seek(SeekFrom::Start(valid_end))
            .map_err(|e| wal_corrupt(format!("cannot seek: {e}")))?;
        let last_seq = records.last().map_or(base_seq, |r| r.seq);
        Ok((
            WriteAheadLog {
                file,
                path: path.to_path_buf(),
                base_seq,
                last_seq,
                fsync,
                appends_since_sync: 0,
            },
            WalOpenReport {
                records: records.len(),
                truncated_bytes: truncated,
            },
        ))
    }

    /// Reads every valid record of the log at `path` without modifying
    /// the file. Returns the base sequence, the records, and what a
    /// repair pass *would* truncate.
    pub fn read_all(path: &Path) -> Result<(u64, Vec<WalRecord>, WalOpenReport), CscError> {
        faultpoint_io!("io.wal.read");
        let bytes = fs::read(path)
            .map_err(|e| wal_corrupt(format!("cannot read {}: {e}", path.display())))?;
        let base_seq = Self::check_header(&bytes)?;
        let (records, body_end) = scan_records(&bytes[WAL_HEADER_LEN as usize..], base_seq);
        let truncated = bytes.len() as u64 - WAL_HEADER_LEN - body_end as u64;
        Ok((
            base_seq,
            records.clone(),
            WalOpenReport {
                records: records.len(),
                truncated_bytes: truncated,
            },
        ))
    }

    fn check_header(bytes: &[u8]) -> Result<u64, CscError> {
        if bytes.len() < WAL_HEADER_LEN as usize {
            return Err(wal_corrupt(format!(
                "header truncated ({} of {WAL_HEADER_LEN} bytes)",
                bytes.len()
            )));
        }
        if &bytes[..8] != WAL_MAGIC {
            return Err(wal_corrupt("bad magic (not a CSC write-ahead log)"));
        }
        let crc = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
        if crc32(&bytes[..16]) != crc {
            return Err(wal_corrupt("header crc mismatch"));
        }
        Ok(u64::from_le_bytes(bytes[8..16].try_into().unwrap()))
    }

    /// The checkpoint sequence this log continues from.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// The sequence of the last appended (or recovered) record.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Appends one window as a record with sequence `seq`, honoring the
    /// fsync policy. Must be called *before* the window is applied to
    /// the index (write-ahead).
    pub fn append(&mut self, seq: u64, window: &[GraphUpdate]) -> Result<(), CscError> {
        debug_assert!(seq > self.last_seq, "WAL sequence must be monotone");
        faultpoint!("wal.append.pre");
        faultpoint_io!("io.wal.append");
        let mut payload = Vec::with_capacity(12 + window.len() * 9);
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(&(window.len() as u32).to_le_bytes());
        for &u in window {
            encode_update(&mut payload, u);
        }
        let mut prefix = [0u8; 8];
        prefix[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        prefix[4..].copy_from_slice(&crc32(&payload).to_le_bytes());
        // Two writes with a faultpoint between them: an injected crash
        // here leaves exactly the torn tail a real mid-append crash
        // would, which the recovery tests rely on.
        let write_err = |e: std::io::Error| CscError::io("wal.append", &e);
        self.file.write_all(&prefix).map_err(write_err)?;
        let split = payload.len() / 2;
        self.file.write_all(&payload[..split]).map_err(write_err)?;
        faultpoint!("wal.append.torn");
        faultpoint_io!("io.wal.append.torn");
        self.file.write_all(&payload[split..]).map_err(write_err)?;
        self.last_seq = seq;
        self.appends_since_sync += 1;
        let sync_now = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Every(n) => self.appends_since_sync >= n,
            FsyncPolicy::Never => false,
        };
        if sync_now {
            self.sync()?;
        }
        faultpoint!("wal.append.post");
        Ok(())
    }

    /// Appends like [`append`](Self::append), retrying transient I/O
    /// failures under `retry` (salted by `seq` for deterministic jitter).
    ///
    /// A failed append may have written part of the record; retrying
    /// naively would splice that garbage into the log and stop every
    /// future scan at it. So before each retry — and before giving up —
    /// the tail is rolled back (`set_len` + seek) to its pre-append
    /// position and the in-memory sequence state restored. If the
    /// rollback itself fails the log can no longer be trusted and the
    /// error comes back as [`CscError::Corrupt`] (never retried).
    pub fn append_retrying(
        &mut self,
        seq: u64,
        window: &[GraphUpdate],
        retry: &crate::guard::RetryPolicy,
    ) -> Result<(), CscError> {
        let start = self
            .file
            .stream_position()
            .map_err(|e| CscError::io("wal.append", &e))?;
        let prior = (self.last_seq, self.appends_since_sync);
        retry.run(seq, |_| match self.append(seq, window) {
            Ok(()) => Ok(()),
            Err(e) => {
                (self.last_seq, self.appends_since_sync) = prior;
                self.file
                    .set_len(start)
                    .and_then(|()| self.file.seek(SeekFrom::Start(start)).map(|_| ()))
                    .map_err(|re| {
                        wal_corrupt(format!("cannot roll back torn append: {re} (after {e})"))
                    })?;
                Err(e)
            }
        })
    }

    /// Forces the log's bytes to stable storage now.
    pub fn sync(&mut self) -> Result<(), CscError> {
        faultpoint_io!("io.wal.fsync");
        self.file
            .sync_data()
            .map_err(|e| CscError::io("wal.fsync", &e))?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Restarts the log after a checkpoint at `base_seq`: truncates to a
    /// fresh header whose records continue from there. (The rotated-out
    /// records are all `<= base_seq`, covered by the checkpoint.)
    pub fn rotate(&mut self, base_seq: u64) -> Result<(), CscError> {
        faultpoint!("wal.rotate.pre");
        *self = WriteAheadLog::create(&self.path.clone(), base_seq, self.fsync)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Checkpoint files
// ---------------------------------------------------------------------

const CKPT_PREFIX: &str = "checkpoint-";
const CKPT_SUFFIX: &str = ".cscidx";

/// The canonical path of the checkpoint covering windows `<= seq`.
pub fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{CKPT_PREFIX}{seq:020}{CKPT_SUFFIX}"))
}

/// Writes a checkpoint atomically: the bytes go to a `.tmp` sibling,
/// are fsynced, and only then renamed into place (a crash mid-write
/// leaves a `.tmp` that recovery ignores, never a half-readable
/// checkpoint under the real name), finishing with a directory fsync so
/// the rename itself is durable.
pub fn write_checkpoint(dir: &Path, seq: u64, bytes: &[u8]) -> Result<PathBuf, CscError> {
    faultpoint_io!("io.checkpoint.write");
    let final_path = checkpoint_path(dir, seq);
    let tmp_path = final_path.with_extension("tmp");
    let io_err = |e: std::io::Error| CscError::io("checkpoint.write", &e);
    let mut tmp = File::create(&tmp_path).map_err(io_err)?;
    let split = bytes.len() / 2;
    tmp.write_all(&bytes[..split]).map_err(io_err)?;
    faultpoint!("checkpoint.torn");
    tmp.write_all(&bytes[split..]).map_err(io_err)?;
    tmp.sync_all().map_err(io_err)?;
    drop(tmp);
    faultpoint!("checkpoint.pre-rename");
    faultpoint_io!("io.checkpoint.rename");
    fs::rename(&tmp_path, &final_path).map_err(|e| CscError::io("checkpoint.rename", &e))?;
    // Make the rename durable: without the directory fsync the new name
    // may not survive a power cut even though the data blocks would. A
    // failure here is a real durability failure and must be loud — the
    // caller retries or degrades, never assumes the checkpoint stuck.
    faultpoint_io!("io.checkpoint.dirsync");
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| CscError::io("checkpoint.dirsync", &e))?;
    faultpoint!("checkpoint.post");
    Ok(final_path)
}

/// Lists the checkpoints in `dir`, newest first. Unparseable names and
/// `.tmp` leftovers are ignored.
pub fn list_checkpoints(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut found = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix(CKPT_PREFIX)
            .and_then(|s| s.strip_suffix(CKPT_SUFFIX))
        else {
            continue;
        };
        if let Ok(seq) = stem.parse::<u64>() {
            found.push((seq, entry.path()));
        }
    }
    found.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    found
}

/// Removes all but the newest `keep` checkpoints (and any stale `.tmp`
/// files). Best-effort: an unremovable file is left for the next pass.
pub fn prune_checkpoints(dir: &Path, keep: usize) {
    for (_, path) in list_checkpoints(dir).into_iter().skip(keep.max(1)) {
        let _ = fs::remove_file(path);
    }
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            let is_stale_tmp = path.extension().is_some_and(|e| e == "tmp")
                && path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(CKPT_PREFIX));
            if is_stale_tmp {
                let _ = fs::remove_file(path);
            }
        }
    }
}

/// Reads a file fully (checkpoint loading helper with a uniform error).
/// Real read failures come back as [`CscError::Corrupt`] — the recovery
/// loader's fall-back-a-generation signal — while the `io.checkpoint.read`
/// faultpoint injects [`CscError::Io`] to exercise the retry path.
pub fn read_file(path: &Path) -> Result<Vec<u8>, CscError> {
    faultpoint_io!("io.checkpoint.read");
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| {
            CscError::corrupt("checkpoint", format!("cannot read {}: {e}", path.display()))
        })?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "csc-wal-test-{}-{tag}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_window(k: u32) -> Vec<GraphUpdate> {
        vec![
            GraphUpdate::InsertEdge(VertexId(k), VertexId(k + 1)),
            GraphUpdate::RemoveEdge(VertexId(k + 1), VertexId(k)),
            GraphUpdate::AddVertex,
        ]
    }

    #[test]
    fn roundtrip_and_reopen() {
        let dir = temp_dir("roundtrip");
        let path = dir.join(WAL_FILE);
        let mut wal = WriteAheadLog::create(&path, 7, FsyncPolicy::Always).unwrap();
        for k in 0..5u32 {
            wal.append(8 + k as u64, &sample_window(k)).unwrap();
        }
        drop(wal);

        let (base, records, report) = WriteAheadLog::read_all(&path).unwrap();
        assert_eq!(base, 7);
        assert_eq!(
            report,
            WalOpenReport {
                records: 5,
                truncated_bytes: 0
            }
        );
        assert_eq!(records.len(), 5);
        assert_eq!(records[0].seq, 8);
        assert_eq!(records[4].seq, 12);
        assert_eq!(records[2].updates, sample_window(2));

        // Reopen for appending: position and sequences continue.
        let (mut wal, report) = WriteAheadLog::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(report.records, 5);
        assert_eq!(wal.last_seq(), 12);
        wal.append(13, &[GraphUpdate::AddVertex]).unwrap();
        wal.sync().unwrap();
        let (_, records, _) = WriteAheadLog::read_all(&path).unwrap();
        assert_eq!(records.len(), 6);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut() {
        let dir = temp_dir("torn");
        let path = dir.join(WAL_FILE);
        let mut wal = WriteAheadLog::create(&path, 0, FsyncPolicy::Always).unwrap();
        wal.append(1, &sample_window(0)).unwrap();
        wal.append(2, &sample_window(1)).unwrap();
        drop(wal);
        let full = fs::read(&path).unwrap();
        let one_record_end = WAL_HEADER_LEN as usize + 8 + 12 + 3 * 9;

        for cut in one_record_end..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let (wal, report) = WriteAheadLog::open(&path, FsyncPolicy::Always).unwrap();
            assert_eq!(report.records, 1, "cut at {cut}");
            assert_eq!(
                report.truncated_bytes,
                (cut - one_record_end) as u64,
                "cut at {cut}"
            );
            assert_eq!(wal.last_seq(), 1);
            drop(wal);
            assert_eq!(
                fs::metadata(&path).unwrap().len(),
                one_record_end as u64,
                "file physically truncated at {cut}"
            );
            // A truncated-then-reopened log accepts fresh appends.
            let (mut wal, _) = WriteAheadLog::open(&path, FsyncPolicy::Always).unwrap();
            wal.append(2, &sample_window(9)).unwrap();
            let (_, records, _) = WriteAheadLog::read_all(&path).unwrap();
            assert_eq!(records.len(), 2);
            fs::write(&path, &full).unwrap(); // restore for the next cut
        }
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn mid_log_bit_flips_stop_the_scan_without_panicking() {
        let dir = temp_dir("flip");
        let path = dir.join(WAL_FILE);
        let mut wal = WriteAheadLog::create(&path, 0, FsyncPolicy::Never).unwrap();
        for k in 0..4u32 {
            wal.append(1 + k as u64, &sample_window(k)).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let full = fs::read(&path).unwrap();

        let mut s = 0x9E3779B97F4A7C15u64;
        for _ in 0..200 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let byte = (s >> 13) as usize % full.len();
            let bit = (s >> 7) % 8;
            let mut flipped = full.clone();
            flipped[byte] ^= 1 << bit;
            fs::write(&path, &flipped).unwrap();
            match WriteAheadLog::read_all(&path) {
                Ok((base, records, _)) => {
                    // A flip in a later record must not corrupt earlier ones.
                    assert_eq!(base, 0);
                    assert!(records.len() < 4, "flip at {byte}.{bit} undetected");
                    for (i, r) in records.iter().enumerate() {
                        assert_eq!(r.seq, 1 + i as u64);
                        assert_eq!(r.updates, sample_window(i as u32));
                    }
                }
                Err(CscError::Corrupt { .. }) => {} // header flip
                Err(other) => panic!("unexpected error kind: {other}"),
            }
        }
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn header_garbage_is_rejected() {
        let dir = temp_dir("hdr");
        let path = dir.join(WAL_FILE);
        fs::write(&path, b"short").unwrap();
        assert!(matches!(
            WriteAheadLog::open(&path, FsyncPolicy::Always),
            Err(CscError::Corrupt { .. })
        ));
        fs::write(&path, vec![0xAB; 64]).unwrap();
        assert!(matches!(
            WriteAheadLog::read_all(&path),
            Err(CscError::Corrupt { .. })
        ));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rotation_resets_the_log() {
        let dir = temp_dir("rotate");
        let path = dir.join(WAL_FILE);
        let mut wal = WriteAheadLog::create(&path, 0, FsyncPolicy::Always).unwrap();
        for k in 0..3u32 {
            wal.append(1 + k as u64, &sample_window(k)).unwrap();
        }
        wal.rotate(3).unwrap();
        assert_eq!(wal.base_seq(), 3);
        wal.append(4, &sample_window(7)).unwrap();
        drop(wal);
        let (base, records, _) = WriteAheadLog::read_all(&path).unwrap();
        assert_eq!(base, 3);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 4);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn checkpoint_write_list_prune() {
        let dir = temp_dir("ckpt");
        write_checkpoint(&dir, 5, b"five").unwrap();
        write_checkpoint(&dir, 9, b"nine").unwrap();
        write_checkpoint(&dir, 2, b"two").unwrap();
        // A stale tmp from a "crashed" checkpoint attempt is ignored.
        fs::write(dir.join("checkpoint-00000000000000000011.tmp"), b"torn").unwrap();
        let listed = list_checkpoints(&dir);
        assert_eq!(
            listed.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![9, 5, 2]
        );
        assert_eq!(fs::read(&listed[0].1).unwrap(), b"nine");

        prune_checkpoints(&dir, 2);
        let listed = list_checkpoints(&dir);
        assert_eq!(
            listed.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![9, 5]
        );
        assert!(
            !dir.join("checkpoint-00000000000000000011.tmp").exists(),
            "stale tmp swept"
        );
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    #[cfg(feature = "fault-injection")]
    fn append_retrying_rolls_back_partial_bytes() {
        use crate::fault;
        use crate::guard::RetryPolicy;
        let _guard = fault::test_lock();
        fault::reset();
        let dir = temp_dir("retry");
        let path = dir.join(WAL_FILE);
        let mut wal = WriteAheadLog::create(&path, 0, FsyncPolicy::Always).unwrap();
        wal.append(1, &sample_window(0)).unwrap();
        let retry = RetryPolicy::new(3, std::time::Duration::ZERO, std::time::Duration::ZERO);

        // A mid-write failure leaves partial bytes behind; the retry must
        // roll them back before rewriting, or the spliced garbage would
        // stop every future scan at it.
        fault::arm_io("io.wal.append.torn", 1, std::io::ErrorKind::Interrupted, 1);
        wal.append_retrying(2, &sample_window(1), &retry).unwrap();
        let (_, records, report) = WriteAheadLog::read_all(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(report.truncated_bytes, 0, "no spliced garbage");

        // Persistent failure: no retry, tail rolled back to the clean
        // position, and the log still accepts the next append.
        let clean_len = fs::metadata(&path).unwrap().len();
        fault::arm_io("io.wal.append", 1, std::io::ErrorKind::StorageFull, 9);
        let err = wal
            .append_retrying(3, &sample_window(2), &retry)
            .unwrap_err();
        assert!(!err.is_transient_io(), "{err}");
        fault::reset();
        assert_eq!(fs::metadata(&path).unwrap().len(), clean_len);
        assert_eq!(
            wal.last_seq(),
            2,
            "failed append leaves the sequence untouched"
        );
        wal.append_retrying(3, &sample_window(2), &retry).unwrap();
        let (_, records, _) = WriteAheadLog::read_all(&path).unwrap();
        assert_eq!(records.len(), 3);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn sequence_regression_stops_the_scan() {
        let dir = temp_dir("seqreg");
        let path = dir.join(WAL_FILE);
        // Hand-craft a log whose second record repeats seq 1: a valid
        // CRC but an impossible continuation (e.g. blocks from two log
        // generations spliced by a filesystem bug).
        let mut wal = WriteAheadLog::create(&path, 0, FsyncPolicy::Always).unwrap();
        wal.append(1, &sample_window(0)).unwrap();
        drop(wal);
        let mut bytes = fs::read(&path).unwrap();
        let record = bytes[WAL_HEADER_LEN as usize..].to_vec();
        bytes.extend_from_slice(&record); // duplicate record, same seq
        fs::write(&path, &bytes).unwrap();
        let (_, records, report) = WriteAheadLog::read_all(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(report.truncated_bytes, record.len() as u64);
        fs::remove_dir_all(dir).unwrap();
    }
}
