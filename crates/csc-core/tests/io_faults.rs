//! I/O-error fault injection across every instrumented durability site.
//!
//! Only compiled with `--features fault-injection`. Where the crash suite
//! (`crash_recovery.rs`) tears the process down with panics, this suite
//! makes the *disk* lie: each instrumented WAL / checkpoint site returns
//! an injected `io::Error` instead of performing its operation. The
//! contract under test, for every site:
//!
//! * a **transient** failure (e.g. `Interrupted`) is retried under the
//!   configured [`RetryPolicy`] and absorbed — the caller never sees it;
//! * a **persistent** failure (e.g. `StorageFull`, the `ENOSPC` kind) is
//!   not retried forever: the durability plane degrades to *loud*
//!   in-memory-only mode, recorded in [`IndexHealth`], while the engine
//!   keeps serving reads and accepting writes;
//! * in no case does an injected I/O error panic the engine, hang it, or
//!   silently lose an acknowledged write.

#![cfg(feature = "fault-injection")]

use csc_core::fault;
use csc_core::verify::verify_index;
use csc_core::{
    CscConfig, CscIndex, FsyncPolicy, GraphUpdate, MaintenanceEngine, MaintenanceStatus,
    RetryPolicy,
};
use csc_graph::generators::gnm;
use csc_graph::{DiGraph, VertexId};
use std::io::ErrorKind;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "csc-io-fault-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_graph() -> DiGraph {
    gnm(12, 30, 9)
}

/// Durable config exercising every I/O site on a short trace: fsync on
/// every append, checkpoint every 2 windows, zero-sleep retries so the
/// per-site sweep stays fast.
fn durable_config() -> CscConfig {
    CscConfig::default()
        .with_checkpoint_every(2)
        .with_fsync(FsyncPolicy::Always)
        .with_integrity_check(true)
        .with_io_retry(RetryPolicy::new(4, Duration::ZERO, Duration::ZERO))
}

/// A deterministic valid window trace against [`base_graph`].
fn trace() -> Vec<Vec<GraphUpdate>> {
    use GraphUpdate::*;
    vec![
        vec![InsertEdge(VertexId(0), VertexId(6)), AddVertex],
        vec![InsertEdge(VertexId(12), VertexId(3))],
        vec![InsertEdge(VertexId(3), VertexId(12)), AddVertex],
        vec![RemoveEdge(VertexId(0), VertexId(6))],
        vec![InsertEdge(VertexId(13), VertexId(0))],
        vec![InsertEdge(VertexId(0), VertexId(13))],
    ]
}

fn oracle_graph(windows: usize) -> DiGraph {
    let mut g = base_graph();
    for w in trace().iter().take(windows) {
        for u in w {
            match *u {
                GraphUpdate::InsertEdge(a, b) => {
                    g.try_add_edge(a, b).unwrap();
                }
                GraphUpdate::RemoveEdge(a, b) => {
                    g.try_remove_edge(a, b).unwrap();
                }
                GraphUpdate::AddVertex => {
                    g.add_vertex();
                }
            }
        }
    }
    g
}

#[test]
fn transient_error_at_every_io_site_never_fails_a_write_or_loses_state() {
    let _guard = fault::test_lock();

    // Pass 1: count the I/O-site hits of a clean durable run.
    fault::reset();
    let clean_dir = temp_dir("clean");
    {
        let mut engine =
            MaintenanceEngine::new(CscIndex::build(&base_graph(), durable_config()).unwrap());
        engine.attach_durability(&clean_dir).unwrap();
        for w in &trace() {
            engine.apply_batch(w).unwrap();
        }
    }
    let hits = fault::io_total_hits();
    assert!(
        hits > 15,
        "trace too small to be interesting: {hits} I/O hits"
    );
    std::fs::remove_dir_all(&clean_dir).unwrap();

    // Pass 2: inject one transient error at every single I/O site hit.
    // Whatever the site, every write must still be acked, the final state
    // must equal the oracle, and the engine must either keep its
    // durability (retry absorbed the blip) or have refused the
    // attachment cleanly up front.
    for inject_at in 1..=hits {
        fault::reset();
        fault::arm_io_global(inject_at, ErrorKind::Interrupted);
        let dir = temp_dir(&format!("transient-{inject_at}"));

        let mut engine =
            MaintenanceEngine::new(CscIndex::build(&base_graph(), durable_config()).unwrap());
        let attached = engine.attach_durability(&dir).is_ok();
        for (k, w) in trace().iter().enumerate() {
            engine
                .apply_batch(w)
                .unwrap_or_else(|e| panic!("hit {inject_at}/{hits}, window {k}: {e}"));
        }
        fault::reset();

        let ctx = format!("transient injection at I/O hit {inject_at}/{hits}");
        assert_eq!(engine.status(), MaintenanceStatus::Serving, "{ctx}");
        assert_eq!(
            engine.index().original_graph(),
            oracle_graph(usize::MAX),
            "{ctx}"
        );
        verify_index(engine.index()).unwrap();
        let health = engine.health();
        if attached {
            assert!(
                !health.durability_degraded,
                "{ctx}: one transient blip must be absorbed by the retries"
            );
            // The durable trail is complete: recovery reproduces the
            // exact final state.
            drop(engine);
            let (recovered, _report) = MaintenanceEngine::recover(&dir).unwrap();
            assert_eq!(
                recovered.index().original_graph(),
                oracle_graph(usize::MAX),
                "{ctx}: recovery"
            );
            verify_index(recovered.index()).unwrap();
        } else {
            // The attach path makes no durability promise until it
            // returns Ok; a refusal is loud and leaves a fully serving
            // in-memory engine.
            assert!(!health.durability_degraded, "{ctx}: nothing was attached");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn persistent_enospc_on_wal_append_degrades_loudly_and_reattach_clears() {
    let _guard = fault::test_lock();
    fault::reset();
    let dir = temp_dir("enospc-wal");

    let mut engine =
        MaintenanceEngine::new(CscIndex::build(&base_graph(), durable_config()).unwrap());
    engine.attach_durability(&dir).unwrap();
    engine.apply_batch(&trace()[0]).unwrap();

    // The disk fills: every append attempt fails with ENOSPC, past the
    // retry budget. The write itself must still be acked — the engine
    // drops to loud in-memory-only mode instead of failing or poisoning.
    fault::arm_io("io.wal.append", 1, ErrorKind::StorageFull, 1_000);
    engine.apply_batch(&trace()[1]).unwrap();
    fault::reset();

    assert_eq!(engine.status(), MaintenanceStatus::Serving);
    let health = engine.health();
    assert!(health.durability_degraded, "{health}");
    let detail = engine.durability_degraded_detail().unwrap().to_string();
    assert!(detail.contains("wal append failed"), "{detail}");

    // Readers and writers are unaffected; nothing further is logged.
    verify_index(engine.index()).unwrap();
    engine.apply_batch(&trace()[2]).unwrap();
    assert_eq!(engine.index().original_graph(), oracle_graph(3));

    // Re-attaching (e.g. to a drained disk) writes a fresh full
    // checkpoint, re-covering the state the outage left unlogged, and
    // clears the degradation flag.
    let fresh = temp_dir("enospc-reattach");
    engine.attach_durability(&fresh).unwrap();
    assert!(!engine.health().durability_degraded);
    engine.apply_batch(&trace()[3]).unwrap();
    drop(engine);

    let (recovered, _report) = MaintenanceEngine::recover(&fresh).unwrap();
    assert_eq!(recovered.index().original_graph(), oracle_graph(4));
    verify_index(recovered.index()).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&fresh).unwrap();
}

#[test]
fn persistent_checkpoint_failure_degrades_but_preserves_the_durable_prefix() {
    let _guard = fault::test_lock();
    fault::reset();
    let dir = temp_dir("enospc-ckpt");

    let mut engine =
        MaintenanceEngine::new(CscIndex::build(&base_graph(), durable_config()).unwrap());
    engine.attach_durability(&dir).unwrap();
    engine.apply_batch(&trace()[0]).unwrap();

    // checkpoint_every = 2: the second window triggers a checkpoint,
    // whose write persistently fails. The window itself was WAL-logged
    // *before* the checkpoint attempt, so the durable prefix on disk
    // covers both windows; only post-degradation writes are in-memory.
    fault::arm_io("io.checkpoint.write", 1, ErrorKind::StorageFull, 1_000);
    engine.apply_batch(&trace()[1]).unwrap();
    fault::reset();

    assert_eq!(engine.status(), MaintenanceStatus::Serving);
    assert!(engine.health().durability_degraded);
    let detail = engine.durability_degraded_detail().unwrap().to_string();
    assert!(detail.contains("checkpoint"), "{detail}");

    // Unlogged tail: applied live, not durable — the documented loss
    // mode of degraded durability (loud, bounded, never silent).
    engine.apply_batch(&trace()[2]).unwrap();
    assert_eq!(engine.index().original_graph(), oracle_graph(3));
    drop(engine);

    let (recovered, report) = MaintenanceEngine::recover(&dir).unwrap();
    assert_eq!(report.records_replayed, 2, "both logged windows replayed");
    assert_eq!(recovered.index().original_graph(), oracle_graph(2));
    verify_index(recovered.index()).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn transient_read_errors_during_recovery_are_retried_to_success() {
    let _guard = fault::test_lock();
    fault::reset();
    let dir = temp_dir("recover-transient");
    {
        let mut engine =
            MaintenanceEngine::new(CscIndex::build(&base_graph(), durable_config()).unwrap());
        engine.attach_durability(&dir).unwrap();
        for w in trace().iter().take(3) {
            engine.apply_batch(w).unwrap();
        }
    }

    // Both recovery read sites hiccup twice each; the bounded retries
    // absorb them without burning a checkpoint generation.
    fault::arm_io("io.checkpoint.read", 1, ErrorKind::Interrupted, 2);
    fault::arm_io("io.wal.read", 1, ErrorKind::Interrupted, 2);
    let (recovered, report) = MaintenanceEngine::recover(&dir).unwrap();
    fault::reset();

    assert_eq!(report.checkpoints_skipped, 0, "retried, not skipped");
    assert_eq!(recovered.index().original_graph(), oracle_graph(3));
    assert!(!recovered.health().durability_degraded);
    verify_index(recovered.index()).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn persistent_reanchor_failure_recovers_in_memory_with_degraded_durability() {
    let _guard = fault::test_lock();
    fault::reset();
    let dir = temp_dir("recover-reanchor");
    {
        // Checkpoint cadence above the trace: recovery must replay the
        // WAL and then re-anchor with a fresh checkpoint.
        let config = durable_config().with_checkpoint_every(1_000);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&base_graph(), config).unwrap());
        engine.attach_durability(&dir).unwrap();
        for w in trace().iter().take(3) {
            engine.apply_batch(w).unwrap();
        }
    }

    // The state is recovered fine, but the disk refuses the re-anchor
    // checkpoint. Recovery still succeeds — serving, correct, loudly
    // in-memory-only — rather than failing after the hard part worked.
    fault::arm_io("io.checkpoint.write", 1, ErrorKind::StorageFull, 1_000);
    let (mut recovered, report) = MaintenanceEngine::recover(&dir).unwrap();
    fault::reset();

    assert_eq!(report.records_replayed, 3);
    assert_eq!(recovered.status(), MaintenanceStatus::Serving);
    assert_eq!(recovered.index().original_graph(), oracle_graph(3));
    let detail = recovered.durability_degraded_detail().unwrap().to_string();
    assert!(detail.contains("re-anchor"), "{detail}");
    assert!(recovered.health().durability_degraded);
    // Still writable; the untouched on-disk generation is still valid
    // for a later recovery of the pre-outage state.
    recovered.apply_batch(&trace()[3]).unwrap();
    verify_index(recovered.index()).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_wal_tail_truncation_is_surfaced_in_health() {
    let _guard = fault::test_lock();
    fault::reset();
    let dir = temp_dir("torn-tail");
    {
        let config = durable_config().with_checkpoint_every(1_000);
        let mut engine = MaintenanceEngine::new(CscIndex::build(&base_graph(), config).unwrap());
        engine.attach_durability(&dir).unwrap();
        for w in trace().iter().take(2) {
            engine.apply_batch(w).unwrap();
        }
    }
    // A crash mid-append leaves a torn record at the tail.
    let wal_path = dir.join(csc_core::wal::WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes.extend_from_slice(&[0xAB; 17]);
    std::fs::write(&wal_path, &bytes).unwrap();

    let (recovered, report) = MaintenanceEngine::recover(&dir).unwrap();
    assert_eq!(report.wal_truncated_bytes, 17);
    assert_eq!(
        recovered.health().wal_truncated_bytes,
        17,
        "the dropped torn bytes stay visible in health, not just the one-shot report"
    );
    assert_eq!(recovered.index().original_graph(), oracle_graph(2));
    verify_index(recovered.index()).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
