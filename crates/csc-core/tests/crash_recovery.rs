//! Crash-recovery equivalence under deterministic fault injection.
//!
//! Only compiled with `--features fault-injection`. The scheme is the
//! two-pass one described in `csc_core::fault`: run a write trace once
//! unarmed while counting faultpoint hits, then re-run it once per hit
//! index with a global trigger armed there, let the injected panic tear
//! the engine down exactly as a crash would, recover from the files left
//! behind, and prove the recovered index equivalent to an oracle.
//!
//! The equivalence is *dual*: a window that was logged but whose ack
//! never returned may legitimately either survive (it reached the WAL)
//! or vanish (the tail was torn mid-append). The recovered graph must
//! equal the oracle over the acked prefix, or that plus the one
//! in-flight window — nothing else, and the index over it must pass full
//! semantic verification.

#![cfg(feature = "fault-injection")]

use csc_core::fault;
use csc_core::verify::verify_index;
use csc_core::{
    ConcurrentIndex, CscConfig, CscError, CscIndex, FsyncPolicy, GraphUpdate, MaintenanceEngine,
    MaintenanceStatus,
};
use csc_graph::generators::gnm;
use csc_graph::{DiGraph, VertexId};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "csc-crash-test-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_graph() -> DiGraph {
    gnm(12, 30, 5)
}

fn durable_config(checkpoint_every: u32) -> CscConfig {
    CscConfig::default()
        .with_fsync(FsyncPolicy::Never)
        .with_checkpoint_every(checkpoint_every)
        .with_integrity_check(true)
}

/// A deterministic trace of windows, each valid in sequence against the
/// base graph: edge flips between existing vertices plus vertex growth.
fn trace() -> Vec<Vec<GraphUpdate>> {
    use GraphUpdate::*;
    let g = base_graph();
    let mut windows = Vec::new();
    let mut sim = g.clone();
    let mut s = 0xC5C5_C5C5u64;
    let mut rng = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as u32
    };
    for k in 0..8 {
        let mut window = Vec::new();
        for _ in 0..=(k % 3) {
            let n = sim.vertex_count() as u32;
            match rng() % 4 {
                0 => {
                    window.push(AddVertex);
                    sim.add_vertex();
                }
                1 => {
                    // Remove some existing edge, if any.
                    if let Some(&(a, b)) = sim.edge_vec().get(rng() as usize % 8) {
                        sim.try_remove_edge(VertexId(a), VertexId(b)).unwrap();
                        window.push(RemoveEdge(VertexId(a), VertexId(b)));
                    }
                }
                _ => {
                    let (a, b) = (VertexId(rng() % n), VertexId(rng() % n));
                    if a != b && !sim.has_edge(a, b) {
                        sim.try_add_edge(a, b).unwrap();
                        window.push(InsertEdge(a, b));
                    }
                }
            }
        }
        if !window.is_empty() {
            windows.push(window);
        }
    }
    windows
}

fn apply_to_sim(sim: &mut DiGraph, window: &[GraphUpdate]) {
    for u in window {
        match *u {
            GraphUpdate::InsertEdge(a, b) => {
                sim.try_add_edge(a, b).unwrap();
            }
            GraphUpdate::RemoveEdge(a, b) => {
                sim.try_remove_edge(a, b).unwrap();
            }
            GraphUpdate::AddVertex => {
                sim.add_vertex();
            }
        }
    }
}

/// How a [`run_trace`] pass ended.
struct TraceOutcome {
    /// Windows whose `apply_batch` returned `Ok`.
    acked: usize,
    /// Whether an injected crash fired anywhere.
    crashed: bool,
    /// Whether `attach_durability` completed — before that, there is no
    /// durable state at all, and recovery refusing is the right answer.
    attached: bool,
}

/// Runs the trace against a fresh durable engine in `dir`.
fn run_trace(dir: &PathBuf, checkpoint_every: u32) -> TraceOutcome {
    let done = |acked, crashed, attached| TraceOutcome {
        acked,
        crashed,
        attached,
    };
    let engine_result = fault::quiet_catch(|| {
        MaintenanceEngine::new(
            CscIndex::build(&base_graph(), durable_config(checkpoint_every)).unwrap(),
        )
    });
    let Ok(mut engine) = engine_result else {
        return done(0, true, false);
    };
    if fault::quiet_catch(|| engine.attach_durability(dir)).map(|r| r.is_err()) != Ok(false) {
        return done(0, true, false);
    }
    for (k, window) in trace().iter().enumerate() {
        match fault::quiet_catch(|| engine.apply_batch(window)) {
            // Acked: the window is durable and applied.
            Ok(Ok(_)) => {}
            // The engine caught an injected panic inside the write path
            // and degraded — from the outside this is the crash.
            Ok(Err(CscError::Poisoned { .. })) => return done(k, true, true),
            Ok(Err(e)) => panic!("unexpected write error: {e}"),
            // The panic unwound through the engine (WAL/checkpoint
            // points are not under its catch_unwind): a hard crash.
            Err(_) => return done(k, true, true),
        }
    }
    done(trace().len(), false, true)
}

/// The recovered graph must equal the acked-prefix oracle or that plus
/// the single in-flight window.
fn assert_dual_oracle(recovered: &MaintenanceEngine, acked: usize, crashed: bool, context: &str) {
    let mut sim = base_graph();
    let windows = trace();
    for w in windows.iter().take(acked) {
        apply_to_sim(&mut sim, w);
    }
    let got = recovered.index().original_graph();
    let matches_acked = got == sim;
    let matches_inflight = crashed && acked < windows.len() && {
        let mut plus = sim.clone();
        apply_to_sim(&mut plus, &windows[acked]);
        got == plus
    };
    assert!(
        matches_acked || matches_inflight,
        "{context}: recovered graph matches neither the acked prefix \
         ({acked} windows) nor acked+in-flight"
    );
    verify_index(recovered.index()).unwrap();
}

#[test]
fn crash_at_every_faultpoint_recovers_to_oracle_state() {
    let _guard = fault::test_lock();

    // Pass 1: count the faultpoint hits of a clean run.
    fault::reset();
    let clean_dir = temp_dir("clean");
    let clean = run_trace(&clean_dir, 3);
    assert!(!clean.crashed, "unarmed run must not crash");
    assert_eq!(clean.acked, trace().len());
    let hits = fault::total_hits();
    assert!(hits > 20, "trace too small to be interesting: {hits} hits");
    std::fs::remove_dir_all(&clean_dir).unwrap();

    // Pass 2: crash at every single instrumented point, recover, verify.
    for crash_at in 1..=hits {
        fault::reset();
        fault::arm_global(crash_at);
        let dir = temp_dir(&format!("crash-{crash_at}"));
        let outcome = run_trace(&dir, 3);
        fault::reset();
        assert!(outcome.crashed, "trigger {crash_at}/{hits} must fire");

        match MaintenanceEngine::recover(&dir) {
            Ok((recovered, _report)) => {
                assert_eq!(recovered.status(), MaintenanceStatus::Serving);
                assert_dual_oracle(
                    &recovered,
                    outcome.acked,
                    outcome.crashed,
                    &format!("crash {crash_at}/{hits}"),
                );
            }
            // A crash during attach_durability may legitimately leave no
            // (complete) checkpoint behind: nothing durable was ever
            // promised, and recovery must refuse rather than guess.
            Err(CscError::Corrupt { .. }) if !outcome.attached => {}
            Err(e) => panic!("recovery after crash {crash_at}/{hits} failed: {e}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn double_crash_during_recovery_replay_is_survivable() {
    let _guard = fault::test_lock();
    fault::reset();
    let dir = temp_dir("double-replay");
    // Cadence above the trace: every window stays in the WAL suffix.
    let outcome = run_trace(&dir, 1000);
    assert!(!outcome.crashed);
    let acked = outcome.acked;

    // First recovery attempt crashes while replaying the third record.
    fault::arm("recover.replay", 3);
    let err = match fault::quiet_catch(|| MaintenanceEngine::recover(&dir)) {
        Err(msg) => msg,
        Ok(_) => panic!("the armed recovery must crash"),
    };
    assert!(err.contains("recover.replay"), "{err}");
    fault::reset();

    // read_all never mutates and the re-anchor was not reached: the
    // directory is exactly as the first crash left it, so the second
    // attempt succeeds on the same state.
    let (recovered, report) = MaintenanceEngine::recover(&dir).unwrap();
    assert_eq!(report.records_replayed, acked);
    assert_dual_oracle(&recovered, acked, false, "after double crash");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_during_the_recovery_reanchor_checkpoint_is_survivable() {
    let _guard = fault::test_lock();
    fault::reset();
    let dir = temp_dir("double-anchor");
    let outcome = run_trace(&dir, 1000);
    assert!(!outcome.crashed);
    let acked = outcome.acked;

    // Crash mid-write of the re-anchor checkpoint: a torn .tmp is left
    // behind, the previous checkpoint and the full WAL are intact.
    fault::arm("checkpoint.torn", 1);
    let err = match fault::quiet_catch(|| MaintenanceEngine::recover(&dir)) {
        Err(msg) => msg,
        Ok(_) => panic!("the armed recovery must crash"),
    };
    assert!(err.contains("checkpoint.torn"), "{err}");
    fault::reset();

    let (recovered, report) = MaintenanceEngine::recover(&dir).unwrap();
    assert_eq!(report.records_replayed, acked);
    assert_dual_oracle(&recovered, acked, false, "after re-anchor crash");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn poisoned_writer_keeps_serving_readers_until_recovery() {
    let _guard = fault::test_lock();
    fault::reset();

    let g = base_graph();
    let shared = ConcurrentIndex::new(CscIndex::build(&g, CscConfig::default()).unwrap());
    let before: Vec<_> = g.vertices().map(|v| shared.query(v)).collect();
    let pinned = shared.snapshot();

    // Panic mid-batch, after the graph mutated but before label repair.
    fault::arm("batch.insert.graphed", 1);
    let err = shared
        .apply_batch(&[GraphUpdate::InsertEdge(VertexId(0), VertexId(7))])
        .unwrap_err();
    fault::reset();
    assert!(matches!(err, CscError::Poisoned { .. }), "{err:?}");
    assert_eq!(shared.status(), MaintenanceStatus::Degraded);

    // Readers: both the held snapshot and fresh queries keep answering
    // the pre-crash state.
    for (v, want) in g.vertices().zip(&before) {
        assert_eq!(shared.query(v), *want, "degraded read of SCCnt({v})");
        assert_eq!(pinned.query(v), *want, "pinned snapshot SCCnt({v})");
    }
    // Writers: refused, with the poisoning context.
    let refused = shared.insert_edge(VertexId(1), VertexId(5)).unwrap_err();
    assert!(matches!(refused, CscError::Poisoned { .. }), "{refused:?}");

    // Recover in place: without durability this rebuilds from the live
    // graph — which already carries the crashed window's edge insert
    // (the graph mutates before label repair), so the write survives.
    let report = shared.recover().unwrap();
    assert_eq!(report.checkpoint_seq, 0);
    assert_eq!(shared.status(), MaintenanceStatus::Serving);
    assert_eq!(shared.maintenance_stats().recoveries, 1);
    shared.with_read(|idx| {
        assert!(idx.original_graph().has_edge(VertexId(0), VertexId(7)));
        verify_index(idx).unwrap();
    });
    // And the facade is fully writable again, republishing as it goes.
    shared.insert_edge(VertexId(7), VertexId(0)).unwrap();
    shared.refresh();
    assert_eq!(shared.query(VertexId(0)).unwrap().length, 2);
}

#[test]
fn parallel_wave_worker_panic_degrades_instead_of_aborting() {
    let _guard = fault::test_lock();
    fault::reset();

    // Width 4: the insertion repair runs on pool worker threads. A panic
    // injected *inside a worker* must cross the work-stealing scope join,
    // reach the engine's degradation catch on the calling thread, and
    // poison the writer — never abort the process or hang the pool.
    let g = base_graph();
    let config = CscConfig::default().with_threads(4);
    let shared = ConcurrentIndex::new(CscIndex::build(&g, config).unwrap());
    let before: Vec<_> = g.vertices().map(|v| shared.query(v)).collect();

    let inserts: Vec<GraphUpdate> = [(0u32, 5u32), (1, 7), (2, 9), (3, 11), (4, 6)]
        .iter()
        .filter(|&&(a, b)| !g.has_edge(VertexId(a), VertexId(b)))
        .map(|&(a, b)| GraphUpdate::InsertEdge(VertexId(a), VertexId(b)))
        .collect();
    fault::arm("batch.wave.worker", 2);
    let err = shared.apply_batch(&inserts).unwrap_err();
    fault::reset();
    assert!(matches!(err, CscError::Poisoned { .. }), "{err:?}");
    assert_eq!(shared.status(), MaintenanceStatus::Degraded);

    // Readers stay on the pre-crash snapshot; the pool is still usable.
    for (v, want) in g.vertices().zip(&before) {
        assert_eq!(shared.query(v), *want, "degraded read of SCCnt({v})");
    }

    // In-place recovery rebuilds from the live graph — with the same
    // parallel config — and the facade serves and writes again.
    shared.recover().unwrap();
    assert_eq!(shared.status(), MaintenanceStatus::Serving);
    shared.with_read(|idx| verify_index(idx).unwrap());
    shared.apply_batch(&inserts).unwrap();
    shared.refresh();
    shared.with_read(|idx| verify_index(idx).unwrap());
}

#[test]
fn concurrent_open_resumes_from_a_crashed_durable_facade() {
    let _guard = fault::test_lock();
    fault::reset();
    let dir = temp_dir("facade-open");

    let g = base_graph();
    let shared = ConcurrentIndex::new(CscIndex::build(&g, durable_config(1000)).unwrap());
    shared.attach_durability(&dir).unwrap();
    shared.insert_edge(VertexId(0), VertexId(7)).unwrap();
    shared.add_vertex().unwrap();
    shared.insert_edge(VertexId(12), VertexId(1)).unwrap();
    let want: Vec<_> = g.vertices().map(|v| shared.query_fresh(v)).collect();
    drop(shared); // crash: no clean shutdown

    let (reopened, report) = ConcurrentIndex::open(&dir).unwrap();
    assert_eq!(report.records_replayed, 3);
    for (v, want) in g.vertices().zip(&want) {
        assert_eq!(reopened.query(v), *want, "reopened SCCnt({v})");
    }
    reopened.with_read(|idx| verify_index(idx).unwrap());
    std::fs::remove_dir_all(&dir).unwrap();
}
