//! Property suite for the deadline plane: an aborted query or write must
//! never corrupt the index.
//!
//! Each case generates a churn trace (windows of inserts, deletes, and
//! vertex additions over a random `gnm` base) and replays it through
//! [`CscIndex::apply_batch_deadline`] on three indexes configured with
//! thread widths 1, 2, and 4. Every window first runs under a generated
//! deadline — roomy, already expired, or a nanosecond-tight one that may
//! fire mid-flight — and any `DeadlineExceeded` refusal is retried
//! unbounded. Expired-deadline queries are interleaved between windows so
//! read-path aborts land on live state too.
//!
//! The invariants, per the contract in `src/deadline.rs`:
//!
//! * a refused batch has **no observable effect**, so the retry leaves all
//!   three indexes oracle-exact against the mirror graph, and
//! * the final serialized images (`to_bytes`) are **byte-identical**
//!   across thread widths — deadline aborts introduce no
//!   parallelism-dependent divergence.

use csc_core::verify::verify_index;
use csc_core::{CscConfig, CscError, CscIndex, Deadline, GraphUpdate};
use csc_graph::generators::gnm;
use csc_graph::traversal::shortest_cycle_oracle;
use csc_graph::{DiGraph, VertexId};
use proptest::collection::vec;
use proptest::prelude::*;
use std::time::{Duration, Instant};

const WIDTHS: [u32; 3] = [1, 2, 4];

fn expired() -> Deadline {
    Deadline::at(Instant::now() - Duration::from_millis(1))
}

fn roomy() -> Deadline {
    Deadline::within(Duration::from_secs(3600))
}

/// The generated deadline for one window's first attempt.
fn window_deadline(flag: u8, nanos: u64) -> Deadline {
    match flag {
        0 => roomy(),
        1 => expired(),
        // Tight enough to plausibly fire mid-window, but a race either
        // way is fine: success and refused-then-retried converge.
        _ => Deadline::within(Duration::from_nanos(nanos)),
    }
}

/// Resolves one abstract op against the mirror graph so the concrete
/// update is always valid, mutating the mirror in step. Returns `None`
/// when the op has no valid target (e.g. a delete on an edgeless graph).
fn resolve(mirror: &mut DiGraph, kind: u8, a: u32, b: u32) -> Option<GraphUpdate> {
    let n = mirror.vertex_count() as u32;
    match kind {
        0 => {
            let u = VertexId(a % n);
            let mut v = VertexId(b % n);
            if u == v {
                v = VertexId((b + 1) % n);
            }
            if u == v || mirror.has_edge(u, v) {
                return None;
            }
            mirror.try_add_edge(u, v).unwrap();
            Some(GraphUpdate::InsertEdge(u, v))
        }
        1 => {
            let m = mirror.edge_count();
            if m == 0 {
                return None;
            }
            let (u, v) = mirror.edges().nth(a as usize % m).unwrap();
            mirror.try_remove_edge(u, v).unwrap();
            Some(GraphUpdate::RemoveEdge(u, v))
        }
        _ => {
            mirror.add_vertex();
            Some(GraphUpdate::AddVertex)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn deadline_aborts_leave_state_oracle_exact_and_width_identical(
        n in 8u32..20,
        seed in 0u64..1_000,
        windows in vec(
            (
                0u8..3,                         // deadline flag for the window
                50u64..5_000,                   // tight-deadline width in ns
                vec((0u8..3, any::<u32>(), any::<u32>()), 1..5),
            ),
            1..6,
        ),
    ) {
        let m = n as usize * 2;
        let base = gnm(n as usize, m, seed);
        let mut mirror = base.clone();

        // Resolve the abstract trace once, against a single mirror, so
        // every width replays the exact same concrete windows.
        let concrete: Vec<(u8, u64, Vec<GraphUpdate>)> = windows
            .iter()
            .map(|(flag, nanos, ops)| {
                let mut w: Vec<GraphUpdate> = ops
                    .iter()
                    .filter_map(|&(kind, a, b)| resolve(&mut mirror, kind, a, b))
                    .collect();
                if w.is_empty() {
                    mirror.add_vertex();
                    w.push(GraphUpdate::AddVertex);
                }
                (*flag, *nanos, w)
            })
            .collect();

        let mut images = Vec::new();
        for width in WIDTHS {
            let config = CscConfig::default().with_threads(width);
            let mut idx = CscIndex::build(&base, config).unwrap();
            for (flag, nanos, window) in &concrete {
                match idx.apply_batch_deadline(window, window_deadline(*flag, *nanos)) {
                    Ok(_) => {}
                    Err(CscError::DeadlineExceeded) => {
                        // A refused window left no trace; the unbounded
                        // retry must apply it cleanly.
                        idx.apply_batch_deadline(window, Deadline::NONE).unwrap();
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("batch failed: {e}"))),
                }
                // Read-path aborts on live state are refusals, not damage.
                prop_assert_eq!(
                    idx.query_deadline(VertexId(0), expired()),
                    Err(CscError::DeadlineExceeded)
                );
            }

            prop_assert!(verify_index(&idx).is_ok());
            for v in mirror.vertices() {
                prop_assert_eq!(
                    idx.query_deadline(v, roomy()).unwrap().map(|c| (c.length, c.count)),
                    shortest_cycle_oracle(&mirror, v),
                    "width {}: SCCnt({})", width, v
                );
            }
            // Parallelism is a non-semantic runtime field that `to_bytes`
            // persists; pin it so the images compare on content alone.
            idx.set_parallelism(CscConfig::default().with_threads(1).parallelism);
            images.push(idx.to_bytes().unwrap());
        }

        prop_assert_eq!(&images[0], &images[1], "widths 1 and 2 diverged");
        prop_assert_eq!(&images[0], &images[2], "widths 1 and 4 diverged");
    }
}
