//! Vertex identifiers.
//!
//! Vertices are dense `u32` indices (`0..n`). A newtype keeps them from being
//! confused with ranks, couple ids, or raw counts in the labeling layers,
//! while staying `Copy` and 4 bytes — label entries pack vertex ids into 23
//! bits (see `csc-labeling`), so `u32` is already generous.

use std::fmt;

/// A vertex identifier: a dense index in `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The maximum number of vertices supported by the substrate.
    ///
    /// The bipartite conversion doubles vertex count and the packed label
    /// entries devote 23 bits to a hub id, so original graphs must satisfy
    /// `2 * n < 2^23`.
    pub const MAX_VERTICES: usize = 1 << 31;

    /// Creates a vertex id from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index < Self::MAX_VERTICES);
        VertexId(index as u32)
    }

    /// Returns the dense index of this vertex.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<VertexId> for u32 {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.0
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let v = VertexId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(VertexId::from(42u32), v);
    }

    #[test]
    fn debug_and_display() {
        let v = VertexId::new(7);
        assert_eq!(format!("{v:?}"), "v7");
        assert_eq!(format!("{v}"), "7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(VertexId::new(1) < VertexId::new(2));
        assert_eq!(VertexId::default(), VertexId::new(0));
    }
}
