//! Seeded synthetic graph generators.
//!
//! These stand in for the paper's SNAP/Konect datasets (no network access in
//! this environment — see DESIGN.md §4). Each family targets the structural
//! property that drives the corresponding experiment: degree skew for the
//! query-time clusters, small-world distances for update locality, planted
//! rings for the fraud case study. Every generator takes an explicit seed
//! and is fully deterministic.

use crate::digraph::DiGraph;
use crate::vertex::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Directed Erdős–Rényi `G(n, m)`: exactly `m` distinct non-loop edges
/// drawn uniformly. Models the paper's p2p graphs (G04, G30), whose degree
/// distribution is comparatively flat.
///
/// # Panics
///
/// Panics if `m > n * (n - 1)` (more edges than a simple digraph can hold).
pub fn gnm(n: usize, m: usize, seed: u64) -> DiGraph {
    let max = n.saturating_mul(n.saturating_sub(1));
    assert!(m <= max, "G(n={n}, m={m}) exceeds the {max} possible edges");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new(n);
    // Dense fallback: enumerate and sample when m is a large fraction.
    if n > 1 && m * 3 > max * 2 {
        let mut all: Vec<(u32, u32)> = Vec::with_capacity(max);
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u != v {
                    all.push((u, v));
                }
            }
        }
        rand::seq::SliceRandom::shuffle(&mut all[..], &mut rng);
        for &(u, v) in all.iter().take(m) {
            g.try_add_edge(VertexId(u), VertexId(v))
                .expect("unique by construction");
        }
        return g;
    }
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(m * 2);
    while g.edge_count() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v && seen.insert((u, v)) {
            g.try_add_edge(VertexId(u), VertexId(v))
                .expect("deduplicated");
        }
    }
    g
}

/// Directed preferential attachment with optional reciprocal edges.
///
/// Vertex `v` joins with up to `k` out-edges whose targets are drawn
/// proportionally to in-degree + 1 among `0..v` (classic rich-get-richer, so
/// the in-degree distribution is heavy-tailed like the paper's email/wiki
/// graphs). With probability `reciprocal_prob` each new edge is mirrored,
/// which is what creates 2-cycles and, combined, longer cycles — wiki-talk
/// style graphs are full of reciprocal interactions.
pub fn preferential_attachment(n: usize, k: usize, reciprocal_prob: f64, seed: u64) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new(n);
    // The urn holds one entry per (in-edge + 1 baseline) per vertex.
    let mut urn: Vec<u32> = Vec::with_capacity(n * (k + 1));
    for v in 1..n as u32 {
        urn.push(v - 1); // baseline entry for the previous vertex
        let tries = k.min(v as usize);
        for _ in 0..tries {
            let t = urn[rng.gen_range(0..urn.len())];
            if t != v && g.try_add_edge(VertexId(v), VertexId(t)).is_ok() {
                urn.push(t);
                if rng.gen_bool(reciprocal_prob) && g.try_add_edge(VertexId(t), VertexId(v)).is_ok()
                {
                    urn.push(v);
                }
            }
        }
    }
    g
}

/// Directed small-world (Watts–Strogatz style) graph.
///
/// Vertices sit on a ring; each has out-edges to its `k` clockwise
/// successors, and every edge is rewired to a uniform random target with
/// probability `rewire_prob`. Models the web graphs' combination of local
/// structure and long-range shortcuts (WBN/WBB analogs).
pub fn small_world(n: usize, k: usize, rewire_prob: f64, seed: u64) -> DiGraph {
    assert!(n > k, "ring needs n > k");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new(n);
    for v in 0..n as u32 {
        for i in 1..=k as u32 {
            let mut t = (v + i) % n as u32;
            if rewire_prob > 0.0 && rng.gen_bool(rewire_prob) {
                t = rng.gen_range(0..n as u32);
            }
            if t != v {
                let _ = g.try_add_edge(VertexId(v), VertexId(t));
            }
        }
    }
    g
}

/// Random communities stitched by a sparse bidirectional bridge ring.
///
/// Each of the `communities` blocks of `size` vertices gets `intra_edges`
/// uniform random internal edges; block `c`'s first vertex is linked both
/// ways to block `c + 1`'s. Degrees are nearly flat, so degree orders are
/// uninformative here while the bridge vertices dominate inter-community
/// shortest paths — the fixture where coverage-sampled hub orders beat
/// degree orders most clearly.
pub fn bridged_communities(
    communities: usize,
    size: usize,
    intra_edges: usize,
    seed: u64,
) -> DiGraph {
    assert!(communities >= 2 && size >= 2, "need at least 2x2 vertices");
    let n = communities * size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new(n);
    for c in 0..communities {
        let base = (c * size) as u32;
        let mut added = 0;
        let mut attempts = 0usize;
        let max_attempts = intra_edges.saturating_mul(20) + 100;
        while added < intra_edges && attempts < max_attempts {
            attempts += 1;
            let u = base + rng.gen_range(0..size as u32);
            let v = base + rng.gen_range(0..size as u32);
            if u != v && g.try_add_edge(VertexId(u), VertexId(v)).is_ok() {
                added += 1;
            }
        }
        let next = (((c + 1) % communities) * size) as u32;
        let _ = g.try_add_edge(VertexId(base), VertexId(next));
        let _ = g.try_add_edge(VertexId(next), VertexId(base));
    }
    g
}

/// Adds `count` uniform random extra edges to `g` (skipping duplicates and
/// self-loops; gives up after a bounded number of rejections so callers can
/// sprinkle noise onto dense graphs safely). Returns the number added.
pub fn sprinkle_random_edges(g: &mut DiGraph, count: usize, seed: u64) -> usize {
    let n = g.vertex_count() as u32;
    if n < 2 {
        return 0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut added = 0;
    let mut attempts = 0usize;
    let max_attempts = count.saturating_mul(20) + 100;
    while added < count && attempts < max_attempts {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && g.try_add_edge(VertexId(u), VertexId(v)).is_ok() {
            added += 1;
        }
    }
    added
}

/// Deterministic directed cycle `0 -> 1 -> ... -> n-1 -> 0`.
pub fn directed_cycle(n: usize) -> DiGraph {
    assert!(n >= 2, "a directed cycle needs at least 2 vertices");
    let mut g = DiGraph::new(n);
    for v in 0..n as u32 {
        g.try_add_edge(VertexId(v), VertexId((v + 1) % n as u32))
            .expect("cycle edges are valid");
    }
    g
}

/// Deterministic directed path `0 -> 1 -> ... -> n-1`.
pub fn directed_path(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for v in 1..n as u32 {
        g.try_add_edge(VertexId(v - 1), VertexId(v))
            .expect("path edges are valid");
    }
    g
}

/// Complete digraph on `n` vertices (every ordered pair, no loops).
pub fn complete(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v {
                g.try_add_edge(VertexId(u), VertexId(v)).expect("valid");
            }
        }
    }
    g
}

/// A layered DAG with full bipartite connections between consecutive layers,
/// closed into a cycle by connecting the last layer back to the first.
///
/// The number of shortest cycles through a first-layer vertex is the product
/// of the layer widths — this is the stress fixture for counting overflow.
pub fn layered_cycle(widths: &[usize]) -> DiGraph {
    assert!(widths.len() >= 2, "need at least two layers");
    let n: usize = widths.iter().sum();
    let mut starts = Vec::with_capacity(widths.len());
    let mut acc = 0;
    for &w in widths {
        assert!(w >= 1, "layers must be non-empty");
        starts.push(acc);
        acc += w;
    }
    let mut g = DiGraph::new(n);
    for (i, &w) in widths.iter().enumerate() {
        let next = (i + 1) % widths.len();
        for a in 0..w {
            for b in 0..widths[next] {
                g.try_add_edge(
                    VertexId((starts[i] + a) as u32),
                    VertexId((starts[next] + b) as u32),
                )
                .expect("layer edges are valid");
            }
        }
    }
    g
}

/// A synthetic money-laundering network with planted criminal rings
/// (the Figure 1 / Figure 13 scenario).
#[derive(Clone, Debug)]
pub struct LaunderingNetwork {
    /// The transaction graph.
    pub graph: DiGraph,
    /// The planted criminal accounts, one per ring.
    pub criminals: Vec<VertexId>,
    /// Length of every planted cycle.
    pub cycle_len: u32,
    /// Number of cycles planted through each criminal.
    pub cycles_per_criminal: usize,
}

/// Parameters for [`laundering_network`].
#[derive(Clone, Copy, Debug)]
pub struct LaunderingParams {
    /// Total number of accounts.
    pub accounts: usize,
    /// Number of background (legitimate) transactions.
    pub background_edges: usize,
    /// Number of criminal accounts to plant.
    pub criminals: usize,
    /// Cycles planted through each criminal.
    pub cycles_per_criminal: usize,
    /// Length of each planted cycle (>= 3: criminal -> agent -> middleman
    /// chain -> criminal).
    pub cycle_len: u32,
}

impl Default for LaunderingParams {
    fn default() -> Self {
        LaunderingParams {
            accounts: 2_000,
            background_edges: 6_000,
            criminals: 5,
            cycles_per_criminal: 8,
            cycle_len: 4,
        }
    }
}

/// Generates a laundering network: a sparse random background of
/// transactions plus, for each planted criminal account, many short cycles
/// routed through dedicated intermediary accounts (mirroring the paper's
/// Figure 1: criminal -> agents -> middle-men -> criminal).
///
/// Each planted cycle uses fresh intermediaries, so the criminal's
/// shortest-cycle count is at least `cycles_per_criminal` unless background
/// noise happens to create an even shorter cycle through it (kept unlikely
/// by planting length-`cycle_len` cycles with `cycle_len` small).
pub fn laundering_network(params: LaunderingParams, seed: u64) -> LaunderingNetwork {
    let LaunderingParams {
        accounts,
        background_edges,
        criminals,
        cycles_per_criminal,
        cycle_len,
    } = params;
    assert!(cycle_len >= 3, "planted cycles need length >= 3");
    let intermediaries_per_cycle = (cycle_len - 1) as usize;
    let planted_vertices = criminals * (1 + cycles_per_criminal * intermediaries_per_cycle);
    assert!(
        accounts >= planted_vertices,
        "need at least {planted_vertices} accounts to plant the rings"
    );

    let mut g = gnm(accounts, background_edges, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);

    // The planted structure lives on the highest-numbered vertices. As in
    // the paper's Figure 1, ring members only *send* funds along the ring
    // (their incoming decoy transactions are kept), so background noise
    // cannot create a shorter cycle through a criminal than the planted
    // ones: strip the ring members' background out-edges first.
    let first_planted = accounts - planted_vertices;
    for v in first_planted..accounts {
        let v = VertexId(v as u32);
        for w in g.nbr_out(v).to_vec() {
            g.try_remove_edge(v, VertexId(w))
                .expect("listed edge exists");
        }
    }
    let mut next = first_planted;
    let mut criminal_ids = Vec::with_capacity(criminals);
    for _ in 0..criminals {
        let c = VertexId(next as u32);
        next += 1;
        criminal_ids.push(c);
        for _ in 0..cycles_per_criminal {
            let mut prev = c;
            for _ in 0..intermediaries_per_cycle {
                let mid = VertexId(next as u32);
                next += 1;
                let _ = g.try_add_edge(prev, mid);
                prev = mid;
            }
            let _ = g.try_add_edge(prev, c);
        }
        // A few incoming decoy transactions so the criminal's degree is not
        // trivially identifying. Sources come from the background region
        // only — a decoy from a ring member would shortcut a planted cycle.
        for _ in 0..3 {
            if first_planted > 0 {
                let other = VertexId(rng.gen_range(0..first_planted as u32));
                let _ = g.try_add_edge(other, c);
            }
        }
    }
    LaunderingNetwork {
        graph: g,
        criminals: criminal_ids,
        cycle_len,
        cycles_per_criminal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::shortest_cycle_oracle;

    #[test]
    fn gnm_has_exact_edges_and_is_deterministic() {
        let g1 = gnm(100, 500, 42);
        let g2 = gnm(100, 500, 42);
        let g3 = gnm(100, 500, 43);
        assert_eq!(g1.edge_count(), 500);
        assert_eq!(g1, g2);
        assert_ne!(g1, g3);
        g1.validate().unwrap();
    }

    #[test]
    fn gnm_dense_path() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 20);
        let dense = gnm(6, 28, 1); // 28 of 30 possible -> dense sampler
        assert_eq!(dense.edge_count(), 28);
        dense.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_rejects_impossible_m() {
        gnm(3, 7, 0);
    }

    #[test]
    fn preferential_attachment_is_skewed() {
        let g = preferential_attachment(2_000, 3, 0.3, 7);
        g.validate().unwrap();
        assert!(g.edge_count() > 2_000);
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        let avg = 2.0 * g.edge_count() as f64 / g.vertex_count() as f64;
        assert!(
            max_deg as f64 > 5.0 * avg,
            "expected a heavy tail: max {max_deg} vs avg {avg:.1}"
        );
    }

    #[test]
    fn preferential_attachment_reciprocity_creates_two_cycles() {
        let g = preferential_attachment(300, 2, 1.0, 11);
        let mutual = g.edges().filter(|&(u, v)| g.has_edge(v, u)).count();
        assert!(mutual > 100, "reciprocal edges should dominate: {mutual}");
    }

    #[test]
    fn small_world_shape() {
        let g = small_world(100, 3, 0.1, 5);
        g.validate().unwrap();
        assert!(g.edge_count() <= 300);
        assert!(g.edge_count() >= 250);
        // Without rewiring the ring is exact.
        let ring = small_world(10, 1, 0.0, 0);
        assert_eq!(ring.edge_count(), 10);
        assert_eq!(shortest_cycle_oracle(&ring, VertexId(0)), Some((10, 1)));
    }

    #[test]
    fn deterministic_fixtures() {
        assert_eq!(directed_cycle(5).edge_count(), 5);
        assert_eq!(directed_path(5).edge_count(), 4);
        assert_eq!(complete(4).edge_count(), 12);
        let g = layered_cycle(&[2, 3, 2]);
        // 2*3 + 3*2 + 2*2 edges.
        assert_eq!(g.edge_count(), 16);
        // Shortest cycles through a layer-0 vertex: one per choice of the
        // other layers' vertices = 3 * 2.
        assert_eq!(shortest_cycle_oracle(&g, VertexId(0)), Some((3, 6)));
    }

    #[test]
    fn bridged_communities_shape() {
        let g = bridged_communities(4, 25, 60, 7);
        g.validate().unwrap();
        assert_eq!(g.vertex_count(), 100);
        // 4 * 60 intra + 8 bridge edges (minus rare duplicate rejections).
        assert!(g.edge_count() >= 240 && g.edge_count() <= 248);
        assert_eq!(g, bridged_communities(4, 25, 60, 7), "seeded");
        // The bridge ring is bidirectional: community heads form 2-cycles.
        for c in 0..4u32 {
            let a = VertexId(c * 25);
            let b = VertexId(((c + 1) % 4) * 25);
            assert!(g.has_edge(a, b) && g.has_edge(b, a));
        }
        // Non-bridge edges stay inside their community.
        for (u, v) in g.edges() {
            if u.0 % 25 != 0 || v.0 % 25 != 0 {
                assert_eq!(u.0 / 25, v.0 / 25, "edge {u}->{v} crosses communities");
            }
        }
    }

    #[test]
    fn sprinkle_adds_edges() {
        let mut g = DiGraph::new(50);
        let added = sprinkle_random_edges(&mut g, 100, 3);
        assert_eq!(added, 100);
        assert_eq!(g.edge_count(), 100);
        // Saturated graph: cannot add anything.
        let mut k = complete(3);
        assert_eq!(sprinkle_random_edges(&mut k, 5, 3), 0);
    }

    #[test]
    fn laundering_network_plants_verifiable_rings() {
        let params = LaunderingParams {
            accounts: 500,
            background_edges: 400,
            criminals: 3,
            cycles_per_criminal: 6,
            cycle_len: 4,
        };
        let net = laundering_network(params, 99);
        net.graph.validate().unwrap();
        assert_eq!(net.criminals.len(), 3);
        for &c in &net.criminals {
            let (len, count) =
                shortest_cycle_oracle(&net.graph, c).expect("criminal must sit on cycles");
            // Ring members send funds only along the rings, so the planted
            // cycles are exactly the shortest ones through each criminal.
            assert_eq!(
                (len, count),
                (4, 6),
                "criminal {c} should carry exactly the planted cycles"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn laundering_rejects_tiny_account_pool() {
        laundering_network(
            LaunderingParams {
                accounts: 10,
                criminals: 5,
                cycles_per_criminal: 10,
                ..Default::default()
            },
            0,
        );
    }
}
