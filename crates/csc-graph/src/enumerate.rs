//! Shortest-cycle enumeration and ego subgraphs.
//!
//! Counting answers "how many"; investigations then ask "show me". The
//! paper's case study (Figure 13) lists all shortest cycles through a
//! suspicious account and renders its neighborhood — this module provides
//! both primitives. Enumeration is deliberately output-sensitive-ish
//! (backtracking over BFS distance layers), and doubles as a hard oracle:
//! the number of enumerated cycles must equal `SCCnt`, which the test
//! suites exploit.

use crate::digraph::DiGraph;
use crate::traversal::{bfs_distances, bfs_distances_dir};
use crate::vertex::VertexId;

/// Enumerates the shortest cycles through `v`, up to `limit` cycles.
///
/// Each cycle is returned as a vertex sequence starting (and implicitly
/// ending) at `v`: `[v, w, x, ...]` encodes `v -> w -> x -> ... -> v`.
/// Returns an empty vector if no cycle passes through `v`.
///
/// Cost: one backward BFS plus `O(length)` work per emitted edge of the
/// shortest-path DAG — fine for investigation-sized outputs; use
/// counting (`csc-core`) for bulk screening.
pub fn enumerate_shortest_cycles(g: &DiGraph, v: VertexId, limit: usize) -> Vec<Vec<VertexId>> {
    if limit == 0 {
        return Vec::new();
    }
    // dist_back[u] = sd(u, v): distances *to* v.
    let dist_back = bfs_distances_dir(g, v, false);
    // The shortest cycle length = 1 + min over out-neighbors w of sd(w, v).
    let mut best: Option<u32> = None;
    for &w in g.nbr_out(v) {
        if let Some(d) = dist_back[w as usize] {
            best = Some(best.map_or(d + 1, |b: u32| b.min(d + 1)));
        }
    }
    let Some(cycle_len) = best else {
        return Vec::new();
    };

    // Depth-first expansion along the shortest-path DAG towards v: from a
    // vertex u at remaining budget r, every out-neighbor x with
    // sd(x, v) == r - 1 extends a shortest cycle.
    let mut cycles = Vec::new();
    let mut path = vec![v];
    let mut stack: Vec<(VertexId, u32)> = Vec::new(); // (vertex, remaining)
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        g: &DiGraph,
        v: VertexId,
        dist_back: &[Option<u32>],
        path: &mut Vec<VertexId>,
        cycles: &mut Vec<Vec<VertexId>>,
        limit: usize,
        u: VertexId,
        remaining: u32,
    ) {
        if cycles.len() >= limit {
            return;
        }
        if remaining == 0 {
            debug_assert_eq!(u, v);
            cycles.push(path.clone());
            return;
        }
        for &x in g.nbr_out(u) {
            if cycles.len() >= limit {
                return;
            }
            let x = VertexId(x);
            let on_shortest = if x == v {
                remaining == 1
            } else {
                dist_back[x.index()] == Some(remaining - 1)
            };
            if on_shortest && x != v {
                path.push(x);
                dfs(g, v, dist_back, path, cycles, limit, x, remaining - 1);
                path.pop();
            } else if on_shortest {
                dfs(g, v, dist_back, path, cycles, limit, x, remaining - 1);
            }
        }
    }
    let _ = &mut stack;
    dfs(
        g,
        v,
        &dist_back,
        &mut path,
        &mut cycles,
        limit,
        v,
        cycle_len,
    );
    cycles
}

/// The girth of the graph: the globally shortest cycle length and how many
/// vertices realize it (useful for Table-IV-style dataset profiles).
///
/// `None` for acyclic graphs. Cost `O(n * (n + m))` — analysis-time only.
pub fn girth(g: &DiGraph) -> Option<(u32, usize)> {
    let mut best: Option<u32> = None;
    let mut realizers = 0usize;
    for v in g.vertices() {
        if let Some((len, _)) = crate::traversal::shortest_cycle_oracle(g, v) {
            match best {
                None => {
                    best = Some(len);
                    realizers = 1;
                }
                Some(b) if len < b => {
                    best = Some(len);
                    realizers = 1;
                }
                Some(b) if len == b => realizers += 1,
                _ => {}
            }
        }
    }
    best.map(|b| (b, realizers))
}

/// Extracts the ego subgraph of radius `radius` around `center` (both edge
/// directions), with a dense re-numbering. Returns the subgraph and the
/// mapping `sub id -> original id`; the center maps to sub id 0.
///
/// This is the "subgraph centering at vertex 169" view of Figure 13.
pub fn ego_subgraph(g: &DiGraph, center: VertexId, radius: u32) -> (DiGraph, Vec<VertexId>) {
    let fwd = bfs_distances(g, center);
    let bwd = bfs_distances_dir(g, center, false);
    let mut members: Vec<u32> = Vec::new();
    for v in g.vertices() {
        let near = fwd[v.index()].is_some_and(|d| d <= radius)
            || bwd[v.index()].is_some_and(|d| d <= radius);
        if near {
            members.push(v.0);
        }
    }
    // The center first, the rest in id order.
    members.retain(|&u| u != center.0);
    members.insert(0, center.0);
    let mut sub_id = vec![u32::MAX; g.vertex_count()];
    for (i, &u) in members.iter().enumerate() {
        sub_id[u as usize] = i as u32;
    }
    let mut sub = DiGraph::new(members.len());
    for &u in &members {
        for &w in g.nbr_out(VertexId(u)) {
            if sub_id[w as usize] != u32::MAX {
                sub.try_add_edge(VertexId(sub_id[u as usize]), VertexId(sub_id[w as usize]))
                    .expect("subgraph edges are valid");
            }
        }
    }
    (sub, members.into_iter().map(VertexId).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure2, pv};
    use crate::generators::{directed_cycle, gnm, layered_cycle};
    use crate::traversal::shortest_cycle_oracle;

    #[test]
    fn enumeration_matches_example_1() {
        // SCCnt(v7) = 3 cycles of length 6; enumerate and check each.
        let g = figure2();
        let cycles = enumerate_shortest_cycles(&g, pv(7), 100);
        assert_eq!(cycles.len(), 3);
        for c in &cycles {
            assert_eq!(c.len(), 6, "cycle {c:?} has length 6");
            assert_eq!(c[0], pv(7));
            // Every hop is an edge; the wrap-around closes the cycle.
            for w in c.windows(2) {
                assert!(g.has_edge(w[0], w[1]), "missing edge in {c:?}");
            }
            assert!(g.has_edge(*c.last().unwrap(), c[0]));
            // Simple: no repeated vertices.
            let mut seen = c.clone();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), c.len(), "cycle {c:?} repeats a vertex");
        }
    }

    #[test]
    fn enumeration_count_equals_oracle_on_random_graphs() {
        for seed in 0..6 {
            let g = gnm(25, 80, seed);
            for v in g.vertices() {
                let cycles = enumerate_shortest_cycles(&g, v, usize::MAX);
                match shortest_cycle_oracle(&g, v) {
                    None => assert!(cycles.is_empty()),
                    Some((len, count)) => {
                        assert_eq!(cycles.len() as u64, count, "count at {v}");
                        assert!(cycles.iter().all(|c| c.len() as u32 == len));
                    }
                }
            }
        }
    }

    #[test]
    fn enumeration_respects_limit() {
        let g = layered_cycle(&[1, 4, 4]); // 16 shortest cycles through 0
        let all = enumerate_shortest_cycles(&g, VertexId(0), usize::MAX);
        assert_eq!(all.len(), 16);
        let some = enumerate_shortest_cycles(&g, VertexId(0), 5);
        assert_eq!(some.len(), 5);
        assert!(enumerate_shortest_cycles(&g, VertexId(0), 0).is_empty());
    }

    #[test]
    fn girth_of_families() {
        assert_eq!(girth(&directed_cycle(7)), Some((7, 7)));
        let dag = crate::generators::directed_path(5);
        assert_eq!(girth(&dag), None);
        // Figure 2's girth is 6 (every vertex's shortest cycle has length 6
        // except those not on cycles at all).
        let (len, realizers) = girth(&figure2()).unwrap();
        assert_eq!(len, 6);
        assert!(realizers >= 6);
    }

    #[test]
    fn ego_subgraph_centers_and_maps_back() {
        let g = figure2();
        let (sub, mapping) = ego_subgraph(&g, pv(7), 1);
        assert_eq!(mapping[0], pv(7));
        // Radius 1 around v7: in-neighbors {v4,v5,v6} + out-neighbor {v8}.
        assert_eq!(sub.vertex_count(), 5);
        // Edges among members survive with remapped ids.
        for (u, w) in sub.edges() {
            assert!(g.has_edge(mapping[u.index()], mapping[w.index()]));
        }
        assert_eq!(sub.in_degree(VertexId(0)), 3);
        assert_eq!(sub.out_degree(VertexId(0)), 1);
    }

    #[test]
    fn ego_subgraph_full_radius_is_weak_component() {
        let g = figure2();
        let (sub, _) = ego_subgraph(&g, pv(1), 100);
        assert_eq!(sub.vertex_count(), g.vertex_count());
        assert_eq!(sub.edge_count(), g.edge_count());
    }
}
