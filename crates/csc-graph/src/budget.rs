//! Cooperative operation budgets for bounded-latency traversals.
//!
//! The dynamic-maintenance and analytics paths above this crate run
//! loops whose length depends on the graph, not the caller: a BFS sweep
//! is `O(n + m)`, a whole-graph cycle sweep is `O(n)` label
//! intersections. Under overload, "run to completion" is the wrong
//! contract — a serving system needs every operation to either finish
//! within its latency budget or fail fast and leave the structure
//! untouched.
//!
//! [`OpBudget`] is the cooperative half of that contract: long loops
//! call [`checkpoint`](OpBudget::checkpoint) (or the cost-weighted
//! [`consume`](OpBudget::consume)) at safe abort points, and the budget
//! answers `Err(BudgetExceeded)` once its wall-clock deadline has
//! passed. Clock reads are amortized: the budget only consults
//! [`Instant::now`] every [`stride`](OpBudget::with_stride) work units,
//! so a checkpoint in a hot loop costs a counter decrement and a
//! well-predicted branch.
//!
//! The budget is deliberately *not* `Sync` (it counts through
//! [`Cell`]s): parallel passes derive one budget per worker from the
//! shared deadline instant ([`OpBudget::deadline`] +
//! [`OpBudget::until`]), which also keeps expiry checks contention-free.

use std::cell::Cell;
use std::fmt;
use std::time::{Duration, Instant};

/// Work units between wall-clock reads on a deadline-carrying budget.
pub const DEFAULT_STRIDE: u32 = 1024;

/// The error a budgeted operation returns when its deadline passes at a
/// cancellation checkpoint. Carries no payload: the aborted operation is
/// specified to have no observable effect, so there is nothing to report
/// beyond the fact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExceeded;

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("operation budget exceeded at a cancellation checkpoint")
    }
}

impl std::error::Error for BudgetExceeded {}

/// A cooperative wall-clock budget threaded through traversal and kernel
/// loops.
///
/// ```
/// use csc_graph::budget::OpBudget;
/// use std::time::Duration;
///
/// let unbounded = OpBudget::unbounded();
/// assert!(unbounded.checkpoint().is_ok());
///
/// let expired = OpBudget::within(Duration::ZERO);
/// assert!(expired.checkpoint().is_err());
/// assert!(expired.is_expired());
/// ```
#[derive(Debug)]
pub struct OpBudget {
    deadline: Option<Instant>,
    stride: u32,
    countdown: Cell<u32>,
    expired: Cell<bool>,
}

impl Default for OpBudget {
    fn default() -> Self {
        OpBudget::unbounded()
    }
}

impl OpBudget {
    /// A budget that never expires: every checkpoint is a single branch.
    pub fn unbounded() -> Self {
        OpBudget {
            deadline: None,
            stride: DEFAULT_STRIDE,
            countdown: Cell::new(u32::MAX),
            expired: Cell::new(false),
        }
    }

    /// A budget expiring at `deadline`.
    pub fn until(deadline: Instant) -> Self {
        OpBudget {
            deadline: Some(deadline),
            stride: DEFAULT_STRIDE,
            // First checkpoint reads the clock: an already-expired
            // deadline must fail fast rather than survive a stride.
            countdown: Cell::new(0),
            expired: Cell::new(false),
        }
    }

    /// A budget expiring `limit` from now.
    pub fn within(limit: Duration) -> Self {
        Self::until(Instant::now() + limit)
    }

    /// Overrides the work units between clock reads (clamped to ≥ 1).
    /// Smaller strides bound overshoot tighter at the cost of more
    /// `Instant::now` calls.
    pub fn with_stride(mut self, stride: u32) -> Self {
        self.stride = stride.max(1);
        if self.deadline.is_some() {
            self.countdown.set(0);
        }
        self
    }

    /// The wall-clock deadline, if bounded — the piece parallel passes
    /// share to derive per-worker budgets.
    #[inline]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// `true` once a checkpoint has observed the deadline in the past.
    /// Sticky: an expired budget never un-expires.
    #[inline]
    pub fn is_expired(&self) -> bool {
        self.expired.get()
    }

    /// One cancellation checkpoint (a single work unit).
    #[inline]
    pub fn checkpoint(&self) -> Result<(), BudgetExceeded> {
        self.consume(1)
    }

    /// A cost-weighted cancellation checkpoint: `units` of work are about
    /// to run (or just ran) as an atomic step. The clock is consulted
    /// once at most every [`with_stride`](Self::with_stride) units.
    #[inline]
    pub fn consume(&self, units: usize) -> Result<(), BudgetExceeded> {
        if self.deadline.is_none() {
            return Ok(());
        }
        let left = self.countdown.get();
        let units = u32::try_from(units).unwrap_or(u32::MAX);
        if units < left {
            self.countdown.set(left - units);
            return Ok(());
        }
        self.check_clock()
    }

    #[cold]
    fn check_clock(&self) -> Result<(), BudgetExceeded> {
        if self.expired.get() {
            return Err(BudgetExceeded);
        }
        let deadline = self.deadline.expect("bounded budgets reach the clock");
        if Instant::now() >= deadline {
            self.expired.set(true);
            return Err(BudgetExceeded);
        }
        self.countdown.set(self.stride);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let b = OpBudget::unbounded();
        for _ in 0..10_000 {
            b.checkpoint().unwrap();
        }
        b.consume(usize::MAX).unwrap();
        assert!(!b.is_expired());
        assert_eq!(b.deadline(), None);
    }

    #[test]
    fn zero_deadline_fails_the_first_checkpoint() {
        let b = OpBudget::within(Duration::ZERO);
        assert_eq!(b.checkpoint(), Err(BudgetExceeded));
        assert!(b.is_expired());
        // Sticky across further checkpoints.
        assert_eq!(b.consume(1), Err(BudgetExceeded));
    }

    #[test]
    fn generous_deadline_allows_work_then_expires() {
        let b = OpBudget::within(Duration::from_secs(3600)).with_stride(4);
        for _ in 0..100 {
            b.checkpoint().unwrap();
        }
        assert!(!b.is_expired());
        // A budget pinned to an instant already in the past expires as
        // soon as the stride forces a clock read.
        let past = OpBudget::until(Instant::now() - Duration::from_millis(1)).with_stride(8);
        let mut failed = false;
        for _ in 0..16 {
            if past.checkpoint().is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "stride must force a clock read within 16 units");
    }

    #[test]
    fn consume_weights_work_against_the_stride() {
        let b = OpBudget::until(Instant::now() - Duration::from_millis(1)).with_stride(1000);
        // A single heavy step crosses the stride in one call.
        assert_eq!(b.consume(5000), Err(BudgetExceeded));
    }

    #[test]
    fn derived_budget_shares_the_deadline() {
        let b = OpBudget::within(Duration::from_secs(10));
        let worker = OpBudget::until(b.deadline().unwrap());
        assert_eq!(worker.deadline(), b.deadline());
        worker.checkpoint().unwrap();
        assert!(!b.is_expired(), "workers expire independently");
    }
}
