//! Structural statistics: degree distributions, components, and the degree
//! clusters used by the paper's query-time experiments.

use crate::digraph::DiGraph;
use crate::vertex::VertexId;

/// Summary statistics for a graph (the rows of the paper's Table IV, plus
/// degree information used elsewhere in the evaluation).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Average out-degree (`m / n`) — the paper's `s_f`.
    pub avg_out_degree: f64,
    /// Maximum total degree.
    pub max_degree: usize,
    /// Maximum `min(in, out)` degree — the clustering key's range.
    pub max_min_in_out_degree: usize,
    /// Number of weakly connected components.
    pub weak_components: usize,
    /// Number of strongly connected components.
    pub strong_components: usize,
}

/// Computes [`GraphStats`] for `g`.
pub fn stats(g: &DiGraph) -> GraphStats {
    let n = g.vertex_count();
    let m = g.edge_count();
    GraphStats {
        n,
        m,
        avg_out_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
        max_degree: g.vertices().map(|v| g.degree(v)).max().unwrap_or(0),
        max_min_in_out_degree: g
            .vertices()
            .map(|v| g.min_in_out_degree(v))
            .max()
            .unwrap_or(0),
        weak_components: weakly_connected_components(g),
        strong_components: strongly_connected_components(g).1,
    }
}

/// Number of weakly connected components (union-find over undirected edges).
pub fn weakly_connected_components(g: &DiGraph) -> usize {
    let n = g.vertex_count();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for (u, v) in g.edges() {
        let (ru, rv) = (find(&mut parent, u.0), find(&mut parent, v.0));
        if ru != rv {
            parent[ru as usize] = rv;
        }
    }
    (0..n as u32).filter(|&v| find(&mut parent, v) == v).count()
}

/// Tarjan's strongly connected components, iteratively (no recursion so
/// large test graphs cannot overflow the stack).
///
/// Returns `(component_of, component_count)`; component ids are arbitrary
/// but dense.
pub fn strongly_connected_components(g: &DiGraph) -> (Vec<u32>, usize) {
    let n = g.vertex_count();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSET; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0u32;

    // Explicit DFS frames: (vertex, next-neighbor-position).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let nbrs = g.nbr_out(VertexId(v));
            if *pos < nbrs.len() {
                let w = nbrs[*pos];
                *pos += 1;
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = comp_count;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
            }
        }
    }
    (comp, comp_count as usize)
}

/// Returns `true` if `v` lies on at least one directed cycle (its SCC has
/// more than one member, or — since the substrate forbids self-loops — any
/// mutual edge pair keeps the SCC nontrivial already).
pub fn on_cycle_mask(g: &DiGraph) -> Vec<bool> {
    let (comp, count) = strongly_connected_components(g);
    let mut size = vec![0usize; count];
    for &c in &comp {
        size[c as usize] += 1;
    }
    comp.iter().map(|&c| size[c as usize] > 1).collect()
}

/// The paper's five query clusters, by `min(in, out)` degree
/// (Section VI-A): the degree range of each graph is divided evenly into
/// five buckets: High, Mid-high, Mid-low, Low, Bottom.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DegreeCluster {
    /// Top fifth of the min-in-out-degree range.
    High,
    /// Second fifth.
    MidHigh,
    /// Third fifth.
    MidLow,
    /// Fourth fifth.
    Low,
    /// Bottom fifth.
    Bottom,
}

impl DegreeCluster {
    /// All clusters from High to Bottom.
    pub const ALL: [DegreeCluster; 5] = [
        DegreeCluster::High,
        DegreeCluster::MidHigh,
        DegreeCluster::MidLow,
        DegreeCluster::Low,
        DegreeCluster::Bottom,
    ];

    /// Short display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            DegreeCluster::High => "High",
            DegreeCluster::MidHigh => "Mid-high",
            DegreeCluster::MidLow => "Mid-low",
            DegreeCluster::Low => "Low",
            DegreeCluster::Bottom => "Bottom",
        }
    }
}

/// Assigns every vertex to its [`DegreeCluster`] by dividing the graph's
/// min-in-out-degree range evenly into five buckets (Section VI-A).
pub fn degree_clusters(g: &DiGraph) -> Vec<DegreeCluster> {
    let degrees: Vec<usize> = g.vertices().map(|v| g.min_in_out_degree(v)).collect();
    let lo = degrees.iter().copied().min().unwrap_or(0);
    let hi = degrees.iter().copied().max().unwrap_or(0);
    let span = (hi - lo).max(1) as f64;
    degrees
        .into_iter()
        .map(|d| {
            // 0.0..1.0 position in the range; bucket 0 = Bottom .. 4 = High.
            let frac = (d - lo) as f64 / span;
            let bucket = (frac * 5.0).min(4.999) as usize;
            match bucket {
                4 => DegreeCluster::High,
                3 => DegreeCluster::MidHigh,
                2 => DegreeCluster::MidLow,
                1 => DegreeCluster::Low,
                _ => DegreeCluster::Bottom,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{directed_cycle, directed_path, gnm};

    #[test]
    fn stats_on_a_cycle() {
        let g = directed_cycle(6);
        let s = stats(&g);
        assert_eq!(s.n, 6);
        assert_eq!(s.m, 6);
        assert_eq!(s.weak_components, 1);
        assert_eq!(s.strong_components, 1);
        assert!((s.avg_out_degree - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weak_components_count_islands() {
        let mut g = DiGraph::new(6);
        g.try_add_edge(VertexId(0), VertexId(1)).unwrap();
        g.try_add_edge(VertexId(2), VertexId(3)).unwrap();
        assert_eq!(weakly_connected_components(&g), 4); // {0,1} {2,3} {4} {5}
    }

    #[test]
    fn sccs_of_path_are_singletons() {
        let g = directed_path(5);
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 5);
        assert!(on_cycle_mask(&g).iter().all(|&b| !b));
    }

    #[test]
    fn sccs_detect_cycles() {
        // Cycle 0-1-2 plus a tail 2 -> 3.
        let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 0), (2, 3)]);
        let (comp, count) = strongly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[3]);
        assert_eq!(on_cycle_mask(&g), vec![true, true, true, false]);
    }

    #[test]
    fn scc_handles_deep_path_iteratively() {
        // A 200k-vertex path would overflow a recursive Tarjan.
        let g = directed_path(200_000);
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 200_000);
    }

    #[test]
    fn clusters_cover_and_order() {
        let g = gnm(500, 3_000, 17);
        let clusters = degree_clusters(&g);
        assert_eq!(clusters.len(), 500);
        // The highest min-in-out vertex lands in High, the lowest in Bottom.
        let degrees: Vec<usize> = g.vertices().map(|v| g.min_in_out_degree(v)).collect();
        let max_v = (0..500).max_by_key(|&i| degrees[i]).unwrap();
        let min_v = (0..500).min_by_key(|&i| degrees[i]).unwrap();
        assert_eq!(clusters[max_v], DegreeCluster::High);
        assert_eq!(clusters[min_v], DegreeCluster::Bottom);
    }

    #[test]
    fn clusters_on_uniform_graph_all_bottom_or_high() {
        let g = directed_cycle(10); // all min-in-out degrees equal 1
        let clusters = degree_clusters(&g);
        // Degenerate range: everything lands in one bucket (Bottom).
        assert!(clusters.iter().all(|&c| c == DegreeCluster::Bottom));
    }

    #[test]
    fn cluster_names() {
        assert_eq!(DegreeCluster::High.name(), "High");
        assert_eq!(DegreeCluster::ALL.len(), 5);
    }
}
