//! # csc-graph
//!
//! Directed-graph substrate for the CSC shortest-cycle-counting stack.
//!
//! This crate provides everything the labeling layers need from a graph
//! library, built from scratch:
//!
//! * [`DiGraph`] — a mutable directed graph with forward and reverse
//!   adjacency, supporting the edge insertions/deletions that drive the
//!   dynamic-index experiments.
//! * [`Csr`] — an immutable compressed-sparse-row snapshot for cache-friendly
//!   read-mostly traversal.
//! * [`bipartite`] — the paper's Algorithm 2: the `G -> Gb` conversion that
//!   turns shortest-cycle counting into shortest-path counting.
//! * [`generators`] — seeded synthetic workloads standing in for the paper's
//!   SNAP/Konect datasets (see DESIGN.md for the substitution rationale).
//! * [`order`] — total vertex orders (ranks) satisfying the labeling cover
//!   constraint.
//! * [`traversal`] / [`properties`] — plain BFS oracles and structural
//!   statistics used as ground truth by the test suites.
//! * [`io`] — SNAP-style edge-list text I/O.
//! * [`fixtures`] — the worked examples from the paper (Figure 2 et al.).
//!
//! All public items are documented; see the module-level tests for usage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bipartite;
pub mod budget;
pub mod csr;
pub mod digraph;
pub mod enumerate;
pub mod error;
pub mod fixtures;
pub mod generators;
pub mod io;
pub mod order;
pub mod properties;
pub mod traversal;
pub mod vertex;

pub use bipartite::BipartiteGraph;
pub use budget::{BudgetExceeded, OpBudget};
pub use csr::Csr;
pub use digraph::DiGraph;
pub use error::GraphError;
pub use order::{
    coverage_sampling_order, OrderingStrategy, Rank, RankTable, DEFAULT_SAMPLES_PER_LOG_N,
};
pub use traversal::{
    BucketQueue, DistMap, PooledWorkspace, SweepHandle, SweepMaps, TraversalWorkspace,
    WorkspacePool, UNREACHED,
};
pub use vertex::VertexId;
