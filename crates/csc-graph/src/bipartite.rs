//! Bipartite conversion (the paper's Algorithm 2, `BI-G`).
//!
//! Every original vertex `v` is decomposed into a *couple* of vertices: an
//! incoming vertex `v_i` that receives all of `v`'s in-edges and an outgoing
//! vertex `v_o` that carries all of `v`'s out-edges, joined by the internal
//! edge `v_i -> v_o`. Every original edge `(v, w)` becomes `(v_o, w_i)`.
//!
//! The resulting graph `Gb` is bipartite between `V_in` and `V_out`, with
//! `2n` vertices and `n + m` edges. A shortest cycle of length `L` through
//! `v` in `G` corresponds one-to-one to a shortest path of length `2L - 1`
//! from `v_o` to `v_i` in `Gb`, which is what lets a shortest-*path*
//! counting index answer shortest-*cycle* counting queries.
//!
//! ## Id scheme
//!
//! We use the dense fixed mapping `v_i = 2v`, `v_o = 2v + 1`. This makes
//! couple lookups branch-free bit operations and — crucially for the
//! couple-vertex-skipping construction — keeps each couple *adjacent* so a
//! rank table can rank `v_i` directly above `v_o`.

use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::vertex::VertexId;

/// Which member of a couple a bipartite vertex is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// The incoming vertex `v_i` (receives the original in-edges).
    In,
    /// The outgoing vertex `v_o` (carries the original out-edges).
    Out,
}

/// Returns the bipartite incoming vertex `v_i` of original vertex `v`.
#[inline]
pub fn in_vertex(v: VertexId) -> VertexId {
    VertexId(v.0 * 2)
}

/// Returns the bipartite outgoing vertex `v_o` of original vertex `v`.
#[inline]
pub fn out_vertex(v: VertexId) -> VertexId {
    VertexId(v.0 * 2 + 1)
}

/// Maps a bipartite vertex back to its original vertex and side.
#[inline]
pub fn original(b: VertexId) -> (VertexId, Side) {
    let side = if b.0 & 1 == 0 { Side::In } else { Side::Out };
    (VertexId(b.0 >> 1), side)
}

/// Returns the couple partner of a bipartite vertex (`v_i <-> v_o`).
#[inline]
pub fn couple(b: VertexId) -> VertexId {
    VertexId(b.0 ^ 1)
}

/// Returns `true` if the bipartite vertex is an incoming vertex (`V_in`).
#[inline]
pub fn is_in_vertex(b: VertexId) -> bool {
    b.0 & 1 == 0
}

/// Maps an original edge `(a, b)` to the bipartite edge it induces,
/// `(a_o, b_i)`.
#[inline]
pub fn edge_to_bipartite(a: VertexId, b: VertexId) -> (VertexId, VertexId) {
    (out_vertex(a), in_vertex(b))
}

/// The bipartite conversion `Gb` of a directed graph, with id mapping
/// helpers and incremental edge maintenance mirroring updates on `G`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BipartiteGraph {
    graph: DiGraph,
    original_n: usize,
}

impl BipartiteGraph {
    /// Builds `Gb` from `G` (Algorithm 2).
    pub fn from_graph(g: &DiGraph) -> Self {
        let n = g.vertex_count();
        let mut gb = DiGraph::new(2 * n);
        for v in g.vertices() {
            gb.try_add_edge(in_vertex(v), out_vertex(v))
                .expect("internal couple edge cannot fail");
        }
        for (u, v) in g.edges() {
            gb.try_add_edge(out_vertex(u), in_vertex(v))
                .expect("converted edge cannot fail on a simple graph");
        }
        BipartiteGraph {
            graph: gb,
            original_n: n,
        }
    }

    /// Creates an empty conversion for `n` original vertices (couple edges
    /// only). Useful for replaying an edge stream.
    pub fn empty(n: usize) -> Self {
        BipartiteGraph::from_graph(&DiGraph::new(n))
    }

    /// The number of vertices in the *original* graph.
    #[inline]
    pub fn original_vertex_count(&self) -> usize {
        self.original_n
    }

    /// The number of edges in the *original* graph (excludes couple edges).
    #[inline]
    pub fn original_edge_count(&self) -> usize {
        self.graph.edge_count() - self.original_n
    }

    /// The underlying bipartite [`DiGraph`] (read-only).
    #[inline]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Mirrors an original-graph edge insertion `(a, b)` as `(a_o, b_i)`.
    ///
    /// Returns the inserted bipartite edge.
    pub fn insert_original_edge(
        &mut self,
        a: VertexId,
        b: VertexId,
    ) -> Result<(VertexId, VertexId), GraphError> {
        if a.index() >= self.original_n {
            return Err(GraphError::VertexOutOfRange {
                vertex: a,
                n: self.original_n,
            });
        }
        if b.index() >= self.original_n {
            return Err(GraphError::VertexOutOfRange {
                vertex: b,
                n: self.original_n,
            });
        }
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        let (ao, bi) = edge_to_bipartite(a, b);
        match self.graph.try_add_edge(ao, bi) {
            Ok(()) => Ok((ao, bi)),
            Err(GraphError::DuplicateEdge(..)) => Err(GraphError::DuplicateEdge(a, b)),
            Err(e) => Err(e),
        }
    }

    /// Mirrors an original-graph edge deletion `(a, b)`.
    ///
    /// Returns the removed bipartite edge.
    pub fn remove_original_edge(
        &mut self,
        a: VertexId,
        b: VertexId,
    ) -> Result<(VertexId, VertexId), GraphError> {
        let (ao, bi) = edge_to_bipartite(a, b);
        match self.graph.try_remove_edge(ao, bi) {
            Ok(()) => Ok((ao, bi)),
            Err(GraphError::MissingEdge(..)) => Err(GraphError::MissingEdge(a, b)),
            Err(e) => Err(e),
        }
    }

    /// Appends a new isolated original vertex (a fresh couple), returning
    /// its original id.
    pub fn add_original_vertex(&mut self) -> VertexId {
        let vi = self.graph.add_vertex();
        let vo = self.graph.add_vertex();
        debug_assert_eq!(couple(vi), vo);
        self.graph
            .try_add_edge(vi, vo)
            .expect("fresh couple edge cannot fail");
        self.original_n += 1;
        VertexId(vi.0 >> 1)
    }

    /// Checks the structural invariants of the conversion: couple edges
    /// present, bipartiteness (`V_out -> V_in` only for converted edges),
    /// and mirrored counts.
    pub fn validate(&self) -> Result<(), String> {
        self.graph.validate()?;
        if self.graph.vertex_count() != 2 * self.original_n {
            return Err("vertex count is not 2n".into());
        }
        for v in 0..self.original_n as u32 {
            let (vi, vo) = (in_vertex(VertexId(v)), out_vertex(VertexId(v)));
            if !self.graph.has_edge(vi, vo) {
                return Err(format!("missing couple edge for original vertex {v}"));
            }
        }
        for (u, w) in self.graph.edges() {
            match (is_in_vertex(u), is_in_vertex(w)) {
                (true, false) => {
                    if couple(u) != w {
                        return Err(format!("in->out edge ({u}, {w}) is not a couple edge"));
                    }
                }
                (false, true) => {}
                _ => return Err(format!("edge ({u}, {w}) violates bipartiteness")),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn id_mapping_roundtrips() {
        for i in 0..100u32 {
            let vi = in_vertex(v(i));
            let vo = out_vertex(v(i));
            assert_eq!(original(vi), (v(i), Side::In));
            assert_eq!(original(vo), (v(i), Side::Out));
            assert_eq!(couple(vi), vo);
            assert_eq!(couple(vo), vi);
            assert!(is_in_vertex(vi));
            assert!(!is_in_vertex(vo));
            // v_i is ranked directly above v_o under id order.
            assert!(vi.0 < vo.0);
        }
    }

    #[test]
    fn conversion_counts_match_algorithm_2() {
        // Figure 2's graph: 10 vertices, 13 edges -> 20 vertices, 23 edges.
        let g = crate::fixtures::figure2();
        let gb = BipartiteGraph::from_graph(&g);
        assert_eq!(gb.graph().vertex_count(), 2 * g.vertex_count());
        assert_eq!(gb.graph().edge_count(), g.vertex_count() + g.edge_count());
        assert_eq!(gb.original_edge_count(), g.edge_count());
        gb.validate().unwrap();
    }

    #[test]
    fn converted_edges_are_out_to_in() {
        let g = DiGraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        let gb = BipartiteGraph::from_graph(&g);
        assert!(gb.graph().has_edge(out_vertex(v(0)), in_vertex(v(1))));
        assert!(gb.graph().has_edge(out_vertex(v(2)), in_vertex(v(0))));
        assert!(!gb.graph().has_edge(in_vertex(v(0)), in_vertex(v(1))));
    }

    #[test]
    fn incremental_insert_and_remove_mirror_static_conversion() {
        let edges = vec![(0u32, 1u32), (1, 2), (2, 0), (0, 2)];
        let g = DiGraph::from_edges(3, edges.clone());
        let static_gb = BipartiteGraph::from_graph(&g);

        let mut dyn_gb = BipartiteGraph::empty(3);
        for &(a, b) in &edges {
            dyn_gb.insert_original_edge(v(a), v(b)).unwrap();
        }
        assert_eq!(dyn_gb, static_gb);

        dyn_gb.remove_original_edge(v(0), v(2)).unwrap();
        let g2 = DiGraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        assert_eq!(dyn_gb, BipartiteGraph::from_graph(&g2));
        dyn_gb.validate().unwrap();
    }

    #[test]
    fn insert_errors_map_back_to_original_ids() {
        let mut gb = BipartiteGraph::empty(2);
        assert_eq!(
            gb.insert_original_edge(v(0), v(0)),
            Err(GraphError::SelfLoop(v(0)))
        );
        gb.insert_original_edge(v(0), v(1)).unwrap();
        assert_eq!(
            gb.insert_original_edge(v(0), v(1)),
            Err(GraphError::DuplicateEdge(v(0), v(1)))
        );
        assert_eq!(
            gb.remove_original_edge(v(1), v(0)),
            Err(GraphError::MissingEdge(v(1), v(0)))
        );
        assert!(matches!(
            gb.insert_original_edge(v(0), v(9)),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn add_original_vertex_extends_couples() {
        let mut gb = BipartiteGraph::empty(1);
        let nv = gb.add_original_vertex();
        assert_eq!(nv, v(1));
        assert_eq!(gb.original_vertex_count(), 2);
        gb.insert_original_edge(v(0), nv).unwrap();
        gb.validate().unwrap();
    }

    #[test]
    fn shortest_cycle_maps_to_2l_minus_1_path() {
        // Triangle 0 -> 1 -> 2 -> 0: shortest cycle length 3 through every
        // vertex; the bipartite path v_o ~> v_i must have length 2*3-1 = 5.
        let g = DiGraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        let gb = BipartiteGraph::from_graph(&g);
        let dist = crate::traversal::bfs_distances(gb.graph(), out_vertex(v(0)));
        assert_eq!(dist[in_vertex(v(0)).index()], Some(5));
    }
}
