//! A mutable simple directed graph with forward and reverse adjacency.
//!
//! [`DiGraph`] is the substrate for everything dynamic in this workspace:
//! the labeling algorithms need `nbr_out` / `nbr_in` in O(degree), and the
//! maintenance algorithms need O(degree) edge insertion and deletion.
//!
//! Invariants maintained at all times:
//!
//! * **simple**: no self-loops, no parallel edges;
//! * **mirrored**: `(u, v)` is in `out[u]` iff `u` is in `in_[v]`;
//! * adjacency lists are kept **sorted** so membership checks are
//!   `O(log degree)` and iteration order is deterministic.

use crate::error::GraphError;
use crate::vertex::VertexId;

/// A simple directed graph over dense vertex ids `0..n`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiGraph {
    out: Vec<Vec<u32>>,
    in_: Vec<Vec<u32>>,
    m: usize,
}

impl DiGraph {
    /// Creates an empty graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        DiGraph {
            out: vec![Vec::new(); n],
            in_: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Builds a graph from an edge list, ignoring self-loops and duplicate
    /// edges rather than failing.
    ///
    /// This is the lenient entry point used by dataset loaders (real edge
    /// lists routinely contain both). Use [`DiGraph::try_add_edge`] when the
    /// caller wants strict semantics.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut g = DiGraph::new(n);
        for (u, v) in edges {
            if u != v {
                let _ = g.try_add_edge(VertexId(u), VertexId(v));
            }
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.out.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Returns `true` if the graph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Iterates all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.out.len() as u32).map(VertexId)
    }

    /// Iterates all edges in `(source, target)` order, deterministically.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().map(move |&v| (VertexId(u as u32), VertexId(v))))
    }

    /// Out-neighbors (successors) of `v`, sorted ascending.
    #[inline]
    pub fn nbr_out(&self, v: VertexId) -> &[u32] {
        &self.out[v.index()]
    }

    /// In-neighbors (ancestors) of `v`, sorted ascending.
    #[inline]
    pub fn nbr_in(&self, v: VertexId) -> &[u32] {
        &self.in_[v.index()]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out[v.index()].len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_[v.index()].len()
    }

    /// Total degree (in + out) of `v` — the paper's `degree(v)`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// `min(|nbr_in(v)|, |nbr_out(v)|)` — the clustering key used by the
    /// paper's query-time experiments (Section VI-A).
    #[inline]
    pub fn min_in_out_degree(&self, v: VertexId) -> usize {
        self.out_degree(v).min(self.in_degree(v))
    }

    /// Returns `true` if the edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out
            .get(u.index())
            .is_some_and(|nbrs| nbrs.binary_search(&v.0).is_ok())
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), GraphError> {
        if v.index() >= self.out.len() {
            Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: self.out.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Appends a new isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId::new(self.out.len());
        self.out.push(Vec::new());
        self.in_.push(Vec::new());
        id
    }

    /// Inserts the edge `(u, v)`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range endpoints, self-loops, and duplicate edges.
    pub fn try_add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let out_u = &mut self.out[u.index()];
        match out_u.binary_search(&v.0) {
            Ok(_) => return Err(GraphError::DuplicateEdge(u, v)),
            Err(pos) => out_u.insert(pos, v.0),
        }
        let in_v = &mut self.in_[v.index()];
        let pos = in_v
            .binary_search(&u.0)
            .expect_err("mirror list out of sync");
        in_v.insert(pos, u.0);
        self.m += 1;
        Ok(())
    }

    /// Removes the edge `(u, v)`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range endpoints and missing edges.
    pub fn try_remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let out_u = &mut self.out[u.index()];
        match out_u.binary_search(&v.0) {
            Ok(pos) => {
                out_u.remove(pos);
            }
            Err(_) => return Err(GraphError::MissingEdge(u, v)),
        }
        let in_v = &mut self.in_[v.index()];
        let pos = in_v.binary_search(&u.0).expect("mirror list out of sync");
        in_v.remove(pos);
        self.m -= 1;
        Ok(())
    }

    /// Returns the reverse graph (all edge orientations flipped).
    pub fn reversed(&self) -> DiGraph {
        DiGraph {
            out: self.in_.clone(),
            in_: self.out.clone(),
            m: self.m,
        }
    }

    /// Collects all edges into a vector (deterministic order).
    pub fn edge_vec(&self) -> Vec<(u32, u32)> {
        self.edges().map(|(u, v)| (u.0, v.0)).collect()
    }

    /// Debug-grade consistency check: mirrored, sorted, deduplicated, and
    /// edge count matches. Used by tests and by the dynamic-index verifier.
    pub fn validate(&self) -> Result<(), String> {
        if self.out.len() != self.in_.len() {
            return Err("out/in vertex count mismatch".into());
        }
        let mut count = 0usize;
        for (u, nbrs) in self.out.iter().enumerate() {
            if !nbrs.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("out[{u}] not strictly sorted"));
            }
            count += nbrs.len();
            for &v in nbrs {
                if v as usize >= self.in_.len() {
                    return Err(format!("edge ({u}, {v}) target out of range"));
                }
                if v as usize == u {
                    return Err(format!("self-loop on {u}"));
                }
                if self.in_[v as usize].binary_search(&(u as u32)).is_err() {
                    return Err(format!("edge ({u}, {v}) missing from in-list"));
                }
            }
        }
        if count != self.m {
            return Err(format!("edge count {count} != recorded {}", self.m));
        }
        let in_count: usize = self.in_.iter().map(Vec::len).sum();
        if in_count != self.m {
            return Err(format!("in-list edge count {in_count} != {}", self.m));
        }
        for (v, nbrs) in self.in_.iter().enumerate() {
            if !nbrs.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("in[{v}] not strictly sorted"));
            }
            for &u in nbrs {
                if self.out[u as usize].binary_search(&(v as u32)).is_err() {
                    return Err(format!("edge ({u}, {v}) missing from out-list"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(3);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = DiGraph::new(4);
        g.try_add_edge(v(0), v(1)).unwrap();
        g.try_add_edge(v(0), v(2)).unwrap();
        g.try_add_edge(v(2), v(0)).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(v(0), v(1)));
        assert!(!g.has_edge(v(1), v(0)));
        assert_eq!(g.nbr_out(v(0)), &[1, 2]);
        assert_eq!(g.nbr_in(v(0)), &[2]);
        assert_eq!(g.degree(v(0)), 3);
        assert_eq!(g.min_in_out_degree(v(0)), 1);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = DiGraph::new(2);
        assert_eq!(g.try_add_edge(v(1), v(1)), Err(GraphError::SelfLoop(v(1))));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut g = DiGraph::new(2);
        g.try_add_edge(v(0), v(1)).unwrap();
        assert_eq!(
            g.try_add_edge(v(0), v(1)),
            Err(GraphError::DuplicateEdge(v(0), v(1)))
        );
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = DiGraph::new(2);
        assert!(matches!(
            g.try_add_edge(v(0), v(5)),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            g.try_remove_edge(v(7), v(0)),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn remove_edge() {
        let mut g = DiGraph::new(3);
        g.try_add_edge(v(0), v(1)).unwrap();
        g.try_add_edge(v(1), v(2)).unwrap();
        g.try_remove_edge(v(0), v(1)).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(v(0), v(1)));
        assert_eq!(
            g.try_remove_edge(v(0), v(1)),
            Err(GraphError::MissingEdge(v(0), v(1)))
        );
        assert!(g.validate().is_ok());
    }

    #[test]
    fn from_edges_ignores_junk() {
        let g = DiGraph::from_edges(3, vec![(0, 1), (0, 1), (1, 1), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn reversed_flips_all_edges() {
        let g = DiGraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        let r = g.reversed();
        assert!(r.has_edge(v(1), v(0)));
        assert!(r.has_edge(v(2), v(1)));
        assert!(r.has_edge(v(0), v(2)));
        assert_eq!(r.edge_count(), 3);
        assert!(r.validate().is_ok());
        assert_eq!(r.reversed(), g);
    }

    #[test]
    fn add_vertex_grows_graph() {
        let mut g = DiGraph::new(1);
        let nv = g.add_vertex();
        assert_eq!(nv, v(1));
        g.try_add_edge(v(0), nv).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn edges_iterate_in_order() {
        let g = DiGraph::from_edges(3, vec![(2, 0), (0, 2), (0, 1)]);
        let edges = g.edge_vec();
        assert_eq!(edges, vec![(0, 1), (0, 2), (2, 0)]);
    }
}
