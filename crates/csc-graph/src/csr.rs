//! Immutable compressed-sparse-row (CSR) graph snapshot.
//!
//! The labeling construction does millions of adjacency scans; CSR keeps
//! each vertex's neighbor slice contiguous and avoids the per-`Vec` pointer
//! chase of [`DiGraph`]. Both directions are materialized
//! because HP-SPC/CSC run forward *and* backward BFS per hub.

use crate::digraph::DiGraph;
use crate::vertex::VertexId;

/// An immutable CSR snapshot of a directed graph with both directions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    fwd_offsets: Vec<u32>,
    fwd_targets: Vec<u32>,
    bwd_offsets: Vec<u32>,
    bwd_targets: Vec<u32>,
    m: usize,
}

impl Csr {
    /// Builds a CSR snapshot from a [`DiGraph`].
    pub fn from_digraph(g: &DiGraph) -> Self {
        let n = g.vertex_count();
        let mut fwd_offsets = Vec::with_capacity(n + 1);
        let mut fwd_targets = Vec::with_capacity(g.edge_count());
        let mut bwd_offsets = Vec::with_capacity(n + 1);
        let mut bwd_targets = Vec::with_capacity(g.edge_count());
        fwd_offsets.push(0);
        bwd_offsets.push(0);
        for v in g.vertices() {
            fwd_targets.extend_from_slice(g.nbr_out(v));
            fwd_offsets.push(fwd_targets.len() as u32);
            bwd_targets.extend_from_slice(g.nbr_in(v));
            bwd_offsets.push(bwd_targets.len() as u32);
        }
        Csr {
            fwd_offsets,
            fwd_targets,
            bwd_offsets,
            bwd_targets,
            m: g.edge_count(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.fwd_offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Out-neighbors of `v` (sorted ascending).
    #[inline]
    pub fn nbr_out(&self, v: VertexId) -> &[u32] {
        let i = v.index();
        &self.fwd_targets[self.fwd_offsets[i] as usize..self.fwd_offsets[i + 1] as usize]
    }

    /// In-neighbors of `v` (sorted ascending).
    #[inline]
    pub fn nbr_in(&self, v: VertexId) -> &[u32] {
        let i = v.index();
        &self.bwd_targets[self.bwd_offsets[i] as usize..self.bwd_offsets[i + 1] as usize]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.nbr_out(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.nbr_in(v).len()
    }

    /// Total degree (in + out) of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Neighbors of `v` in the requested direction.
    ///
    /// `forward == true` gives successors, `false` gives ancestors; the
    /// labeling engine uses this to share one BFS body for both label sides.
    #[inline]
    pub fn nbrs(&self, v: VertexId, forward: bool) -> &[u32] {
        if forward {
            self.nbr_out(v)
        } else {
            self.nbr_in(v)
        }
    }

    /// Approximate heap footprint in bytes (for experiment reports).
    pub fn heap_bytes(&self) -> usize {
        (self.fwd_offsets.len()
            + self.fwd_targets.len()
            + self.bwd_offsets.len()
            + self.bwd_targets.len())
            * std::mem::size_of::<u32>()
    }
}

impl From<&DiGraph> for Csr {
    fn from(g: &DiGraph) -> Self {
        Csr::from_digraph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn mirrors_digraph_adjacency() {
        let g = DiGraph::from_edges(5, vec![(0, 1), (0, 2), (1, 2), (3, 0), (2, 4)]);
        let c = Csr::from_digraph(&g);
        assert_eq!(c.vertex_count(), 5);
        assert_eq!(c.edge_count(), 5);
        for u in g.vertices() {
            assert_eq!(c.nbr_out(u), g.nbr_out(u), "out({u})");
            assert_eq!(c.nbr_in(u), g.nbr_in(u), "in({u})");
            assert_eq!(c.degree(u), g.degree(u));
        }
    }

    #[test]
    fn direction_selector() {
        let g = DiGraph::from_edges(3, vec![(0, 1), (2, 1)]);
        let c = Csr::from_digraph(&g);
        assert_eq!(c.nbrs(v(0), true), &[1]);
        assert_eq!(c.nbrs(v(1), false), &[0, 2]);
        assert!(c.nbrs(v(1), true).is_empty());
    }

    #[test]
    fn empty_and_isolated() {
        let g = DiGraph::new(4);
        let c = Csr::from_digraph(&g);
        assert_eq!(c.vertex_count(), 4);
        assert_eq!(c.edge_count(), 0);
        assert!(c.nbr_out(v(3)).is_empty());
        assert!(c.heap_bytes() >= 2 * 5 * 4);
    }
}
