//! Error types for graph construction and mutation.

use crate::vertex::VertexId;
use std::fmt;

/// Errors produced by graph construction, mutation, and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id was outside `0..n`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// A self-loop `(v, v)` was rejected.
    ///
    /// The paper's evaluation graphs "are directed and have no self-loop";
    /// self-loops would also map to length-1 bipartite paths, which are not
    /// cycles under any of the paper's definitions.
    SelfLoop(VertexId),
    /// The edge already exists (the substrate maintains simple graphs).
    DuplicateEdge(VertexId, VertexId),
    /// The edge to be removed does not exist.
    MissingEdge(VertexId, VertexId),
    /// The graph exceeds a capacity limit of the labeling layers.
    TooLarge {
        /// What overflowed (e.g. "vertices").
        what: &'static str,
        /// The observed quantity.
        got: usize,
        /// The maximum supported quantity.
        max: usize,
    },
    /// A parse error while reading an edge-list file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// An underlying I/O error, carried as a string for `Clone`/`Eq`.
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range (graph has {n} vertices)")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop on vertex {v} is not allowed"),
            GraphError::DuplicateEdge(u, v) => write!(f, "edge ({u}, {v}) already exists"),
            GraphError::MissingEdge(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
            GraphError::TooLarge { what, got, max } => {
                write!(f, "too many {what}: {got} (maximum supported: {max})")
            }
            GraphError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::SelfLoop(VertexId(3));
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::VertexOutOfRange {
            vertex: VertexId(9),
            n: 5,
        };
        assert!(e.to_string().contains("out of range"));
        let e = GraphError::Parse {
            line: 12,
            msg: "bad token".into(),
        };
        assert!(e.to_string().contains("line 12"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
    }
}
