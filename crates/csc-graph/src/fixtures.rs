//! Worked examples from the paper, used as executable documentation and as
//! unit-test fixtures across the workspace.

use crate::digraph::DiGraph;
use crate::vertex::VertexId;

/// Converts a 1-based paper vertex index (`v1..v10`) to a [`VertexId`].
///
/// The paper numbers vertices from 1; the substrate uses dense 0-based ids.
#[inline]
pub fn pv(paper_index: u32) -> VertexId {
    assert!(paper_index >= 1, "paper vertices are 1-based");
    VertexId(paper_index - 1)
}

/// The directed graph of the paper's Figure 2 (10 vertices, 13 edges).
///
/// Edge set reconstructed from the labels of Table II and Examples 1-6:
/// `v1->{v3,v4,v5}`, `v2->v4`, `v3->v6`, `{v4,v5,v6}->v7`, `v7->v8`,
/// `v8->v9`, `v9->v10`, `v10->{v1,v2}`. The graph's distinguishing feature
/// is the three shortest cycles of length 6 through `v7` (Example 1).
pub fn figure2() -> DiGraph {
    let edges = [
        (1, 3),
        (1, 4),
        (1, 5),
        (2, 4),
        (3, 6),
        (4, 7),
        (5, 7),
        (6, 7),
        (7, 8),
        (8, 9),
        (9, 10),
        (10, 1),
        (10, 2),
    ];
    let mut g = DiGraph::new(10);
    for (u, w) in edges {
        g.try_add_edge(pv(u), pv(w))
            .expect("fixture edges are valid");
    }
    g
}

/// The total vertex order of Example 4 (highest rank first):
/// `v1 < v7 < v4 < v10 < v2 < v3 < v5 < v6 < v8 < v9`.
///
/// This is the degree order (total degree descending, vertex id ascending
/// on ties) of [`figure2`]; the paper's Table II labels are produced under
/// exactly this order.
pub fn figure2_order() -> Vec<VertexId> {
    [1, 7, 4, 10, 2, 3, 5, 6, 8, 9]
        .iter()
        .map(|&i| pv(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::{OrderingStrategy, RankTable};

    #[test]
    fn figure2_shape() {
        let g = figure2();
        assert_eq!(g.vertex_count(), 10);
        assert_eq!(g.edge_count(), 13);
        g.validate().unwrap();
        // Example 3: v7's in-neighbors are {v4, v5, v6}.
        assert_eq!(g.nbr_in(pv(7)), &[pv(4).0, pv(5).0, pv(6).0]);
    }

    #[test]
    fn example_4_order_is_degree_order() {
        let g = figure2();
        let ranks = RankTable::build(&g, OrderingStrategy::Degree);
        let expected = figure2_order();
        for (rank, &v) in expected.iter().enumerate() {
            assert_eq!(
                ranks.vertex_at_rank(rank as u32),
                v,
                "rank {rank} should be {v:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn pv_rejects_zero() {
        pv(0);
    }
}
