//! SNAP-style edge-list text I/O.
//!
//! The paper's datasets ship as whitespace-separated `source target` lines
//! with `#` comment headers (SNAP) or `%` headers (Konect). This module
//! reads both, remaps arbitrary vertex ids to a dense `0..n` range, and can
//! write graphs back out for interchange with the original C++ tooling.

use crate::digraph::DiGraph;
use crate::error::GraphError;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Result of parsing an edge list: the graph plus the dense-id mapping.
#[derive(Clone, Debug)]
pub struct LoadedGraph {
    /// The parsed graph over dense ids `0..n`.
    pub graph: DiGraph,
    /// `original_ids[dense] = id as it appeared in the file`.
    pub original_ids: Vec<u64>,
    /// Number of self-loops skipped.
    pub skipped_self_loops: usize,
    /// Number of duplicate edges skipped.
    pub skipped_duplicates: usize,
}

/// Parses an edge list from a reader. Lines starting with `#` or `%` and
/// blank lines are ignored; each remaining line must contain two integer
/// ids separated by whitespace (extra columns — e.g. Konect timestamps —
/// are ignored). Self-loops and duplicates are skipped and counted.
pub fn read_edge_list<R: Read>(reader: R) -> Result<LoadedGraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut id_map: HashMap<u64, u32> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut skipped_self_loops = 0;

    let mut intern = |raw: u64, original_ids: &mut Vec<u64>| -> u32 {
        *id_map.entry(raw).or_insert_with(|| {
            original_ids.push(raw);
            (original_ids.len() - 1) as u32
        })
    };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, lineno: usize| -> Result<u64, GraphError> {
            let tok = tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                msg: "expected two integer ids".into(),
            })?;
            tok.parse::<u64>().map_err(|_| GraphError::Parse {
                line: lineno + 1,
                msg: format!("not an integer id: {tok:?}"),
            })
        };
        let u = parse(parts.next(), lineno)?;
        let v = parse(parts.next(), lineno)?;
        if u == v {
            skipped_self_loops += 1;
            continue;
        }
        let ud = intern(u, &mut original_ids);
        let vd = intern(v, &mut original_ids);
        edges.push((ud, vd));
    }

    let total = edges.len();
    let graph = DiGraph::from_edges(original_ids.len(), edges);
    Ok(LoadedGraph {
        skipped_duplicates: total - graph.edge_count(),
        graph,
        original_ids,
        skipped_self_loops,
    })
}

/// Loads an edge list from a file path.
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<LoadedGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Writes `g` as a SNAP-style edge list (with a comment header).
pub fn write_edge_list<W: Write>(g: &DiGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# Directed graph: {} vertices, {} edges",
        g.vertex_count(),
        g.edge_count()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Saves `g` to a file path as an edge list.
pub fn save_edge_list(g: &DiGraph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::gnm;

    #[test]
    fn parses_snap_format_with_comments() {
        let text = "# Directed graph\n# Nodes: 4 Edges: 4\n0\t1\n1\t2\n2 3\n3 0\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(loaded.graph.vertex_count(), 4);
        assert_eq!(loaded.graph.edge_count(), 4);
        assert_eq!(loaded.skipped_self_loops, 0);
        assert_eq!(loaded.skipped_duplicates, 0);
    }

    #[test]
    fn parses_konect_format_with_extra_columns() {
        let text = "% sym unweighted\n5 9 1 1300000\n9 5 1 1300001\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(loaded.graph.vertex_count(), 2);
        assert_eq!(loaded.graph.edge_count(), 2);
        assert_eq!(loaded.original_ids, vec![5, 9]);
    }

    #[test]
    fn remaps_sparse_ids_densely() {
        let text = "1000000 5\n5 70\n70 1000000\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(loaded.graph.vertex_count(), 3);
        assert_eq!(loaded.original_ids, vec![1000000, 5, 70]);
        assert_eq!(loaded.graph.edge_count(), 3);
    }

    #[test]
    fn skips_self_loops_and_duplicates() {
        let text = "0 0\n0 1\n0 1\n1 0\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(loaded.graph.edge_count(), 2);
        assert_eq!(loaded.skipped_self_loops, 1);
        assert_eq!(loaded.skipped_duplicates, 1);
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let text = "0 1\nbogus line\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        let text = "0\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn roundtrip_through_text() {
        let g = gnm(50, 200, 9);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(&buf[..]).unwrap();
        // Ids were already dense and appear in edge order, so the roundtrip
        // may permute ids; compare canonical forms via original id mapping.
        assert_eq!(loaded.graph.edge_count(), g.edge_count());
        let mut orig: Vec<(u64, u64)> = loaded
            .graph
            .edges()
            .map(|(u, v)| {
                (
                    loaded.original_ids[u.index()],
                    loaded.original_ids[v.index()],
                )
            })
            .collect();
        orig.sort_unstable();
        let mut expect: Vec<(u64, u64)> =
            g.edges().map(|(u, v)| (u.0 as u64, v.0 as u64)).collect();
        expect.sort_unstable();
        assert_eq!(orig, expect);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("csc-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = gnm(20, 60, 4);
        save_edge_list(&g, &path).unwrap();
        let loaded = load_edge_list(&path).unwrap();
        assert_eq!(loaded.graph.edge_count(), 60);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_edge_list("/definitely/not/here.txt"),
            Err(GraphError::Io(_))
        ));
    }
}
