//! Total vertex orders (ranks) for the labeling cover constraint.
//!
//! Hub labeling requires a total order `<` over vertices; a label `(v, d, c)`
//! is only ever stored at vertices ranked *below* `v`. Orders that put
//! "central" vertices first produce dramatically smaller indexes, and the
//! paper (Example 4) uses the classic degree order. Ranks are dense `u32`s
//! with **smaller rank = higher importance**.

use crate::digraph::DiGraph;
use crate::traversal::{BfsTree, TraversalWorkspace, WorkspacePool};
use crate::vertex::VertexId;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;

/// A rank (position in the total order); rank 0 is the most important hub.
pub type Rank = u32;

/// Default `samples_per_log_n` for [`OrderingStrategy::CoverageSampling`]
/// (lviennot's `const_log_n`): enough trees that the coverage estimate is
/// stable, few enough that sampling stays a small fraction of build time.
pub const DEFAULT_SAMPLES_PER_LOG_N: u32 = 32;

/// Strategy for computing the total vertex order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OrderingStrategy {
    /// Total degree (in + out) descending, vertex id ascending on ties.
    /// This is the paper's order (Example 4) and the default.
    #[default]
    Degree,
    /// `(in_degree + 1) * (out_degree + 1)` descending — favors vertices
    /// that lie on many through-paths; a common PLL variant.
    DegreeProduct,
    /// Vertex id order. Deterministic and cheap; useful for tests.
    Identity,
    /// A seeded random permutation. Exists to let property tests confirm
    /// that correctness is order-independent (index *size* is not).
    Random(u64),
    /// Greedy coverage order estimated from sampled BFS trees: rank
    /// vertices by covered-pairs-per-label-entry, measured on
    /// `samples_per_log_n * log2(n)` forward plus as many backward
    /// shortest-path trees. Slower to compute than the degree orders but
    /// produces markedly smaller labelings on graphs whose degree
    /// distribution is a poor centrality proxy. Deterministic given
    /// `seed`, at any thread width. See [`coverage_sampling_order`].
    CoverageSampling {
        /// Seeds the root permutations for the sampled trees.
        seed: u64,
        /// Trees per direction per `log2(n)`; clamped to at least 1.
        /// [`DEFAULT_SAMPLES_PER_LOG_N`] is the recommended setting.
        samples_per_log_n: u32,
    },
}

impl OrderingStrategy {
    /// [`CoverageSampling`](Self::CoverageSampling) with the recommended
    /// sampling budget ([`DEFAULT_SAMPLES_PER_LOG_N`]).
    pub fn coverage(seed: u64) -> Self {
        OrderingStrategy::CoverageSampling {
            seed,
            samples_per_log_n: DEFAULT_SAMPLES_PER_LOG_N,
        }
    }
}

/// A bijection between vertices and ranks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankTable {
    rank_of: Vec<Rank>,
    vertex_at: Vec<u32>,
}

impl RankTable {
    /// Computes the order of `g` under `strategy`.
    ///
    /// The result depends only on the *current* degrees (plus vertex-id
    /// tie-breaks), so recomputing it on a long-lived dynamic graph — one
    /// full of churn holes: appended bottom-ranked vertices, retired
    /// (fully disconnected) ones — re-derives the order a fresh build of
    /// the same graph would use. Isolated vertices carry the minimum key
    /// and sink to the bottom deterministically. The maintenance plane's
    /// rejuvenation pass relies on exactly this.
    pub fn build(g: &DiGraph, strategy: OrderingStrategy) -> Self {
        let n = g.vertex_count();
        match strategy {
            OrderingStrategy::Degree => Self::build_by_key(n, |v| g.degree(v) as u64),
            OrderingStrategy::DegreeProduct => Self::build_by_key(n, |v| {
                (g.in_degree(v) as u64 + 1) * (g.out_degree(v) as u64 + 1)
            }),
            OrderingStrategy::Identity => Self::from_order_ids((0..n as u32).collect()),
            OrderingStrategy::Random(seed) => {
                let mut order: Vec<u32> = (0..n as u32).collect();
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                order.shuffle(&mut rng);
                Self::from_order_ids(order)
            }
            OrderingStrategy::CoverageSampling {
                seed,
                samples_per_log_n,
            } => coverage_sampling_order(
                g,
                seed,
                samples_per_log_n,
                rayon::current_num_threads().max(1),
            ),
        }
    }

    /// Builds a table over `n` vertices from explicit importance keys:
    /// descending key, ties broken by ascending vertex id (the stable
    /// tie-break every built-in strategy uses). This is the primitive
    /// behind [`build`](Self::build)'s degree orders; callers that already
    /// hold derived degree information (e.g. an original-graph order
    /// recomputed from a live bipartite view) can rank without
    /// materializing a graph.
    pub fn build_by_key(n: usize, mut key: impl FnMut(VertexId) -> u64) -> Self {
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(key(VertexId(v))), v));
        Self::from_order_ids(order)
    }

    /// Builds a table from an explicit order (highest rank first).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..n`.
    pub fn from_order(order: &[VertexId]) -> Self {
        Self::from_order_ids(order.iter().map(|v| v.0).collect())
    }

    fn from_order_ids(vertex_at: Vec<u32>) -> Self {
        let n = vertex_at.len();
        let mut rank_of = vec![u32::MAX; n];
        for (rank, &v) in vertex_at.iter().enumerate() {
            assert!((v as usize) < n, "order contains out-of-range vertex {v}");
            assert!(
                rank_of[v as usize] == u32::MAX,
                "order contains vertex {v} twice"
            );
            rank_of[v as usize] = rank as u32;
        }
        RankTable { rank_of, vertex_at }
    }

    /// Number of ranked vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertex_at.len()
    }

    /// `true` if the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertex_at.is_empty()
    }

    /// The rank of `v` (0 = most important).
    #[inline]
    pub fn rank(&self, v: VertexId) -> Rank {
        self.rank_of[v.index()]
    }

    /// The vertex occupying `rank`.
    #[inline]
    pub fn vertex_at_rank(&self, rank: Rank) -> VertexId {
        VertexId(self.vertex_at[rank as usize])
    }

    /// `true` if `a` strictly outranks `b` (the paper's `a < b`).
    #[inline]
    pub fn outranks(&self, a: VertexId, b: VertexId) -> bool {
        self.rank_of[a.index()] < self.rank_of[b.index()]
    }

    /// Iterates vertices from highest to lowest rank.
    pub fn by_rank(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertex_at.iter().map(|&v| VertexId(v))
    }

    /// Derives the bipartite-graph order from an original-graph order.
    ///
    /// Couple `(v_i, v_o)` of the original vertex at rank `k` occupies ranks
    /// `2k` (`v_i`) and `2k + 1` (`v_o`): couples are consecutive with `v_i`
    /// on top, exactly the precondition of couple-vertex skipping
    /// (Section IV-B).
    pub fn bipartite_order(&self) -> RankTable {
        let mut vertex_at = Vec::with_capacity(self.vertex_at.len() * 2);
        for &v in &self.vertex_at {
            vertex_at.push(2 * v); // v_i
            vertex_at.push(2 * v + 1); // v_o
        }
        Self::from_order_ids(vertex_at)
    }

    /// Extends the order with a fresh lowest-ranked vertex (dynamic graphs
    /// grow; new vertices join at the bottom of the order).
    pub fn push_lowest(&mut self) {
        let v = self.rank_of.len() as u32;
        self.rank_of.push(self.vertex_at.len() as u32);
        self.vertex_at.push(v);
    }
}

// ---------------------------------------------------------------------------
// Coverage-sampled ordering
// ---------------------------------------------------------------------------

/// Computes the [`CoverageSampling`](OrderingStrategy::CoverageSampling)
/// order with an explicit worker width (tests pin widths 1/2/4 to prove
/// the result is width-independent; [`RankTable::build`] passes the live
/// pool width).
///
/// The recipe is lviennot's `covers_more` sampling order, adapted to
/// directed graphs. Sample `samples_per_log_n * log2(n)` forward and as
/// many backward BFS trees from seeded random roots; a tree from root `r`
/// witnesses, for every vertex `v` it contains, that picking `v` as a hub
/// would cover the `|subtree(v)|` pairs `(r, x)` whose shortest paths run
/// through `v`, at the price of one label entry per tree containing `v`.
/// Greedily select the vertex maximizing covered-pairs-per-entry
/// (`n_pairs[v] / n_labs[v]`, compared integer-only as
/// `n_pairs[u] * n_labs[v] > n_pairs[v] * n_labs[u]`), cut its subtrees
/// from every sampled tree, and repeat until the best remaining vertex
/// covers nothing beyond itself — past that point the samples carry no
/// path-cover signal, only noise.
/// Selection position becomes a descending importance key emitted through
/// [`RankTable::build_by_key`]; the unranked tail (vertices in no sampled
/// tree, or cut down to singleton coverage) falls back to the plain
/// degree order, so a thin sampling budget degrades toward
/// [`Degree`](OrderingStrategy::Degree) rather than toward an arbitrary
/// id order.
///
/// Tree sampling fans out over up to `width` workers (each with a pooled
/// [`TraversalWorkspace`]); results land in per-sample slots, and the
/// greedy phase is sequential, so the output depends only on `(g, seed,
/// samples_per_log_n)` — never on `width` or scheduling.
pub fn coverage_sampling_order(
    g: &DiGraph,
    seed: u64,
    samples_per_log_n: u32,
    width: usize,
) -> RankTable {
    let n = g.vertex_count();
    if n == 0 {
        return RankTable::from_order_ids(Vec::new());
    }
    let samples = sample_roots(n, seed, samples_per_log_n);
    let trees = sample_trees(g, &samples, width);
    let key = coverage_keys(n, &trees);
    // Coverage key in the high half, degree in the low half: vertices the
    // greedy ranked (key >= 1) stay in selection order above everything
    // else; the unranked tail — vertices the samples never saw, or saw
    // only as singleton subtrees — falls back to exactly the degree
    // order. Coverage keys are at most n + 1 < 2^32 and degrees are
    // clamped, so the halves cannot collide.
    RankTable::build_by_key(n, |v| {
        (key[v.index()] << 32) | (g.degree(v).min(u32::MAX as usize) as u64)
    })
}

/// Seeded sample roots: the first `samples_per_log_n * floor(log2 n)`
/// entries (clamped to `n`) of one random permutation per direction.
/// Distinct roots per direction avoid wasting budget on duplicate trees.
fn sample_roots(n: usize, seed: u64, samples_per_log_n: u32) -> Vec<(VertexId, bool)> {
    let log2n = (usize::BITS - 1 - n.leading_zeros()).max(1) as usize;
    let per_dir = (samples_per_log_n.max(1) as usize * log2n).min(n);
    let mut out = Vec::with_capacity(per_dir * 2);
    for (forward, stream) in [(true, 0u64), (false, 0x9E37_79B9_7F4A_7C15)] {
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ stream);
        ids.shuffle(&mut rng);
        out.extend(ids[..per_dir].iter().map(|&v| (VertexId(v), forward)));
    }
    out
}

/// Builds the sampled BFS trees, fanning out over up to `width` workers.
///
/// Workers pull sample indexes from a shared counter and write each tree
/// into its own slot, so the returned vector is in sample order no matter
/// how the pool schedules the work; each worker checks a
/// [`TraversalWorkspace`] out of a [`WorkspacePool`], keeping the sweep
/// allocation-free beyond the trees themselves.
fn sample_trees(g: &DiGraph, samples: &[(VertexId, bool)], width: usize) -> Vec<BfsTree> {
    let n = g.vertex_count();
    let len = samples.len();
    if width <= 1 || len <= 1 {
        let mut ws = TraversalWorkspace::new(n);
        return samples
            .iter()
            .map(|&(root, forward)| ws.bfs_tree(g, root, forward))
            .collect();
    }
    let pool: WorkspacePool = WorkspacePool::new();
    let slots: Vec<Mutex<Option<BfsTree>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    rayon::scope(|s| {
        for _ in 0..width.min(len) {
            s.spawn(|| {
                let mut ws = pool.checkout(n);
                loop {
                    let i = next.fetch_add(1, AtomicOrdering::SeqCst);
                    if i >= len {
                        break;
                    }
                    let (root, forward) = samples[i];
                    let tree = ws.bfs_tree(g, root, forward);
                    *slots[i].lock().expect("slot lock poisoned") = Some(tree);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("scope settled every sample")
        })
        .collect()
}

/// A lazy-heap entry caching the coverage counters a vertex had when it
/// was (re)pushed; a popped entry whose cache disagrees with the live
/// counters is stale and re-enters with fresh values.
#[derive(PartialEq, Eq)]
struct CoverageEntry {
    pairs: u64,
    labs: u64,
    v: u32,
}

impl Ord for CoverageEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // The benefit ratio pairs/labs, compared without division:
        // self > other  iff  self.pairs * other.labs > other.pairs * self.labs.
        // u128 keeps the cross products exact (pairs <= trees * n, labs <=
        // trees). Ties break toward the smaller vertex id, mirroring
        // `build_by_key`; the trailing fields only make the order total.
        (self.pairs as u128 * other.labs as u128)
            .cmp(&(other.pairs as u128 * self.labs as u128))
            .then_with(|| other.v.cmp(&self.v))
            .then_with(|| self.pairs.cmp(&other.pairs))
            .then_with(|| self.labs.cmp(&other.labs))
    }
}

impl PartialOrd for CoverageEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The greedy coverage engine: exact `n_pairs`/`n_labs` maintenance over
/// the sampled trees, lazy-heap selection, and descending keys by
/// selection position. Selection stops as soon as the best live vertex
/// only covers itself (`pairs == labs`); it and everything after it keep
/// key 0 for the caller to order by fallback.
///
/// Selection is *lazily* re-evaluated: popped entries whose cached
/// counters disagree with the live ones re-enter with fresh values
/// instead of the heap being rebuilt per round. Because a cut can remove
/// a vertex's least profitable occurrence, a stale cache may
/// *under*-state the live ratio, so a tied fresh entry with a smaller id
/// can be selected first — the standard, deterministic approximation this
/// family of sampling orders accepts in exchange for `O(M log M)` total
/// heap work.
fn coverage_keys(n: usize, trees: &[BfsTree]) -> Vec<u64> {
    // Flatten every tree into global node arrays: vertex, parent index,
    // child range, current subtree size, alive flag. Parents precede
    // children within each tree, so one reverse pass accumulates sizes.
    let total: usize = trees.iter().map(|t| t.len()).sum();
    assert!(
        total < u32::MAX as usize,
        "sampled forest exceeds u32 nodes"
    );
    let mut vert = vec![0u32; total];
    let mut par = vec![u32::MAX; total];
    let mut kid_lo = vec![0u32; total];
    let mut kid_hi = vec![0u32; total];
    let mut size = vec![0u64; total];
    let mut alive = vec![true; total];
    let mut off = 0usize;
    for tree in trees {
        for i in 0..tree.len() {
            let gi = off + i;
            vert[gi] = tree.vertex(i).0;
            par[gi] = tree.parent(i).map_or(u32::MAX, |p| (off + p) as u32);
            let r = tree.children(i);
            kid_lo[gi] = (off + r.start) as u32;
            kid_hi[gi] = (off + r.end) as u32;
        }
        for i in (0..tree.len()).rev() {
            let gi = off + i;
            size[gi] += 1;
            if let Some(p) = tree.parent(i) {
                size[off + p] += size[gi];
            }
        }
        off += tree.len();
    }

    // Per-vertex coverage counters plus a CSR of tree occurrences.
    let mut n_pairs = vec![0u64; n];
    let mut n_labs = vec![0u64; n];
    let mut occ_start = vec![0usize; n + 1];
    for gi in 0..total {
        let v = vert[gi] as usize;
        n_pairs[v] += size[gi];
        n_labs[v] += 1;
        occ_start[v + 1] += 1;
    }
    for v in 0..n {
        occ_start[v + 1] += occ_start[v];
    }
    let mut occ = vec![0u32; total];
    let mut cursor = occ_start.clone();
    for (gi, &v) in vert.iter().enumerate() {
        let v = v as usize;
        occ[cursor[v]] = gi as u32;
        cursor[v] += 1;
    }

    let mut heap = BinaryHeap::with_capacity(n);
    for v in 0..n {
        if n_labs[v] > 0 {
            heap.push(CoverageEntry {
                pairs: n_pairs[v],
                labs: n_labs[v],
                v: v as u32,
            });
        }
    }
    let mut key = vec![0u64; n];
    let mut next_key = n as u64 + 1;
    let mut stack: Vec<u32> = Vec::new();
    while let Some(e) = heap.pop() {
        let v = e.v as usize;
        if n_labs[v] == 0 {
            continue; // fully covered since it was queued
        }
        if e.pairs != n_pairs[v] || e.labs != n_labs[v] {
            heap.push(CoverageEntry {
                pairs: n_pairs[v],
                labs: n_labs[v],
                v: e.v,
            });
            continue;
        }
        if e.pairs == e.labs {
            // Every remaining occurrence is a singleton subtree: the
            // samples hold no path-cover evidence beyond self-coverage,
            // and the heap top bounds every other live vertex. Ranking
            // the tail on this noise loses to plain degree, so stop and
            // let the caller's fallback key order the rest.
            break;
        }
        key[v] = next_key;
        next_key -= 1;
        for &o in &occ[occ_start[v]..occ_start[v + 1]] {
            let o = o as usize;
            if !alive[o] {
                continue;
            }
            // Ancestors lose v's whole subtree from their own subtrees
            // (and from their vertices' pair counts)...
            let sz = size[o];
            let mut a = par[o];
            while a != u32::MAX {
                let ai = a as usize;
                size[ai] -= sz;
                n_pairs[vert[ai] as usize] -= sz;
                a = par[ai];
            }
            // ...and the subtree itself is cut: every still-alive node in
            // it stops contributing its (current) size and one label.
            // Earlier cuts inside this subtree already settled their own
            // accounting, so skipping dead regions keeps counters exact.
            stack.push(o as u32);
            while let Some(x) = stack.pop() {
                let xi = x as usize;
                if !alive[xi] {
                    continue;
                }
                alive[xi] = false;
                let xv = vert[xi] as usize;
                n_pairs[xv] -= size[xi];
                n_labs[xv] -= 1;
                stack.extend(kid_lo[xi]..kid_hi[xi]);
            }
        }
        debug_assert_eq!(n_labs[v], 0, "selection covers every live occurrence");
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> DiGraph {
        // 0 is the hub of a star: high degree.
        DiGraph::from_edges(5, vec![(0, 1), (0, 2), (0, 3), (4, 0)])
    }

    #[test]
    fn degree_order_puts_hub_first() {
        let ranks = RankTable::build(&star(), OrderingStrategy::Degree);
        assert_eq!(ranks.vertex_at_rank(0), VertexId(0));
        assert_eq!(ranks.rank(VertexId(0)), 0);
        assert!(ranks.outranks(VertexId(0), VertexId(3)));
    }

    #[test]
    fn ties_break_by_vertex_id() {
        // Vertices 1, 2, 3 all have degree 1.
        let ranks = RankTable::build(&star(), OrderingStrategy::Degree);
        assert!(ranks.outranks(VertexId(1), VertexId(2)));
        assert!(ranks.outranks(VertexId(2), VertexId(3)));
    }

    #[test]
    fn identity_order() {
        let ranks = RankTable::build(&star(), OrderingStrategy::Identity);
        for i in 0..5u32 {
            assert_eq!(ranks.rank(VertexId(i)), i);
            assert_eq!(ranks.vertex_at_rank(i), VertexId(i));
        }
    }

    #[test]
    fn random_order_is_a_seeded_permutation() {
        let a = RankTable::build(&star(), OrderingStrategy::Random(7));
        let b = RankTable::build(&star(), OrderingStrategy::Random(7));
        let c = RankTable::build(&star(), OrderingStrategy::Random(8));
        assert_eq!(a, b, "same seed, same order");
        assert_eq!(a.len(), 5);
        // All vertices present exactly once.
        let mut seen: Vec<u32> = a.by_rank().map(|v| v.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        // Different seed almost surely differs on 5 elements; don't assert
        // inequality strictly — just that it is a valid permutation.
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn degree_product_prefers_through_vertices() {
        // 1 -> 0 -> 2 : vertex 0 has in*out product 4; 3 has degree 2 both out.
        let g = DiGraph::from_edges(4, vec![(1, 0), (0, 2), (3, 1), (3, 2)]);
        let ranks = RankTable::build(&g, OrderingStrategy::DegreeProduct);
        assert_eq!(ranks.vertex_at_rank(0), VertexId(0));
    }

    #[test]
    fn bipartite_order_interleaves_couples() {
        let g = star();
        let ranks = RankTable::build(&g, OrderingStrategy::Degree);
        let b = ranks.bipartite_order();
        assert_eq!(b.len(), 10);
        // Original rank 0 is vertex 0 -> bipartite ranks 0, 1 are (0_i, 0_o).
        assert_eq!(b.vertex_at_rank(0), VertexId(0)); // 0_i
        assert_eq!(b.vertex_at_rank(1), VertexId(1)); // 0_o
        for k in 0..5u32 {
            let vi = b.vertex_at_rank(2 * k);
            let vo = b.vertex_at_rank(2 * k + 1);
            assert_eq!(vo.0, vi.0 + 1, "couples stay adjacent");
            assert!(b.outranks(vi, vo));
        }
    }

    #[test]
    fn build_by_key_matches_degree_build_and_sinks_holes() {
        let g = star();
        assert_eq!(
            RankTable::build_by_key(g.vertex_count(), |v| g.degree(v) as u64),
            RankTable::build(&g, OrderingStrategy::Degree)
        );
        // A churned graph: vertex 5 appended then never connected, vertex 1
        // retired (all edges gone). Both are holes; a recomputed order puts
        // them at the bottom, id-ascending.
        let mut g = star();
        g.add_vertex();
        g.try_remove_edge(VertexId(0), VertexId(1)).unwrap();
        let ranks = RankTable::build(&g, OrderingStrategy::Degree);
        assert_eq!(ranks.vertex_at_rank(4), VertexId(1));
        assert_eq!(ranks.vertex_at_rank(5), VertexId(5));
    }

    #[test]
    fn push_lowest_appends() {
        let mut ranks = RankTable::build(&star(), OrderingStrategy::Degree);
        ranks.push_lowest();
        assert_eq!(ranks.len(), 6);
        assert_eq!(ranks.rank(VertexId(5)), 5);
        assert_eq!(ranks.vertex_at_rank(5), VertexId(5));
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_order_panics() {
        RankTable::from_order(&[VertexId(0), VertexId(0)]);
    }

    #[test]
    fn coverage_order_puts_star_hub_first() {
        // With the sample budget clamped to n, every vertex roots a tree in
        // both directions and the center's covered-pairs-per-entry ratio
        // dominates.
        let ranks = RankTable::build(&star(), OrderingStrategy::coverage(11));
        assert_eq!(ranks.vertex_at_rank(0), VertexId(0));
        assert_eq!(ranks.len(), 5);
    }

    #[test]
    fn coverage_order_is_width_independent_and_seeded() {
        let g = crate::generators::gnm(60, 180, 3);
        let w1 = coverage_sampling_order(&g, 42, 4, 1);
        let w2 = coverage_sampling_order(&g, 42, 4, 2);
        let w4 = coverage_sampling_order(&g, 42, 4, 4);
        assert_eq!(w1, w2, "width 2 must replay the width-1 order");
        assert_eq!(w1, w4, "width 4 must replay the width-1 order");
        let other = coverage_sampling_order(&g, 43, 4, 1);
        assert_eq!(other.len(), 60);
        // A different seed samples different roots; the orders are both
        // valid permutations either way.
        let mut seen: Vec<u32> = w1.by_rank().map(|v| v.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn coverage_handles_empty_and_singleton_graphs() {
        let empty = DiGraph::new(0);
        assert_eq!(
            RankTable::build(&empty, OrderingStrategy::coverage(0)).len(),
            0
        );
        let one = DiGraph::new(1);
        let ranks = RankTable::build(&one, OrderingStrategy::coverage(0));
        assert_eq!(ranks.rank(VertexId(0)), 0);
    }

    #[test]
    fn coverage_sinks_isolated_vertices_below_the_cycle() {
        // Triangle 0 -> 1 -> 2 -> 0 plus six isolated vertices. Every
        // vertex roots sampled trees (budget clamps to n); the isolated
        // ones cover only themselves (ratio 1) so the cycle outranks them,
        // and equal ratios fall back to ascending vertex id.
        let mut g = DiGraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        for _ in 0..6 {
            g.add_vertex();
        }
        let ranks = RankTable::build(&g, OrderingStrategy::coverage(5));
        for iso in 3..9u32 {
            for cyc in 0..3u32 {
                assert!(
                    ranks.outranks(VertexId(cyc), VertexId(iso)),
                    "cycle vertex {cyc} must outrank isolated {iso}"
                );
            }
        }
        for iso in 3..8u32 {
            assert!(ranks.outranks(VertexId(iso), VertexId(iso + 1)));
        }
    }

    #[test]
    fn coverage_keys_cut_whole_tree_on_root_selection() {
        // One forward tree spanning a 5-path inside a 7-vertex universe:
        // selecting the root covers everything, so only the root earns a
        // key; vertices 5 and 6 never appear in a sample (`n_labs == 0`)
        // and keep key 0 alongside the covered-but-unselected path tail.
        let g = crate::generators::directed_path(5);
        let mut ws = TraversalWorkspace::new(5);
        let tree = ws.bfs_tree(&g, VertexId(0), true);
        let key = coverage_keys(7, &[tree]);
        assert_eq!(key[0], 8, "first selection takes key n + 1");
        assert_eq!(&key[1..], &[0; 6], "everything else was covered or absent");
    }

    #[test]
    fn coverage_counter_bookkeeping_across_partial_cuts() {
        // Forward tree from 0 and backward tree from 4 on the same 5-path:
        // every vertex starts at ratio 3 (pairs 6 / labs 2), so vertex 0 is
        // selected on the id tie-break. That cuts the whole forward tree
        // and a leaf of the backward one, leaving exactly the backward
        // chain with per-vertex counters (v1 .. v4) = (1,1) (2,1) (3,1)
        // (4,1). Lazy re-evaluation then pops the stale ratio-3 caches in
        // id order and selects v3 the moment its fresh (3,1) entry ties
        // v4's stale (6,2) cache — pinning the documented approximation.
        // v3's cut leaves v4 at (1,1), pure self-coverage, which halts
        // selection: v4 joins v1/v2 in the key-0 tail for the caller's
        // degree fallback.
        let g = crate::generators::directed_path(5);
        let mut ws = TraversalWorkspace::new(5);
        let fwd = ws.bfs_tree(&g, VertexId(0), true);
        let bwd = ws.bfs_tree(&g, VertexId(4), false);
        let key = coverage_keys(5, &[fwd, bwd]);
        assert_eq!(key[0], 6, "tie at ratio 3 breaks toward vertex 0");
        assert_eq!(
            key[3], 5,
            "fresh (3,1) ties v4's stale (6,2) and wins by id"
        );
        assert_eq!(
            &[key[1], key[2], key[4]],
            &[0, 0, 0],
            "v1/v2 are covered and v4's self-coverage entry halts selection"
        );
        // And the emitted table reflects the keys: 0, 3, then the tail.
        let ranks = RankTable::build_by_key(5, |v| key[v.index()]);
        let order: Vec<u32> = ranks.by_rank().map(|v| v.0).collect();
        assert_eq!(order, vec![0, 3, 1, 2, 4]);
    }
}
