//! Total vertex orders (ranks) for the labeling cover constraint.
//!
//! Hub labeling requires a total order `<` over vertices; a label `(v, d, c)`
//! is only ever stored at vertices ranked *below* `v`. Orders that put
//! "central" vertices first produce dramatically smaller indexes, and the
//! paper (Example 4) uses the classic degree order. Ranks are dense `u32`s
//! with **smaller rank = higher importance**.

use crate::digraph::DiGraph;
use crate::vertex::VertexId;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A rank (position in the total order); rank 0 is the most important hub.
pub type Rank = u32;

/// Strategy for computing the total vertex order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OrderingStrategy {
    /// Total degree (in + out) descending, vertex id ascending on ties.
    /// This is the paper's order (Example 4) and the default.
    #[default]
    Degree,
    /// `(in_degree + 1) * (out_degree + 1)` descending — favors vertices
    /// that lie on many through-paths; a common PLL variant.
    DegreeProduct,
    /// Vertex id order. Deterministic and cheap; useful for tests.
    Identity,
    /// A seeded random permutation. Exists to let property tests confirm
    /// that correctness is order-independent (index *size* is not).
    Random(u64),
}

/// A bijection between vertices and ranks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankTable {
    rank_of: Vec<Rank>,
    vertex_at: Vec<u32>,
}

impl RankTable {
    /// Computes the order of `g` under `strategy`.
    ///
    /// The result depends only on the *current* degrees (plus vertex-id
    /// tie-breaks), so recomputing it on a long-lived dynamic graph — one
    /// full of churn holes: appended bottom-ranked vertices, retired
    /// (fully disconnected) ones — re-derives the order a fresh build of
    /// the same graph would use. Isolated vertices carry the minimum key
    /// and sink to the bottom deterministically. The maintenance plane's
    /// rejuvenation pass relies on exactly this.
    pub fn build(g: &DiGraph, strategy: OrderingStrategy) -> Self {
        let n = g.vertex_count();
        match strategy {
            OrderingStrategy::Degree => Self::build_by_key(n, |v| g.degree(v) as u64),
            OrderingStrategy::DegreeProduct => Self::build_by_key(n, |v| {
                (g.in_degree(v) as u64 + 1) * (g.out_degree(v) as u64 + 1)
            }),
            OrderingStrategy::Identity => Self::from_order_ids((0..n as u32).collect()),
            OrderingStrategy::Random(seed) => {
                let mut order: Vec<u32> = (0..n as u32).collect();
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                order.shuffle(&mut rng);
                Self::from_order_ids(order)
            }
        }
    }

    /// Builds a table over `n` vertices from explicit importance keys:
    /// descending key, ties broken by ascending vertex id (the stable
    /// tie-break every built-in strategy uses). This is the primitive
    /// behind [`build`](Self::build)'s degree orders; callers that already
    /// hold derived degree information (e.g. an original-graph order
    /// recomputed from a live bipartite view) can rank without
    /// materializing a graph.
    pub fn build_by_key(n: usize, mut key: impl FnMut(VertexId) -> u64) -> Self {
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(key(VertexId(v))), v));
        Self::from_order_ids(order)
    }

    /// Builds a table from an explicit order (highest rank first).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..n`.
    pub fn from_order(order: &[VertexId]) -> Self {
        Self::from_order_ids(order.iter().map(|v| v.0).collect())
    }

    fn from_order_ids(vertex_at: Vec<u32>) -> Self {
        let n = vertex_at.len();
        let mut rank_of = vec![u32::MAX; n];
        for (rank, &v) in vertex_at.iter().enumerate() {
            assert!((v as usize) < n, "order contains out-of-range vertex {v}");
            assert!(
                rank_of[v as usize] == u32::MAX,
                "order contains vertex {v} twice"
            );
            rank_of[v as usize] = rank as u32;
        }
        RankTable { rank_of, vertex_at }
    }

    /// Number of ranked vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertex_at.len()
    }

    /// `true` if the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertex_at.is_empty()
    }

    /// The rank of `v` (0 = most important).
    #[inline]
    pub fn rank(&self, v: VertexId) -> Rank {
        self.rank_of[v.index()]
    }

    /// The vertex occupying `rank`.
    #[inline]
    pub fn vertex_at_rank(&self, rank: Rank) -> VertexId {
        VertexId(self.vertex_at[rank as usize])
    }

    /// `true` if `a` strictly outranks `b` (the paper's `a < b`).
    #[inline]
    pub fn outranks(&self, a: VertexId, b: VertexId) -> bool {
        self.rank_of[a.index()] < self.rank_of[b.index()]
    }

    /// Iterates vertices from highest to lowest rank.
    pub fn by_rank(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertex_at.iter().map(|&v| VertexId(v))
    }

    /// Derives the bipartite-graph order from an original-graph order.
    ///
    /// Couple `(v_i, v_o)` of the original vertex at rank `k` occupies ranks
    /// `2k` (`v_i`) and `2k + 1` (`v_o`): couples are consecutive with `v_i`
    /// on top, exactly the precondition of couple-vertex skipping
    /// (Section IV-B).
    pub fn bipartite_order(&self) -> RankTable {
        let mut vertex_at = Vec::with_capacity(self.vertex_at.len() * 2);
        for &v in &self.vertex_at {
            vertex_at.push(2 * v); // v_i
            vertex_at.push(2 * v + 1); // v_o
        }
        Self::from_order_ids(vertex_at)
    }

    /// Extends the order with a fresh lowest-ranked vertex (dynamic graphs
    /// grow; new vertices join at the bottom of the order).
    pub fn push_lowest(&mut self) {
        let v = self.rank_of.len() as u32;
        self.rank_of.push(self.vertex_at.len() as u32);
        self.vertex_at.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> DiGraph {
        // 0 is the hub of a star: high degree.
        DiGraph::from_edges(5, vec![(0, 1), (0, 2), (0, 3), (4, 0)])
    }

    #[test]
    fn degree_order_puts_hub_first() {
        let ranks = RankTable::build(&star(), OrderingStrategy::Degree);
        assert_eq!(ranks.vertex_at_rank(0), VertexId(0));
        assert_eq!(ranks.rank(VertexId(0)), 0);
        assert!(ranks.outranks(VertexId(0), VertexId(3)));
    }

    #[test]
    fn ties_break_by_vertex_id() {
        // Vertices 1, 2, 3 all have degree 1.
        let ranks = RankTable::build(&star(), OrderingStrategy::Degree);
        assert!(ranks.outranks(VertexId(1), VertexId(2)));
        assert!(ranks.outranks(VertexId(2), VertexId(3)));
    }

    #[test]
    fn identity_order() {
        let ranks = RankTable::build(&star(), OrderingStrategy::Identity);
        for i in 0..5u32 {
            assert_eq!(ranks.rank(VertexId(i)), i);
            assert_eq!(ranks.vertex_at_rank(i), VertexId(i));
        }
    }

    #[test]
    fn random_order_is_a_seeded_permutation() {
        let a = RankTable::build(&star(), OrderingStrategy::Random(7));
        let b = RankTable::build(&star(), OrderingStrategy::Random(7));
        let c = RankTable::build(&star(), OrderingStrategy::Random(8));
        assert_eq!(a, b, "same seed, same order");
        assert_eq!(a.len(), 5);
        // All vertices present exactly once.
        let mut seen: Vec<u32> = a.by_rank().map(|v| v.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        // Different seed almost surely differs on 5 elements; don't assert
        // inequality strictly — just that it is a valid permutation.
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn degree_product_prefers_through_vertices() {
        // 1 -> 0 -> 2 : vertex 0 has in*out product 4; 3 has degree 2 both out.
        let g = DiGraph::from_edges(4, vec![(1, 0), (0, 2), (3, 1), (3, 2)]);
        let ranks = RankTable::build(&g, OrderingStrategy::DegreeProduct);
        assert_eq!(ranks.vertex_at_rank(0), VertexId(0));
    }

    #[test]
    fn bipartite_order_interleaves_couples() {
        let g = star();
        let ranks = RankTable::build(&g, OrderingStrategy::Degree);
        let b = ranks.bipartite_order();
        assert_eq!(b.len(), 10);
        // Original rank 0 is vertex 0 -> bipartite ranks 0, 1 are (0_i, 0_o).
        assert_eq!(b.vertex_at_rank(0), VertexId(0)); // 0_i
        assert_eq!(b.vertex_at_rank(1), VertexId(1)); // 0_o
        for k in 0..5u32 {
            let vi = b.vertex_at_rank(2 * k);
            let vo = b.vertex_at_rank(2 * k + 1);
            assert_eq!(vo.0, vi.0 + 1, "couples stay adjacent");
            assert!(b.outranks(vi, vo));
        }
    }

    #[test]
    fn build_by_key_matches_degree_build_and_sinks_holes() {
        let g = star();
        assert_eq!(
            RankTable::build_by_key(g.vertex_count(), |v| g.degree(v) as u64),
            RankTable::build(&g, OrderingStrategy::Degree)
        );
        // A churned graph: vertex 5 appended then never connected, vertex 1
        // retired (all edges gone). Both are holes; a recomputed order puts
        // them at the bottom, id-ascending.
        let mut g = star();
        g.add_vertex();
        g.try_remove_edge(VertexId(0), VertexId(1)).unwrap();
        let ranks = RankTable::build(&g, OrderingStrategy::Degree);
        assert_eq!(ranks.vertex_at_rank(4), VertexId(1));
        assert_eq!(ranks.vertex_at_rank(5), VertexId(5));
    }

    #[test]
    fn push_lowest_appends() {
        let mut ranks = RankTable::build(&star(), OrderingStrategy::Degree);
        ranks.push_lowest();
        assert_eq!(ranks.len(), 6);
        assert_eq!(ranks.rank(VertexId(5)), 5);
        assert_eq!(ranks.vertex_at_rank(5), VertexId(5));
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_order_panics() {
        RankTable::from_order(&[VertexId(0), VertexId(0)]);
    }
}
