//! Plain BFS primitives and brute-force oracles.
//!
//! These are deliberately simple, allocation-per-call implementations: the
//! test suites across the workspace use them as *ground truth* against which
//! the pruned/labeled algorithms are validated, so they must be obviously
//! correct rather than fast. (The real query paths live in `csc-labeling`
//! and `csc-core`.)

use crate::digraph::DiGraph;
use crate::vertex::VertexId;
use std::collections::VecDeque;

/// Unweighted single-source shortest distances; `None` marks unreachable.
pub fn bfs_distances(g: &DiGraph, src: VertexId) -> Vec<Option<u32>> {
    bfs_distances_dir(g, src, true)
}

/// Single-source distances following edges forward (`true`) or backward.
pub fn bfs_distances_dir(g: &DiGraph, src: VertexId, forward: bool) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.vertex_count()];
    dist[src.index()] = Some(0);
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(w) = queue.pop_front() {
        let dw = dist[w.index()].expect("queued vertices have distances");
        let nbrs = if forward { g.nbr_out(w) } else { g.nbr_in(w) };
        for &u in nbrs {
            if dist[u as usize].is_none() {
                dist[u as usize] = Some(dw + 1);
                queue.push_back(VertexId(u));
            }
        }
    }
    dist
}

/// Single-source shortest distances *and* shortest-path counts.
///
/// Counts use saturating arithmetic: in adversarial layered graphs the
/// number of shortest paths grows exponentially.
pub fn bfs_counts(g: &DiGraph, src: VertexId, forward: bool) -> Vec<(Option<u32>, u64)> {
    let n = g.vertex_count();
    let mut dist: Vec<Option<u32>> = vec![None; n];
    let mut count: Vec<u64> = vec![0; n];
    dist[src.index()] = Some(0);
    count[src.index()] = 1;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(w) = queue.pop_front() {
        let dw = dist[w.index()].expect("queued vertices have distances");
        let cw = count[w.index()];
        let nbrs = if forward { g.nbr_out(w) } else { g.nbr_in(w) };
        for &u in nbrs {
            let u = u as usize;
            match dist[u] {
                None => {
                    dist[u] = Some(dw + 1);
                    count[u] = cw;
                    queue.push_back(VertexId(u as u32));
                }
                Some(du) if du == dw + 1 => {
                    count[u] = count[u].saturating_add(cw);
                }
                Some(_) => {}
            }
        }
    }
    dist.into_iter().zip(count).collect()
}

/// Brute-force `SPCnt(s, t)`: `(shortest distance, number of shortest
/// paths)`, or `None` if `t` is unreachable from `s`.
pub fn sp_count_pair(g: &DiGraph, s: VertexId, t: VertexId) -> Option<(u32, u64)> {
    let res = bfs_counts(g, s, true);
    let (d, c) = res[t.index()];
    d.map(|d| (d, c))
}

/// Brute-force `SCCnt(v)`: `(shortest cycle length, number of shortest
/// cycles through v)`, or `None` if no cycle passes through `v`.
///
/// Decomposes each cycle by its unique first edge `v -> w`: a shortest
/// cycle of length `L` through `v` is an edge `v -> w` plus a shortest
/// `w ~> v` path of length `L - 1`, and distinct `(w, path)` pairs are in
/// bijection with distinct cycles. Cost is `O(out_degree(v) * (n + m))`.
pub fn shortest_cycle_oracle(g: &DiGraph, v: VertexId) -> Option<(u32, u64)> {
    let mut best: Option<(u32, u64)> = None;
    for &w in g.nbr_out(v) {
        if let Some((d, c)) = sp_count_pair(g, VertexId(w), v) {
            let len = d + 1;
            match &mut best {
                Some((bl, bc)) => {
                    if len < *bl {
                        *bl = len;
                        *bc = c;
                    } else if len == *bl {
                        *bc = bc.saturating_add(c);
                    }
                }
                None => best = Some((len, c)),
            }
        }
    }
    best
}

/// Vertices reachable from `src` (including `src`), as a boolean mask.
pub fn reachable_from(g: &DiGraph, src: VertexId) -> Vec<bool> {
    bfs_distances(g, src)
        .into_iter()
        .map(|d| d.is_some())
        .collect()
}

/// Brute-force all-pairs shortest distances (test-sized graphs only).
pub fn all_pairs_distances(g: &DiGraph) -> Vec<Vec<Option<u32>>> {
    g.vertices().map(|v| bfs_distances(g, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn distances_on_a_path() {
        let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let d = bfs_distances(&g, v(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
        let back = bfs_distances_dir(&g, v(3), false);
        assert_eq!(back, vec![Some(3), Some(2), Some(1), Some(0)]);
    }

    #[test]
    fn unreachable_is_none() {
        let g = DiGraph::from_edges(3, vec![(0, 1)]);
        let d = bfs_distances(&g, v(0));
        assert_eq!(d[2], None);
    }

    #[test]
    fn counts_on_a_diamond() {
        // 0 -> {1, 2} -> 3: two shortest paths 0 ~> 3.
        let g = DiGraph::from_edges(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        let res = bfs_counts(&g, v(0), true);
        assert_eq!(res[3], (Some(2), 2));
        assert_eq!(sp_count_pair(&g, v(0), v(3)), Some((2, 2)));
        // Backward from 3 matches.
        let res = bfs_counts(&g, v(3), false);
        assert_eq!(res[0], (Some(2), 2));
    }

    #[test]
    fn counts_ignore_longer_paths() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 4 -> 3: only the length-2 path counts.
        let g = DiGraph::from_edges(5, vec![(0, 1), (1, 3), (0, 2), (2, 4), (4, 3)]);
        assert_eq!(sp_count_pair(&g, v(0), v(3)), Some((2, 1)));
    }

    #[test]
    fn cycle_oracle_on_triangle_with_chord() {
        // Triangle 0->1->2->0 plus chord 0->2: shortest cycle through 0 has
        // length 2? No — no mutual edges here; cycles through 0:
        // 0->1->2->0 (len 3) and 0->2->0? no edge 2->0... there is (2,0).
        // 0->2->0 needs (0,2) and (2,0): both exist -> length 2.
        let g = DiGraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0), (0, 2)]);
        assert_eq!(shortest_cycle_oracle(&g, v(0)), Some((2, 1)));
        // Through vertex 1 the only cycle is the triangle.
        assert_eq!(shortest_cycle_oracle(&g, v(1)), Some((3, 1)));
    }

    #[test]
    fn cycle_oracle_none_on_dag() {
        let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)]);
        for i in 0..4 {
            assert_eq!(shortest_cycle_oracle(&g, v(i)), None);
        }
    }

    #[test]
    fn cycle_oracle_counts_parallel_cycles() {
        // Two vertex-disjoint length-3 cycles through 0.
        let g = DiGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
        assert_eq!(shortest_cycle_oracle(&g, v(0)), Some((3, 2)));
    }

    #[test]
    fn figure2_cycle_counts_match_example_1() {
        // Example 1: SCCnt(v7) = 3 with cycle length 6.
        let g = crate::fixtures::figure2();
        let v7 = crate::fixtures::pv(7);
        assert_eq!(shortest_cycle_oracle(&g, v7), Some((6, 3)));
    }

    #[test]
    fn figure2_spcnt_matches_example_2_and_3() {
        let g = crate::fixtures::figure2();
        let pv = crate::fixtures::pv;
        // Example 2: SPCnt(v10, v8) = 3 with length 4.
        assert_eq!(sp_count_pair(&g, pv(10), pv(8)), Some((4, 3)));
        // Example 3: SPCnt(v7, v4) = 2 @ 5; (v7, v5) = 1 @ 5; (v7, v6) = 1 @ 6.
        assert_eq!(sp_count_pair(&g, pv(7), pv(4)), Some((5, 2)));
        assert_eq!(sp_count_pair(&g, pv(7), pv(5)), Some((5, 1)));
        assert_eq!(sp_count_pair(&g, pv(7), pv(6)), Some((6, 1)));
    }

    #[test]
    fn reachability_mask() {
        let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2)]);
        assert_eq!(reachable_from(&g, v(0)), vec![true, true, true, false]);
    }
}
